//! No-op stand-ins for `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace only *derives* these traits (it never serialises through
//! serde — its on-disk formats are hand-rolled), and the stub `serde`
//! crate provides blanket impls, so the derives can expand to nothing.
//! See `vendor/README.md` for why crates.io is unavailable here.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
