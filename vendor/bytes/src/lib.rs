//! Std-backed stand-in for the subset of `bytes` this workspace uses:
//! [`BytesMut`] as a growable byte buffer, [`BufMut`] little-endian put
//! methods, and [`Buf`] little-endian get methods for `&[u8]` cursors.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `bytes` to this path crate (see `vendor/README.md`).

/// Read-side cursor trait; implemented for `&[u8]` so `buf.get_u32_le()`
/// consumes from the front exactly like the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side trait with the little-endian put methods the workspace uses.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Immutable byte container (thin wrapper over `Vec<u8>`).
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u64_le(0x0102_0304_0506_0708);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(7);
        let v = b.to_vec();
        let mut cur: &[u8] = &v;
        assert_eq!(cur.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn f64_bits_survive() {
        let mut b = BytesMut::new();
        b.put_f64_le(-0.0);
        b.put_f64_le(f64::NAN);
        let v = b.to_vec();
        let mut cur: &[u8] = &v;
        assert_eq!(cur.get_f64_le().to_bits(), (-0.0f64).to_bits());
        assert!(cur.get_f64_le().is_nan());
    }
}
