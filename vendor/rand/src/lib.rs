//! Minimal stand-in for the subset of `rand` this workspace may use.
//!
//! Backed by splitmix64/xoshiro-style mixing — not cryptographic, but
//! statistically fine for tests and synthetic data. See `vendor/README.md`
//! for why crates.io is unavailable here.

/// Core RNG trait (subset of `rand::Rng` + `rand::RngCore`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range (`gen_range(0..10)`, `gen_range(0.0..1.0)`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
    {
        T::sample(self, &range)
    }

    /// `gen::<bool>()`-style helper for the types we support.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::standard(self)
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(rng: &mut G, range: &R) -> Self;
}

/// Types samplable from the "standard" distribution.
pub trait SampleStandard: Sized {
    fn standard<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                use std::ops::Bound::*;
                let lo: i128 = match range.start_bound() {
                    Included(&v) => v as i128,
                    Excluded(&v) => v as i128 + 1,
                    Unbounded => <$t>::MIN as i128,
                };
                let hi: i128 = match range.end_bound() {
                    Included(&v) => v as i128,
                    Excluded(&v) => v as i128 - 1,
                    Unbounded => <$t>::MAX as i128,
                };
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo + 1) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
        impl SampleStandard for $t {
            fn standard<G: Rng + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&v) | Excluded(&v) => v,
            Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Included(&v) | Excluded(&v) => v,
            Unbounded => 1.0,
        };
        lo + (hi - lo) * rng.gen_f64()
    }
}

impl SampleStandard for f64 {
    fn standard<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.gen_f64()
    }
}

impl SampleStandard for bool {
    fn standard<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable RNGs (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// splitmix64-initialised xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Thread-local generator handle returned by [`super::thread_rng`].
    pub struct ThreadRng;

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            use std::cell::Cell;
            thread_local! {
                static STATE: Cell<u64> = Cell::new({
                    use std::time::{SystemTime, UNIX_EPOCH};
                    let t = SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_nanos() as u64)
                        .unwrap_or(0x5EED);
                    t ^ (std::process::id() as u64) << 32 | 1
                });
            }
            STATE.with(|s| {
                let mut x = s.get();
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                s.set(x);
                x.wrapping_mul(0x2545_F491_4F6C_DD1D)
            })
        }
    }
}

pub use rngs::{StdRng, ThreadRng};

/// Thread-local RNG (subset of `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// One-off standard sample (subset of `rand::random`).
pub fn random<T: SampleStandard>() -> T {
    T::standard(&mut thread_rng())
}

pub mod prelude {
    pub use super::{random, thread_rng, Rng, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn seeds_reproduce_and_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
