//! Offline mini property-testing engine with the `proptest` call surface
//! this workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range / `any::<T>()` / `collection::vec` /
//! `sample::select` strategies, and `prop_assert*` macros.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the deterministic per-test seed so the run is reproducible.
//! See `vendor/README.md` for why crates.io is unavailable here.

/// Deterministic xorshift64* RNG seeded per test function.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a) so each test gets a stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// `any::<T>()` — the full-range strategy for primitive `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Primitive types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range-ish: sign * mantissa * 2^[-64, 64].
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        let exp = (rng.below(129) as i32 - 64) as f64;
        sign * rng.unit_f64() * exp.exp2()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Size specification for collection strategies.
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(vec![...])` — uniform choice from a list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Run-count configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
    /// The `prop::` path used as `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn int_ranges_in_bounds(x in 3usize..17, y in 1u8..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        /// Vec strategy respects the size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0i32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
        }

        /// Select only returns listed options.
        #[test]
        fn select_from_list(v in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8, "got {}", v);
        }
    }

    proptest! {
        /// Default-config form (no inner attribute) also parses.
        #[test]
        fn default_config_form(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
