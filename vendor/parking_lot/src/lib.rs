//! Std-backed stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this path crate (see `vendor/README.md`).
//! Semantics match the real crate for the covered surface:
//!
//! * [`Mutex`]: `new`, `lock` (no poisoning — a poisoned std mutex is
//!   re-entered, mirroring parking_lot's poison-free behaviour),
//!   `into_inner`, `get_mut`.
//! * [`RwLock`]: `new`, `read`, `write`, `into_inner`.
//! * [`Condvar`]: `new`, `wait`, `wait_for` (returning a
//!   [`WaitTimeoutResult`]), `notify_one`, `notify_all`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Mutual exclusion primitive (parking_lot-style: no lock poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
///
/// parking_lot's `Condvar::wait` takes the guard by `&mut`; std's consumes
/// and returns it. Bridged here with a take/replace on the inner guard —
/// sound because the outer guard is mutably borrowed for the whole wait.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar panics if used with two different mutexes; the
    // real parking_lot returns garbage-free behaviour too, so no extra
    // bookkeeping is needed. The flag suppresses "unused" warnings only.
    _used: AtomicBool,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            _used: AtomicBool::new(false),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._used.store(true, Ordering::Relaxed);
        replace_with(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self._used.store(true, Ordering::Relaxed);
        let mut timed_out = false;
        replace_with(&mut guard.inner, |g| {
            let (g, r) = match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Move `*slot` through `f` in place. Aborts the process if `f` panics
/// (the std condvar wait only panics on mutex misuse, which is a bug here
/// anyway) — this keeps the temporary-invalid state unobservable.
fn replace_with<T, F: FnOnce(T) -> T>(slot: &mut T, f: F) {
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Bomb;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
