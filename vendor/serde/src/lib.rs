//! Stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and machine
//! model types but never routes them through a serde serialiser (its disk
//! formats are hand-rolled in `ap3esm-io`), so marker traits with blanket
//! impls plus no-op derive macros reproduce the compile surface exactly.
//! See `vendor/README.md` for why crates.io is unavailable here.

/// Marker stand-in for `serde::Serialize`; blanket-implemented so any
/// `T: Serialize` bound is satisfiable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use crate::DeserializeOwned;
}
