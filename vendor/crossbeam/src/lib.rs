//! Std-backed stand-in for the subset of `crossbeam` this workspace uses:
//! [`scope`] (scoped threads, crossbeam 0.8 API shape) and
//! [`channel`] (unbounded MPMC-ish channels backed by `std::sync::mpsc`,
//! which since Rust 1.67 *is* a port of crossbeam-channel).
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `crossbeam` to this path crate (see `vendor/README.md`).

use std::panic::AssertUnwindSafe;

/// Scoped-thread result alias (matches `crossbeam::thread::Result`).
pub type ScopeResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

/// A scope for spawning borrowing threads; wraps [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure
    /// receives the scope so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. Returns `Err` if any spawned (and unjoined) thread panicked,
/// matching `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    //! Unbounded channels with the crossbeam-channel call surface.

    use std::sync::mpsc;

    /// Sending half; clonable and shareable across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_reports_unjoined_panic() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = super::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            tx2.send(7u32).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
