//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements a small but real measurement loop (warm-up, then timed
//! samples, median-of-samples reporting) behind criterion's call surface:
//! `Criterion::bench_function`, `benchmark_group` / `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Results print to stdout
//! as `bench <group>/<name> ... median <t> (n samples)`.
//! See `vendor/README.md` for why crates.io is unavailable here.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value sink, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration measurement driver passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Run `f` repeatedly: a few warm-up calls, then `sample_count` timed
    /// samples, each sized so one sample is long enough to trust the clock.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and per-call cost estimate.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~1 ms per sample, capped to keep total run time modest.
        let iters_per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos())
            .clamp(1, 10_000) as usize;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }

    /// Median of the recorded samples.
    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    let med = b.median();
    println!(
        "bench {label:<48} median {:>12.3?} ({} samples)",
        med,
        b.samples.len()
    );
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, p: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 15 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_count, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_count,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_count, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_count, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box((0..n).sum::<usize>()))
        });
        g.finish();
    }
}
