//! Property-based tests on the core data structures and invariants
//! (proptest): decomposition/routing bijectivity, compression round trips,
//! group-scaled precision bounds, I/O format totality.

use proptest::prelude::*;

use ap3esm::cpl::gsmap::GSMap;
use ap3esm::cpl::router::Router;
use ap3esm::io::format::{crc32, decode_payload, encode_payload, FieldHeader, HEADER_LEN};
use ap3esm::precision::GroupScaled;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any even GSMap pair yields a router covering each index exactly once.
    #[test]
    fn router_is_a_bijection(
        nglobal in 1usize..5000,
        m in 1usize..12,
        n in 1usize..12,
    ) {
        let src = GSMap::even(nglobal, m);
        let dst = GSMap::even(nglobal, n);
        let router = Router::build(&src, &dst);
        prop_assert!(router.validate().is_ok());
        // Serialisation round trip is lossless.
        let back = Router::from_bytes(&router.to_bytes()).unwrap();
        prop_assert_eq!(router.legs, back.legs);
    }

    /// GSMap owner lookup agrees with segment membership for random splits.
    #[test]
    fn gsmap_owner_lookup_consistent(
        cuts in prop::collection::vec(1usize..200, 1..8),
    ) {
        let mut ranges = Vec::new();
        let mut start = 0usize;
        for c in &cuts {
            ranges.push((start, start + c));
            start += c;
        }
        let map = GSMap::from_ranges(start, &ranges);
        for (r, &(s, e)) in ranges.iter().enumerate() {
            for gid in s..e {
                prop_assert_eq!(map.owner_of(gid), r);
            }
            prop_assert_eq!(map.local_size(r), e - s);
        }
    }

    /// Group-scaled storage keeps relative error within FP32-class bounds
    /// for any values and group size.
    #[test]
    fn group_scaled_round_trip_bounds(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 1..300),
        group in 1usize..64,
    ) {
        let gs = GroupScaled::from_f64(&values, group);
        let back = gs.to_f64();
        for (a, b) in values.iter().zip(&back) {
            let scale = values
                .iter()
                .map(|v| v.abs())
                .fold(0.0f64, f64::max)
                .max(1e-30);
            prop_assert!((a - b).abs() <= scale * 2e-7 + 1e-12,
                "value {} reconstructed {}", a, b);
        }
    }

    /// Payload encode/decode is total and lossless for finite values.
    #[test]
    fn io_payload_roundtrip(values in prop::collection::vec(-1.0e300f64..1.0e300, 0..200)) {
        let bytes = encode_payload(&values);
        let back = decode_payload(&bytes).unwrap();
        prop_assert_eq!(values, back);
    }

    /// CRC-32 detects any single-byte corruption.
    #[test]
    fn crc_detects_single_byte_flips(
        data in prop::collection::vec(any::<u8>(), 1..200),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let original = crc32(&data);
        let mut corrupted = data.clone();
        let pos = pos_seed % corrupted.len();
        corrupted[pos] ^= flip;
        prop_assert_ne!(original, crc32(&corrupted));
    }

    /// The checksummed sub-file header round-trips for any field shape,
    /// and any single corrupted byte is rejected at decode — except when
    /// the corruption turns the trailing header-CRC word into the legacy
    /// `0` sentinel, in which case the decoded fields must still be the
    /// originals (the corruption only destroyed the checksum itself).
    #[test]
    fn field_header_roundtrip_and_corruption(
        d0 in 1u64..1 << 40,
        d1 in 1u64..1 << 20,
        d2 in 1u64..1 << 20,
        ndims in 1u32..=3,
        subfile_index in any::<u32>(),
        subfile_count in 1u32..1 << 16,
        start in any::<u64>(),
        count in any::<u64>(),
        crc in any::<u32>(),
        pos in 0usize..HEADER_LEN,
        flip in 1u8..=255,
    ) {
        let h = FieldHeader {
            dims: [d0, d1, d2],
            ndims, subfile_index, subfile_count, start, count, crc,
        };
        let bytes = h.encode();
        prop_assert_eq!(bytes.len(), HEADER_LEN);
        prop_assert_eq!(&FieldHeader::decode(&bytes).unwrap(), &h);

        let mut corrupted = bytes.to_vec();
        corrupted[pos] ^= flip;
        let tail = u32::from_le_bytes(corrupted[HEADER_LEN - 4..].try_into().unwrap());
        match FieldHeader::decode(&corrupted) {
            Err(_) => {}
            Ok(back) => {
                prop_assert_eq!(tail, 0, "corruption at byte {} went undetected", pos);
                prop_assert_eq!(back, h);
            }
        }
    }

    /// Alarms fire exactly `per_day` times per simulated day for any valid
    /// frequency (divisors of 86400 seconds ÷ 60-second granularity).
    #[test]
    fn coupling_alarm_counts(per_day in prop::sample::select(
        vec![1i64, 2, 3, 4, 6, 8, 12, 24, 36, 48, 72, 96, 144, 180, 288]
    )) {
        use ap3esm::cpl::clock::{Alarm, DAY};
        let alarm = Alarm::per_day(per_day);
        let mut count = 0;
        let mut t = 0;
        while t < DAY {
            if alarm.ringing(t) {
                count += 1;
            }
            t += alarm.period.min(60);
        }
        prop_assert_eq!(count, per_day);
    }

    /// Tripolar grids keep the displaced-pole cap on land and the active
    /// fraction Earth-plausible, for any seed and size.
    #[test]
    fn tripolar_mask_invariants(
        seed in any::<u64>(),
        nlon in 16usize..64,
    ) {
        use ap3esm::grid::mask::MaskGenerator;
        use ap3esm::grid::TripolarGrid;
        let nlat = (nlon * 2) / 3;
        let grid = TripolarGrid::new(
            nlon,
            nlat.max(8),
            4,
            MaskGenerator { seed, ..MaskGenerator::default() },
        );
        // Polar cap (> 84°N) is land.
        for j in 0..grid.nlat {
            if grid.lat[j].to_degrees() > ap3esm::grid::tripolar::POLAR_CAP_DEG {
                for i in 0..grid.nlon {
                    prop_assert_eq!(grid.kmt[grid.idx(i, j)], 0);
                }
            }
        }
        let f = grid.active_fraction();
        prop_assert!((0.1..0.9).contains(&f), "active fraction {}", f);
    }

    /// Rearrangement is a permutation for random contiguous decompositions:
    /// every value sent arrives exactly once, none invented.
    #[test]
    fn rearrange_is_value_preserving(
        nglobal in 10usize..400,
        m in 1usize..5,
        n in 1usize..5,
    ) {
        use ap3esm::comm::World;
        use ap3esm::cpl::rearrange::{RearrangeStrategy, Rearranger};
        let nranks = m.max(n);
        let src = GSMap::even(nglobal, nranks);
        let dst = GSMap::even(nglobal, nranks);
        let world = World::new(nranks);
        let outs = world.run(|rank| {
            let r = Rearranger::new(Router::build(&src, &dst), 5);
            let local: Vec<f64> = src
                .local_indices(rank.id())
                .iter()
                .map(|&g| g as f64 * 3.0 + 1.0)
                .collect();
            r.rearrange(
                rank,
                RearrangeStrategy::NonBlockingP2p,
                &local,
                dst.local_size(rank.id()),
            )
        });
        let mut all: Vec<f64> = outs.into_iter().flatten().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..nglobal).map(|g| g as f64 * 3.0 + 1.0).collect();
        prop_assert_eq!(all, expect);
    }

    /// Geodesic grid partitions are complete for random part counts.
    #[test]
    fn graph_decomp_total(nparts in 1usize..20) {
        use ap3esm::grid::decomp::GraphDecomp;
        use ap3esm::grid::GeodesicGrid;
        let grid = GeodesicGrid::new(2); // 162 cells
        let nparts = nparts.min(grid.ncells());
        let d = GraphDecomp::new(&grid, nparts);
        prop_assert_eq!(d.sizes().iter().sum::<usize>(), grid.ncells());
        prop_assert!(d.part_of.iter().all(|&p| p < nparts));
    }
}
