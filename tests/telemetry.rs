//! Tier-1 integration test for the continuous-telemetry layer: a 2-rank
//! coupled run with sampling on, a deterministic injected slowdown (delay
//! faults on the KE allreduce's gather leg), a live OpenMetrics scrape
//! taken mid-run, and an offline replay of the saved series snapshot.
//!
//! Asserts the whole pipeline: per-coupling SYPD/imbalance gauges →
//! sampled series → live scrape (strict-parser valid, carries both
//! series) → SYPD-collapse alert fired once the slowdown lands → alert in
//! the run report's `alerts` array, in `CoupledStats::alerts`, and as an
//! instant event in the chrome trace → snapshot replay re-fires offline.

use ap3esm::comm::collectives::allreduce_wire_tags;
use ap3esm::comm::{FaultInjector, FaultPlan};
use ap3esm::esm::coupled::TelemetryOptions;
use ap3esm::obs::{alert, openmetrics, parse_rules, tsdb};
use ap3esm::prelude::*;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The custom rule under test: same shape as the built-in SYPD-collapse
/// rule, with a window sized for the test's short run.
const RULE: &str = "sypd-collapse: sim.sypd deviates_below 0.5 over 6 for 1";

fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

#[test]
fn telemetry_scrapes_live_and_fires_sypd_collapse_on_injected_slowdown() {
    // Two ranks: rank 0 = coupler+ATM+ICE+LND, rank 1 = the single ocean
    // domain. 3 days at test_tiny cadence = 12 ocean couplings.
    let mut config = CoupledConfig::test_tiny();
    config.ocn_px = 1;
    config.ocn_py = 1;
    assert_eq!(config.world_size(), 2);

    // Injected slowdown: stall rank 0's recv of the KE allreduce at ocean
    // couplings 9 and 10 (the gather-leg wire tag matches exactly one
    // message per coupling, so `nth` counts couplings deterministically).
    // 2.5 s dwarfs a coupling's wall time even on a loaded single-core
    // debug run, so the >50% SYPD deviation is unambiguous.
    let [ke_gather, _] = allreduce_wire_tags(77);
    let plan = FaultPlan::parse(&format!(
        "delay src=1 dst=0 tag={ke_gather} nth=9 ms=2500\n\
         delay src=1 dst=0 tag={ke_gather} nth=10 ms=2500\n"
    ))
    .unwrap();

    // Reserve an ephemeral port for the scrape endpoint: bind, note, drop.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let name = format!("telemetry-it-{}", std::process::id());
    let opts = CoupledOptions {
        days: 3.0,
        report_name: Some(name.clone()),
        trace: true,
        telemetry: Some(TelemetryOptions {
            cadence: Duration::from_millis(5),
            metrics_addr: Some(addr.clone()),
            builtin_rules: false,
            rules: RULE.to_string(),
            snapshot: true,
            // The 2.5 s stalls alone produce ~1000 samples at this cadence;
            // keep the whole run in the raw tier so the offline replay
            // still sees the pre-incident baseline.
            capacity: 16 * 1024,
        }),
        ..Default::default()
    };

    // Scrape mid-run: poll the endpoint until both global series appear.
    let scrape: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let scraper = {
        let (scrape, addr) = (Arc::clone(&scrape), addr.clone());
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                if let Ok(body) = http_get(&addr, "/metrics") {
                    if body.contains(r#"name="sim.sypd""#)
                        && body.contains(r#"name="sim.imbalance""#)
                    {
                        *scrape.lock().unwrap() = Some(body);
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let world = World::new(config.world_size())
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];
    scraper.join().unwrap();

    assert!(root.failure.is_none(), "run failed: {:?}", root.failure);
    assert_eq!(root.metrics_addr.as_deref(), Some(addr.as_str()));
    assert!(
        root.fault_events.iter().any(|e| e.contains("Delay")),
        "injected delays not recorded: {:?}",
        root.fault_events
    );

    // ---- The mid-run scrape is strict-parser-valid OpenMetrics and
    //      carries the allreduced SYPD + imbalance gauges and series. ----
    let scrape = scrape.lock().unwrap().take().expect("no mid-run scrape");
    let body = scrape.split("\r\n\r\n").nth(1).expect("HTTP body");
    let families = openmetrics::parse(body).expect("scrape must validate");
    let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
    assert!(names.contains(&"ap3esm_sim_sypd"), "{names:?}");
    assert!(names.contains(&"ap3esm_sim_imbalance"), "{names:?}");
    assert!(names.contains(&"ap3esm_series"), "{names:?}");

    // ---- The slowdown fired the SYPD-collapse rule: stats + report. ----
    assert!(
        root.alerts.iter().any(|a| a.contains("sypd-collapse")),
        "no sypd-collapse alert: {:?}",
        root.alerts
    );
    let json = root.report_json.as_ref().expect("rank 0 report");
    assert!(json.contains(r#""schema":"ap3esm-obs/5""#));
    assert!(
        json.contains(r#""rule":"sypd-collapse""#),
        "alert missing from report alerts array"
    );

    // ---- ... and landed as an instant event in the chrome trace. ----
    let trace = std::fs::read_to_string(root.trace_path.as_ref().expect("trace")).unwrap();
    assert!(
        trace.contains("alert.sypd-collapse"),
        "alert instant missing from chrome trace"
    );

    // ---- The series snapshot replays offline to the same verdict. ----
    let series_path = root.series_path.as_ref().expect("series snapshot");
    let text = std::fs::read_to_string(series_path).unwrap();
    let snaps = tsdb::snapshot_from_json(&text).expect("snapshot parses");
    let sypd = snaps
        .iter()
        .find(|s| s.name == "sim.sypd")
        .expect("sim.sypd series in snapshot");
    assert!(sypd.total > 0);
    assert!(snaps.iter().any(|s| s.name == "sim.imbalance"));

    let engine = alert::replay(parse_rules(RULE).unwrap(), &snaps);
    let status = &engine.status()[0];
    assert!(
        status.fired > 0 || status.firing,
        "offline replay must re-fire the collapse: {status:?}"
    );
}
