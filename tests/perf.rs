//! Tier-1 integration test for the performance observatory (DESIGN.md
//! §12): `ap3esm-bench/1` trajectory points round-trip through the strict
//! parser byte-identically, sequencing on disk auto-increments, and the
//! regression gate reaches the right verdict on synthetic trajectories —
//! regression, improvement, within-noise, bootstrap, and a gated metric
//! vanishing.

use ap3esm::obs::perf::{
    gate, load_trajectory, next_seq, BenchFile, BuildInfo, Direction, Stat, BENCH_SCHEMA,
};

fn point(seq: u64, sypd: f64, kernel_ns: f64) -> BenchFile {
    let mut f = BenchFile::new("perf_trajectory", BuildInfo::fixed_for_tests());
    f.seq = seq;
    f.created_unix = 1_700_000_000 + seq;
    f.push(
        "perf.sim.sypd",
        Stat::single(sypd, "sypd", Direction::HigherIsBetter),
    );
    f.push(
        "perf.kernel.saxpy.serial.ns_per_gp",
        Stat::sampled(kernel_ns, "ns/gp", 12, 0.05 * kernel_ns, Direction::LowerIsBetter),
    );
    f.push(
        "perf.sim.comm_bytes",
        Stat::single(4.0e6, "bytes", Direction::Informational),
    );
    f
}

#[test]
fn bench_json_roundtrips_byte_identically() {
    let f = point(3, 950.0, 2.5);
    let text = f.to_json().to_string();
    assert!(text.contains(&format!("\"schema\":\"{BENCH_SCHEMA}\"")));
    let back = BenchFile::parse(&text).expect("strict parse");
    assert_eq!(back.seq, 3);
    assert_eq!(back.build.git_sha, "0123456789ab");
    assert_eq!(back.metrics.len(), 3);
    let sypd = back.get("perf.sim.sypd").expect("sypd present");
    assert_eq!(sypd.value, 950.0);
    assert_eq!(sypd.better, Direction::HigherIsBetter);
    // Byte-identical re-serialisation: parse(to_json) is the identity.
    assert_eq!(back.to_json().to_string(), text);
}

#[test]
fn parser_rejects_wrong_schema_and_garbage() {
    assert!(BenchFile::parse("{}").is_err());
    assert!(BenchFile::parse("not json").is_err());
    let wrong = point(1, 900.0, 2.0)
        .to_json()
        .to_string()
        .replace(BENCH_SCHEMA, "ap3esm-bench/999");
    assert!(BenchFile::parse(&wrong).is_err());
}

#[test]
fn trajectory_on_disk_sequences_and_loads() {
    let dir = std::env::temp_dir().join(format!("ap3esm-perf-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(next_seq(&dir), 1, "empty dir starts at seq 1");

    let mut a = point(0, 900.0, 2.6);
    let path = a.write_next(&dir).expect("write BENCH_1");
    assert!(path.ends_with("BENCH_1.json"));
    assert_eq!(a.seq, 1, "write_next assigns the next free seq");
    let mut b = point(0, 910.0, 2.5);
    b.write_next(&dir).expect("write BENCH_2");
    assert_eq!(b.seq, 2);

    let traj = load_trajectory(&dir).expect("load");
    assert_eq!(traj.len(), 2);
    assert_eq!((traj[0].seq, traj[1].seq), (1, 2));
    assert_eq!(traj[1].get("perf.sim.sypd").unwrap().value, 910.0);

    // A corrupt point must fail the whole load, loudly — a silently
    // dropped trajectory point would quietly widen every noise band.
    std::fs::write(dir.join("BENCH_3.json"), "{broken").unwrap();
    assert!(load_trajectory(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gate_flags_regression_in_both_directions() {
    let history: Vec<BenchFile> =
        (1..=4).map(|s| point(s, 900.0 + s as f64, 2.5)).collect();
    // SYPD halves (higher-is-better ↓) and the kernel triples
    // (lower-is-better ↑): both must come back Regressed and fail.
    let bad = point(5, 450.0, 7.5);
    let report = gate::evaluate(&history, &bad, &gate::GateOptions::default());
    assert!(!report.passed());
    let verdict = |name: &str| {
        report
            .verdicts
            .iter()
            .find(|v| v.name == name)
            .expect("metric in report")
            .verdict
    };
    assert_eq!(verdict("perf.sim.sypd"), gate::Verdict::Regressed);
    assert_eq!(
        verdict("perf.kernel.saxpy.serial.ns_per_gp"),
        gate::Verdict::Regressed
    );
    assert!(report.render().contains("FAIL"));
}

#[test]
fn gate_passes_improvement_and_within_noise() {
    let history: Vec<BenchFile> =
        (1..=4).map(|s| point(s, 900.0 + s as f64, 2.5)).collect();

    // Small wiggle: inside the noise band.
    let same = point(5, 905.0, 2.52);
    let report = gate::evaluate(&history, &same, &gate::GateOptions::default());
    assert!(report.passed());
    assert!(report
        .verdicts
        .iter()
        .filter(|v| v.verdict != gate::Verdict::Informational)
        .all(|v| v.verdict == gate::Verdict::WithinNoise));

    // Big win in the right direction: Improved, still passes.
    let faster = point(5, 2000.0, 1.0);
    let report = gate::evaluate(&history, &faster, &gate::GateOptions::default());
    assert!(report.passed());
    assert!(report
        .verdicts
        .iter()
        .any(|v| v.verdict == gate::Verdict::Improved));
}

#[test]
fn gate_bootstraps_and_catches_vanishing_metrics() {
    // No history at all: everything is New, gate passes (first point of a
    // fresh trajectory must not fail CI).
    let first = point(1, 900.0, 2.5);
    let report = gate::evaluate(&[], &first, &gate::GateOptions::default());
    assert!(report.passed());
    assert!(report
        .verdicts
        .iter()
        .filter(|v| v.verdict != gate::Verdict::Informational)
        .all(|v| v.verdict == gate::Verdict::New));

    // A gated metric disappearing from the current point is a FAIL — a
    // deleted benchmark hides a regression as effectively as causing one.
    let history = vec![point(1, 900.0, 2.5)];
    let mut partial = BenchFile::new("perf_trajectory", BuildInfo::fixed_for_tests());
    partial.seq = 2;
    partial.created_unix = 1_700_000_002;
    partial.push(
        "perf.sim.sypd",
        Stat::single(901.0, "sypd", Direction::HigherIsBetter),
    );
    let report = gate::evaluate(&history, &partial, &gate::GateOptions::default());
    assert!(!report.passed());
    assert!(report
        .verdicts
        .iter()
        .any(|v| v.name == "perf.kernel.saxpy.serial.ns_per_gp"
            && v.verdict == gate::Verdict::Missing));
}

#[test]
fn gate_report_json_is_valid_and_complete() {
    let history = vec![point(1, 900.0, 2.5)];
    let current = point(2, 903.0, 2.49);
    let report = gate::evaluate(&history, &current, &gate::GateOptions::default());
    let json = report.to_json().to_string();
    let parsed = ap3esm::obs::json::Json::parse(&json).expect("gate JSON parses");
    assert_eq!(
        parsed.get("passed"),
        Some(&ap3esm::obs::json::Json::Bool(true))
    );
    let verdicts = parsed
        .get("verdicts")
        .and_then(|v| v.as_arr())
        .expect("verdicts array");
    assert_eq!(verdicts.len(), report.verdicts.len());
}
