//! Tier-1 chaos integration tests (ISSUE PR 7).
//!
//! Two end-to-end scenarios over the real coupled driver:
//!
//! 1. **Detection → attribution → recovery**: a fault plan silently drops
//!    one coupling message; the receiver's `recv` times out into a
//!    `Deadlock` naming the missing `(src, tag)`, the health agreement
//!    escalates it to a rollback, and the run completes.
//! 2. **Shrink-to-fit degraded mode**: an ocean rank dies permanently
//!    mid-run; the survivors vote it out, redistribute the last committed
//!    checkpoint onto the smaller layout, and continue degraded. The
//!    degraded tail must be **bitwise identical** to a fresh reference
//!    world of the shrunken size resuming from the same hand-off.

use ap3esm::comm::{FaultInjector, FaultPlan};
use ap3esm::esm::RecoveryConfig;
use ap3esm::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Generous enough that legitimate compute gaps in debug builds never
/// masquerade as deadlocks, small enough that detection stays test-sized.
const RECV_TIMEOUT: Duration = Duration::from_millis(800);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ap3esm-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bitwise(name: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{name}[{i}] diverged: {x} vs {y}");
    }
}

/// Byte-compare every file of two checkpoint directories, except the
/// `cpl_meta` series-length bookkeeping (a degraded run keeps its pre-loss
/// series entries, a fresh reference starts empty — physical state fields
/// must still match exactly).
fn assert_checkpoint_dirs_match(a: &Path, b: &Path) {
    let list = |d: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .unwrap_or_else(|e| panic!("read {}: {e}", d.display()))
            .map(|f| f.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| !n.starts_with("cpl_meta"))
            .collect();
        names.sort();
        names
    };
    let (na, nb) = (list(a), list(b));
    assert_eq!(na, nb, "checkpoint file sets differ");
    for name in &na {
        let ba = std::fs::read(a.join(name)).unwrap();
        let bb = std::fs::read(b.join(name)).unwrap();
        assert_eq!(ba, bb, "checkpoint file {name} differs byte-wise");
    }
}

/// Drop the first gathered export of ocean coupling 2 (rank 1 -> root,
/// p2p wire tag of user tag 22; 3 messages per coupling, so `nth=4`).
/// Root's third gather receive must time out into a Deadlock that blames
/// `(src 1, tag)`, and the recovery layer must roll back and finish.
#[test]
fn dropped_coupling_message_is_detected_attributed_and_recovered() {
    let config = CoupledConfig::test_tiny();
    let gather_p2p_tag: u64 = 0x5240_0000 + 22;
    let plan = FaultPlan::parse(&format!("drop src=1 dst=0 tag={gather_p2p_tag} nth=4\n"))
        .expect("plan parses");
    plan.validate(config.world_size()).expect("plan validates");

    let ckpt = tmpdir("drop");
    let opts = CoupledOptions {
        days: 1.0,
        checkpoint_dir: Some(ckpt.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_recv_timeout(RECV_TIMEOUT)
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    assert!(root.failure.is_none(), "run failed: {:?}", root.failure);
    assert_eq!(root.recoveries, 1, "exactly one rollback expected");
    assert_eq!(
        root.shrinks, 0,
        "a transient drop must not shrink the world"
    );
    assert_eq!(
        root.simulated_seconds, 86_400.0,
        "run must complete the day"
    );
    assert_eq!(root.sst_series.len(), 4);

    // Detection: the timeout surfaced as a comm fault at the right coupling.
    assert!(
        root.fault_events
            .iter()
            .any(|e| e.contains("comm fault at ocn coupling 2") && e.contains("deadlock")),
        "missing detection event: {:?}",
        root.fault_events
    );
    // Attribution: the deadlock names the dropped stream's source and tag.
    assert!(
        root.fault_events
            .iter()
            .any(|e| e.contains("(src 1") && e.contains(&format!("{gather_p2p_tag:#x}"))),
        "missing attribution: {:?}",
        root.fault_events
    );
    // The injector's own record of the drop is in the same stream.
    assert!(
        root.fault_events
            .iter()
            .any(|e| e.contains("msg fault Drop") && e.contains("1->0")),
        "missing injected-fault record: {:?}",
        root.fault_events
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// The PR's acceptance scenario: a 4-rank world (3x1 ocean) loses rank 2
/// permanently at ocean coupling 3. The survivors must shrink to 3 ranks,
/// resume from the redistributed checkpoint 2, and finish the day — and
/// the post-loss trajectory must match, bitwise, a *fresh* 3-rank world
/// (2x1 ocean, the shrink-to-fit decomposition) resuming from the same
/// hand-off directory.
#[test]
fn permanent_rank_loss_shrinks_and_matches_fresh_reference() {
    let mut config = CoupledConfig::test_tiny();
    config.ocn_px = 3;
    config.ocn_py = 1;
    assert_eq!(config.world_size(), 4);

    let plan = FaultPlan::parse("die rank=2 step=3\n").expect("plan parses");
    plan.validate(config.world_size()).expect("plan validates");

    let base = tmpdir("shrink");
    let ckpt_degraded = base.join("degraded");
    let opts = CoupledOptions {
        days: 1.0,
        checkpoint_dir: Some(ckpt_degraded.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_recv_timeout(RECV_TIMEOUT)
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    assert!(
        root.failure.is_none(),
        "degraded run failed: {:?}",
        root.failure
    );
    assert_eq!(root.shrinks, 1, "exactly one shrink expected");
    assert_eq!(root.degraded_ranks, 1, "one rank was lost");
    assert!(all[2].lost, "rank 2 must report itself permanently lost");
    assert!(!all[1].lost && !all[3].lost, "survivors are not lost");
    assert_eq!(all[1].shrinks, 1, "survivors agree on the shrink count");
    assert_eq!(all[3].shrinks, 1);
    assert_eq!(
        root.simulated_seconds, 86_400.0,
        "run must complete the day"
    );
    // Checkpoint 2 committed before the loss: couplings 1-2 kept, 3-4
    // replayed degraded.
    assert_eq!(root.sst_series.len(), 4);
    assert_eq!(root.theta_series.len(), 8);
    assert!(
        root.fault_events
            .iter()
            .any(|e| e.contains("membership shrunk")),
        "missing shrink event: {:?}",
        root.fault_events
    );

    // The reference world: 3 ranks from scratch, the ocean on the same 2x1
    // decomposition the shrink re-fitted, resuming from the same hand-off.
    let shrunk = ckpt_degraded.join("shrunk_g1");
    assert!(shrunk.is_dir(), "shrink hand-off directory missing");
    let mut ref_config = config.clone();
    ref_config.ocn_px = 2;
    ref_config.ocn_py = 1;
    assert_eq!(ref_config.world_size(), 3);
    let ckpt_reference = base.join("reference");
    let ref_opts = CoupledOptions {
        days: 1.0,
        checkpoint_dir: Some(ckpt_reference.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            ..Default::default()
        },
        resume_from: Some(shrunk.clone()),
        ..Default::default()
    };
    let ref_world = World::new(ref_config.world_size()).with_recv_timeout(RECV_TIMEOUT);
    let ref_all = ref_world.run(|rank| run_coupled(rank, &ref_config, &ref_opts));
    let ref_root = &ref_all[0];

    assert!(
        ref_root.failure.is_none(),
        "reference run failed: {:?}",
        ref_root.failure
    );
    assert_eq!(ref_root.shrinks, 0);
    assert_eq!(ref_root.simulated_seconds, 86_400.0);
    // Checkpoint 2 was written during ocean coupling 2 (event t=21600)
    // with the clock already advanced to t=32400: the resumed trajectory
    // replays ocean couplings 3-4 and the 5 atm/ice couplings from
    // t=32400 on.
    assert_eq!(
        ref_root.sst_series.len(),
        2,
        "reference replays couplings 3-4"
    );
    assert_eq!(ref_root.theta_series.len(), 5);

    // The degraded tail is the reference trajectory, bit for bit.
    assert_bitwise("sst", &root.sst_series[2..], &ref_root.sst_series);
    assert_bitwise("ke", &root.ke_series[2..], &ref_root.ke_series);
    assert_bitwise("theta", &root.theta_series[3..], &ref_root.theta_series);
    assert_bitwise("ice", &root.ice_series[3..], &ref_root.ice_series);

    // And the final committed checkpoints are byte-identical field files.
    assert_checkpoint_dirs_match(
        &ckpt_degraded.join("ckpt_00000004"),
        &ckpt_reference.join("ckpt_00000004"),
    );
    let _ = std::fs::remove_dir_all(&base);
}
