//! Integration tests for the `ap3esm-serve` subsystem: overload shedding
//! with bounded latency, the no-silent-drop drain guarantee, hot-swap /
//! rollback under load, and per-tenant rate limiting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ap3esm::ai::modules::{ColumnState, ColumnTendency};
use ap3esm::obs::Obs;
use ap3esm::serve::registry::warm_modules;
use ap3esm::serve::{ModelRegistry, ServeConfig, ServeError, Service, Ticket};

const NLEV: usize = 30;

fn column(phase: f64) -> ColumnState {
    ColumnState {
        u: (0..NLEV).map(|k| 5.0 * (0.3 * k as f64 + phase).sin()).collect(),
        v: (0..NLEV).map(|k| 2.0 * (0.2 * k as f64 + phase).cos()).collect(),
        t: (0..NLEV).map(|k| 295.0 - 4.0 * k as f64).collect(),
        q: (0..NLEV).map(|k| 0.01 * (-0.4 * k as f64).exp()).collect(),
        p: (0..NLEV).map(|k| 1.0e5 * (1.0 - k as f64 / (NLEV + 1) as f64)).collect(),
    }
}

fn start(cfg: ServeConfig, seed: u64) -> Arc<Service> {
    Service::start(
        cfg,
        Arc::new(ModelRegistry::warm(NLEV, 32, seed, "v1")),
        Arc::new(Obs::new()),
    )
}

/// Open-loop burst far beyond capacity: the bounded queue must shed with
/// structured `Overloaded` errors, every admitted request must still be
/// served, micro-batches must actually form, and the p95 latency of
/// admitted requests must stay under the configured deadline budget.
#[test]
fn overload_sheds_and_admitted_p95_stays_bounded() {
    let cfg = ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        queue_capacity: 16,
        deadline_budget: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let budget = cfg.deadline_budget;
    let svc = start(cfg, 7);

    let shed = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let submitters: Vec<_> = (0..4)
        .map(|ci| {
            let svc = Arc::clone(&svc);
            let (shed, served) = (Arc::clone(&shed), Arc::clone(&served));
            std::thread::spawn(move || {
                let mut tickets: Vec<Ticket> = Vec::new();
                // Open loop: submit as fast as possible, wait afterwards.
                for n in 0..300 {
                    match svc.submit("burst", column(ci as f64 + n as f64 * 0.01)) {
                        Ok(t) => tickets.push(t),
                        Err(ServeError::Overloaded { queue_depth, capacity }) => {
                            assert!(queue_depth >= capacity);
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                for t in tickets {
                    t.wait().expect("admitted request must be served");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter");
    }
    svc.drain();

    let shed_n = shed.load(Ordering::Relaxed);
    let served_n = served.load(Ordering::Relaxed);
    assert!(shed_n > 0, "4×300 instant submits into a 16-deep queue must shed");
    assert!(served_n > 0, "some requests must be admitted and served");
    assert_eq!(served_n + shed_n, 1200, "every request resolved one way");

    let m = &svc.obs().metrics;
    assert_eq!(m.counter("serve.shed").get(), shed_n);
    assert_eq!(m.counter("serve.served").get(), served_n);
    let lat = m.histogram("serve.latency_us").summary();
    assert_eq!(lat.count, served_n);
    let p95 = Duration::from_micros(lat.p95);
    assert!(
        p95 < budget,
        "p95 of admitted requests {p95:?} must stay under the {budget:?} budget"
    );
    // Micro-batching must engage under pressure: with the queue saturated
    // a worker takes a full batch.
    let bs = m.histogram("serve.batch_size").summary();
    assert_eq!(bs.max, 8, "saturated queue must produce full batches");
    assert!(m.counter("serve.batches").get() < served_n, "batches < requests");
}

/// The drain contract: every submitted request resolves — to a result or
/// an explicit `Overloaded`/`Draining` error — never a silent drop.
#[test]
fn drain_never_silently_drops_a_request() {
    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let svc = start(cfg, 8);

    // Submitters race the drain below.
    let outcomes = Arc::new(AtomicU64::new(0)); // packed: ok | shed | draining
    let counts = [
        Arc::new(AtomicU64::new(0)), // ok
        Arc::new(AtomicU64::new(0)), // overloaded
        Arc::new(AtomicU64::new(0)), // draining
    ];
    let submitters: Vec<_> = (0..3)
        .map(|ci| {
            let svc = Arc::clone(&svc);
            let counts = counts.clone();
            let outcomes = Arc::clone(&outcomes);
            std::thread::spawn(move || {
                for n in 0..200 {
                    match svc.submit("t", column(ci as f64 + n as f64 * 0.01)) {
                        Ok(t) => match t.wait() {
                            Ok(out) => {
                                assert!(out.dt.iter().all(|v| v.is_finite()));
                                counts[0].fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("in-flight request lost to {e}"),
                        },
                        Err(ServeError::Overloaded { .. }) => {
                            counts[1].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Draining) => {
                            counts[2].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error {e}"),
                    }
                    outcomes.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Drain mid-traffic.
    while counts[0].load(Ordering::Relaxed) < 20 {
        std::thread::yield_now();
    }
    svc.drain();
    for s in submitters {
        s.join().expect("submitter");
    }

    let total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total, 600, "every request resolved explicitly");
    assert_eq!(outcomes.load(Ordering::Relaxed), 600);
    assert!(counts[0].load(Ordering::Relaxed) >= 20, "some served before drain");
    assert!(
        counts[2].load(Ordering::Relaxed) > 0,
        "post-drain submits must get explicit Draining"
    );
    // Accounting cross-check against service metrics: nothing vanished.
    let m = &svc.obs().metrics;
    assert_eq!(
        m.counter("serve.served").get(),
        counts[0].load(Ordering::Relaxed)
    );
    assert_eq!(
        m.counter("serve.rejected_draining").get(),
        counts[2].load(Ordering::Relaxed)
    );
}

/// Hot-swap changes what is served, requests submitted after `publish`
/// returns see the new weights, and rollback restores the old answers
/// bit-for-bit — all without restarting the service.
#[test]
fn hot_swap_and_rollback_under_live_service() {
    let svc = start(ServeConfig::default(), 9);
    let probe = column(0.5);
    let serve_one = |svc: &Arc<Service>| -> ColumnTendency {
        svc.submit("probe", probe.clone()).unwrap().wait().unwrap()
    };

    let before = serve_one(&svc);
    assert_eq!(svc.registry().version(), 1);

    let (t, r) = warm_modules(NLEV, 32, 999);
    let v2 = svc.registry().publish("v2", t, r);
    assert_eq!(v2, 2);
    let after = serve_one(&svc);
    assert_ne!(before.dt, after.dt, "published weights must change results");

    svc.registry().rollback().expect("rollback");
    assert_eq!(svc.registry().version(), 1);
    let restored = serve_one(&svc);
    assert_eq!(
        before.dt, restored.dt,
        "rollback must restore the original version exactly"
    );
    svc.drain();
}

/// Per-tenant token buckets: an exhausted tenant sheds `RateLimited`
/// while other tenants are untouched.
#[test]
fn rate_limited_tenant_is_isolated() {
    let svc = start(ServeConfig::default(), 10);
    // Free tier: 3-request burst, no refill.
    svc.set_tenant_limit("free", 0.0, 3.0);

    let mut admitted = 0;
    let mut limited = 0;
    for n in 0..10 {
        match svc.submit("free", column(n as f64)) {
            Ok(t) => {
                t.wait().unwrap();
                admitted += 1;
            }
            Err(ServeError::RateLimited { tenant }) => {
                assert_eq!(tenant, "free");
                limited += 1;
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(admitted, 3, "burst of 3, then the bucket is dry");
    assert_eq!(limited, 7);
    assert_eq!(svc.obs().metrics.counter("serve.rate_limited").get(), 7);

    // A paying tenant is unaffected.
    let out = svc.submit("paid", column(1.0)).unwrap().wait().unwrap();
    assert!(out.dt.iter().all(|v| v.is_finite()));
    svc.drain();
}
