//! Integration: conservation and accuracy invariants across crates.

use ap3esm::atm::dycore::{Dycore, DycoreConfig};
use ap3esm::atm::state::AtmState;
use ap3esm::grid::mask::MaskGenerator;
use ap3esm::grid::{GeodesicGrid, TripolarGrid};
use ap3esm::ocn::model::{OcnConfig, OcnForcing, OcnModel};
use ap3esm::prelude::*;

#[test]
fn atmosphere_conserves_mass_and_theta_through_long_run() {
    let grid = std::sync::Arc::new(GeodesicGrid::new(3));
    let dycore = Dycore::new(
        std::sync::Arc::clone(&grid),
        DycoreConfig::for_spacing_km(grid.mean_spacing_km()),
    );
    let mut state = AtmState::isothermal(std::sync::Arc::clone(&grid), 5, 287.0);
    let n = grid.ncells();
    for i in 0..n {
        state.ps[i] += 250.0 * ((i * 13 % 97) as f64 / 97.0 - 0.5);
    }
    let mass0 = state.total_mass();
    let theta0 = state.theta_mass();
    for _ in 0..10 {
        dycore.step_model_dynamics(&mut state);
    }
    assert!(((state.total_mass() - mass0) / mass0).abs() < 1e-12);
    assert!(((state.theta_mass() - theta0) / theta0).abs() < 1e-9);
    assert!(state.max_wind() < 80.0, "unstable: {}", state.max_wind());
}

#[test]
fn ocean_volume_and_salt_behave_across_rank_counts() {
    let grid = TripolarGrid::new(48, 30, 6, MaskGenerator::default());
    for (px, py) in [(1, 1), (2, 2)] {
        let config = OcnConfig::for_grid(48, 30, 6, px, py);
        let world = World::new(px * py);
        let totals = world.run(|rank| {
            let mut model = OcnModel::new(&grid, config.clone(), rank.id());
            let forcing = OcnForcing::zeros(model.state.ni, model.state.nj);
            let v0 = model.local_volume_anomaly();
            for _ in 0..10 {
                model.step(rank, &forcing);
            }
            (v0, model.local_volume_anomaly())
        });
        let before: f64 = totals.iter().map(|(a, _)| a).sum();
        let after: f64 = totals.iter().map(|(_, b)| b).sum();
        assert!(
            (after - before).abs() < 1e-6,
            "volume drift {before} -> {after} on {px}x{py}"
        );
    }
}

#[test]
fn mixed_precision_storage_meets_paper_budgets_on_model_fields() {
    use ap3esm::precision::{relative_l2, AccuracyBudget, GroupScaled};
    // A realistic prognostic field: stratified ocean temperature column
    // stack with wide vertical dynamic range.
    let field: Vec<f64> = (0..4096)
        .map(|i| {
            let k = i % 64;
            2.0 + 26.0 * (-0.05 * k as f64).exp() + 0.01 * ((i / 64) as f64).sin()
        })
        .collect();
    let gs = GroupScaled::from_f64(&field, 64);
    let back = gs.to_f64();
    let err = relative_l2(&back, &field);
    assert!(AccuracyBudget::grist_default().accepts_l2(err));
    assert!(gs.storage_bytes() < field.len() * 8 * 6 / 10);
}

#[test]
fn remap_preserves_global_mean_of_smooth_fields() {
    use ap3esm::cpl::mapping::RemapMatrix;
    use ap3esm::grid::sphere::Vec3;
    let grid = GeodesicGrid::new(3);
    let ocn = TripolarGrid::new(60, 40, 4, MaskGenerator::default());
    let ocn_points: Vec<Vec3> = (0..ocn.nlat)
        .flat_map(|j| (0..ocn.nlon).map(move |i| (i, j)).collect::<Vec<_>>())
        .map(|(i, j)| Vec3::from_lat_lon(ocn.lat[j], ocn.lon[i]))
        .collect();
    let m = RemapMatrix::inverse_distance(&grid.cells, &ocn_points, 3);
    let field: Vec<f64> = grid.cells.iter().map(|p| p.z * 2.0 + 3.0).collect();
    let out = m.apply(&field);
    // Compare area-ish means (uniform weights are adequate for this check).
    let mean_in = field.iter().sum::<f64>() / field.len() as f64;
    let mean_out = out.iter().sum::<f64>() / out.len() as f64;
    assert!(
        (mean_in - mean_out).abs() < 0.35,
        "remap mean drift {mean_in} vs {mean_out}"
    );
}
