//! Tier-1 integration tests for the resilience layer (ISSUE PR 2).
//!
//! The acceptance scenario: a coupled run with an injected mid-run rank
//! failure *and* one corrupted checkpoint sub-file must complete via
//! checkpoint rollback, and its final trajectory must be **bit-exact**
//! with a fault-free run of the same configuration.

use ap3esm::comm::{FaultInjector, FaultPlan};
use ap3esm::esm::RecoveryConfig;
use ap3esm::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ap3esm-resil-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bitwise(name: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}[{i}] diverged: {x} vs {y}"
        );
    }
}

/// Kill an ocean rank at ocean coupling 3 and corrupt one byte of the
/// checkpoint the rollback would prefer, forcing a fallback to the older
/// checkpoint. The run must still finish, recovered, and bit-exact.
#[test]
fn rank_kill_and_corrupt_checkpoint_recover_bit_exact() {
    let config = CoupledConfig::test_tiny();

    // Fault-free reference trajectory.
    let plain = CoupledOptions {
        days: 1.0,
        ..Default::default()
    };
    let world = World::new(config.world_size());
    let reference = world.run(|rank| run_coupled(rank, &config, &plain));

    // Faulted run: checkpoints at every ocean coupling; rank 2 (an ocean
    // rank) loses its state at coupling 3, and checkpoint 2 — the one the
    // rollback tries first — has a flipped payload byte in `atm_theta`.
    let plan = FaultPlan::parse(
        "kill rank=2 step=3\ncorrupt ckpt=2 field=atm_theta subfile=1 byte=100",
    )
    .unwrap();
    let ckpt_dir = tmpdir("recover");
    // A stale committed checkpoint from a "previous run" sharing the
    // directory: the driver must clear it at startup, or the rollback
    // would restore foreign state (its id would shadow this run's).
    let stale = ckpt_dir.join("ckpt_00000099");
    std::fs::create_dir_all(&stale).unwrap();
    std::fs::write(stale.join("COMMIT"), "99\n").unwrap();
    let opts = CoupledOptions {
        days: 1.0,
        report_name: Some("resilience-it".into()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            keep_checkpoints: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let faulted = world.run(|rank| run_coupled(rank, &config, &opts));

    for (r, stats) in faulted.iter().enumerate() {
        assert!(
            stats.failure.is_none(),
            "rank {r} reported failure: {:?}",
            stats.failure
        );
        assert_eq!(stats.recoveries, 1, "rank {r}: expected exactly one rollback");
    }

    let (r0, f0) = (&reference[0], &faulted[0]);
    assert_bitwise("sst_series", &r0.sst_series, &f0.sst_series);
    assert_bitwise("ke_series", &r0.ke_series, &f0.ke_series);
    assert_bitwise("theta_series", &r0.theta_series, &f0.theta_series);
    assert_bitwise("ice_series", &r0.ice_series, &f0.ice_series);
    assert_eq!(r0.simulated_seconds, f0.simulated_seconds);

    // The fault stream must record the kill, the applied corruption, and
    // the rejected-restore of the damaged checkpoint.
    let events = f0.fault_events.join("\n");
    assert!(events.contains("killed"), "no kill event in: {events}");
    assert!(
        events.contains("corrupted checkpoint 2"),
        "no corruption event in: {events}"
    );
    assert!(
        events.contains("checkpoint 2 rejected at restore"),
        "no rejected-restore event in: {events}"
    );

    // The obs run report surfaces the recovery in machine-readable form.
    let report = f0.report_json.as_deref().expect("report requested");
    assert!(report.contains("\"recoveries\""), "report lacks recoveries");
    assert!(report.contains("fault_events"), "report lacks fault_events");
    assert!(report.contains("killed"), "report lacks the kill event");

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

/// With the recovery budget at zero, the same rank kill must end in a
/// clean structured failure on every rank — no panic, no hang.
#[test]
fn exhausted_recovery_budget_is_a_clean_structured_failure() {
    let config = CoupledConfig::test_tiny();
    let plan = FaultPlan::parse("kill rank=0 step=2").unwrap();
    let ckpt_dir = tmpdir("budget");
    let opts = CoupledOptions {
        days: 1.0,
        checkpoint_dir: Some(ckpt_dir.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            max_recoveries: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));

    for (r, stats) in all.iter().enumerate() {
        let failure = stats
            .failure
            .as_deref()
            .unwrap_or_else(|| panic!("rank {r} should carry the structured failure"));
        assert!(
            failure.contains("fatal state at ocn coupling 2"),
            "rank {r}: unexpected failure text: {failure}"
        );
        // The run stopped early, at the failed coupling.
        assert!(stats.simulated_seconds < 86_400.0, "rank {r} ran to completion");
    }

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

/// The resilience path disabled (no checkpoint dir, no injector) must not
/// perturb the trajectory: this is the zero-cost-when-disabled guarantee.
#[test]
fn checkpointing_alone_does_not_perturb_the_trajectory() {
    let config = CoupledConfig::test_tiny();
    let plain = CoupledOptions {
        days: 0.5,
        ..Default::default()
    };
    let world = World::new(config.world_size());
    let reference = world.run(|rank| run_coupled(rank, &config, &plain));

    let ckpt_dir = tmpdir("noop");
    let opts = CoupledOptions {
        days: 0.5,
        checkpoint_dir: Some(ckpt_dir.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = World::new(config.world_size());
    let checkpointed = world.run(|rank| run_coupled(rank, &config, &opts));

    assert_bitwise(
        "sst_series",
        &reference[0].sst_series,
        &checkpointed[0].sst_series,
    );
    assert_bitwise(
        "ke_series",
        &reference[0].ke_series,
        &checkpointed[0].ke_series,
    );
    assert_eq!(checkpointed[0].recoveries, 0);
    assert!(checkpointed[0].failure.is_none());
    assert!(checkpointed[0].fault_events.is_empty());

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
