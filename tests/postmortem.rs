//! Tier-1 postmortem acceptance test (ISSUE PR 8).
//!
//! The flight-recorder contract, end to end over the real coupled driver:
//! a chaos scenario that kills rank 1 mid-run must leave behind a
//! self-contained diagnostics bundle, and the offline analyzer — reading
//! nothing but that bundle — must name rank 1 as the first-stalled rank
//! and list the sends its silence orphaned.

use ap3esm::comm::{FaultInjector, FaultPlan};
use ap3esm::esm::RecoveryConfig;
use ap3esm::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Generous enough that legitimate compute gaps in debug builds never
/// masquerade as deadlocks, small enough that detection stays test-sized.
const RECV_TIMEOUT: Duration = Duration::from_millis(800);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ap3esm-pm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Rank 1 (an ocean rank) is killed mid-run before the first checkpoint
/// commit: its last message to root is silently dropped on the wire and
/// the rank then dies permanently at the step-1 boundary, so the run ends
/// in a clean structured `RecoveryFailure`. Root must dump a diagnostics
/// bundle on the way out, and `analyze` must reconstruct the whole story
/// from the bundle alone — first-stalled rank, the send that never met
/// its receive, and the timeouts that detected the silence.
#[test]
fn killed_rank_is_blamed_by_the_bundle_analyzer() {
    let mut config = CoupledConfig::test_tiny();
    config.ocn_px = 3;
    config.ocn_py = 1;
    assert_eq!(config.world_size(), 4);

    let plan = FaultPlan::parse("drop src=1 dst=0 tag=* nth=1\ndie rank=1 step=1\n")
        .expect("plan parses");
    plan.validate(config.world_size()).expect("plan validates");

    let ckpt = tmpdir("kill");
    let bundle_name = format!("pm-kill-{}", std::process::id());
    let opts = CoupledOptions {
        days: 1.0,
        checkpoint_dir: Some(ckpt.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            ..Default::default()
        },
        bundle_name: Some(bundle_name.clone()),
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_recv_timeout(RECV_TIMEOUT)
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    // The scenario ends in a structured failure (no checkpoint to shrink
    // onto), never a hang — and that failure must produce a bundle.
    assert!(
        root.failure.is_some(),
        "dying before the first checkpoint must be a structured failure"
    );
    assert!(all[1].lost, "rank 1 must report itself permanently lost");
    let bundle = root
        .bundle_path
        .as_ref()
        .expect("driver must dump a diagnostics bundle on recovery failure");
    assert!(bundle.ends_with(format!("bundle-{bundle_name}")));

    // The bundle is self-contained: journal, manifest, alerts, build info
    // inside the manifest, and the fault plan that caused it all.
    for f in ["manifest.json", "journal.json", "alerts.json", "faultplan.txt"] {
        assert!(bundle.join(f).is_file(), "bundle is missing {f}");
    }
    let plan_txt = std::fs::read_to_string(bundle.join("faultplan.txt")).unwrap();
    assert!(
        plan_txt.contains("die rank=1 step=1") && plan_txt.contains("drop src=1 dst=0"),
        "fault plan not preserved: {plan_txt}"
    );

    // The analyzer, offline, from the bundle alone.
    let pm = ap3esm::obs::analyze(bundle).expect("bundle analyzes");
    assert_eq!(pm.n_ranks, 4);
    assert!(pm.total_events > 0, "journal must not be empty");
    assert_eq!(
        pm.blamed,
        Some(1),
        "the dead rank must be named first-stalled; activity: {:#?}",
        pm.ranks
    );
    assert!(
        pm.silence_gap_us > 0,
        "the world kept running after rank 1 went silent"
    );

    // Its silence orphaned traffic: sends into (or out of) rank 1 with no
    // matching receive, listed before any bystander pairs.
    assert!(
        !pm.unpaired_sends.is_empty(),
        "killing a rank mid-coupling must orphan at least one send"
    );
    assert!(
        pm.unpaired_sends.iter().any(|u| u.dst == 1 || u.src == 1),
        "unpaired sends must involve the blamed rank: {:?}",
        pm.unpaired_sends
    );
    let first = &pm.unpaired_sends[0];
    assert!(
        first.src == 1 || first.dst == 1,
        "blamed-rank channels must sort first: {first:?}"
    );

    // The survivors' receives from rank 1 timed out — the detection edge.
    assert!(
        pm.timeouts.iter().any(|t| t.peer == 1),
        "expected a recv-timeout blaming rank 1: {:?}",
        pm.timeouts
    );

    // The human rendering carries the verdict, and the JSON round-trips
    // the blame for `scripts/diagnose.sh --expect-blame` in CI.
    let table = pm.render_table();
    assert!(table.contains("blamed rank: 1"), "table:\n{table}");
    let json = pm.to_json();
    assert_eq!(json.get("blamed_rank").and_then(|j| j.as_u64()), Some(1));
    assert_eq!(
        json.get("schema").and_then(|j| j.as_str()),
        Some("ap3esm-postmortem/1")
    );

    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(bundle);
}
