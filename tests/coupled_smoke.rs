//! Integration: the full coupled AP3ESM exercising every crate at once.

use ap3esm::prelude::*;

#[test]
fn coupled_model_two_days_all_components_active() {
    let config = CoupledConfig::test_tiny();
    let world = World::new(config.world_size());
    let opts = CoupledOptions {
        days: 2.0,
        ..Default::default()
    };
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    // Simulated exactly two days at the configured cadence.
    assert_eq!(root.simulated_seconds, 2.0 * 86_400.0);
    assert_eq!(root.theta_series.len(), 16); // 8 atm couplings/day
    assert_eq!(root.sst_series.len(), 8); // 4 ocn couplings/day
    assert_eq!(root.ice_series.len(), 16);

    // All components did work.
    let section = |name: &str| {
        root.per_section_seconds
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    };
    assert!(section("atm_run") > 0.0, "atmosphere never ran");
    assert!(section("ice_run") > 0.0, "ice never ran");
    assert!(section("cpl_rearrange") > 0.0, "coupler never ran");
    let ocn_secs: f64 = all[1..]
        .iter()
        .map(|s| {
            s.per_section_seconds
                .iter()
                .find(|(n, _)| n == "ocn_run")
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        })
        .sum();
    assert!(ocn_secs > 0.0, "ocean never ran");

    // Physics stayed physical over two days.
    for sst in &root.sst_series {
        assert!((-5.0..40.0).contains(sst), "mean SST {sst}");
    }
    for th in &root.theta_series {
        assert!(th.is_finite() && *th > 200.0 && *th < 500.0);
    }
    // The ocean gained kinetic energy from wind forcing.
    assert!(*root.ke_series.last().unwrap() > 0.0);
}

#[test]
fn coupled_run_is_deterministic() {
    let config = CoupledConfig::test_tiny();
    let opts = CoupledOptions {
        days: 0.5,
        ..Default::default()
    };
    let run = || {
        let world = World::new(config.world_size());
        world.run(|rank| run_coupled(rank, &config, &opts))[0]
            .sst_series
            .clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "coupled run not reproducible");
    }
}

#[test]
fn different_mask_seeds_give_different_climates() {
    let opts = CoupledOptions {
        days: 0.5,
        ..Default::default()
    };
    let run = |seed: u64| {
        let mut config = CoupledConfig::test_tiny();
        config.mask_seed = seed;
        let world = World::new(config.world_size());
        world.run(|rank| run_coupled(rank, &config, &opts))[0]
            .sst_series
            .clone()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "continents should shape the climate");
}
