//! The scenario engine's contract: line-numbered catalog diagnostics,
//! Display round-trip, Campaign grammar unification, semantic validation,
//! and — the expensive ones — a bitwise full-ESM equivalence between the
//! campaign runner and a direct `run_coupled` call, plus byte-identical
//! leaderboards across two same-seed campaign executions.

use ap3esm::comm::faultplan::{scenario_seed, Campaign};
use ap3esm::comm::World;
use ap3esm::esm::config::CoupledConfig;
use ap3esm::esm::coupled::{run_coupled, CoupledOptions};
use ap3esm::scenario::dsl::{Catalog, GridPreset, ModelKind};
use ap3esm::scenario::runner::{run_campaign, CampaignOptions, Verdict};

fn parse_err(text: &str) -> (usize, String) {
    let e = Catalog::parse(text).expect_err("must not parse");
    (e.line, e.message)
}

// ---------------------------------------------------------------------------
// Grammar: line-numbered diagnostics
// ---------------------------------------------------------------------------

#[test]
fn unknown_key_names_its_line() {
    let (line, msg) = parse_err("name x\nseed 1\n\nscenario a\nmodle full\n");
    assert_eq!(line, 5);
    assert!(msg.contains("modle"), "{msg}");
}

#[test]
fn unknown_key_before_first_scenario_names_its_line() {
    let (line, msg) = parse_err("name x\nmembers 3\n");
    assert_eq!(line, 2);
    assert!(msg.contains("not valid before the first scenario"), "{msg}");
}

#[test]
fn duplicate_key_cites_both_lines() {
    let (line, msg) = parse_err("scenario a\ndays 1\nmodel full\ndays 2\n");
    assert_eq!(line, 4);
    assert!(msg.contains("duplicate key \"days\""), "{msg}");
    assert!(msg.contains("line 2"), "{msg}");
}

#[test]
fn duplicate_scenario_name_reported_at_second_header() {
    let (line, msg) = parse_err("scenario a\ndays 1\n\nscenario b\n\nscenario a\n");
    assert_eq!(line, 6);
    assert!(msg.contains("duplicate scenario name"), "{msg}");
}

#[test]
fn out_of_range_values_name_line_and_bound() {
    for (text, want_line, needle) in [
        ("scenario a\ndays 400\n", 2, "days must be in (0, 365]"),
        ("scenario a\nmembers 65\n", 2, "members must be 1..=64"),
        ("scenario a\ncycles 0\n", 2, "cycles must be 1..=32"),
        ("scenario a\nperturb amp=6\n", 2, "perturb amp must be in (0, 5]"),
        ("scenario a\nenso amp=0\n", 2, "enso amp must be nonzero"),
        ("scenario a\nmesh 0x2\n", 2, "mesh must be 1x1..=4096x4096"),
        ("scenario a\nvortex lat=91 lon=0\n", 2, "|lat| <= 90"),
        ("scenario a\ngrid huge\n", 2, "grid must be tiny, small, or medium"),
    ] {
        let (line, msg) = parse_err(text);
        assert_eq!(line, want_line, "{text:?}: {msg}");
        assert!(msg.contains(needle), "{text:?}: {msg}");
    }
}

#[test]
fn fault_verb_errors_carry_catalog_line_numbers() {
    // Line 5 is the malformed fault verb; the error must cite line 5 of
    // the *catalog*, not of some extracted fault-plan text.
    let text = "name x\nseed 3\n\nscenario a\nkill rank=oops step=1\n";
    let (line, msg) = parse_err(text);
    assert_eq!(line, 5);
    assert!(msg.to_lowercase().contains("rank"), "{msg}");
}

#[test]
fn misaligned_cycles_rejected_at_header() {
    // 0.25 days x 4 ocn couplings = 1 coupling total; 2 cycles cannot
    // each hold a whole nonzero coupling count.
    let text = "scenario a\ndays 0.25\ncycles 2\n";
    let (line, msg) = parse_err(text);
    assert_eq!(line, 1);
    assert!(msg.contains("whole, nonzero number of couplings"), "{msg}");
}

// ---------------------------------------------------------------------------
// Round-trip and defaults
// ---------------------------------------------------------------------------

#[test]
fn display_round_trips() {
    let text = "\
name rt
seed 99
grid small

scenario a expect=healthy
model full
days 0.5
mesh 3x1
layout concurrent
strategy alltoall
members 2
perturb amp=0.01
vortex lat=18 lon=130 vmax=40

scenario b expect=degraded
model full
grid tiny
days 1
die rank=2 step=3

scenario c
model ocean-only
grid tiny
days 2
enso amp=2.5
";
    let c1 = Catalog::parse(text).expect("parse");
    let printed = c1.to_string();
    let c2 = Catalog::parse(&printed).expect("reparse own Display");
    assert_eq!(c1, c2, "Display must round-trip:\n{printed}");
    // And a third generation is byte-stable.
    assert_eq!(printed, c2.to_string());
}

#[test]
fn catalog_defaults_fill_unset_scenario_keys() {
    let text = "\
grid small
days 2
couplings atm=24 ocn=12 ice=24

scenario uses-defaults
model ocean-only

scenario overrides
model full
grid tiny
days 1
couplings atm=8 ocn=4 ice=8
";
    let c = Catalog::parse(text).expect("parse");
    assert_eq!(c.scenarios[0].grid, GridPreset::Small);
    assert_eq!(c.scenarios[0].days, 2.0);
    assert_eq!(c.scenarios[0].couplings, (24, 12, 24));
    assert_eq!(c.scenarios[1].grid, GridPreset::Tiny);
    assert_eq!(c.scenarios[1].days, 1.0);
    assert_eq!(c.scenarios[1].couplings, (8, 4, 8));
}

// ---------------------------------------------------------------------------
// Campaign grammar unification
// ---------------------------------------------------------------------------

#[test]
fn campaign_files_parse_as_catalogs_with_matching_seeds_and_plans() {
    // A chaos campaign file in the old grammar: seed line, headers with
    // expect=, fault verbs. The catalog parser must accept it verbatim
    // and derive the same per-scenario seeds Campaign::parse does.
    let text = "\
seed 4242
scenario baseline expect=healthy
scenario kill-one expect=healthy
kill rank=2 step=3
scenario lose-one expect=degraded
die rank=1 step=2
";
    let campaign = Campaign::parse(text).expect("campaign grammar");
    let catalog = Catalog::parse(text).expect("catalog superset");
    assert_eq!(catalog.seed, 4242);
    assert_eq!(campaign.scenarios.len(), catalog.scenarios.len());
    for (i, (cam, cat)) in campaign
        .scenarios
        .iter()
        .zip(&catalog.scenarios)
        .enumerate()
    {
        assert_eq!(cam.name, cat.name, "scenario {i}");
        assert_eq!(cam.expect, cat.expect, "scenario {i}");
        assert_eq!(cam.plan.seed, cat.seed, "scenario {i} seed");
        assert_eq!(cat.plan.seed, cat.seed, "scenario {i} plan seed");
        assert_eq!(cam.plan.events, cat.plan.events, "scenario {i} events");
        assert_eq!(cat.seed, scenario_seed(4242, i), "scenario {i} derivation");
    }
}

#[test]
fn shipped_catalogs_parse_and_validate() {
    for path in ["scenarios/demo.scn", "scenarios/chaos.scn", "scenarios/mini.scn"] {
        let text = std::fs::read_to_string(path).expect(path);
        let c = Catalog::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        c.validate().unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(!c.scenarios.is_empty(), "{path} is empty");
    }
    // The demo catalog is the acceptance campaign: at least 6 scenarios
    // spanning full, ocean-only, atm-only and a perturbation ensemble.
    let demo = Catalog::parse(&std::fs::read_to_string("scenarios/demo.scn").unwrap()).unwrap();
    assert!(demo.scenarios.len() >= 6);
    for kind in [ModelKind::Full, ModelKind::OceanOnly, ModelKind::AtmOnly] {
        assert!(
            demo.scenarios.iter().any(|s| s.model == kind),
            "demo lacks {kind:?}"
        );
    }
    assert!(demo
        .scenarios
        .iter()
        .any(|s| s.members > 1 && s.perturb.is_some()));
}

// ---------------------------------------------------------------------------
// Semantic validation
// ---------------------------------------------------------------------------

#[test]
fn validate_names_scenario_and_line() {
    for (text, needle) in [
        (
            "scenario a\nmodel ocean-only\nmesh 2x2\n",
            "mesh is only meaningful for model full",
        ),
        (
            "scenario a\nmodel atm-only\ncycles 2\ndays 1\n",
            "cycles",
        ),
        (
            "scenario a\nmodel ocean-only\nvortex lat=10 lon=20\n",
            "vortex seeds an atmosphere",
        ),
        (
            "scenario a\nmodel ice-only\nperturb amp=0.1\n",
            "prognostic temperature",
        ),
        (
            "scenario a\nmembers 3\n",
            "without perturb",
        ),
        (
            "scenario a expect=degraded\nmodel full\n",
            "needs a fault plan",
        ),
        (
            "scenario a\nmodel ocean-only\nkill rank=0 step=1\n",
            "fault plans drive the coupled world",
        ),
    ] {
        let c = Catalog::parse(text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
        let e = c.validate().expect_err(text);
        assert!(e.message.contains("scenario \"a\""), "{text:?}: {e}");
        assert!(e.message.contains(needle), "{text:?}: {e}");
        assert!(e.line >= 1, "{text:?}: {e}");
    }
}

#[test]
fn validate_rejects_oversized_fault_rank_for_the_composed_world() {
    // test-tiny full world is 5 ranks (mesh 2x2): rank 7 cannot exist.
    let text = "scenario a expect=degraded\nmodel full\ndie rank=7 step=2\n";
    let c = Catalog::parse(text).expect("parse");
    let e = c.validate().expect_err("rank out of world");
    assert_eq!(e.line, 3, "{e}");
    assert!(e.message.contains("scenario \"a\""), "{e}");
}

// ---------------------------------------------------------------------------
// Runner equivalence and determinism
// ---------------------------------------------------------------------------

fn quiet_opts(tag: &str) -> CampaignOptions {
    CampaignOptions {
        out_dir: std::env::temp_dir().join(format!("ap3esm-scn-test-{tag}-{}", std::process::id())),
        ..CampaignOptions::default()
    }
}

/// The campaign runner's full-ESM path must be *bitwise* the plain
/// `run_coupled` call it wraps: same series, same conservation story.
#[test]
fn full_esm_member_is_bitwise_run_coupled() {
    let text = "\
name equiv
seed 11

scenario coupled-baseline
model full
grid tiny
days 0.25
";
    let catalog = Catalog::parse(text).expect("parse");
    catalog.validate().expect("validate");
    let opts = quiet_opts("equiv");
    let report = run_campaign(&catalog, &opts);
    assert_eq!(report.violations, 0, "{}", report.table);
    let member = &report.outcomes[0].members[0];
    assert_eq!(member.verdict, Verdict::Healthy, "{}", member.detail);

    // The direct run the scenario claims to compose.
    let config = CoupledConfig::test_tiny();
    let copts = CoupledOptions {
        days: 0.25,
        ..CoupledOptions::default()
    };
    let world = World::new(config.world_size());
    let all = world.run(|rank| run_coupled(rank, &config, &copts));
    let root = &all[0];
    assert_eq!(member.simulated_seconds, root.simulated_seconds);

    let by_name = |name: &str| -> &Vec<(f64, f64)> {
        &member
            .series
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("series {name} missing"))
            .1
    };
    for (name, direct) in [
        ("theta", &root.theta_series),
        ("sst", &root.sst_series),
        ("ke", &root.ke_series),
        ("ice", &root.ice_series),
    ] {
        let runner = by_name(name);
        assert_eq!(runner.len(), direct.len(), "{name} length");
        for (i, (&(_, v), &d)) in runner.iter().zip(direct).enumerate() {
            assert_eq!(
                v.to_bits(),
                d.to_bits(),
                "{name}[{i}]: runner {v} vs direct {d}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}

/// Two same-seed executions must produce byte-identical leaderboards and
/// series snapshots (the ISSUE's determinism acceptance).
#[test]
fn same_seed_campaigns_are_byte_identical() {
    let text = "\
name det
seed 5

scenario mixed-fan
model ocean-only
grid tiny
days 0.5
members 2
perturb amp=0.02

scenario ice-run
model ice-only
grid tiny
days 3
";
    let catalog = Catalog::parse(text).expect("parse");
    catalog.validate().expect("validate");
    let (a, b) = (quiet_opts("det-a"), quiet_opts("det-b"));
    let ra = run_campaign(&catalog, &a);
    let rb = run_campaign(&catalog, &b);
    assert_eq!(ra.violations, 0, "{}", ra.table);

    let la = std::fs::read(&ra.leaderboard_path).expect("leaderboard a");
    let lb = std::fs::read(&rb.leaderboard_path).expect("leaderboard b");
    assert_eq!(la, lb, "leaderboard bytes differ across same-seed runs");
    for o in &ra.outcomes {
        if let Some(f) = &o.series_file {
            let sa = std::fs::read(a.out_dir.join(f)).expect("series a");
            let sb = std::fs::read(b.out_dir.join(f)).expect("series b");
            assert_eq!(sa, sb, "series {f} differs across same-seed runs");
        }
    }
    // Ensemble members actually decorrelate: nonzero spread.
    let fan = ra.outcomes.iter().find(|o| o.name == "mixed-fan").unwrap();
    assert!(fan.spread > 0.0, "perturbed members were identical");
    let _ = std::fs::remove_dir_all(&a.out_dir);
    let _ = std::fs::remove_dir_all(&b.out_dir);
}

/// A cycled reforecast must land exactly on the scenario's clock and keep
/// the stitched series contiguous.
#[test]
fn cycled_reforecast_finishes_on_the_clock() {
    let text = "\
name cyc
seed 3

scenario reforecast
model full
grid tiny
days 0.5
cycles 2
";
    let catalog = Catalog::parse(text).expect("parse");
    catalog.validate().expect("validate");
    let opts = quiet_opts("cyc");
    let report = run_campaign(&catalog, &opts);
    assert_eq!(report.violations, 0, "{}", report.table);
    let m = &report.outcomes[0].members[0];
    assert_eq!(m.simulated_seconds, 0.5 * 86_400.0);
    let theta = &m.series.iter().find(|(n, _)| n == "theta").unwrap().1;
    // 0.5 days x 8 atm couplings/day = 4 entries, strictly increasing t.
    assert_eq!(theta.len(), 4);
    for w in theta.windows(2) {
        assert!(w[0].0 < w[1].0, "series time must be strictly increasing");
    }
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}
