//! Tier-1 integration tests for the per-rank trace timelines (ISSUE PR 3).
//!
//! A 2-rank coupled run with tracing on and a fault injected must produce:
//! a run report carrying *both* ranks' span trees, a schema-valid Chrome
//! Trace Event file with `X` events from both pids plus at least one
//! resilience instant event, and a collapsed-stack flamegraph with frames
//! from both ranks.

use ap3esm::comm::{FaultInjector, FaultPlan};
use ap3esm::esm::RecoveryConfig;
use ap3esm::obs::json::Json;
use ap3esm::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ap3esm-trace-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn traced_faulted_run_emits_both_ranks_and_resilience_markers() {
    // Two ranks: rank 0 = coupler+ATM+ICE+LND, rank 1 = the single ocean
    // domain. Kill the ocean rank mid-run so the rollback path fires.
    let mut config = CoupledConfig::test_tiny();
    config.ocn_px = 1;
    config.ocn_py = 1;
    assert_eq!(config.world_size(), 2);

    let plan = FaultPlan::parse("kill rank=1 step=2").unwrap();
    let ckpt_dir = tmpdir("faulted");
    let name = format!("trace-it-{}", std::process::id());
    let opts = CoupledOptions {
        days: 2.0,
        report_name: Some(name.clone()),
        trace: true,
        checkpoint_dir: Some(ckpt_dir.clone()),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            keep_checkpoints: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];
    assert!(root.failure.is_none(), "run failed: {:?}", root.failure);
    assert_eq!(root.recoveries, 1, "expected exactly one rollback");

    // ---- The run report serialises every rank's bounded span tree. ------
    let report =
        Json::parse(root.report_json.as_deref().expect("report requested")).expect("report JSON");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("ap3esm-obs/5")
    );
    let trees = report
        .get("rank_trees")
        .and_then(Json::as_arr)
        .expect("rank_trees array");
    assert_eq!(trees.len(), 2, "one tree per rank");
    for (want_rank, tree) in trees.iter().enumerate() {
        assert_eq!(
            tree.get("rank").and_then(Json::as_u64),
            Some(want_rank as u64)
        );
        let spans = tree.get("spans").and_then(Json::as_arr).expect("spans");
        assert!(!spans.is_empty(), "rank {want_rank}'s tree is empty");
    }
    // The ocean rank's tree holds ocean work rank 0 never ran.
    let rank1_paths: Vec<&str> = trees[1]
        .get("spans")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|s| s.get("path").and_then(Json::as_str))
        .collect();
    assert!(
        rank1_paths.iter().any(|p| p.starts_with("ocn_run")),
        "no ocn_run in rank 1's tree: {rank1_paths:?}"
    );

    // ---- The chrome trace is schema-valid and covers both ranks. --------
    let trace_path = root.trace_path.as_ref().expect("trace requested");
    let trace =
        Json::parse(&std::fs::read_to_string(trace_path).unwrap()).expect("trace JSON parses");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut x_pids = std::collections::BTreeSet::new();
    let mut instants = Vec::new();
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event has ph");
        let pid = e.get("pid").and_then(Json::as_u64).expect("event has pid");
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = e.get("ts").and_then(Json::as_u64).expect("event has ts");
        let tid = e.get("tid").and_then(Json::as_u64).expect("event has tid");
        match ph {
            "X" => {
                x_pids.insert(pid);
                // Timestamps are monotone non-decreasing per (pid, tid)
                // track — Perfetto rejects out-of-order complete events.
                let key = (pid, tid);
                if let Some(prev) = last_ts.get(&key) {
                    assert!(
                        ts >= *prev,
                        "ts regression on pid {pid} tid {tid}: {prev} -> {ts}"
                    );
                }
                last_ts.insert(key, ts);
            }
            "i" => instants.push(
                e.get("name")
                    .and_then(Json::as_str)
                    .expect("instant has name")
                    .to_string(),
            ),
            "s" | "f" => {
                assert!(e.get("id").is_some(), "flow event lacks id");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        x_pids.contains(&0) && x_pids.contains(&1),
        "span events must come from both ranks, got pids {x_pids:?}"
    );
    let resilience_markers = ["fault.", "rollback", "checkpoint.", "health."];
    assert!(
        instants
            .iter()
            .any(|n| resilience_markers.iter().any(|m| n.starts_with(m))),
        "no resilience instant event among {instants:?}"
    );

    // ---- The flamegraph has frames from both ranks. ---------------------
    let folded_path = root.folded_path.as_ref().expect("folded requested");
    let folded = std::fs::read_to_string(folded_path).unwrap();
    assert!(folded.lines().any(|l| l.starts_with("rank0;")));
    assert!(folded.lines().any(|l| l.starts_with("rank1;")));
    for line in folded.lines() {
        let (_stack, weight) = line.rsplit_once(' ').expect("folded line has a weight");
        weight.parse::<u64>().expect("weight is an integer");
    }

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

/// Tracing off (the default) must leave the trace machinery fully idle:
/// no trace files, no comm-event recording, no trace paths in the stats.
#[test]
fn untraced_run_emits_no_trace_artifacts() {
    let mut config = CoupledConfig::test_tiny();
    config.ocn_px = 1;
    config.ocn_py = 1;
    let name = format!("untraced-it-{}", std::process::id());
    let opts = CoupledOptions {
        days: 0.5,
        report_name: Some(name),
        ..Default::default()
    };
    let world = World::new(config.world_size());
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];
    assert!(root.trace_path.is_none());
    assert!(root.folded_path.is_none());
    // The report still carries every rank's tree — trees ride with the
    // report, not with tracing.
    let report = Json::parse(root.report_json.as_deref().unwrap()).unwrap();
    let trees = report.get("rank_trees").and_then(Json::as_arr).unwrap();
    assert_eq!(trees.len(), 2);
}
