//! Tier-1 integration tests for the critical-path analyzer (ISSUE PR 10).
//!
//! Two layers: a real 2-rank coupled run with an injected message delay
//! (the analyzer must classify the resulting wait as *late-sender* and
//! blame the delayed rank, the on-path fractions must sum to 1, and the
//! precomputed what-if must project a positive gain), and a scripted
//! low-level run asserting the chrome-trace flow arrows and the
//! flight-recorder postmortem agree event-for-event with the shared
//! `msgflow` FIFO pairing.

use ap3esm::comm::{FaultInjector, FaultPlan, World};
use ap3esm::cpl::rearrange::Rearranger;
use ap3esm::obs::critpath::WaitClass;
use ap3esm::obs::json::Json;
use ap3esm::obs::trace::ChromeTrace;
use ap3esm::obs::{flightrec, msgflow};
use ap3esm::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A delayed point-to-point message must surface as a late-sender wait
/// blamed on the delayed rank, ride into the run report's `critpath`
/// object, and leave the on-path accounting exact.
#[test]
fn delay_fault_classifies_late_sender_blamed_on_delayed_rank() {
    // Two ranks: rank 0 = coupler+ATM+ICE+LND, rank 1 = the single ocean
    // domain. 2 days at test_tiny cadence = 8 ocean couplings.
    let mut config = CoupledConfig::test_tiny();
    config.ocn_px = 1;
    config.ocn_py = 1;
    assert_eq!(config.world_size(), 2);

    // Stall rank 1's cpl_gather send (ocean fields back to the coupler) at
    // couplings 3 and 4. The delay lands on the *point-to-point* wire tag —
    // a collective tag would classify as `Collective` instead — and the
    // injector sleeps the sender before posting, so the send timestamp is
    // late and the receiver's blocking window is the sender's fault.
    let [_, gather_p2p] = Rearranger::wire_tags_for(22);
    let plan = FaultPlan::parse(&format!(
        "delay src=1 dst=0 tag={gather_p2p} nth=3 ms=800\n\
         delay src=1 dst=0 tag={gather_p2p} nth=4 ms=800\n"
    ))
    .unwrap();

    let name = format!("critpath-it-{}", std::process::id());
    let opts = CoupledOptions {
        days: 2.0,
        report_name: Some(name),
        trace: true,
        ..Default::default()
    };
    let world = World::new(config.world_size())
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];
    assert!(root.failure.is_none(), "run failed: {:?}", root.failure);
    assert!(
        root.fault_events.iter().any(|e| e.contains("Delay")),
        "injected delays not recorded: {:?}",
        root.fault_events
    );

    let analysis = root.critpath.as_ref().expect("traced run must analyze");
    assert_eq!(analysis.n_ranks, 2);

    // ---- Every on-path microsecond is exactly one of compute/comm/wait. --
    let sum = analysis.compute_frac() + analysis.comm_frac() + analysis.wait_frac();
    assert!(
        (sum - 1.0).abs() <= 0.01,
        "fractions sum to {sum}, want 1.0 +/- 1%"
    );

    // ---- The injected delay is a late-sender wait blamed on rank 1. ------
    let injected = analysis
        .waits
        .iter()
        .find(|w| w.class == WaitClass::LateSender && w.rank == 0 && w.dur_us >= 600_000)
        .unwrap_or_else(|| panic!("no >=600ms late-sender wait on rank 0: {:?}", analysis.waits));
    assert_eq!(injected.peer, 1);
    assert_eq!(injected.blamed, 1, "late-sender blame goes to the sender");
    assert_eq!(injected.tag, gather_p2p);

    // Attribution, not just classification: the delayed rank owns the
    // late-sender blame column (>= the two 800 ms injections), and owns
    // more of it than the undelayed rank.
    let late_blame = |rank: usize| -> u64 {
        analysis
            .blame
            .iter()
            .filter(|b| b.class == WaitClass::LateSender && b.rank == rank)
            .map(|b| b.total_us)
            .sum()
    };
    assert!(
        late_blame(1) >= 1_200_000,
        "rank 1 late-sender blame {}us < injected 1.6s",
        late_blame(1)
    );
    assert!(late_blame(1) > late_blame(0));

    // ---- The precomputed what-if projects a real gain. -------------------
    let what_if = analysis.what_if_half_top.as_ref().expect("what-if");
    assert_eq!(what_if.section, analysis.top_section);
    assert!(
        what_if.gain_pct > 0.0,
        "halving {} projects {:+.2}%",
        what_if.section,
        what_if.gain_pct
    );

    // ---- The analysis rides inside the run report. -----------------------
    let report = Json::parse(root.report_json.as_deref().expect("report")).unwrap();
    let cp = report.get("critpath").expect("report critpath object");
    assert_eq!(
        cp.get("schema").and_then(Json::as_str),
        Some("ap3esm-critpath/1")
    );
    let frac = |k: &str| {
        cp.get("fractions")
            .and_then(|f| f.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    let json_sum = frac("compute") + frac("comm") + frac("wait");
    assert!((json_sum - 1.0).abs() <= 0.01, "report fractions: {json_sum}");

    // ---- Satellite: every coupled section reaches the stats, including
    //      the ocean's (previously dropped on the coupler rank). -----------
    for want in ["atm_run", "ocn_run", "lnd_run", "ice_run"] {
        let s = root
            .per_section_seconds
            .iter()
            .find(|(n, _)| n == want)
            .unwrap_or_else(|| panic!("{want} missing from {:?}", root.per_section_seconds));
        assert!(s.1 > 0.0, "{want} has zero wall time");
    }
}

/// The chrome-trace flow arrows and the flight-recorder postmortem both
/// derive from [`msgflow::pair_fifo`]; on one recorded run they must agree
/// with it (and hence with each other) event-for-event.
#[test]
fn exporters_share_one_fifo_pairing() {
    let world = World::new(2);
    world.comm_events().set_enabled(true);
    world.run(|rank| {
        if rank.id() == 0 {
            // Two paired sends on one channel, one cross recv, and one
            // deliberately unpaired send (tag 11 is never received).
            rank.send(1, 7, vec![1u8; 64]);
            rank.send(1, 7, vec![2u8; 128]);
            let _ = rank.recv::<u8>(1, 9).unwrap();
            rank.send(1, 11, vec![3u8; 32]);
        } else {
            let _ = rank.recv::<u8>(0, 7).unwrap();
            let _ = rank.recv::<u8>(0, 7).unwrap();
            rank.send(0, 9, vec![4u8; 256]);
        }
        rank.barrier();
    });
    let (rings, dropped) = world.comm_events().snapshot_all();
    assert_eq!(dropped, 0, "ring eviction would skew the pairing");

    // ---- Ground truth: the shared FIFO pairing over the raw rings. -------
    let pairing = msgflow::pair_rings(&rings);
    assert!(pairing.pairs.len() >= 3, "3 scripted pairs at minimum");
    let unpaired: BTreeSet<(usize, usize, u64, u64)> = pairing
        .unpaired_sends
        .iter()
        .map(|u| (u.src, u.dst, u.tag, u.ts_us))
        .collect();
    assert!(
        unpaired.iter().any(|&(src, dst, tag, _)| (src, dst, tag) == (0, 1, 11)),
        "scripted unpaired send missing: {unpaired:?}"
    );

    // ---- Exporter 1: chrome-trace flow arrows. ---------------------------
    let mut trace = ChromeTrace::new();
    for (pid, ring) in rings.iter().enumerate() {
        trace.add_comm_events(pid, ring);
    }
    let doc = Json::parse(&trace.to_json()).unwrap();
    let mut starts: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // id -> (pid, ts)
    let mut finishes: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for e in doc.get("traceEvents").and_then(Json::as_arr).unwrap() {
        let row = |e: &Json| {
            (
                e.get("id").and_then(Json::as_u64).expect("flow id"),
                e.get("pid").and_then(Json::as_u64).unwrap(),
                e.get("ts").and_then(Json::as_u64).unwrap(),
            )
        };
        match e.get("ph").and_then(Json::as_str) {
            Some("s") => {
                let (id, pid, ts) = row(e);
                starts.insert(id, (pid, ts));
            }
            Some("f") => {
                let (id, pid, ts) = row(e);
                finishes.insert(id, (pid, ts));
            }
            _ => {}
        }
    }
    assert_eq!(starts.len(), pairing.pairs.len(), "one arrow per pair");
    assert_eq!(finishes.len(), pairing.pairs.len());
    for (i, p) in pairing.pairs.iter().enumerate() {
        let id = i as u64 + 1; // flow ids are emitted in pairing order
        assert_eq!(starts[&id], (p.src as u64, p.send_ts_us), "pair {i} start");
        assert_eq!(
            finishes[&id],
            (p.dst as u64, p.delivered_us()),
            "pair {i} finish"
        );
    }

    // ---- Exporter 2: flight-recorder postmortem. -------------------------
    let dir = std::env::temp_dir().join(format!("ap3esm-critpath-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bundle = flightrec::dump_bundle_to(
        &dir,
        "pairing",
        &flightrec::BundleSpec {
            reason: "pairing-regression",
            recorder: None,
            comm_events: Some(world.comm_events()),
            series_json: None,
            alerts: &[],
            fault_plan: None,
            scenario: None,
            trace_json: None,
        },
    )
    .unwrap();
    let postmortem = flightrec::analyze(&bundle).unwrap();
    // The postmortem re-sorts blamed-rank-first, so compare as sets.
    let pm_unpaired: BTreeSet<(usize, usize, u64, u64)> = postmortem
        .unpaired_sends
        .iter()
        .map(|u| (u.src, u.dst, u.tag, u.ts_us))
        .collect();
    assert_eq!(pm_unpaired, unpaired, "postmortem disagrees with msgflow");
    let _ = std::fs::remove_dir_all(&dir);
}
