//! Versioned model registry: warm `TendencyModule`/`RadiationModule`
//! weights plus their normalisers, atomically hot-swappable.
//!
//! Workers grab `current()` once per batch, so a `publish` takes effect at
//! the next batch boundary: requests submitted after `publish` returns are
//! guaranteed to be served by the new (or a newer) version. `rollback`
//! restores the previously published version.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ap3esm_ai::modules::Normalizer;
use ap3esm_ai::net::{TENDENCY_IN_CH, TENDENCY_OUT_CH};
use ap3esm_ai::{RadiationMlp, RadiationModule, TendencyCnn, TendencyModule};
use parking_lot::{Mutex, RwLock};

use crate::error::ServeError;

/// Build a warm, untrained (identity-normalised) module pair at the given
/// width/seed. Weight *values* are irrelevant for serving-path tests,
/// benches and the load-generator example; only shapes and determinism
/// matter. Distinct seeds give distinct weights (for hot-swap tests).
pub fn warm_modules(nlev: usize, width: usize, seed: u64) -> (TendencyModule, RadiationModule) {
    let ident = |ch: usize| Normalizer {
        mean: vec![0.0; ch],
        std: vec![1.0; ch],
    };
    let tendency = TendencyModule::new(
        TendencyCnn::with_width(nlev, width, seed),
        ident(TENDENCY_IN_CH),
        ident(TENDENCY_OUT_CH),
    );
    let radiation = RadiationModule::new(
        RadiationMlp::with_width(nlev, width, seed.wrapping_add(7)),
        ident(1),
        ident(2),
    );
    (tendency, radiation)
}

/// One immutable published model version. Shared read-only by all workers,
/// which is what makes the hot-swap safe: inference uses the `&self`
/// `predict_batch` path only.
pub struct ModelVersion {
    /// Monotonically increasing version number (1-based).
    pub version: u64,
    /// Human-readable tag ("canary-w16", "retrained-day80", ...).
    pub tag: String,
    pub tendency: TendencyModule,
    pub radiation: RadiationModule,
}

/// Registry holding the live version plus the rollback history.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
    history: Mutex<Vec<Arc<ModelVersion>>>,
    next_version: AtomicU64,
    /// Column height every published version must serve.
    nlev: usize,
}

impl ModelRegistry {
    /// Create a registry with an initial version (version 1).
    pub fn new(tag: &str, tendency: TendencyModule, radiation: RadiationModule) -> Self {
        let nlev = tendency.net.nlev;
        assert_eq!(radiation.net.nlev, nlev, "module level mismatch");
        let v = Arc::new(ModelVersion {
            version: 1,
            tag: tag.to_string(),
            tendency,
            radiation,
        });
        ModelRegistry {
            current: RwLock::new(v),
            history: Mutex::new(Vec::new()),
            next_version: AtomicU64::new(2),
            nlev,
        }
    }

    /// Registry seeded with [`warm_modules`] as version 1.
    pub fn warm(nlev: usize, width: usize, seed: u64, tag: &str) -> Self {
        let (tendency, radiation) = warm_modules(nlev, width, seed);
        ModelRegistry::new(tag, tendency, radiation)
    }

    /// Column height served by every version in this registry.
    pub fn nlev(&self) -> usize {
        self.nlev
    }

    /// The live version. Cheap (one RwLock read + Arc clone); workers call
    /// this once per batch.
    pub fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.current.read())
    }

    /// Live version number.
    pub fn version(&self) -> u64 {
        self.current.read().version
    }

    /// Atomically publish a new version and return its version number.
    /// The displaced version is pushed onto the rollback history.
    pub fn publish(
        &self,
        tag: &str,
        tendency: TendencyModule,
        radiation: RadiationModule,
    ) -> u64 {
        assert_eq!(tendency.net.nlev, self.nlev, "published tendency nlev mismatch");
        assert_eq!(radiation.net.nlev, self.nlev, "published radiation nlev mismatch");
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(ModelVersion {
            version,
            tag: tag.to_string(),
            tendency,
            radiation,
        });
        // Take the history lock for the whole swap so concurrent
        // publish/rollback interleave atomically.
        let mut history = self.history.lock();
        let old = std::mem::replace(&mut *self.current.write(), v);
        history.push(old);
        version
    }

    /// Roll back to the previously published version. Returns the version
    /// number now live, or `BadRequest` if there is nothing to roll back to.
    pub fn rollback(&self) -> Result<u64, ServeError> {
        let mut history = self.history.lock();
        let prev = history
            .pop()
            .ok_or_else(|| ServeError::BadRequest("no version to roll back to".into()))?;
        let version = prev.version;
        *self.current.write() = prev;
        Ok(version)
    }

    /// How many versions are available for rollback.
    pub fn history_len(&self) -> usize {
        self.history.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_rollback_swap_versions() {
        let reg = ModelRegistry::warm(8, 4, 1, "v1");
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.current().tag, "v1");

        let (t, r) = warm_modules(8, 4, 2);
        let v2 = reg.publish("v2", t, r);
        assert_eq!(v2, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.history_len(), 1);

        let back = reg.rollback().unwrap();
        assert_eq!(back, 1);
        assert_eq!(reg.current().tag, "v1");
        assert!(reg.rollback().is_err());
    }

    #[test]
    fn swapped_version_actually_changes_outputs() {
        use ap3esm_ai::modules::ColumnState;
        let nlev = 8;
        let col = ColumnState {
            u: vec![1.0; nlev],
            v: vec![-0.5; nlev],
            t: vec![280.0; nlev],
            q: vec![0.002; nlev],
            p: vec![9.0e4; nlev],
        };
        let reg = ModelRegistry::warm(nlev, 4, 11, "a");
        let before = reg.current().tendency.predict_batch(std::slice::from_ref(&col));

        let (t, r) = warm_modules(nlev, 4, 99);
        reg.publish("b", t, r);
        let after = reg.current().tendency.predict_batch(std::slice::from_ref(&col));
        assert_ne!(before[0].dt, after[0].dt, "new weights must change outputs");
    }
}
