//! Admission control: per-tenant token buckets.
//!
//! Each tenant gets a bucket of `burst` tokens refilling at `rate` tokens
//! per second; a request costs one token. Buckets are created lazily on
//! first sight of a tenant with the default limits, and can be overridden
//! per tenant (e.g. a free tier vs an operational consumer).
//!
//! Queue-depth backpressure is separate (the bounded queue in
//! [`crate::batcher`]); this module only answers "may this tenant submit
//! right now".

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// A classic token bucket. `rate == 0` means "never refills": after the
/// initial burst the bucket rejects forever, which tests use to get
/// deterministic rate-limit behaviour.
pub struct TokenBucket {
    burst: f64,
    rate: f64,
    state: Mutex<BucketState>,
}

struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(rate: f64, burst: f64) -> Self {
        TokenBucket {
            burst,
            rate,
            state: Mutex::new(BucketState {
                tokens: burst,
                last: Instant::now(),
            }),
        }
    }

    /// Try to take one token. Refills lazily from elapsed wall time.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        let now = Instant::now();
        let dt = now.duration_since(st.last).as_secs_f64();
        st.last = now;
        st.tokens = (st.tokens + dt * self.rate).min(self.burst);
        if st.tokens >= 1.0 {
            st.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (for introspection/metrics).
    pub fn available(&self) -> f64 {
        let mut st = self.state.lock();
        let now = Instant::now();
        let dt = now.duration_since(st.last).as_secs_f64();
        st.last = now;
        st.tokens = (st.tokens + dt * self.rate).min(self.burst);
        st.tokens
    }
}

/// Per-tenant admission controller.
pub struct Admission {
    default_rate: f64,
    default_burst: f64,
    buckets: Mutex<HashMap<String, Arc<TokenBucket>>>,
}

impl Admission {
    /// Controller whose unseen tenants get (`rate`, `burst`).
    pub fn new(rate: f64, burst: f64) -> Self {
        Admission {
            default_rate: rate,
            default_burst: burst,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Override one tenant's limits (replaces any existing bucket).
    pub fn set_tenant_limit(&self, tenant: &str, rate: f64, burst: f64) {
        self.buckets
            .lock()
            .insert(tenant.to_string(), Arc::new(TokenBucket::new(rate, burst)));
    }

    /// May `tenant` submit one request right now?
    pub fn admit(&self, tenant: &str) -> bool {
        let bucket = {
            let mut buckets = self.buckets.lock();
            Arc::clone(buckets.entry(tenant.to_string()).or_insert_with(|| {
                Arc::new(TokenBucket::new(self.default_rate, self.default_burst))
            }))
        };
        bucket.try_acquire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_burst_then_rejects_without_refill() {
        let b = TokenBucket::new(0.0, 3.0);
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "burst exhausted, rate 0 must reject");
        assert!(b.available() < 1.0);
    }

    #[test]
    fn bucket_refills_over_time() {
        let b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(b.try_acquire(), "1000/s refill must restore a token in 5 ms");
    }

    #[test]
    fn tenants_are_isolated() {
        let adm = Admission::new(0.0, 1.0);
        assert!(adm.admit("a"));
        assert!(!adm.admit("a"), "tenant a exhausted");
        assert!(adm.admit("b"), "tenant b has its own bucket");
        adm.set_tenant_limit("c", 0.0, 2.0);
        assert!(adm.admit("c"));
        assert!(adm.admit("c"));
        assert!(!adm.admit("c"));
    }
}
