//! The inference service: submission front door, micro-batching worker
//! pool on `pp::Threads`, and graceful drain.
//!
//! Data path: `submit` → admission (token bucket) → bounded queue →
//! batch former → worker grabs `registry.current()` → one
//! `predict_batch` forward per batch → per-request scatter over mpsc
//! oneshots. Everything is instrumented through `obs`:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `serve.submitted` | counter | submit calls |
//! | `serve.served` | counter | requests resolved with a result |
//! | `serve.shed` | counter | rejected `Overloaded` |
//! | `serve.rate_limited` | counter | rejected `RateLimited` |
//! | `serve.rejected_draining` | counter | rejected `Draining` |
//! | `serve.batches` | counter | forwards run |
//! | `serve.worker_restarts` | counter | panicking forwards caught and worker restarted |
//! | `serve.queue_depth` | gauge | depth after last accepted submit |
//! | `serve.batch_size` | histogram | requests per forward |
//! | `serve.queue_wait_us` | histogram | enqueue → batch pickup |
//! | `serve.forward_us` | histogram | batched forward wall time |
//! | `serve.latency_us` | histogram | enqueue → result scatter |
//!
//! Workers also open a `serve.batch` span per forward, so batches appear
//! in span trees and chrome traces next to the simulation's own sections.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ap3esm_ai::modules::{ColumnState, ColumnTendency};
use ap3esm_obs::metrics::{Counter, Gauge, Histogram};
use ap3esm_obs::Obs;
use ap3esm_pp::exec::{ExecSpace, Threads};
use parking_lot::Mutex;

use crate::admission::Admission;
use crate::batcher::{BatchQueue, Pending};
use crate::error::ServeError;
use crate::registry::ModelRegistry;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Inference workers on the `pp::Threads` pool.
    pub workers: usize,
    /// Batch closes when this many requests are waiting...
    pub max_batch: usize,
    /// ...or when the oldest waiting request is this old.
    pub max_wait: Duration,
    /// Bounded submission queue; beyond this, requests shed `Overloaded`.
    pub queue_capacity: usize,
    /// Default per-tenant token refill rate (tokens/s).
    pub tenant_rate: f64,
    /// Default per-tenant burst size (bucket capacity).
    pub tenant_burst: f64,
    /// Latency budget admitted requests should meet (recorded in reports;
    /// the integration test asserts p95 against it).
    pub deadline_budget: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            tenant_rate: 1.0e6,
            tenant_burst: 1.0e6,
            deadline_budget: Duration::from_secs(2),
        }
    }
}

/// A pending response: resolves to the tendency or a structured error.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ColumnTendency, ServeError>>,
}

impl Ticket {
    /// Block until the request resolves. A disconnected worker (which the
    /// drain protocol makes impossible) surfaces as `Dropped` rather than
    /// a hang or a panic.
    pub fn wait(self) -> Result<ColumnTendency, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Dropped))
    }

    /// Non-blocking poll; `None` while still in flight.
    pub fn try_wait(&self) -> Option<Result<ColumnTendency, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Dropped)),
        }
    }
}

struct ServeMetrics {
    submitted: Arc<Counter>,
    served: Arc<Counter>,
    shed: Arc<Counter>,
    rate_limited: Arc<Counter>,
    rejected_draining: Arc<Counter>,
    batches: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    forward_us: Arc<Histogram>,
    latency_us: Arc<Histogram>,
}

/// Derived telemetry series for a serving process, for the
/// `ap3esm_obs::Sampler`'s derived-series hook: `serve.shed_rate` =
/// shed / submitted (skipped until the first submission), the series the
/// built-in `serve-shed` SLO rule watches.
pub fn telemetry_derived() -> Vec<ap3esm_obs::Derived> {
    vec![ap3esm_obs::Derived::new("serve.shed_rate", |m| {
        let submitted = m.counter("serve.submitted").get();
        if submitted == 0 {
            return None;
        }
        Some(m.counter("serve.shed").get() as f64 / submitted as f64)
    })]
}

/// Harvest the serving path's trajectory metrics from a service's `Obs`
/// (the `perf.serve.*` vocabulary shared by `BENCH_*.json` files and run
/// reports): end-to-end latency p50/p95 and the batched forward's p50 are
/// gated lower-is-better; shed rate, mean batch size and queue-wait p95
/// are informational context (their "goodness" depends on offered load).
/// Histogram percentiles carry a dispersion proxy — the p50→p95 spread —
/// so the gate's noise band reflects within-run latency scatter.
pub fn perf_snapshot(obs: &Obs) -> Vec<(String, ap3esm_obs::perf::Stat)> {
    use ap3esm_obs::perf::{Direction, Stat};
    let m = &obs.metrics;
    let latency = m.histogram("serve.latency_us").summary();
    let forward = m.histogram("serve.forward_us").summary();
    let queue_wait = m.histogram("serve.queue_wait_us").summary();
    let batch = m.histogram("serve.batch_size").summary();
    let submitted = m.counter("serve.submitted").get();
    let shed = m.counter("serve.shed").get();
    let spread = (latency.p95.saturating_sub(latency.p50)) as f64;
    vec![
        (
            "perf.serve.latency_p50_us".to_string(),
            Stat::sampled(latency.p50 as f64, "us", latency.count, spread, Direction::LowerIsBetter),
        ),
        (
            "perf.serve.latency_p95_us".to_string(),
            Stat::sampled(latency.p95 as f64, "us", latency.count, spread, Direction::LowerIsBetter),
        ),
        (
            "perf.serve.forward_p50_us".to_string(),
            Stat::sampled(
                forward.p50 as f64,
                "us",
                forward.count,
                (forward.p95.saturating_sub(forward.p50)) as f64,
                Direction::LowerIsBetter,
            ),
        ),
        (
            "perf.serve.queue_wait_p95_us".to_string(),
            Stat::sampled(queue_wait.p95 as f64, "us", queue_wait.count, 0.0, Direction::Informational),
        ),
        (
            "perf.serve.batch_size_mean".to_string(),
            Stat::sampled(batch.mean, "reqs", batch.count, 0.0, Direction::Informational),
        ),
        (
            "perf.serve.shed_rate".to_string(),
            Stat::single(
                if submitted == 0 { 0.0 } else { shed as f64 / submitted as f64 },
                "ratio",
                Direction::Informational,
            ),
        ),
    ]
}

impl ServeMetrics {
    fn new(obs: &Obs) -> Self {
        let m = &obs.metrics;
        ServeMetrics {
            submitted: m.counter("serve.submitted"),
            served: m.counter("serve.served"),
            shed: m.counter("serve.shed"),
            rate_limited: m.counter("serve.rate_limited"),
            rejected_draining: m.counter("serve.rejected_draining"),
            batches: m.counter("serve.batches"),
            worker_restarts: m.counter("serve.worker_restarts"),
            queue_depth: m.gauge("serve.queue_depth"),
            batch_size: m.histogram("serve.batch_size"),
            queue_wait_us: m.histogram("serve.queue_wait_us"),
            forward_us: m.histogram("serve.forward_us"),
            latency_us: m.histogram("serve.latency_us"),
        }
    }
}

/// Shared core the worker pool runs against. Kept separate from
/// [`Service`] so the supervisor thread holds *this* and not the service
/// itself — otherwise dropping the last user handle could never trigger
/// the drain that lets the supervisor exit.
struct Inner {
    registry: Arc<ModelRegistry>,
    queue: BatchQueue,
    obs: Arc<Obs>,
    metrics: ServeMetrics,
    /// Black-box ticket-lifecycle journal (single ring: the service is one
    /// process). submit/done/shed events cost one relaxed load plus a
    /// bounded ring push; on a worker crash the tail is dumped as a
    /// diagnostics bundle.
    flight: ap3esm_obs::FlightRecorder,
    /// Monotonic ticket id source for the journal.
    ticket_seq: std::sync::atomic::AtomicU64,
}

impl Inner {
    /// One worker's life: pull batches until drain-and-empty.
    fn worker_loop(&self) {
        let _obs_guard = ap3esm_obs::install(Arc::clone(&self.obs));
        while let Some(batch) = self.queue.next_batch() {
            let _span = ap3esm_obs::span("serve.batch");
            let picked_up = Instant::now();
            self.metrics.batches.add(1);
            self.metrics.batch_size.record(batch.len() as u64);
            for p in &batch {
                let wait = picked_up.saturating_duration_since(p.enqueued);
                self.metrics.queue_wait_us.record(wait.as_micros() as u64);
            }
            // Pin the model version for the whole batch: a hot-swap mid-run
            // lands cleanly on a batch boundary.
            let model = self.registry.current();
            let columns: Vec<ColumnState> = batch.iter().map(|p| p.input.clone()).collect();
            let t0 = Instant::now();
            // The batch stays out here: if the forward panics, the tickets
            // must still be failed with a structured error, not dropped.
            let outputs = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                model.tendency.predict_batch(&columns)
            }));
            self.metrics
                .forward_us
                .record(t0.elapsed().as_micros() as u64);
            let outputs = match outputs {
                Ok(outputs) => outputs,
                Err(payload) => {
                    let detail = panic_detail(&*payload);
                    self.metrics.worker_restarts.add(1);
                    eprintln!(
                        "[serve] model forward panicked ({detail}); failing {} ticket(s) \
                         and restarting the worker",
                        batch.len()
                    );
                    self.flight.record(
                        0,
                        ap3esm_obs::FrKind::Fault,
                        batch.len() as u64,
                        0,
                        &format!("worker crashed: {detail}"),
                    );
                    for p in batch {
                        self.flight.record(
                            0,
                            ap3esm_obs::FrKind::ServeShed,
                            p.id,
                            0,
                            "failed by worker crash",
                        );
                        let _ = p.tx.send(Err(ServeError::WorkerCrashed {
                            detail: detail.clone(),
                        }));
                    }
                    // The bundle is the crash's black box: the ticket tail
                    // leading up to the panicking forward, plus the panic
                    // text, ready for `flightrec::analyze`/diagnose.sh.
                    let spec = ap3esm_obs::BundleSpec {
                        reason: "serve-worker-crash",
                        recorder: Some(&self.flight),
                        ..Default::default()
                    };
                    let name = format!("serve-crash-pid{}", std::process::id());
                    match ap3esm_obs::dump_bundle(&name, &spec) {
                        Ok(dir) => eprintln!(
                            "[serve] diagnostics bundle: {}",
                            dir.display()
                        ),
                        Err(e) => eprintln!("[serve] bundle dump failed: {e}"),
                    }
                    continue;
                }
            };
            for (p, out) in batch.into_iter().zip(outputs) {
                let latency = p.enqueued.elapsed();
                self.metrics.latency_us.record(latency.as_micros() as u64);
                self.metrics.served.add(1);
                self.flight.record(
                    0,
                    ap3esm_obs::FrKind::ServeDone,
                    p.id,
                    latency.as_micros() as u64,
                    "",
                );
                // A client that gave up (dropped its Ticket) is fine.
                let _ = p.tx.send(Ok(out));
            }
        }
    }
}

/// Best-effort panic message extraction for [`ServeError::WorkerCrashed`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The running service. `Arc`-share it between client threads; `drain`
/// (or dropping the last handle) shuts it down gracefully.
pub struct Service {
    cfg: ServeConfig,
    admission: Admission,
    inner: Arc<Inner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    nlev: usize,
}

impl Service {
    /// Spawn the worker pool and start serving.
    pub fn start(cfg: ServeConfig, registry: Arc<ModelRegistry>, obs: Arc<Obs>) -> Arc<Service> {
        let nlev = registry.nlev();
        let inner = Arc::new(Inner {
            metrics: ServeMetrics::new(&obs),
            queue: BatchQueue::new(cfg.queue_capacity, cfg.max_batch, cfg.max_wait),
            registry,
            obs,
            flight: ap3esm_obs::FlightRecorder::new(1, ap3esm_obs::DEFAULT_FLIGHT_CAPACITY),
            ticket_seq: std::sync::atomic::AtomicU64::new(1),
        });

        // The supervisor owns the pp::Threads pool. `for_each(workers, ..)`
        // turns each index into one long-running serve worker; it returns
        // only when every worker loop has observed drain-and-empty, so
        // joining the supervisor is joining the whole pool.
        let inner2 = Arc::clone(&inner);
        let workers = cfg.workers.max(1);
        let handle = std::thread::Builder::new()
            .name("serve-supervisor".into())
            .spawn(move || {
                let pool = Threads::new(workers);
                let worker = |_wi: usize| inner2.worker_loop();
                pool.for_each(workers, &worker);
            })
            .expect("spawn serve supervisor");

        Arc::new(Service {
            admission: Admission::new(cfg.tenant_rate, cfg.tenant_burst),
            supervisor: Mutex::new(Some(handle)),
            inner,
            nlev,
            cfg,
        })
    }

    /// Convenience: start on a warm registry with default obs.
    pub fn start_warm(cfg: ServeConfig, nlev: usize, width: usize, seed: u64) -> Arc<Service> {
        Service::start(
            cfg,
            Arc::new(ModelRegistry::warm(nlev, width, seed, "warm-v1")),
            Arc::new(Obs::new()),
        )
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.inner.obs
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// The service's black-box ticket journal (submit/done/shed events;
    /// dumped as a diagnostics bundle when a worker crashes).
    pub fn flight_recorder(&self) -> &ap3esm_obs::FlightRecorder {
        &self.inner.flight
    }

    /// Override one tenant's rate limit.
    pub fn set_tenant_limit(&self, tenant: &str, rate: f64, burst: f64) {
        self.admission.set_tenant_limit(tenant, rate, burst);
    }

    /// Submit one column for tendency inference. Fails fast with a
    /// structured error instead of queueing unboundedly.
    pub fn submit(&self, tenant: &str, column: ColumnState) -> Result<Ticket, ServeError> {
        let m = &self.inner.metrics;
        m.submitted.add(1);
        if column.nlev() != self.nlev {
            return Err(ServeError::BadRequest(format!(
                "column has {} levels, model serves {}",
                column.nlev(),
                self.nlev
            )));
        }
        if !self.admission.admit(tenant) {
            m.rate_limited.add(1);
            return Err(ServeError::RateLimited {
                tenant: tenant.to_string(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let id = self
            .inner
            .ticket_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner
            .flight
            .record(0, ap3esm_obs::FrKind::ServeSubmit, id, 0, tenant);
        let pending = Pending {
            id,
            input: column,
            enqueued: Instant::now(),
            tx,
        };
        match self.inner.queue.try_push(pending) {
            Ok(depth) => {
                m.queue_depth.set(depth as f64);
                Ok(Ticket { rx })
            }
            Err(e) => {
                match e {
                    ServeError::Overloaded { .. } => m.shed.add(1),
                    ServeError::Draining => m.rejected_draining.add(1),
                    _ => {}
                }
                self.inner.flight.record(
                    0,
                    ap3esm_obs::FrKind::ServeShed,
                    id,
                    0,
                    &format!("{e}"),
                );
                Err(e)
            }
        }
    }

    /// Stop admitting, flush every queued request through the workers,
    /// and join the pool. Idempotent; also runs on drop.
    pub fn drain(&self) {
        self.inner.queue.start_drain();
        let handle = self.supervisor.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(nlev: usize, bias: f64) -> ColumnState {
        ColumnState {
            u: vec![bias; nlev],
            v: vec![-bias; nlev],
            t: vec![280.0 + bias; nlev],
            q: vec![0.002; nlev],
            p: vec![9.0e4; nlev],
        }
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let svc = Service::start_warm(ServeConfig::default(), 8, 4, 42);
        let t = svc.submit("tenant-a", column(8, 1.0)).unwrap();
        let out = t.wait().unwrap();
        assert_eq!(out.du.len(), 8);
        assert!(out.dt.iter().all(|v| v.is_finite()));
        svc.drain();
    }

    #[test]
    fn batched_service_result_matches_direct_predict() {
        let svc = Service::start_warm(ServeConfig::default(), 8, 4, 43);
        let cols: Vec<ColumnState> = (0..12).map(|i| column(8, i as f64 * 0.1)).collect();
        let tickets: Vec<Ticket> = cols
            .iter()
            .map(|c| svc.submit("t", c.clone()).unwrap())
            .collect();
        let served: Vec<ColumnTendency> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let direct = svc.registry().current().tendency.predict_batch(&cols);
        for (s, d) in served.iter().zip(&direct) {
            for (a, b) in s.dt.iter().zip(&d.dt) {
                assert!((a - b).abs() < 1e-9, "served {a} vs direct {b}");
            }
        }
        svc.drain();
    }

    #[test]
    fn wrong_nlev_is_a_bad_request() {
        let svc = Service::start_warm(ServeConfig::default(), 8, 4, 44);
        let err = svc.submit("t", column(5, 0.0)).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        svc.drain();
    }

    #[test]
    fn worker_survives_a_panicking_forward() {
        let svc = Service::start_warm(ServeConfig::default(), 8, 4, 46);
        // A ragged column passes the nlev admission check (u-based) but
        // panics inside the model forward — the natural in-batch crash.
        let mut ragged = column(8, 0.0);
        ragged.v.pop();
        let t = svc.submit("t", ragged).unwrap();
        match t.wait() {
            Err(ServeError::WorkerCrashed { detail }) => {
                assert!(detail.contains("ragged"), "unexpected detail: {detail}")
            }
            other => panic!("expected WorkerCrashed, got {other:?}"),
        }
        assert_eq!(svc.obs().metrics.counter("serve.worker_restarts").get(), 1);
        // The worker restarted: the service still serves.
        let out = svc.submit("t", column(8, 1.0)).unwrap().wait().unwrap();
        assert_eq!(out.du.len(), 8);
        svc.drain();
    }

    #[test]
    fn submit_after_drain_is_rejected_not_hung() {
        let svc = Service::start_warm(ServeConfig::default(), 8, 4, 45);
        svc.drain();
        let err = svc.submit("t", column(8, 0.0)).unwrap_err();
        assert_eq!(err, ServeError::Draining);
        assert_eq!(svc.obs().metrics.counter("serve.rejected_draining").get(), 1);
    }
}
