//! The micro-batching queue: a bounded submission queue plus the batch
//! former workers pull from.
//!
//! A batch closes on whichever comes first:
//! * `max_batch` requests are waiting, or
//! * `max_wait` has elapsed since the *oldest* waiting request was
//!   enqueued (the deadline is per-request age, not per-poll, so a lone
//!   request is never delayed more than `max_wait`).
//!
//! The queue is bounded: `try_push` rejects with
//! [`ServeError::Overloaded`] instead of growing without bound, which is
//! the backpressure half of admission control.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ap3esm_ai::modules::{ColumnState, ColumnTendency};
use parking_lot::{Condvar, Mutex};

use crate::error::ServeError;

/// One queued request: the input column, its response channel, and when it
/// entered the queue (for queue-wait metrics and the batch deadline).
pub(crate) struct Pending {
    /// Ticket id assigned at submit, journaled by the flight recorder so
    /// a postmortem can pair submit/done/shed for one request.
    pub id: u64,
    pub input: ColumnState,
    pub enqueued: Instant,
    pub tx: mpsc::Sender<Result<ColumnTendency, ServeError>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    draining: bool,
}

pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    max_batch: usize,
    max_wait: Duration,
}

impl BatchQueue {
    pub fn new(capacity: usize, max_batch: usize, max_wait: Duration) -> Self {
        assert!(capacity >= 1 && max_batch >= 1);
        BatchQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            capacity,
            max_batch,
            max_wait,
        }
    }

    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Enqueue a request. Returns the post-push depth, or `Draining` /
    /// `Overloaded` without consuming the request's channel.
    pub fn try_push(&self, p: Pending) -> Result<usize, ServeError> {
        let mut st = self.state.lock();
        if st.draining {
            return Err(ServeError::Draining);
        }
        if st.queue.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                queue_depth: st.queue.len(),
                capacity: self.capacity,
            });
        }
        st.queue.push_back(p);
        let depth = st.queue.len();
        self.cv.notify_one();
        Ok(depth)
    }

    /// Block until a batch is ready and take it. Returns `None` once the
    /// queue is draining *and* empty — the worker-exit signal. Every
    /// request that made it into the queue is handed to some batch before
    /// that happens, so drain flushes in-flight work.
    pub fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut st = self.state.lock();
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.draining {
                return None;
            }
            self.cv.wait(&mut st);
        }
        // Batch former: hold the batch open until it is full, the oldest
        // member times out, or drain is requested.
        let deadline = st.queue.front().unwrap().enqueued + self.max_wait;
        while st.queue.len() < self.max_batch && !st.draining {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            if self.cv.wait_for(&mut st, left).timed_out() {
                break;
            }
        }
        let take = st.queue.len().min(self.max_batch);
        let batch: Vec<Pending> = st.queue.drain(..take).collect();
        if !st.queue.is_empty() || st.draining {
            // More work (or the drain signal) may be waiting for a peer.
            self.cv.notify_all();
        }
        Some(batch)
    }

    /// Stop admitting; wake all workers so they flush and exit.
    pub fn start_drain(&self) {
        let mut st = self.state.lock();
        st.draining = true;
        drop(st);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(nlev: usize) -> (Pending, mpsc::Receiver<Result<ColumnTendency, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id: 0,
                input: ColumnState {
                    u: vec![0.0; nlev],
                    v: vec![0.0; nlev],
                    t: vec![280.0; nlev],
                    q: vec![0.0; nlev],
                    p: vec![1.0e5; nlev],
                },
                enqueued: Instant::now(),
                tx,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let q = BatchQueue::new(2, 8, Duration::from_millis(50));
        let mut rxs = Vec::new();
        for _ in 0..2 {
            let (p, rx) = pending(4);
            q.try_push(p).unwrap();
            rxs.push(rx);
        }
        let (p, _rx) = pending(4);
        match q.try_push(p) {
            Err(ServeError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!(queue_depth, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| "Ok")),
        }
    }

    #[test]
    fn batch_closes_on_size_before_deadline() {
        let q = BatchQueue::new(16, 3, Duration::from_secs(60));
        for _ in 0..3 {
            let (p, rx) = pending(4);
            q.try_push(p).unwrap();
            std::mem::forget(rx);
        }
        let t0 = Instant::now();
        let b = q.next_batch().unwrap();
        assert_eq!(b.len(), 3);
        assert!(t0.elapsed() < Duration::from_secs(5), "must not wait for deadline");
    }

    #[test]
    fn batch_closes_on_deadline_with_partial_fill() {
        let q = BatchQueue::new(16, 8, Duration::from_millis(20));
        let (p, _rx) = pending(4);
        q.try_push(p).unwrap();
        let b = q.next_batch().unwrap();
        assert_eq!(b.len(), 1, "lone request must be released at the deadline");
    }

    #[test]
    fn drain_flushes_then_signals_exit() {
        let q = BatchQueue::new(16, 8, Duration::from_millis(5));
        let (p, _rx) = pending(4);
        q.try_push(p).unwrap();
        q.start_drain();
        let (p2, _rx2) = pending(4);
        assert_eq!(q.try_push(p2).unwrap_err(), ServeError::Draining);
        // Queued work is still handed out...
        assert_eq!(q.next_batch().unwrap().len(), 1);
        // ...and only then do workers see the exit signal.
        assert!(q.next_batch().is_none());
    }
}
