//! Structured serving errors. Every rejected or failed request resolves to
//! one of these — there is no silent drop path.

use std::fmt;

/// Why a request was rejected or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is full: load was shed instead of
    /// letting latency grow without bound.
    Overloaded {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The tenant's token bucket is empty.
    RateLimited { tenant: String },
    /// The service (or scheduler) is draining and no longer admits work.
    Draining,
    /// The worker side disappeared without resolving the request. This is
    /// a bug guard: the drain test asserts it never happens.
    Dropped,
    /// The request itself was malformed (e.g. wrong column height).
    BadRequest(String),
    /// A background forecast job failed.
    JobFailed(String),
    /// The model forward panicked mid-batch. The worker caught the unwind
    /// and restarted; every request in the affected batch resolves to this
    /// instead of hanging on a dead worker.
    WorkerCrashed { detail: String },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                capacity,
            } => write!(f, "overloaded: queue depth {queue_depth} >= capacity {capacity}"),
            ServeError::RateLimited { tenant } => write!(f, "rate limited: tenant {tenant}"),
            ServeError::Draining => write!(f, "draining: service no longer admits work"),
            ServeError::Dropped => write!(f, "request dropped without resolution (bug)"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::JobFailed(msg) => write!(f, "forecast job failed: {msg}"),
            ServeError::WorkerCrashed { detail } => {
                write!(f, "worker crashed during model forward: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
