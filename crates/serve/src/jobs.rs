//! Async forecast-product scheduler: background `esm::forecast` ensemble
//! jobs with an LRU product cache and in-flight deduplication.
//!
//! Products are keyed by (region, init-time, ensemble member). A request
//! either hits the cache (LRU-bumped), joins an identical in-flight job
//! (deduplicated — the expensive coupled run happens once), or enqueues a
//! new job for the background workers. `drain` finishes running jobs,
//! resolves never-started ones with [`ServeError::Draining`], and joins
//! the workers — the same no-silent-drop guarantee as the inference path.
//!
//! Metrics: `jobs.hits`, `jobs.misses`, `jobs.deduped`, `jobs.completed`,
//! `jobs.failed`, `jobs.evicted` counters, `jobs.run_ms` histogram, and a
//! `serve.forecast_job` span per run.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ap3esm_esm::config::CoupledConfig;
use ap3esm_esm::forecast::run_forecast;
use ap3esm_obs::Obs;
use parking_lot::{Condvar, Mutex};

use crate::error::ServeError;

/// Cache key for one forecast product.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProductKey {
    /// Forecast region/domain label ("wnp" — western North Pacific, ...).
    pub region: String,
    /// Initialisation time (hours since an arbitrary epoch).
    pub init_time: u64,
    /// Ensemble member index.
    pub member: u32,
}

/// The served artefact: headline scores of one ensemble-member forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastProduct {
    pub key: ProductKey,
    pub mean_track_error_km: f64,
    pub peak_intensity_ms: f64,
    pub min_pressure_pa: f64,
    pub track_len: usize,
}

/// How a scheduler turns a key into a product. Injected so tests can stub
/// the coupled model; [`coupled_compute`] is the real one.
pub type ComputeFn = dyn Fn(&ProductKey) -> Result<ForecastProduct, String> + Send + Sync;

/// A [`ComputeFn`] that runs the real coupled forecast: each ensemble
/// member perturbs the land/sea mask seed of `base` (the members differ,
/// deterministically) and runs `esm::forecast::run_forecast` for `days`.
pub fn coupled_compute(base: CoupledConfig, days: f64) -> Box<ComputeFn> {
    Box::new(move |key: &ProductKey| {
        let mut config = base.clone();
        config.mask_seed = config
            .mask_seed
            .wrapping_add(key.member as u64)
            .wrapping_add(key.init_time);
        let result = run_forecast(&config, days);
        if let Some(failure) = &result.stats.failure {
            return Err(format!("coupled run failed: {failure}"));
        }
        Ok(ForecastProduct {
            key: key.clone(),
            mean_track_error_km: result.mean_track_error(),
            peak_intensity_ms: result.peak_intensity(),
            min_pressure_pa: result.min_pressure(),
            track_len: result.track.len(),
        })
    })
}

type JobResult = Result<Arc<ForecastProduct>, ServeError>;

/// Rendezvous for everyone waiting on one job. Opaque: obtained only via
/// [`ProductHandle::Pending`] and consumed by `wait`.
pub struct JobSlot {
    done: Mutex<Option<JobResult>>,
    cv: Condvar,
}

impl JobSlot {
    fn new() -> Arc<Self> {
        Arc::new(JobSlot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, r: JobResult) {
        *self.done.lock() = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> JobResult {
        let mut done = self.done.lock();
        while done.is_none() {
            self.cv.wait(&mut done);
        }
        done.clone().unwrap()
    }
}

/// Handle on a requested product.
pub enum ProductHandle {
    /// Cache hit: the product is already here.
    Ready(Arc<ForecastProduct>),
    /// Job running (or queued); `wait` blocks until it resolves.
    Pending(Arc<JobSlot>),
    /// Rejected outright (e.g. scheduler draining).
    Rejected(ServeError),
}

impl ProductHandle {
    /// Block until the product (or its structured error) is available.
    pub fn wait(self) -> Result<Arc<ForecastProduct>, ServeError> {
        match self {
            ProductHandle::Ready(p) => Ok(p),
            ProductHandle::Pending(slot) => slot.wait(),
            ProductHandle::Rejected(e) => Err(e),
        }
    }

    /// True for a cache hit that needed no job at all.
    pub fn is_ready(&self) -> bool {
        matches!(self, ProductHandle::Ready(_))
    }
}

struct SchedState {
    cache: HashMap<ProductKey, Arc<ForecastProduct>>,
    /// LRU order: front = least recently used.
    order: VecDeque<ProductKey>,
    /// Jobs queued or running, for dedup. A key leaves this map only by
    /// having its slot filled.
    inflight: HashMap<ProductKey, Arc<JobSlot>>,
    /// Queued-but-not-started job keys.
    pending: VecDeque<ProductKey>,
    draining: bool,
}

struct SchedInner {
    compute: Box<ComputeFn>,
    state: Mutex<SchedState>,
    cv: Condvar,
    cache_cap: usize,
    obs: Arc<Obs>,
}

impl SchedInner {
    fn worker_loop(&self) {
        let _obs_guard = ap3esm_obs::install(Arc::clone(&self.obs));
        loop {
            let key = {
                let mut st = self.state.lock();
                loop {
                    if let Some(k) = st.pending.pop_front() {
                        break k;
                    }
                    if st.draining {
                        return;
                    }
                    self.cv.wait(&mut st);
                }
            };
            let t0 = Instant::now();
            let result = {
                let _span = ap3esm_obs::span("serve.forecast_job");
                (self.compute)(&key)
            };
            self.obs
                .metrics
                .histogram("jobs.run_ms")
                .record(t0.elapsed().as_millis() as u64);
            let outcome: JobResult = match result {
                Ok(p) => {
                    self.obs.metrics.counter("jobs.completed").add(1);
                    Ok(Arc::new(p))
                }
                Err(msg) => {
                    self.obs.metrics.counter("jobs.failed").add(1);
                    Err(ServeError::JobFailed(msg))
                }
            };
            let slot = {
                let mut st = self.state.lock();
                if let Ok(p) = &outcome {
                    Self::cache_insert(&mut st, self.cache_cap, &self.obs, Arc::clone(p));
                }
                st.inflight.remove(&key)
            };
            if let Some(slot) = slot {
                slot.fill(outcome);
            }
        }
    }

    fn cache_insert(st: &mut SchedState, cap: usize, obs: &Obs, p: Arc<ForecastProduct>) {
        let key = p.key.clone();
        if st.cache.insert(key.clone(), p).is_none() {
            st.order.push_back(key);
        } else {
            Self::lru_bump(st, &key);
        }
        while st.cache.len() > cap {
            if let Some(victim) = st.order.pop_front() {
                st.cache.remove(&victim);
                obs.metrics.counter("jobs.evicted").add(1);
            } else {
                break;
            }
        }
    }

    fn lru_bump(st: &mut SchedState, key: &ProductKey) {
        if let Some(pos) = st.order.iter().position(|k| k == key) {
            st.order.remove(pos);
            st.order.push_back(key.clone());
        }
    }
}

/// The background forecast scheduler.
pub struct ForecastScheduler {
    inner: Arc<SchedInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ForecastScheduler {
    /// Start `workers` background job threads with an LRU cache of
    /// `cache_cap` products.
    pub fn start(
        workers: usize,
        cache_cap: usize,
        obs: Arc<Obs>,
        compute: Box<ComputeFn>,
    ) -> ForecastScheduler {
        assert!(cache_cap >= 1);
        let inner = Arc::new(SchedInner {
            compute,
            state: Mutex::new(SchedState {
                cache: HashMap::new(),
                order: VecDeque::new(),
                inflight: HashMap::new(),
                pending: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            cache_cap,
            obs,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("forecast-job-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn forecast job worker")
            })
            .collect();
        ForecastScheduler {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Request a product: cache hit, dedup join, or new background job.
    pub fn request(&self, key: ProductKey) -> ProductHandle {
        let m = &self.inner.obs.metrics;
        let mut st = self.inner.state.lock();
        if let Some(p) = st.cache.get(&key).cloned() {
            SchedInner::lru_bump(&mut st, &key);
            m.counter("jobs.hits").add(1);
            return ProductHandle::Ready(p);
        }
        if let Some(slot) = st.inflight.get(&key) {
            m.counter("jobs.deduped").add(1);
            return ProductHandle::Pending(Arc::clone(slot));
        }
        if st.draining {
            return ProductHandle::Rejected(ServeError::Draining);
        }
        m.counter("jobs.misses").add(1);
        let slot = JobSlot::new();
        st.inflight.insert(key.clone(), Arc::clone(&slot));
        st.pending.push_back(key);
        drop(st);
        self.inner.cv.notify_one();
        ProductHandle::Pending(slot)
    }

    /// Cached product count (for tests/metrics).
    pub fn cache_len(&self) -> usize {
        self.inner.state.lock().cache.len()
    }

    /// Finish running jobs, fail queued-but-unstarted ones with
    /// `Draining`, and join the workers. Every outstanding handle
    /// resolves. Idempotent; also runs on drop.
    pub fn drain(&self) {
        let abandoned: Vec<Arc<JobSlot>> = {
            let mut st = self.inner.state.lock();
            st.draining = true;
            let keys: Vec<ProductKey> = st.pending.drain(..).collect();
            keys.iter()
                .filter_map(|k| st.inflight.remove(k))
                .collect()
        };
        for slot in abandoned {
            slot.fill(Err(ServeError::Draining));
        }
        self.inner.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ForecastScheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn key(member: u32) -> ProductKey {
        ProductKey {
            region: "wnp".into(),
            init_time: 2023_07_21,
            member,
        }
    }

    fn stub_product(key: &ProductKey) -> ForecastProduct {
        ForecastProduct {
            key: key.clone(),
            mean_track_error_km: 100.0 + key.member as f64,
            peak_intensity_ms: 30.0,
            min_pressure_pa: 9.6e4,
            track_len: 8,
        }
    }

    fn counting_compute(
        runs: Arc<AtomicU64>,
        delay: Duration,
    ) -> Box<ComputeFn> {
        Box::new(move |key| {
            runs.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(delay);
            Ok(stub_product(key))
        })
    }

    #[test]
    fn cache_hit_after_miss_and_lru_eviction() {
        let runs = Arc::new(AtomicU64::new(0));
        let sched = ForecastScheduler::start(
            2,
            2,
            Arc::new(Obs::new()),
            counting_compute(Arc::clone(&runs), Duration::ZERO),
        );
        // Miss, then hit.
        let p = sched.request(key(0)).wait().unwrap();
        assert_eq!(p.key.member, 0);
        let h = sched.request(key(0));
        assert!(h.is_ready(), "second identical request must hit the cache");
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        // Fill past capacity 2: member 0 was most recently used, so the
        // bump protects it and member 1 is the LRU victim.
        sched.request(key(1)).wait().unwrap();
        sched.request(key(0)).wait().unwrap(); // bump 0
        sched.request(key(2)).wait().unwrap(); // evicts 1
        assert_eq!(sched.cache_len(), 2);
        assert!(sched.request(key(0)).is_ready());
        assert!(!sched.request(key(1)).is_ready(), "member 1 was evicted");
    }

    #[test]
    fn identical_inflight_requests_are_deduplicated() {
        let runs = Arc::new(AtomicU64::new(0));
        let sched = Arc::new(ForecastScheduler::start(
            2,
            4,
            Arc::new(Obs::new()),
            counting_compute(Arc::clone(&runs), Duration::from_millis(50)),
        ));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let s = Arc::clone(&sched);
                std::thread::spawn(move || s.request(key(7)).wait())
            })
            .collect();
        for h in handles {
            let p = h.join().unwrap().unwrap();
            assert_eq!(p.key.member, 7);
        }
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "six concurrent identical requests must run the model once"
        );
        assert!(sched.inner.obs.metrics.counter("jobs.deduped").get() >= 1);
    }

    #[test]
    fn drain_resolves_unstarted_jobs_with_draining() {
        let runs = Arc::new(AtomicU64::new(0));
        // One slow worker so extra jobs stay queued.
        let sched = ForecastScheduler::start(
            1,
            4,
            Arc::new(Obs::new()),
            counting_compute(Arc::clone(&runs), Duration::from_millis(100)),
        );
        let running = sched.request(key(0));
        std::thread::sleep(Duration::from_millis(20)); // let it start
        let queued = sched.request(key(1));
        sched.drain();
        // The started job completes; the queued one fails explicitly.
        assert!(running.wait().is_ok());
        assert_eq!(queued.wait().unwrap_err(), ServeError::Draining);
        // New requests after drain are rejected.
        assert_eq!(
            sched.request(key(9)).wait().unwrap_err(),
            ServeError::Draining
        );
    }

    #[test]
    fn failed_jobs_surface_job_failed() {
        let sched = ForecastScheduler::start(
            1,
            4,
            Arc::new(Obs::new()),
            Box::new(|_| Err("blew up".into())),
        );
        match sched.request(key(3)).wait() {
            Err(ServeError::JobFailed(msg)) => assert!(msg.contains("blew up")),
            other => panic!("expected JobFailed, got {other:?}"),
        }
    }
}
