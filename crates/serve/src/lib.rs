//! # AP3ESM serving subsystem (`ap3esm-serve`)
//!
//! The ROADMAP's north star is a production system serving km-scale
//! forecast products to heavy traffic — not just a simulation. This crate
//! is the layer that turns the §5.2 AI physics networks (`ap3esm-ai`) and
//! the coupled forecast (`esm::forecast`) into such a service:
//!
//! * [`registry`] — versioned model registry: warm
//!   `TendencyModule`/`RadiationModule` weights + normalisers, atomic
//!   hot-swap ([`ModelRegistry::publish`]) and
//!   [`ModelRegistry::rollback`]. Swaps land on batch boundaries.
//! * [`batcher`] + [`service`] — micro-batching inference: a bounded
//!   submission queue, a batch former that closes on `max_batch` or a
//!   `max_wait` deadline (whichever first), and a worker pool on
//!   `pp::Threads` running **one** batched forward (`forward_batch`, a
//!   single set of tensor ops) per batch and scattering per-request
//!   results.
//! * [`admission`] — per-tenant token-bucket rate limits; together with
//!   the bounded queue this sheds load with structured
//!   [`ServeError::Overloaded`] / [`ServeError::RateLimited`] rejections
//!   instead of unbounded latency.
//! * [`jobs`] — async forecast-job scheduler: background
//!   `esm::forecast` ensemble runs with an LRU product cache keyed by
//!   (region, init-time, member) and dedup of identical in-flight
//!   requests.
//!
//! Everything reports through `obs` (queue-wait / forward-time / latency
//! histograms, batch-size distribution, shed/served counters, a span per
//! batch and per job), so serving runs plug into the existing
//! `target/obs/` report schema and chrome-trace export. Graceful
//! shutdown is a first-class guarantee: [`Service::drain`] stops
//! admitting, flushes in-flight batches and joins workers — every
//! submitted request resolves to a result or an explicit error.

pub mod admission;
pub mod batcher;
pub mod error;
pub mod jobs;
pub mod registry;
pub mod service;

pub use admission::{Admission, TokenBucket};
pub use error::ServeError;
pub use jobs::{coupled_compute, ForecastProduct, ForecastScheduler, ProductHandle, ProductKey};
pub use registry::{warm_modules, ModelRegistry, ModelVersion};
pub use service::{perf_snapshot, telemetry_derived, ServeConfig, Service, Ticket};
