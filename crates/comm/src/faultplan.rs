//! Deterministic fault injection for resilience testing.
//!
//! Production AP3ESM runs on 100k+ nodes survive node loss, corrupted
//! restart sub-files, and transient interconnect hiccups; this module lets
//! the reproduction *rehearse* those failures deterministically. A
//! [`FaultPlan`] is a seeded list of events:
//!
//! * **message faults** — drop, delay, or duplicate the n-th message on a
//!   `(src, dst, tag)` stream, applied by the [`World`](crate::World) send
//!   path when an injector is installed;
//! * **rank kills** — declare a rank's state lost at a given coupled step,
//!   consumed by the driver (the thread survives; its model state is
//!   poisoned, simulating a node replacement);
//! * **checkpoint corruption** — flip a byte of a named checkpoint
//!   sub-file after it is written, exercising the CRC-verified recovery
//!   fallback path.
//!
//! Determinism: message events count matches **per concrete
//! `(src, dst, tag)` stream**. Within one stream the sender's program order
//! is total, so "the 3rd message from 0 to 1 under tag 21" identifies the
//! same payload in every run regardless of thread scheduling. Wildcard
//! selectors fire on the n-th message of *every* matching stream.
//!
//! The hook is zero-cost when disabled: a `World` without an injector pays
//! a single `Option` check per send and nothing per receive.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// What happens to a message selected by a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    /// The message is never enqueued (simulated loss).
    Drop,
    /// Delivery is delayed by the given number of milliseconds.
    Delay { ms: u64 },
    /// The message is enqueued twice (simulated retransmit duplication).
    Duplicate,
}

/// Selects messages on `(src, dst, tag)` streams; `None` = wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSelector {
    pub src: Option<usize>,
    pub dst: Option<usize>,
    pub tag: Option<u64>,
    /// 1-based index of the message to hit within each matching stream.
    pub nth: u64,
}

impl MsgSelector {
    fn matches(&self, src: usize, dst: usize, tag: u64) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.tag.is_none_or(|t| t == tag)
    }
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Apply `fault` to the message matched by `sel`.
    Message { sel: MsgSelector, fault: MsgFault },
    /// Rank `rank` loses its state at driver step `at_step` (the driver
    /// defines the step unit; the coupled driver counts ocean couplings).
    KillRank { rank: usize, at_step: u64 },
    /// Rank `rank` dies *permanently* at driver step `at_step`: the thread
    /// stops participating entirely (vs. [`FaultEvent::KillRank`], which
    /// only loses state and stays reachable). Survivors must shrink.
    DieRank { rank: usize, at_step: u64 },
    /// After checkpoint `ckpt` is written, XOR-flip the byte at `byte`
    /// (modulo file length) of sub-file `subfile` of field `field`.
    CorruptCheckpoint {
        ckpt: u64,
        field: String,
        subfile: u32,
        byte: u64,
    },
}

/// A seeded, ordered fault plan.
///
/// Equality compares `(seed, events)` only — the source line numbers kept
/// for diagnostics do not make two otherwise-identical plans different.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub events: Vec<FaultEvent>,
    /// 1-based source line of each event (parallel to `events`; empty for
    /// programmatically built plans). Lets [`FaultPlan::validate`] point at
    /// the offending line instead of silently ignoring unmatched rules.
    pub event_lines: Vec<usize>,
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.events == other.events
    }
}

/// Parse failure for the fault-plan text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

fn parse_kv(tok: &str, line: usize) -> Result<(&str, &str), PlanParseError> {
    tok.split_once('=').ok_or_else(|| PlanParseError {
        line,
        message: format!("expected key=value, got {tok:?}"),
    })
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str, line: usize) -> Result<T, PlanParseError> {
    v.parse().map_err(|_| PlanParseError {
        line,
        message: format!("bad numeric value for {key}: {v:?}"),
    })
}

fn parse_opt_num<T: std::str::FromStr>(
    key: &str,
    v: &str,
    line: usize,
) -> Result<Option<T>, PlanParseError> {
    if v == "*" {
        Ok(None)
    } else {
        parse_num(key, v, line).map(Some)
    }
}

impl FaultPlan {
    /// Parse the line-based plan format. One event per line; `#` comments
    /// and blank lines are ignored:
    ///
    /// ```text
    /// seed 42
    /// drop src=0 dst=1 tag=21 nth=2
    /// delay src=* dst=3 tag=* nth=1 ms=50
    /// dup src=1 dst=0 tag=22 nth=1
    /// kill rank=2 step=3
    /// die rank=2 step=3
    /// corrupt ckpt=1 field=atm_theta subfile=0 byte=100
    /// ```
    ///
    /// Exact duplicate events are rejected at parse time (the second entry
    /// would silently re-arm a one-shot fault — always a plan bug), with
    /// the line number of both occurrences in the error.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut event: Option<FaultEvent> = None;
            let mut toks = line.split_whitespace();
            let verb = toks.next().expect("non-empty line has a first token");
            match verb {
                "seed" => {
                    let v = toks.next().ok_or_else(|| PlanParseError {
                        line: lineno,
                        message: "seed needs a value".into(),
                    })?;
                    plan.seed = parse_num("seed", v, lineno)?;
                }
                "drop" | "delay" | "dup" => {
                    let mut sel = MsgSelector {
                        src: None,
                        dst: None,
                        tag: None,
                        nth: 1,
                    };
                    let mut ms = 10u64;
                    for tok in toks {
                        let (k, v) = parse_kv(tok, lineno)?;
                        match k {
                            "src" => sel.src = parse_opt_num("src", v, lineno)?,
                            "dst" => sel.dst = parse_opt_num("dst", v, lineno)?,
                            "tag" => sel.tag = parse_opt_num("tag", v, lineno)?,
                            "nth" => sel.nth = parse_num("nth", v, lineno)?,
                            "ms" if verb == "delay" => ms = parse_num("ms", v, lineno)?,
                            _ => {
                                return Err(PlanParseError {
                                    line: lineno,
                                    message: format!("unknown key {k:?} for {verb}"),
                                })
                            }
                        }
                    }
                    if sel.nth == 0 {
                        return Err(PlanParseError {
                            line: lineno,
                            message: "nth is 1-based; 0 is invalid".into(),
                        });
                    }
                    let fault = match verb {
                        "drop" => MsgFault::Drop,
                        "delay" => MsgFault::Delay { ms },
                        _ => MsgFault::Duplicate,
                    };
                    event = Some(FaultEvent::Message { sel, fault });
                }
                "kill" | "die" => {
                    let (mut rank, mut step) = (None, None);
                    for tok in toks {
                        let (k, v) = parse_kv(tok, lineno)?;
                        match k {
                            "rank" => rank = Some(parse_num("rank", v, lineno)?),
                            "step" => step = Some(parse_num("step", v, lineno)?),
                            _ => {
                                return Err(PlanParseError {
                                    line: lineno,
                                    message: format!("unknown key {k:?} for {verb}"),
                                })
                            }
                        }
                    }
                    match (rank, step) {
                        (Some(rank), Some(at_step)) if verb == "kill" => {
                            event = Some(FaultEvent::KillRank { rank, at_step })
                        }
                        (Some(rank), Some(at_step)) => {
                            event = Some(FaultEvent::DieRank { rank, at_step })
                        }
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("{verb} needs rank= and step="),
                            })
                        }
                    }
                }
                "corrupt" => {
                    let (mut ckpt, mut field, mut subfile, mut byte) = (None, None, 0u32, 0u64);
                    for tok in toks {
                        let (k, v) = parse_kv(tok, lineno)?;
                        match k {
                            "ckpt" => ckpt = Some(parse_num("ckpt", v, lineno)?),
                            "field" => field = Some(v.to_string()),
                            "subfile" => subfile = parse_num("subfile", v, lineno)?,
                            "byte" => byte = parse_num("byte", v, lineno)?,
                            _ => {
                                return Err(PlanParseError {
                                    line: lineno,
                                    message: format!("unknown key {k:?} for corrupt"),
                                })
                            }
                        }
                    }
                    match (ckpt, field) {
                        (Some(ckpt), Some(field)) => {
                            event = Some(FaultEvent::CorruptCheckpoint {
                                ckpt,
                                field,
                                subfile,
                                byte,
                            })
                        }
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: "corrupt needs ckpt= and field=".into(),
                            })
                        }
                    }
                }
                other => {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("unknown event {other:?}"),
                    })
                }
            }
            if let Some(ev) = event {
                if let Some(prev) = plan.events.iter().position(|e| *e == ev) {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!(
                            "duplicate of line {}: an identical event can never fire as planned",
                            plan.event_lines.get(prev).copied().unwrap_or(0)
                        ),
                    });
                }
                plan.events.push(ev);
                plan.event_lines.push(lineno);
            }
        }
        Ok(plan)
    }

    /// Check the plan against a concrete world: kills/dies targeting
    /// out-of-range ranks and message selectors naming ranks the world does
    /// not have are rejected with the offending source line, instead of
    /// silently never matching at run time. `die rank=0` is rejected too —
    /// rank 0 coordinates the membership agreement, so its permanent loss
    /// cannot be survived.
    pub fn validate(&self, world_size: usize) -> Result<(), PlanParseError> {
        let line_of = |i: usize| self.event_lines.get(i).copied().unwrap_or(0);
        for (i, e) in self.events.iter().enumerate() {
            let bad_rank = |what: &str, rank: usize| PlanParseError {
                line: line_of(i),
                message: format!(
                    "{what} targets rank {rank} but the world has ranks 0..{world_size}"
                ),
            };
            match e {
                FaultEvent::KillRank { rank, .. } if *rank >= world_size => {
                    return Err(bad_rank("kill", *rank));
                }
                FaultEvent::DieRank { rank, .. } if *rank >= world_size => {
                    return Err(bad_rank("die", *rank));
                }
                FaultEvent::DieRank { rank: 0, .. } => {
                    return Err(PlanParseError {
                        line: line_of(i),
                        message: "die cannot target rank 0: it coordinates the \
                                  membership agreement"
                            .into(),
                    });
                }
                FaultEvent::Message { sel, .. } => {
                    if let Some(src) = sel.src.filter(|&s| s >= world_size) {
                        return Err(bad_rank("message src", src));
                    }
                    if let Some(dst) = sel.dst.filter(|&d| d >= world_size) {
                        return Err(bad_rank("message dst", dst));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Kill events as `(rank, at_step)` pairs.
    pub fn kills(&self) -> Vec<(usize, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::KillRank { rank, at_step } => Some((*rank, *at_step)),
                _ => None,
            })
            .collect()
    }

    /// Permanent-death events as `(rank, at_step)` pairs.
    pub fn dies(&self) -> Vec<(usize, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::DieRank { rank, at_step } => Some((*rank, *at_step)),
                _ => None,
            })
            .collect()
    }

    /// Corruption events targeting checkpoint `ckpt`.
    pub fn corruptions_for(&self, ckpt: u64) -> Vec<(&str, u32, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CorruptCheckpoint {
                    ckpt: c,
                    field,
                    subfile,
                    byte,
                } if *c == ckpt => Some((field.as_str(), *subfile, *byte)),
                _ => None,
            })
            .collect()
    }

    /// True if the plan contains any message-level events (only then does
    /// a [`FaultInjector`] need to be installed on the `World`).
    pub fn has_message_events(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Message { .. }))
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed {}", self.seed)?;
        let part = |v: Option<u64>| match v {
            Some(x) => x.to_string(),
            None => "*".to_string(),
        };
        for e in &self.events {
            match e {
                FaultEvent::Message { sel, fault } => {
                    let head = match fault {
                        MsgFault::Drop => "drop".to_string(),
                        MsgFault::Delay { ms } => format!("delay ms={ms}"),
                        MsgFault::Duplicate => "dup".to_string(),
                    };
                    // keep ms after the verb but before selectors for Delay
                    let (verb, extra) = match head.split_once(' ') {
                        Some((v, rest)) => (v.to_string(), format!(" {rest}")),
                        None => (head, String::new()),
                    };
                    writeln!(
                        f,
                        "{verb} src={} dst={} tag={} nth={}{extra}",
                        part(sel.src.map(|v| v as u64)),
                        part(sel.dst.map(|v| v as u64)),
                        part(sel.tag),
                        sel.nth,
                    )?;
                }
                FaultEvent::KillRank { rank, at_step } => {
                    writeln!(f, "kill rank={rank} step={at_step}")?;
                }
                FaultEvent::DieRank { rank, at_step } => {
                    writeln!(f, "die rank={rank} step={at_step}")?;
                }
                FaultEvent::CorruptCheckpoint {
                    ckpt,
                    field,
                    subfile,
                    byte,
                } => {
                    writeln!(f, "corrupt ckpt={ckpt} field={field} subfile={subfile} byte={byte}")?;
                }
            }
        }
        Ok(())
    }
}

/// What a chaos scenario is expected to do to the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioExpectation {
    /// Faults are absent or transient: the run must finish healthy.
    Healthy,
    /// A rank is permanently lost: the run must finish in degraded mode on
    /// the survivors, matching a fresh reference run on the smaller world.
    Degraded,
    /// Recovery cannot succeed: the run must end with a structured
    /// `RecoveryFailure` — never a hang, panic, or silent wrong answer.
    Failure,
}

impl ScenarioExpectation {
    pub fn as_str(&self) -> &'static str {
        match self {
            ScenarioExpectation::Healthy => "healthy",
            ScenarioExpectation::Degraded => "degraded",
            ScenarioExpectation::Failure => "failure",
        }
    }

    /// Parse an `expect=` value, reporting `line` on failure. Public for
    /// the scenario catalog, which shares this grammar.
    pub fn parse(v: &str, line: usize) -> Result<Self, PlanParseError> {
        match v {
            "healthy" => Ok(ScenarioExpectation::Healthy),
            "degraded" => Ok(ScenarioExpectation::Degraded),
            "failure" => Ok(ScenarioExpectation::Failure),
            other => Err(PlanParseError {
                line,
                message: format!(
                    "expect must be healthy, degraded, or failure; got {other:?}"
                ),
            }),
        }
    }
}

/// One named scenario of a chaos [`Campaign`]: a seeded fault plan plus the
/// outcome the campaign runner must observe.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    pub name: String,
    pub expect: ScenarioExpectation,
    pub plan: FaultPlan,
}

/// A deterministic chaos campaign: an ordered list of named scenarios, each
/// with its own fault plan and expected outcome. Text format:
///
/// ```text
/// seed 42                      # campaign seed (before the first scenario)
/// scenario baseline expect=healthy
/// scenario lose-ocean expect=degraded
/// die rank=2 step=3
/// scenario lose-coupler expect=failure
/// die rank=1 step=2
/// kill rank=1 step=4
/// ```
///
/// Lines after a `scenario` header belong to that scenario's plan until the
/// next header. Scenarios that do not set their own `seed` get one derived
/// deterministically from the campaign seed and their position, so every
/// scenario is reproducible in isolation but decorrelated from its
/// neighbours. Plan parse errors report line numbers of the *campaign*
/// file, not scenario-relative offsets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Campaign {
    pub seed: u64,
    pub scenarios: Vec<ChaosScenario>,
}

/// splitmix64 of the campaign seed and scenario index: reproducible but
/// decorrelated per-scenario seeds. Public because the scenario catalog
/// (`ap3esm-scenario`), whose grammar supersets this campaign format,
/// derives member and scenario seeds with the same mix so a catalog and a
/// hand-built [`Campaign`] agree position-by-position.
pub fn scenario_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Campaign {
    pub fn new(seed: u64) -> Self {
        Campaign {
            seed,
            scenarios: Vec::new(),
        }
    }

    /// Append a scenario built from inline plan text. A plan without its
    /// own `seed` line gets the derived per-scenario seed.
    pub fn add(
        &mut self,
        name: &str,
        expect: ScenarioExpectation,
        plan_text: &str,
    ) -> Result<&mut Self, PlanParseError> {
        let mut plan = FaultPlan::parse(plan_text)?;
        if plan.seed == 0 {
            plan.seed = scenario_seed(self.seed, self.scenarios.len());
        }
        self.scenarios.push(ChaosScenario {
            name: name.to_string(),
            expect,
            plan,
        });
        Ok(self)
    }

    /// Parse the campaign text format (see the type docs).
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let all: Vec<&str> = text.lines().collect();
        let mut campaign = Campaign::default();
        // (name, expect, index of the first body line)
        let mut open: Option<(String, ScenarioExpectation, usize)> = None;
        for (i, raw) in all.iter().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let verb = toks.next().expect("non-empty line has a first token");
            if verb == "scenario" {
                if let Some((name, expect, start)) = open.take() {
                    campaign.finish_scenario(&all, name, expect, start, i)?;
                }
                let name = toks
                    .next()
                    .ok_or_else(|| PlanParseError {
                        line: lineno,
                        message: "scenario needs a name".into(),
                    })?
                    .to_string();
                let mut expect = None;
                for tok in toks {
                    let (k, v) = parse_kv(tok, lineno)?;
                    match k {
                        "expect" => expect = Some(ScenarioExpectation::parse(v, lineno)?),
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("unknown key {k:?} for scenario"),
                            })
                        }
                    }
                }
                let expect = expect.ok_or_else(|| PlanParseError {
                    line: lineno,
                    message: "scenario needs expect=healthy|degraded|failure".into(),
                })?;
                open = Some((name, expect, i + 1));
            } else if open.is_none() {
                if verb == "seed" {
                    let v = toks.next().ok_or_else(|| PlanParseError {
                        line: lineno,
                        message: "seed needs a value".into(),
                    })?;
                    campaign.seed = parse_num("seed", v, lineno)?;
                } else {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!(
                            "expected a scenario header before {verb:?} (only \
                             `seed` may precede the first scenario)"
                        ),
                    });
                }
            }
            // Body lines of an open scenario are consumed by finish_scenario.
        }
        if let Some((name, expect, start)) = open.take() {
            campaign.finish_scenario(&all, name, expect, start, all.len())?;
        }
        Ok(campaign)
    }

    fn finish_scenario(
        &mut self,
        all: &[&str],
        name: String,
        expect: ScenarioExpectation,
        start: usize,
        end: usize,
    ) -> Result<(), PlanParseError> {
        // Pad with blank lines so plan errors carry campaign-file line
        // numbers instead of scenario-relative offsets.
        let mut padded = "\n".repeat(start);
        padded.push_str(&all[start..end].join("\n"));
        let mut plan = FaultPlan::parse(&padded)?;
        if plan.seed == 0 {
            plan.seed = scenario_seed(self.seed, self.scenarios.len());
        }
        if self.scenarios.iter().any(|s| s.name == name) {
            return Err(PlanParseError {
                line: start, // header line (1-based) = body start index
                message: format!("duplicate scenario name {name:?}"),
            });
        }
        self.scenarios.push(ChaosScenario { name, expect, plan });
        Ok(())
    }

    /// Validate every scenario's plan against a concrete world size,
    /// naming the offending scenario.
    pub fn validate(&self, world_size: usize) -> Result<(), PlanParseError> {
        for sc in &self.scenarios {
            sc.plan.validate(world_size).map_err(|e| PlanParseError {
                line: e.line,
                message: format!("scenario {:?}: {}", sc.name, e.message),
            })?;
        }
        Ok(())
    }
}

/// A record of one fault that actually fired (for run reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    pub description: String,
}

struct MessageRule {
    sel: MsgSelector,
    fault: MsgFault,
    /// Per concrete `(src, dst, tag)` stream match counts.
    counts: Mutex<HashMap<(usize, usize, u64), u64>>,
}

/// Runtime state applying a [`FaultPlan`]'s message events inside a
/// `World`'s send path. Kill/corrupt events are consumed by the driver via
/// the plan itself; the injector tracks one-shot kill flags so a kill fires
/// exactly once even across rollback/replay.
pub struct FaultInjector {
    plan: FaultPlan,
    rules: Vec<MessageRule>,
    kill_fired: Vec<(usize, u64, AtomicBool)>,
    die_fired: Vec<(usize, u64, AtomicBool)>,
    fired: Mutex<Vec<FiredFault>>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let rules = plan
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Message { sel, fault } => Some(MessageRule {
                    sel: *sel,
                    fault: *fault,
                    counts: Mutex::new(HashMap::new()),
                }),
                _ => None,
            })
            .collect();
        let kill_fired = plan
            .kills()
            .into_iter()
            .map(|(r, s)| (r, s, AtomicBool::new(false)))
            .collect();
        let die_fired = plan
            .dies()
            .into_iter()
            .map(|(r, s)| (r, s, AtomicBool::new(false)))
            .collect();
        FaultInjector {
            plan,
            rules,
            kill_fired,
            die_fired,
            fired: Mutex::new(Vec::new()),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consult the plan for a message about to be sent. Counts the message
    /// against every matching rule and returns the first rule whose `nth`
    /// is hit (one fault per message).
    pub fn on_send(&self, src: usize, dst: usize, tag: u64) -> Option<MsgFault> {
        let mut hit = None;
        for rule in &self.rules {
            if !rule.sel.matches(src, dst, tag) {
                continue;
            }
            let mut counts = rule.counts.lock();
            let n = counts.entry((src, dst, tag)).or_insert(0);
            *n += 1;
            if *n == rule.sel.nth && hit.is_none() {
                hit = Some(rule.fault);
            }
        }
        if let Some(fault) = hit {
            self.record(format!(
                "msg fault {fault:?} on {src}->{dst} tag {tag:#x}"
            ));
        }
        hit
    }

    /// One-shot check: does `rank` lose its state at `step`? Returns true
    /// exactly once per matching kill event.
    pub fn take_kill(&self, rank: usize, step: u64) -> bool {
        for (r, s, done) in &self.kill_fired {
            if *r == rank
                && *s == step
                && done
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.record(format!("rank {rank} killed at step {step}"));
                return true;
            }
        }
        false
    }

    /// One-shot check: does `rank` die *permanently* at `step`? Returns true
    /// exactly once per matching die event — unlike a kill, the fired flag
    /// never re-arms across rollback/replay, because a dead rank stays dead.
    pub fn take_die(&self, rank: usize, step: u64) -> bool {
        for (r, s, done) in &self.die_fired {
            if *r == rank
                && *s == step
                && done
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.record(format!("rank {rank} died permanently at step {step}"));
                return true;
            }
        }
        false
    }

    fn record(&self, description: String) {
        self.fired.lock().push(FiredFault { description });
    }

    /// Externally observed faults (e.g. a corruption applied by the
    /// driver) are logged here too so the run report sees one stream.
    pub fn record_external(&self, description: impl Into<String>) {
        self.record(description.into());
    }

    /// Everything that fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = "\
# rehearsal plan
seed 42
drop src=0 dst=1 tag=21 nth=2
delay src=* dst=3 tag=* nth=1 ms=50
dup src=1 dst=0 tag=22 nth=1
kill rank=2 step=3
corrupt ckpt=1 field=atm_theta subfile=0 byte=100
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.events.len(), 5);
        assert_eq!(plan.kills(), vec![(2, 3)]);
        assert_eq!(plan.corruptions_for(1), vec![("atm_theta", 0, 100)]);
        assert!(plan.corruptions_for(0).is_empty());
        assert!(plan.has_message_events());
        // Display → parse is the identity.
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "frobnicate rank=1",
            "drop src=zero dst=1 tag=1 nth=1",
            "drop src=0 dst=1 tag=1 nth=0",
            "kill rank=1",
            "corrupt ckpt=1",
            "seed",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert_eq!(err.line, 1, "{bad}");
        }
    }

    #[test]
    fn injector_counts_per_stream() {
        let plan = FaultPlan::parse("drop src=0 dst=1 tag=7 nth=2").unwrap();
        let inj = FaultInjector::new(plan);
        // Other streams never trip the rule.
        assert_eq!(inj.on_send(0, 2, 7), None);
        assert_eq!(inj.on_send(1, 0, 7), None);
        // First matching message passes, second is dropped, third passes.
        assert_eq!(inj.on_send(0, 1, 7), None);
        assert_eq!(inj.on_send(0, 1, 7), Some(MsgFault::Drop));
        assert_eq!(inj.on_send(0, 1, 7), None);
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn wildcard_selector_fires_per_stream() {
        let plan = FaultPlan::parse("delay src=* dst=* tag=* nth=1 ms=5").unwrap();
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_send(0, 1, 1), Some(MsgFault::Delay { ms: 5 }));
        assert_eq!(inj.on_send(0, 1, 1), None); // same stream: already fired
        assert_eq!(inj.on_send(2, 3, 9), Some(MsgFault::Delay { ms: 5 }));
    }

    #[test]
    fn kill_is_one_shot() {
        let plan = FaultPlan::parse("kill rank=2 step=3").unwrap();
        let inj = FaultInjector::new(plan);
        assert!(!inj.take_kill(2, 2));
        assert!(!inj.take_kill(1, 3));
        assert!(inj.take_kill(2, 3));
        assert!(!inj.take_kill(2, 3), "kill must fire exactly once");
    }

    #[test]
    fn die_parses_roundtrips_and_is_one_shot() {
        let plan = FaultPlan::parse("die rank=2 step=3\nkill rank=2 step=3").unwrap();
        assert_eq!(plan.dies(), vec![(2, 3)]);
        assert_eq!(plan.kills(), vec![(2, 3)]);
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, again);
        let inj = FaultInjector::new(plan);
        assert!(!inj.take_die(2, 2));
        assert!(!inj.take_die(1, 3));
        assert!(inj.take_die(2, 3));
        assert!(!inj.take_die(2, 3), "die must fire exactly once");
    }

    #[test]
    fn duplicate_events_are_rejected_with_both_lines() {
        let err = FaultPlan::parse(
            "kill rank=2 step=3\n# comment\nkill rank=2 step=3",
        )
        .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("line 1"), "{}", err.message);
        // Same rank at a different step is two distinct events, not a dup.
        assert!(FaultPlan::parse("kill rank=2 step=3\nkill rank=2 step=5").is_ok());
    }

    #[test]
    fn validate_points_at_the_offending_line() {
        let plan = FaultPlan::parse(
            "drop src=0 dst=1 tag=7 nth=1\nkill rank=2 step=3\ndie rank=3 step=4",
        )
        .unwrap();
        assert!(plan.validate(4).is_ok());
        // die rank=3 is out of range in a 3-rank world → line 3.
        let err = plan.validate(3).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("rank 3"), "{}", err.message);
        // kill rank=2 is out of range in a 2-rank world → line 2.
        assert_eq!(plan.validate(2).unwrap_err().line, 2);
        // Selector naming rank 1 is out of range in a 1-rank world → line 1.
        assert_eq!(plan.validate(1).unwrap_err().line, 1);
        // Dying rank 0 is never survivable.
        let p0 = FaultPlan::parse("die rank=0 step=1").unwrap();
        let err = p0.validate(4).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("rank 0"), "{}", err.message);
    }

    #[test]
    fn campaign_parses_named_scenarios_with_campaign_line_numbers() {
        let text = "\
seed 7
scenario baseline expect=healthy

scenario lose-ocean expect=degraded
die rank=2 step=3
scenario doomed expect=failure
die rank=1 step=2
kill rank=1 step=4
";
        let c = Campaign::parse(text).unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.scenarios.len(), 3);
        assert_eq!(c.scenarios[0].name, "baseline");
        assert_eq!(c.scenarios[0].expect, ScenarioExpectation::Healthy);
        assert!(c.scenarios[0].plan.events.is_empty());
        assert_eq!(c.scenarios[1].plan.dies(), vec![(2, 3)]);
        assert_eq!(c.scenarios[2].plan.dies(), vec![(1, 2)]);
        assert_eq!(c.scenarios[2].plan.kills(), vec![(1, 4)]);
        // Derived seeds: deterministic, nonzero, decorrelated.
        assert_ne!(c.scenarios[0].plan.seed, c.scenarios[1].plan.seed);
        assert_eq!(Campaign::parse(text).unwrap(), c);
        // Validation names the scenario; die rank=2 is on campaign line 5.
        let err = c.validate(2).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("lose-ocean"), "{}", err.message);
        // A plan error inside scenario 3's body carries the campaign line.
        let bad = text.replace("kill rank=1 step=4", "kill rank=1");
        assert_eq!(Campaign::parse(&bad).unwrap_err().line, 8);
        // Events before any scenario header are rejected.
        let err = Campaign::parse("drop src=0 dst=1 tag=1 nth=1").unwrap_err();
        assert_eq!(err.line, 1);
        // Duplicate scenario names are rejected.
        let err = Campaign::parse(
            "scenario a expect=healthy\nscenario a expect=failure",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn campaign_builder_derives_scenario_seeds() {
        let mut c = Campaign::new(42);
        c.add("quiet", ScenarioExpectation::Healthy, "").unwrap();
        c.add("loss", ScenarioExpectation::Degraded, "die rank=2 step=3")
            .unwrap();
        c.add("pinned", ScenarioExpectation::Healthy, "seed 9").unwrap();
        assert_ne!(c.scenarios[0].plan.seed, 0);
        assert_ne!(c.scenarios[0].plan.seed, c.scenarios[1].plan.seed);
        assert_eq!(c.scenarios[2].plan.seed, 9, "explicit seed wins");
        // Builder and text parse derive identical seeds per position.
        let parsed = Campaign::parse(
            "seed 42\nscenario quiet expect=healthy\nscenario loss expect=degraded\ndie rank=2 step=3",
        )
        .unwrap();
        assert_eq!(parsed.scenarios[0].plan.seed, c.scenarios[0].plan.seed);
        assert_eq!(parsed.scenarios[1].plan.seed, c.scenarios[1].plan.seed);
    }
}
