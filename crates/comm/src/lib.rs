//! # AP3ESM message-passing substrate (`ap3esm-comm`)
//!
//! An MPI-analogue used by every AP3ESM component. The paper runs MPI over
//! up to 37.2 million Sunway cores; reproducing that transport is out of
//! scope (repro band 1/5), so this crate provides a *rank-per-thread*
//! message-passing world with the same programming surface:
//!
//! * point-to-point blocking and non-blocking send/recv with tags,
//! * collectives (barrier, broadcast, gather, allgather, allreduce,
//!   alltoallv) implemented **on top of point-to-point messages**, so the
//!   traffic they generate is observable,
//! * communicator splitting (used by the hybrid task–data parallelization
//!   strategy of §5.1.2 to give the ocean its own task domain),
//! * per-world traffic accounting (messages/bytes), which feeds the
//!   `ap3esm-machine` network model when projecting to full machine scale.
//!
//! Messages move as `Box<dyn Any>` within one address space — zero
//! serialisation, but byte volumes are still tracked via `size_of::<T>()`,
//! keeping communication *volumes* identical to a real MPI run.

pub mod collectives;
pub mod events;
pub mod faultplan;
pub mod halo;
pub mod stats;
pub mod world;

pub use collectives::{collective_kind, is_collective_tag};
pub use events::{trace_epoch, trace_now_us, CommEvent, CommEventKind, CommEventLog};
pub use faultplan::{
    scenario_seed, Campaign, ChaosScenario, FaultEvent, FaultInjector, FaultPlan, MsgFault,
    MsgSelector, PlanParseError, ScenarioExpectation,
};
pub use halo::{HaloExchange, HaloSpec};
pub use stats::CommStats;
pub use world::{Membership, MembershipVerdict, Rank, RecvHandle, SubComm, World};

/// Errors surfaced by the communication layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A blocking receive waited longer than the world's deadlock timeout.
    /// Carries the `(source, tag)` set the rank was waiting on so the
    /// driver can report *what* the rank was blocked on, not just that it
    /// was blocked.
    Deadlock {
        rank: usize,
        waiting: Vec<(usize, u64)>,
    },
    /// A message arrived with an unexpected payload type.
    TypeMismatch { rank: usize, src: usize, tag: u64 },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Deadlock { rank, waiting } => {
                write!(f, "rank {rank}: deadlock, still waiting on")?;
                for (src, tag) in waiting {
                    write!(f, " (src {src}, tag {tag:#x})")?;
                }
                Ok(())
            }
            CommError::TypeMismatch { rank, src, tag } => {
                write!(f, "rank {rank}: payload type mismatch from {src} tag {tag}")
            }
        }
    }
}

impl std::error::Error for CommError {}
