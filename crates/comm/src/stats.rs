//! Traffic accounting.
//!
//! Every send in a [`crate::World`] is tallied here. The per-rank-pair
//! volumes let the `ap3esm-machine` network model charge fat-tree hops and
//! oversubscription for an equivalent run on Sunway OceanLight, and the
//! per-tag volumes let the observability layer attribute bytes to coupling
//! phases (scatter vs gather rearrangement, halos, collectives).
//!
//! Totals are lock-free atomics. The pair/tag maps are **sharded by source
//! rank**: each sending thread is its own rank, so with up to
//! [`N_SHARDS`] ranks every sender owns a private shard and the map lock is
//! never contended (beyond that, contention is 1/[`N_SHARDS`] of a single
//! global lock — the pre-sharding design took one lock on *every* send).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Number of source-rank shards for the pair/tag maps.
pub const N_SHARDS: usize = 16;

#[derive(Default)]
struct ShardMaps {
    /// (src, dst) → bytes.
    pairs: HashMap<(usize, usize), u64>,
    /// wire tag → (messages, bytes).
    tags: HashMap<u64, (u64, u64)>,
}

/// Counters for one world. All methods are thread-safe; the totals are
/// lock-free and the detail maps take only the sender's shard lock.
pub struct CommStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    /// Messages rejected on receive because they carried an older world
    /// generation than the receiver's (pre-shrink traffic filtered out).
    stale: AtomicU64,
    shards: Vec<Mutex<ShardMaps>>,
}

impl Default for CommStats {
    fn default() -> Self {
        CommStats {
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            shards: (0..N_SHARDS).map(|_| Mutex::new(ShardMaps::default())).collect(),
        }
    }
}

impl CommStats {
    pub fn record_send(&self, src: usize, dst: usize, tag: u64, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut shard = self.shards[src % N_SHARDS].lock();
        *shard.pairs.entry((src, dst)).or_insert(0) += bytes as u64;
        let t = shard.tags.entry(tag).or_insert((0, 0));
        t.0 += 1;
        t.1 += bytes as u64;
    }

    /// Count one stale-generation message rejected at receive time.
    pub fn record_stale(&self) {
        self.stale.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages rejected for carrying an out-of-date world generation.
    pub fn stale_messages(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Total messages sent in the world so far.
    pub fn total_messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent in the world so far.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent from `src` to `dst`.
    pub fn pair_bytes(&self, src: usize, dst: usize) -> u64 {
        self.shards[src % N_SHARDS]
            .lock()
            .pairs
            .get(&(src, dst))
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of the full (src, dst) → bytes matrix, sorted by key.
    pub fn pair_matrix(&self) -> Vec<((usize, usize), u64)> {
        let mut v: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().pairs.iter().map(|(k, b)| (*k, *b)).collect::<Vec<_>>())
            .collect();
        v.sort();
        v
    }

    /// The `k` hottest (src, dst) pairs by bytes, descending (ties broken
    /// by rank pair for determinism).
    pub fn top_pairs(&self, k: usize) -> Vec<(usize, usize, u64)> {
        let mut v: Vec<(usize, usize, u64)> = self
            .pair_matrix()
            .into_iter()
            .map(|((src, dst), b)| (src, dst, b))
            .collect();
        v.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        v.truncate(k);
        v
    }

    /// (messages, bytes) sent under one wire tag.
    pub fn tag_traffic(&self, tag: u64) -> (u64, u64) {
        let mut total = (0, 0);
        for s in &self.shards {
            if let Some(&(m, b)) = s.lock().tags.get(&tag) {
                total.0 += m;
                total.1 += b;
            }
        }
        total
    }

    /// Snapshot of the wire tag → (messages, bytes) map, sorted by tag.
    pub fn tag_matrix(&self) -> Vec<(u64, (u64, u64))> {
        let mut merged: HashMap<u64, (u64, u64)> = HashMap::new();
        for s in &self.shards {
            for (&tag, &(m, b)) in s.lock().tags.iter() {
                let e = merged.entry(tag).or_insert((0, 0));
                e.0 += m;
                e.1 += b;
            }
        }
        let mut v: Vec<_> = merged.into_iter().collect();
        v.sort();
        v
    }

    /// Reset all counters (between measurement phases).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        for s in &self.shards {
            let mut shard = s.lock();
            shard.pairs.clear();
            shard.tags.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_reset() {
        let s = CommStats::default();
        s.record_send(0, 1, 7, 100);
        s.record_send(0, 1, 7, 50);
        s.record_send(1, 0, 9, 8);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 158);
        assert_eq!(s.pair_bytes(0, 1), 150);
        assert_eq!(s.pair_bytes(1, 0), 8);
        assert_eq!(s.pair_bytes(1, 2), 0);
        assert_eq!(s.pair_matrix().len(), 2);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert!(s.pair_matrix().is_empty());
        assert!(s.tag_matrix().is_empty());
    }

    #[test]
    fn per_tag_traffic_separates_streams() {
        let s = CommStats::default();
        s.record_send(0, 1, 21, 800);
        s.record_send(0, 2, 21, 800);
        s.record_send(1, 0, 22, 160);
        assert_eq!(s.tag_traffic(21), (2, 1600));
        assert_eq!(s.tag_traffic(22), (1, 160));
        assert_eq!(s.tag_traffic(99), (0, 0));
        assert_eq!(
            s.tag_matrix(),
            vec![(21, (2, 1600)), (22, (1, 160))]
        );
    }

    #[test]
    fn top_pairs_sort_by_bytes_then_rank() {
        let s = CommStats::default();
        s.record_send(0, 1, 1, 100);
        s.record_send(2, 3, 1, 900);
        s.record_send(1, 0, 1, 900);
        s.record_send(3, 0, 1, 5);
        assert_eq!(
            s.top_pairs(3),
            vec![(1, 0, 900), (2, 3, 900), (0, 1, 100)]
        );
        assert_eq!(s.top_pairs(0), vec![]);
    }

    #[test]
    fn sharded_maps_agree_across_many_sources() {
        // Sources spread over more ranks than shards still aggregate right.
        let s = CommStats::default();
        for src in 0..(3 * N_SHARDS) {
            s.record_send(src, 0, 4, 10);
        }
        assert_eq!(s.total_messages(), 3 * N_SHARDS as u64);
        assert_eq!(s.pair_matrix().len(), 3 * N_SHARDS);
        assert_eq!(s.tag_traffic(4).1, 30 * N_SHARDS as u64);
    }

    #[test]
    fn concurrent_senders_lose_nothing() {
        let s = std::sync::Arc::new(CommStats::default());
        std::thread::scope(|scope| {
            for src in 0..8 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..500 {
                        s.record_send(src, (src + 1) % 8, (i % 3) as u64, 8);
                    }
                });
            }
        });
        assert_eq!(s.total_messages(), 4000);
        assert_eq!(s.total_bytes(), 32_000);
        let tags = s.tag_matrix();
        assert_eq!(tags.iter().map(|(_, (m, _))| m).sum::<u64>(), 4000);
    }
}
