//! Traffic accounting.
//!
//! Every send in a [`crate::World`] is tallied here. The per-rank-pair
//! volumes let the `ap3esm-machine` network model charge fat-tree hops and
//! oversubscription for an equivalent run on Sunway OceanLight.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Counters for one world. All methods are thread-safe and lock-free on the
/// hot path (totals); the pair matrix takes a short lock.
#[derive(Default)]
pub struct CommStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    pairs: Mutex<std::collections::HashMap<(usize, usize), u64>>,
}

impl CommStats {
    pub fn record_send(&self, src: usize, dst: usize, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        *self.pairs.lock().entry((src, dst)).or_insert(0) += bytes as u64;
    }

    /// Total messages sent in the world so far.
    pub fn total_messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent in the world so far.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent from `src` to `dst`.
    pub fn pair_bytes(&self, src: usize, dst: usize) -> u64 {
        self.pairs.lock().get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Snapshot of the full (src, dst) → bytes matrix.
    pub fn pair_matrix(&self) -> Vec<((usize, usize), u64)> {
        let mut v: Vec<_> = self.pairs.lock().iter().map(|(k, b)| (*k, *b)).collect();
        v.sort();
        v
    }

    /// Reset all counters (between measurement phases).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.pairs.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_reset() {
        let s = CommStats::default();
        s.record_send(0, 1, 100);
        s.record_send(0, 1, 50);
        s.record_send(1, 0, 8);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 158);
        assert_eq!(s.pair_bytes(0, 1), 150);
        assert_eq!(s.pair_bytes(1, 0), 8);
        assert_eq!(s.pair_bytes(1, 2), 0);
        assert_eq!(s.pair_matrix().len(), 2);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert!(s.pair_matrix().is_empty());
    }
}
