//! Halo (boundary) exchange.
//!
//! Both AP3ESM dycores are halo-dominated at scale: the atmosphere exchanges
//! icosahedral patch rims, the ocean exchanges tripolar tile edges (with a
//! rebuilt topology after non-ocean point removal, §5.2.2). [`HaloExchange`]
//! captures the pattern once — per-neighbor send index lists and receive
//! slots — and then executes it with non-blocking point-to-point messages.
//!
//! Each link carries a `channel` so that multiple links between the same
//! pair of ranks (e.g. east and west edges on a 2-rank periodic strip, or a
//! self-halo on one rank) stay distinct despite FIFO mailboxes.

use crate::world::Rank;
use crate::CommError;

/// One direction of a halo link.
#[derive(Debug, Clone)]
pub struct HaloLink {
    /// Peer rank.
    pub peer: usize,
    /// Logical channel; a send on channel `c` matches the peer's receive on
    /// channel `c`.
    pub channel: u64,
    /// Local indices: cells to pack (for sends) or ghost slots to fill (for
    /// receives, in the peer's send order).
    pub indices: Vec<usize>,
}

/// Static description of one rank's halo pattern.
#[derive(Debug, Clone, Default)]
pub struct HaloSpec {
    pub sends: Vec<HaloLink>,
    pub recvs: Vec<HaloLink>,
}

impl HaloSpec {
    /// Total values sent per exchange.
    pub fn send_count(&self) -> usize {
        self.sends.iter().map(|l| l.indices.len()).sum()
    }

    /// Total ghost values received per exchange.
    pub fn recv_count(&self) -> usize {
        self.recvs.iter().map(|l| l.indices.len()).sum()
    }
}

/// Executes a [`HaloSpec`] against a field buffer.
pub struct HaloExchange {
    spec: HaloSpec,
    tag: u64,
}

/// Channels are folded into the wire tag below this stride; specs may use
/// channels `0..CHANNEL_STRIDE`.
const CHANNEL_STRIDE: u64 = 64;

impl HaloExchange {
    pub fn new(spec: HaloSpec, tag: u64) -> Self {
        for l in spec.sends.iter().chain(&spec.recvs) {
            assert!(l.channel < CHANNEL_STRIDE, "halo channel out of range");
        }
        HaloExchange { spec, tag }
    }

    pub fn spec(&self) -> &HaloSpec {
        &self.spec
    }

    fn wire_tag(&self, channel: u64, packed: bool) -> u64 {
        self.tag * 2 * CHANNEL_STRIDE + channel + if packed { CHANNEL_STRIDE } else { 0 }
    }

    /// Exchange ghosts for `field`: gathers send values, posts all sends,
    /// then receives and scatters into ghost slots. Returns the number of
    /// values received.
    pub fn exchange(&self, rank: &Rank, field: &mut [f64]) -> Result<usize, CommError> {
        // Post all sends first (non-blocking), then drain receives: the
        // paper's "non-blocking point-to-point … overlaps communication and
        // computation" pattern (§5.2.4).
        for link in &self.spec.sends {
            let buf: Vec<f64> = link.indices.iter().map(|&i| field[i]).collect();
            rank.isend(link.peer, self.wire_tag(link.channel, false), buf);
        }
        let mut received = 0;
        for link in &self.spec.recvs {
            let buf: Vec<f64> = rank.recv(link.peer, self.wire_tag(link.channel, false))?;
            assert_eq!(
                buf.len(),
                link.indices.len(),
                "halo message length mismatch from rank {}",
                link.peer
            );
            for (slot, v) in link.indices.iter().zip(buf) {
                field[*slot] = v;
            }
            received += link.indices.len();
        }
        Ok(received)
    }

    /// Exchange ghosts for several fields at once, packed into one message
    /// per link — fewer, larger messages, as the real model does for
    /// multi-variable state.
    pub fn exchange_many(
        &self,
        rank: &Rank,
        fields: &mut [&mut [f64]],
    ) -> Result<usize, CommError> {
        let nf = fields.len();
        for link in &self.spec.sends {
            let mut buf = Vec::with_capacity(link.indices.len() * nf);
            for f in fields.iter() {
                buf.extend(link.indices.iter().map(|&i| f[i]));
            }
            rank.isend(link.peer, self.wire_tag(link.channel, true), buf);
        }
        let mut received = 0;
        for link in &self.spec.recvs {
            let buf: Vec<f64> = rank.recv(link.peer, self.wire_tag(link.channel, true))?;
            assert_eq!(
                buf.len(),
                link.indices.len() * nf,
                "packed halo length mismatch"
            );
            for (fi, f) in fields.iter_mut().enumerate() {
                let base = fi * link.indices.len();
                for (s, slot) in link.indices.iter().enumerate() {
                    f[*slot] = buf[base + s];
                }
            }
            received += link.indices.len() * nf;
        }
        Ok(received)
    }
}

/// Build the halo spec for a 1-D ring decomposition of a periodic domain:
/// each rank owns `local` cells plus one ghost on each side. Channel 0
/// carries westward messages (sent to the left neighbor), channel 1
/// eastward.
pub fn ring_spec(rank_id: usize, nranks: usize, local: usize) -> HaloSpec {
    assert!(local >= 1);
    let left = (rank_id + nranks - 1) % nranks;
    let right = (rank_id + 1) % nranks;
    // Layout: [ghost_left, interior(0..local), ghost_right]
    let first = 1;
    let last = local; // index of last interior cell
    HaloSpec {
        sends: vec![
            HaloLink {
                peer: left,
                channel: 0,
                indices: vec![first],
            },
            HaloLink {
                peer: right,
                channel: 1,
                indices: vec![last],
            },
        ],
        recvs: vec![
            HaloLink {
                peer: left,
                channel: 1, // left neighbor's eastward message = its last cell
                indices: vec![0],
            },
            HaloLink {
                peer: right,
                channel: 0, // right neighbor's westward message = its first cell
                indices: vec![local + 1],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn ring_halo_moves_edge_values() {
        let nranks = 4;
        let local = 3;
        let world = World::new(nranks);
        let fields = world.run(|rank| {
            let mut field = vec![0.0; local + 2];
            for i in 0..local {
                field[1 + i] = (rank.id() * 100 + i) as f64;
            }
            let ex = HaloExchange::new(ring_spec(rank.id(), nranks, local), 50);
            let n = ex.exchange(rank, &mut field).unwrap();
            assert_eq!(n, 2);
            field
        });
        for (r, field) in fields.iter().enumerate() {
            let left = (r + nranks - 1) % nranks;
            let right = (r + 1) % nranks;
            assert_eq!(field[0], (left * 100 + local - 1) as f64);
            assert_eq!(field[local + 1], (right * 100) as f64);
        }
    }

    #[test]
    fn two_rank_ring_disambiguates_directions() {
        // left == right here; channels keep the two links distinct.
        let nranks = 2;
        let local = 2;
        let world = World::new(nranks);
        let fields = world.run(|rank| {
            let mut field = vec![0.0; local + 2];
            for i in 0..local {
                field[1 + i] = (rank.id() * 10 + i) as f64;
            }
            let ex = HaloExchange::new(ring_spec(rank.id(), nranks, local), 55);
            ex.exchange(rank, &mut field).unwrap();
            field
        });
        // Rank 0: left ghost <- rank 1's last (11), right ghost <- rank 1's first (10).
        assert_eq!(fields[0][0], 11.0);
        assert_eq!(fields[0][local + 1], 10.0);
        // Rank 1: left ghost <- rank 0's last (1), right ghost <- rank 0's first (0).
        assert_eq!(fields[1][0], 1.0);
        assert_eq!(fields[1][local + 1], 0.0);
    }

    #[test]
    fn packed_exchange_matches_individual() {
        let nranks = 3;
        let local = 4;
        let world = World::new(nranks);
        world.run(|rank| {
            let spec = ring_spec(rank.id(), nranks, local);
            let mut a1 = vec![0.0; local + 2];
            let mut b1 = vec![0.0; local + 2];
            for i in 0..local {
                a1[1 + i] = (rank.id() * 10 + i) as f64;
                b1[1 + i] = -(rank.id() as f64) - i as f64;
            }
            let mut a2 = a1.clone();
            let mut b2 = b1.clone();
            let ex1 = HaloExchange::new(spec.clone(), 60);
            ex1.exchange(rank, &mut a1).unwrap();
            ex1.exchange(rank, &mut b1).unwrap();
            let ex2 = HaloExchange::new(spec, 70);
            ex2.exchange_many(rank, &mut [&mut a2, &mut b2]).unwrap();
            assert_eq!(a1, a2);
            assert_eq!(b1, b2);
        });
    }

    #[test]
    fn spec_counts() {
        let spec = ring_spec(0, 4, 8);
        assert_eq!(spec.send_count(), 2);
        assert_eq!(spec.recv_count(), 2);
    }

    #[test]
    fn single_rank_ring_self_halo() {
        // Periodic domain on one rank: ghosts wrap to own interior.
        let world = World::new(1);
        world.run(|rank| {
            let local = 3;
            let mut field = vec![0.0, 1.0, 2.0, 3.0, 0.0];
            let ex = HaloExchange::new(ring_spec(0, 1, local), 80);
            ex.exchange(rank, &mut field).unwrap();
            assert_eq!(field[0], 3.0); // left ghost <- last interior
            assert_eq!(field[4], 1.0); // right ghost <- first interior
        });
    }

    #[test]
    #[should_panic(expected = "halo channel out of range")]
    fn oversized_channel_rejected() {
        let spec = HaloSpec {
            sends: vec![HaloLink {
                peer: 0,
                channel: 64,
                indices: vec![],
            }],
            recvs: vec![],
        };
        let _ = HaloExchange::new(spec, 0);
    }
}
