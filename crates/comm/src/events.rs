//! Timestamped communication events for per-rank trace timelines.
//!
//! The paper's §6.2 analysis needs coupler *wait time* to be visible per
//! rank, not just aggregate byte counts: a rank stalled in `recv` during
//! the rearrangement shows up here as a long blocking record. Every
//! [`World`](crate::world::World) owns one [`CommEventLog`] — a bounded
//! ring buffer per rank — that the send/recv paths feed when enabled.
//! Disabled (the default), the hot-path cost is a single relaxed atomic
//! load per message, preserving the zero-cost-when-off rule the rest of
//! the observability stack follows.
//!
//! All timestamps are microseconds since the shared [`trace_epoch`]. Ranks
//! are threads of one process, so a single epoch aligns every rank's track
//! on one timeline — the property chrome-trace flow events rely on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

/// The process-wide trace clock origin. First caller pins it; every
/// subsequent timestamp (span or comm event, any rank) is relative to it.
pub fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`trace_epoch`].
pub fn trace_now_us() -> u64 {
    trace_epoch().elapsed().as_micros() as u64
}

/// What a [`CommEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommEventKind {
    /// A buffered send (duration 0: the payload moves immediately).
    Send,
    /// A blocking receive; `dur_us` is the time spent waiting, so deadlock
    /// timeouts and rearrangement stalls are visible on the timeline.
    Recv,
    /// A blocking receive that exhausted its deadline and surfaced a
    /// `Deadlock`; `peer`/`tag` name the stream the rank was waiting on and
    /// `dur_us` is the full timed-out window. The postmortem analyzer keys
    /// its first-stalled-rank search on these.
    Timeout,
    /// Stale-generation messages discarded at receive or by
    /// [`drain_stale`](crate::world::Rank::drain_stale); `peer` is the
    /// source rank of the discarded traffic and `bytes` carries the number
    /// of messages dropped (not bytes).
    Stale,
}

impl CommEventKind {
    /// Stable lower-case label (used by the flight-recorder journal).
    pub fn label(&self) -> &'static str {
        match self {
            CommEventKind::Send => "send",
            CommEventKind::Recv => "recv",
            CommEventKind::Timeout => "timeout",
            CommEventKind::Stale => "stale",
        }
    }
}

/// One timestamped point-to-point event on a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEvent {
    pub kind: CommEventKind,
    /// Microseconds since [`trace_epoch`] at event start.
    pub ts_us: u64,
    /// Event duration in microseconds (0 for sends).
    pub dur_us: u64,
    /// The other rank (destination for sends, source for receives).
    pub peer: usize,
    pub tag: u64,
    pub bytes: u64,
}

/// Default per-rank ring capacity (events, not bytes).
pub const DEFAULT_COMM_EVENT_CAPACITY: usize = 16_384;

/// Per-rank bounded ring buffers of [`CommEvent`]s, shared by the world.
///
/// When the ring is full the *oldest* events are evicted (a trace of the
/// most recent window beats a trace of the spin-up), and the eviction count
/// is reported alongside the drained events.
pub struct CommEventLog {
    enabled: AtomicBool,
    capacity: usize,
    rings: Vec<Mutex<VecDeque<CommEvent>>>,
    dropped: Vec<AtomicU64>,
}

impl CommEventLog {
    pub fn new(n_ranks: usize, capacity: usize) -> Self {
        CommEventLog {
            enabled: AtomicBool::new(false),
            capacity,
            rings: (0..n_ranks).map(|_| Mutex::new(VecDeque::new())).collect(),
            dropped: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Turn recording on or off (idempotent; any rank may call it).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The hot-path gate: one relaxed load.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity per rank.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rank rings.
    pub fn n_ranks(&self) -> usize {
        self.rings.len()
    }

    /// Append an event to `rank`'s ring (caller already checked
    /// [`CommEventLog::is_enabled`]).
    pub fn record(&self, rank: usize, event: CommEvent) {
        let mut ring = self.rings[rank].lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped[rank].fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Drain `rank`'s ring: the retained events in arrival order plus how
    /// many older events the ring evicted.
    pub fn take(&self, rank: usize) -> (Vec<CommEvent>, u64) {
        let events = std::mem::take(&mut *self.rings[rank].lock());
        (
            events.into(),
            self.dropped[rank].swap(0, Ordering::Relaxed),
        )
    }

    /// Clone `rank`'s retained events without draining the ring — the
    /// diagnostics-bundle path uses this so a postmortem snapshot does not
    /// steal the events a later trace export still needs.
    pub fn snapshot(&self, rank: usize) -> (Vec<CommEvent>, u64) {
        let ring = self.rings[rank].lock();
        (
            ring.iter().cloned().collect(),
            self.dropped[rank].load(Ordering::Relaxed),
        )
    }

    /// Drain every rank's ring in one pass: `result[rank]` is that rank's
    /// retained events in arrival order, with the summed eviction count.
    /// The end-of-run exporters (chrome trace, critical-path analyzer)
    /// share one drain through this, so whichever runs first cannot starve
    /// the other.
    pub fn take_all(&self) -> (Vec<Vec<CommEvent>>, u64) {
        let mut dropped = 0;
        let rings = (0..self.rings.len())
            .map(|r| {
                let (events, d) = self.take(r);
                dropped += d;
                events
            })
            .collect();
        (rings, dropped)
    }

    /// Clone every rank's retained events without draining (postmortem
    /// snapshots; see [`CommEventLog::snapshot`]).
    pub fn snapshot_all(&self) -> (Vec<Vec<CommEvent>>, u64) {
        let mut dropped = 0;
        let rings = (0..self.rings.len())
            .map(|r| {
                let (events, d) = self.snapshot(r);
                dropped += d;
                events
            })
            .collect();
        (rings, dropped)
    }

    /// Events currently buffered for `rank` (test/diagnostic helper).
    pub fn len(&self, rank: usize) -> usize {
        self.rings[rank].lock().len()
    }

    pub fn is_empty(&self, rank: usize) -> bool {
        self.len(rank) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> CommEvent {
        CommEvent {
            kind: CommEventKind::Send,
            ts_us: ts,
            dur_us: 0,
            peer: 1,
            tag: 7,
            bytes: 64,
        }
    }

    #[test]
    fn epoch_is_stable_and_clock_is_monotone() {
        let a = trace_epoch();
        let t0 = trace_now_us();
        let b = trace_epoch();
        assert_eq!(a, b);
        assert!(trace_now_us() >= t0);
    }

    #[test]
    fn disabled_log_gates_on_one_flag() {
        let log = CommEventLog::new(2, 8);
        assert!(!log.is_enabled());
        log.set_enabled(true);
        assert!(log.is_enabled());
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let log = CommEventLog::new(1, 3);
        for t in 0..5 {
            log.record(0, ev(t));
        }
        let (events, dropped) = log.take(0);
        assert_eq!(dropped, 2);
        let ts: Vec<u64> = events.iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        // Drained: the ring and the counter both reset.
        let (events, dropped) = log.take(0);
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn rings_are_per_rank() {
        let log = CommEventLog::new(3, 8);
        log.record(0, ev(1));
        log.record(2, ev(2));
        assert_eq!(log.len(0), 1);
        assert_eq!(log.len(1), 0);
        assert_eq!(log.len(2), 1);
    }
}
