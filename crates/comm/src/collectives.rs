//! Collective operations built on point-to-point messages.
//!
//! AP3ESM's coupler replaced all-to-all MPI rearrangement with non-blocking
//! point-to-point (§5.2.4); keeping collectives P2P-based here means the
//! byte traffic of both strategies is measured on equal footing.
//!
//! All reductions combine contributions **in rank order**, so results are
//! deterministic and identical across repeated runs — the property AP3ESM's
//! bit-for-bit validation relies on.
//!
//! Every collective returns `Result`: under fault injection a dropped
//! message surfaces as [`CommError::Deadlock`] instead of a panic, so the
//! driver's recovery path stays reachable.

use crate::world::Rank;
use crate::CommError;

// Reserved internal tag blocks (top of a dedicated namespace well above any
// user tag used by the model components).
pub(crate) const TAG_BASE: u64 = 0xC0_0000_0000;
pub(crate) const TAG_BCAST: u64 = TAG_BASE + 0x1000;
pub(crate) const TAG_GATHER: u64 = TAG_BASE + 0x2000;
pub(crate) const TAG_ALLGATHER: u64 = TAG_BASE + 0x3000;
pub(crate) const TAG_ALLREDUCE: u64 = TAG_BASE + 0x4000;
pub(crate) const TAG_ALLTOALL: u64 = TAG_BASE + 0x5000;
pub(crate) const TAG_SPLIT: u64 = TAG_BASE + 0x6000;
pub(crate) const TAG_SUB_BARRIER: u64 = TAG_BASE + 0x7000;
pub(crate) const TAG_SCATTER: u64 = TAG_BASE + 0x8000;

/// The wire tag an `alltoallv` with user tag `tag` sends under — lets
/// traffic observers ([`crate::CommStats::tag_traffic`]) attribute bytes to
/// the collective that moved them.
pub fn alltoall_wire_tag(tag: u64) -> u64 {
    TAG_ALLTOALL + tag
}

/// True when `tag` sits in the reserved collective namespace — the wire
/// tags the P2P legs of bcast/gather/allreduce/… travel under. Wait-state
/// analyzers use this to classify a blocking receive as *collective wait*
/// (the rank is parked at a reduction/barrier) rather than a plain
/// point-to-point stall.
pub fn is_collective_tag(tag: u64) -> bool {
    tag >= TAG_BASE
}

/// Which collective family a reserved wire tag belongs to, or `None` for
/// user (point-to-point) tags. Best-effort: the user tag is *added* to the
/// block base, so a user tag larger than a block (≥ 0x1000) can spill into
/// the next family's label — fine for display, don't branch on it. The
/// sub-barrier of a shrunk world reports as `"barrier"`; the two-stage
/// wire tags of `allreduce`/`allgather` (both blocks stacked, tag above
/// `2 * TAG_BASE`) report as their composite family.
pub fn collective_kind(tag: u64) -> Option<&'static str> {
    if !is_collective_tag(tag) {
        return None;
    }
    if tag >= 2 * TAG_BASE {
        // Composed legs: allreduce's gather leg sits at block 0x6000 and
        // its bcast leg at 0x5800; allgather's bcast leg at 0x4000.
        return Some(if tag - 2 * TAG_BASE >= 0x4800 {
            "allreduce"
        } else {
            "allgather"
        });
    }
    const BLOCKS: [(u64, &str); 8] = [
        (0x1000, "bcast"),
        (0x2000, "gather"),
        (0x3000, "allgather"),
        (0x4000, "allreduce"),
        (0x5000, "alltoall"),
        (0x6000, "split"),
        (0x7000, "barrier"),
        (0x8000, "scatter"),
    ];
    let off = tag - TAG_BASE;
    Some(
        BLOCKS
            .iter()
            .rev()
            .find(|(base, _)| off >= *base)
            .map(|(_, name)| *name)
            .unwrap_or("collective"),
    )
}

/// Broadcast `data` from `root` to every rank; each rank returns the value.
pub fn bcast<T: Send + Clone + 'static>(
    rank: &Rank,
    tag: u64,
    root: usize,
    data: Vec<T>,
) -> Result<Vec<T>, CommError> {
    let tag = TAG_BCAST + tag;
    if rank.id() == root {
        for dst in 0..rank.size() {
            if dst != root {
                rank.send(dst, tag, data.clone());
            }
        }
        Ok(data)
    } else {
        rank.recv(root, tag)
    }
}

/// Gather every rank's `data` to `root`; returns `Some(concatenated in rank
/// order)` on root, `None` elsewhere.
pub fn gather<T: Send + Clone + 'static>(
    rank: &Rank,
    tag: u64,
    root: usize,
    data: Vec<T>,
) -> Result<Option<Vec<Vec<T>>>, CommError> {
    let tag = TAG_GATHER + tag;
    if rank.id() == root {
        let mut out: Vec<Option<Vec<T>>> = (0..rank.size()).map(|_| None).collect();
        out[root] = Some(data);
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = Some(rank.recv(src, tag)?);
            }
        }
        Ok(Some(
            out.into_iter()
                .map(|v| v.expect("every gather slot was just filled"))
                .collect(),
        ))
    } else {
        rank.send(root, tag, data);
        Ok(None)
    }
}

/// Scatter `parts[i]` from `root` to rank `i`; returns this rank's part.
pub fn scatter<T: Send + Clone + 'static>(
    rank: &Rank,
    tag: u64,
    root: usize,
    parts: Option<Vec<Vec<T>>>,
) -> Result<Vec<T>, CommError> {
    let tag = TAG_SCATTER + tag;
    if rank.id() == root {
        let mut parts = parts.expect("root must supply parts");
        assert_eq!(parts.len(), rank.size(), "scatter needs one part per rank");
        let mine = std::mem::take(&mut parts[rank.id()]);
        for (dst, part) in parts.into_iter().enumerate() {
            if dst != root {
                rank.send(dst, tag, part);
            }
        }
        Ok(mine)
    } else {
        rank.recv(root, tag)
    }
}

/// All ranks receive the concatenation (in rank order) of every rank's data.
pub fn allgather<T: Send + Clone + 'static>(
    rank: &Rank,
    tag: u64,
    data: Vec<T>,
) -> Result<Vec<T>, CommError> {
    let gathered = gather(rank, tag, 0, data)?;
    let flat: Option<Vec<T>> = gathered.map(|parts| parts.into_iter().flatten().collect());
    bcast(rank, TAG_ALLGATHER + tag, 0, flat.unwrap_or_default())
}

/// Element-wise all-reduce of equal-length vectors with `combine`, applied
/// in rank order (deterministic). Every rank returns the reduced vector.
pub fn allreduce<T: Send + Clone + 'static>(
    rank: &Rank,
    tag: u64,
    data: Vec<T>,
    combine: impl Fn(&T, &T) -> T,
) -> Result<Vec<T>, CommError> {
    let len = data.len();
    let reduced = gather(rank, TAG_ALLREDUCE + tag, 0, data)?.map(|parts| {
        let mut acc: Option<Vec<T>> = None;
        for part in parts {
            assert_eq!(part.len(), len, "allreduce length mismatch across ranks");
            acc = Some(match acc {
                None => part,
                Some(a) => a
                    .iter()
                    .zip(part.iter())
                    .map(|(x, y)| combine(x, y))
                    .collect(),
            });
        }
        acc.unwrap_or_default()
    });
    bcast(
        rank,
        TAG_ALLREDUCE + 0x800 + tag,
        0,
        reduced.unwrap_or_default(),
    )
}

/// Wire tags of an `allreduce(tag)`'s two legs — `[gather, bcast]` — for
/// fault-plan authoring: `delay src=1 dst=0 tag=<gather leg> nth=3 ms=100`
/// stalls exactly the third allreduce on `tag`, without counting any other
/// traffic. (Non-root ranks send one gather-leg message per allreduce.)
pub fn allreduce_wire_tags(tag: u64) -> [u64; 2] {
    [
        TAG_GATHER + TAG_ALLREDUCE + tag,
        TAG_BCAST + TAG_ALLREDUCE + 0x800 + tag,
    ]
}

/// Scalar f64 sum all-reduce (the most common reduction in the dycores).
pub fn allreduce_sum(rank: &Rank, tag: u64, value: f64) -> Result<f64, CommError> {
    Ok(allreduce(rank, tag, vec![value], |a, b| a + b)?[0])
}

/// Scalar f64 max all-reduce (used for CFL checks and timer maxima — the
/// paper records "the maximum value across all MPI ranks" for wall time).
pub fn allreduce_max(rank: &Rank, tag: u64, value: f64) -> Result<f64, CommError> {
    Ok(allreduce(rank, tag, vec![value], |a, b| a.max(*b))?[0])
}

/// Personalised all-to-all: `sends[j]` goes to rank `j`; returns the vector
/// of messages received, indexed by source. This is the *baseline*
/// rearrangement pattern AP3ESM's coupler optimisation replaces.
pub fn alltoallv<T: Send + Clone + 'static>(
    rank: &Rank,
    tag: u64,
    sends: Vec<Vec<T>>,
) -> Result<Vec<Vec<T>>, CommError> {
    assert_eq!(
        sends.len(),
        rank.size(),
        "alltoallv needs one (possibly empty) buffer per destination"
    );
    let tag = TAG_ALLTOALL + tag;
    let me = rank.id();
    let mut recvs: Vec<Option<Vec<T>>> = (0..rank.size()).map(|_| None).collect();
    for (dst, buf) in sends.into_iter().enumerate() {
        if dst == me {
            recvs[me] = Some(buf);
        } else {
            rank.send(dst, tag, buf);
        }
    }
    for (src, slot) in recvs.iter_mut().enumerate() {
        if src != me {
            *slot = Some(rank.recv(src, tag)?);
        }
    }
    Ok(recvs.into_iter().map(|r| r.expect("a2a slot")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn bcast_reaches_everyone() {
        let world = World::new(5);
        let out = world.run(|rank| {
            let data = if rank.id() == 2 { vec![2.75f64] } else { vec![] };
            bcast(rank, 0, 2, data).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![2.75]);
        }
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let world = World::new(4);
        let out = world.run(|rank| gather(rank, 0, 0, vec![rank.id() as u32 * 10]).unwrap());
        let root = out[0].as_ref().unwrap();
        assert_eq!(root, &vec![vec![0], vec![10], vec![20], vec![30]]);
        assert!(out[1].is_none());
    }

    #[test]
    fn scatter_delivers_right_parts() {
        let world = World::new(3);
        let out = world.run(|rank| {
            let parts = (rank.id() == 1)
                .then(|| vec![vec![100u8], vec![101], vec![102]]);
            scatter(rank, 0, 1, parts).unwrap()
        });
        assert_eq!(out, vec![vec![100], vec![101], vec![102]]);
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let world = World::new(4);
        let out = world.run(|rank| allgather(rank, 0, vec![rank.id() as i16]).unwrap());
        for v in out {
            assert_eq!(v, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn allreduce_sum_is_exact_and_uniform() {
        let world = World::new(6);
        let out = world.run(|rank| allreduce_sum(rank, 0, rank.id() as f64).unwrap());
        for v in out {
            assert_eq!(v, 15.0);
        }
    }

    #[test]
    fn allreduce_max_across_ranks() {
        let world = World::new(4);
        let out = world.run(|rank| allreduce_max(rank, 0, -(rank.id() as f64)).unwrap());
        for v in out {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn allreduce_is_deterministic_across_runs() {
        // Rank-order combination makes FP results identical run to run.
        let run = || {
            let world = World::new(7);
            world.run(|rank| {
                let x = ((rank.id() + 1) as f64).ln() * 0.333;
                allreduce_sum(rank, 0, x).unwrap()
            })[0]
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn alltoallv_transposes_messages() {
        let world = World::new(4);
        let out = world.run(|rank| {
            // Rank r sends value 10*r + j to rank j.
            let sends: Vec<Vec<u32>> = (0..rank.size())
                .map(|j| vec![(10 * rank.id() + j) as u32])
                .collect();
            alltoallv(rank, 0, sends).unwrap()
        });
        // Rank j receives 10*r + j from each r.
        for (j, recvd) in out.iter().enumerate() {
            for (r, msg) in recvd.iter().enumerate() {
                assert_eq!(msg, &vec![(10 * r + j) as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_conserves_total_payload() {
        let world = World::new(5);
        let totals = world.run(|rank| {
            let sends: Vec<Vec<u64>> = (0..rank.size())
                .map(|j| (0..(rank.id() + j)).map(|k| k as u64).collect())
                .collect();
            let sent: usize = sends.iter().map(|v| v.len()).sum();
            let recvd = alltoallv(rank, 0, sends).unwrap();
            let got: usize = recvd.iter().map(|v| v.len()).sum();
            (sent, got)
        });
        let total_sent: usize = totals.iter().map(|(s, _)| s).sum();
        let total_recv: usize = totals.iter().map(|(_, g)| g).sum();
        assert_eq!(total_sent, total_recv);
    }

    #[test]
    fn allreduce_wire_tags_target_exactly_one_allreduce() {
        use crate::faultplan::{FaultInjector, FaultPlan};
        use std::sync::Arc;
        use std::time::Instant;
        // Delay the 2nd allreduce's gather leg on an otherwise busy tagset:
        // only that collective stalls, and only by ~the configured delay.
        let [g, _] = allreduce_wire_tags(9);
        let plan = FaultPlan::parse(&format!("delay src=1 dst=0 tag={g} nth=2 ms=80")).unwrap();
        let world = World::new(2).with_fault_injector(Arc::new(FaultInjector::new(plan)));
        let out = world.run(|rank| {
            let mut stalls = Vec::new();
            for _ in 0..3 {
                let t = Instant::now();
                let v = allreduce_sum(rank, 9, 1.0).unwrap();
                assert_eq!(v, 2.0);
                stalls.push(t.elapsed().as_secs_f64());
            }
            stalls
        });
        // Root (the gather receiver) saw exactly the middle call stall.
        assert!(out[0][1] >= 0.05, "delay missed: {:?}", out[0]);
        assert!(out[0][0] < 0.05 && out[0][2] < 0.05, "wrong call hit: {:?}", out[0]);
    }

    #[test]
    fn dropped_collective_message_surfaces_as_deadlock() {
        use crate::faultplan::{FaultInjector, FaultPlan};
        use std::sync::Arc;
        use std::time::Duration;
        // Drop the bcast leg from root 0 to rank 2.
        let plan =
            FaultPlan::parse(&format!("drop src=0 dst=2 tag={} nth=1", TAG_BCAST + 5)).unwrap();
        let world = World::new(3)
            .with_recv_timeout(Duration::from_millis(20))
            .with_fault_injector(Arc::new(FaultInjector::new(plan)));
        let out = world.run(|rank| bcast(rank, 5, 0, vec![rank.id() as u8]));
        assert!(out[0].is_ok());
        assert!(out[1].is_ok());
        assert!(matches!(out[2], Err(CommError::Deadlock { .. })));
    }
}
