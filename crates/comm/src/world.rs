//! The rank world: thread-backed ranks, mailboxes, and communicators.
//!
//! Besides the MPI-like surface, the world supports **elastic shrink**: when
//! a rank dies permanently, the survivors agree on a successor membership
//! ([`Rank::membership_vote`]) and install a generation-stamped view
//! ([`Rank::install_membership`]). From then on every rank addresses peers by
//! *virtual* rank (`0..M` over the survivors), every message carries the
//! sender's generation on the wire, and receives reject stale-generation
//! traffic instead of misdelivering it. With the identity view (no shrink —
//! the common case) the translation is two relaxed atomic loads per message.

use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::events::{trace_now_us, CommEvent, CommEventKind, CommEventLog};
use crate::faultplan::{FaultInjector, MsgFault};
use crate::stats::CommStats;
use crate::CommError;

/// Default blocking-receive deadline before declaring deadlock. Generous for
/// slow CI machines but finite so test hangs turn into diagnostics. Override
/// per-world with [`World::with_recv_timeout`] or globally with the
/// `AP3ESM_RECV_TIMEOUT_MS` environment variable.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

fn env_recv_timeout() -> Duration {
    match std::env::var("AP3ESM_RECV_TIMEOUT_MS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms),
            _ => DEFAULT_RECV_TIMEOUT,
        },
        Err(_) => DEFAULT_RECV_TIMEOUT,
    }
}

struct Message {
    /// World generation the sender was in. Receivers in a newer generation
    /// discard the message (stale); receivers in an older generation leave
    /// it queued until they catch up.
    generation: u64,
    payload: Box<dyn Any + Send>,
}

/// An agreed membership of the world after one or more permanent rank
/// losses: the `generation` number stamped on every message sent under this
/// view, and the surviving *physical* world ranks in ascending order.
/// Virtual rank `i` of the shrunk world is `members[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    pub generation: u64,
    pub members: Vec<usize>,
}

impl Membership {
    /// Is physical rank `world_rank` part of this membership?
    pub fn contains(&self, world_rank: usize) -> bool {
        self.members.contains(&world_rank)
    }

    /// Virtual rank of physical `world_rank`, if a member.
    pub fn virtual_of(&self, world_rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == world_rank)
    }
}

/// Outcome of a [`Rank::membership_vote`]: either every current member is
/// still alive (the failure was transient — fall back to rollback), or a
/// shrunk successor membership has been agreed and installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipVerdict {
    /// Every member answered the liveness poll: no permanent loss.
    AllAlive,
    /// The listed membership (already installed on this rank) succeeds the
    /// current world; the dead ranks did not answer the poll.
    Shrink(Membership),
}

/// Tag namespaces of the membership machinery (distinct from collectives'
/// `0xC0_..` base and `SubComm`'s `(color+1)<<32` scope).
const TAG_VIEW_BARRIER: u64 = 0xD7_0000_0000;
const TAG_VOTE: u64 = 0xD7_0100_0000;
const TAG_VERDICT: u64 = 0xD7_0200_0000;

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<(usize, u64), VecDeque<Message>>,
}

/// One per rank: a tag/source-addressed queue with a wakeup condvar.
#[derive(Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
    notify: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

struct WorldShared {
    n: usize,
    mailboxes: Vec<Mailbox>,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    stats: CommStats,
    recv_timeout: Duration,
    /// Fault-injection hook; `None` in production runs (one pointer check
    /// per send, nothing per receive — zero-cost when disabled).
    injector: Option<Arc<FaultInjector>>,
    /// Per-rank timestamped send/recv timeline; disabled by default (one
    /// relaxed load per message when off).
    events: CommEventLog,
    /// World-shared diagnostic attachment slot. The comm layer never looks
    /// inside it: higher layers (the flight recorder in `ap3esm-obs`) use it
    /// to share one per-world object across all rank threads without
    /// exchanging messages — so installing it perturbs no fault-plan
    /// message counts. First `get_or_init` wins; every rank sees the same
    /// `Arc`.
    blackbox: OnceLock<Arc<dyn Any + Send + Sync>>,
}

/// A communication world of `n` ranks, each running on its own OS thread.
///
/// `World::run` mirrors `mpirun -np N`: it spawns the ranks, hands each a
/// [`Rank`] handle, and joins them, returning each rank's result in rank
/// order.
pub struct World {
    shared: Arc<WorldShared>,
}

impl World {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "world needs at least one rank");
        World {
            shared: Arc::new(WorldShared {
                n,
                mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
                barrier: Mutex::new(BarrierState {
                    arrived: 0,
                    generation: 0,
                }),
                barrier_cv: Condvar::new(),
                stats: CommStats::default(),
                recv_timeout: env_recv_timeout(),
                injector: None,
                events: CommEventLog::new(n, crate::events::DEFAULT_COMM_EVENT_CAPACITY),
                blackbox: OnceLock::new(),
            }),
        }
    }

    /// Builder: set this world's blocking-receive deadline (overrides the
    /// `AP3ESM_RECV_TIMEOUT_MS` environment default).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_recv_timeout must be called before World::run")
            .recv_timeout = timeout;
        self
    }

    /// Builder: install a fault injector applying a plan's message events
    /// on the send path.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_fault_injector must be called before World::run")
            .injector = Some(injector);
        self
    }

    /// The effective blocking-receive deadline.
    pub fn recv_timeout(&self) -> Duration {
        self.shared.recv_timeout
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Traffic accounting for everything sent in this world.
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// The world's comm-event timeline (disabled until
    /// [`CommEventLog::set_enabled`] is called).
    pub fn comm_events(&self) -> &CommEventLog {
        &self.shared.events
    }

    /// World-shared diagnostic attachment slot. The comm layer never looks
    /// inside it; higher layers (the obs flight recorder) use it to share
    /// one recorder across every rank thread without sending messages —
    /// installing it perturbs no fault-plan message counts.
    pub fn blackbox(&self) -> &OnceLock<Arc<dyn Any + Send + Sync>> {
        &self.shared.blackbox
    }

    /// Run `f` on every rank concurrently; returns per-rank results in rank
    /// order. Panics in any rank propagate after all threads are joined.
    pub fn run<R: Send>(&self, f: impl Fn(&Rank) -> R + Sync) -> Vec<R> {
        let shared = &self.shared;
        let mut results: Vec<Option<R>> = (0..shared.n).map(|_| None).collect();
        crossbeam::scope(|s| {
            let mut handles = Vec::with_capacity(shared.n);
            for (id, slot) in results.iter_mut().enumerate() {
                let f = &f;
                handles.push(s.spawn(move |_| {
                    let rank = Rank {
                        id,
                        shared: Arc::clone(shared),
                        gen: AtomicU64::new(0),
                        vid: AtomicUsize::new(id),
                        shrunk: AtomicBool::new(false),
                        members: Mutex::new(None),
                        barrier_seq: AtomicU64::new(0),
                    };
                    *slot = Some(f(&rank));
                }));
            }
            for h in handles {
                h.join().expect("rank panicked");
            }
        })
        .expect("world scope");
        results.into_iter().map(|r| r.expect("rank result")).collect()
    }
}

/// A handle to one rank inside a [`World::run`] closure.
///
/// After a shrink ([`Rank::install_membership`]) the handle speaks *virtual*
/// ranks: [`Rank::id`] / [`Rank::size`] and every peer argument of
/// send/recv refer to the shrunk world, while [`Rank::world_id`] keeps
/// naming the physical thread. The view state lives on the handle (one per
/// thread), so installing a view never races with another rank's traffic.
pub struct Rank {
    id: usize,
    shared: Arc<WorldShared>,
    /// Current world generation (0 until the first shrink).
    gen: AtomicU64,
    /// Virtual rank under the current view (= `id` for the identity view).
    vid: AtomicUsize,
    /// Fast-path discriminant: `false` means identity view, no translation.
    shrunk: AtomicBool,
    /// Physical ranks of the current membership (None for identity).
    members: Mutex<Option<Arc<Vec<usize>>>>,
    /// Sequence number of dissemination barriers under a shrunk view, so
    /// back-to-back barriers never alias each other's round messages.
    barrier_seq: AtomicU64,
}

/// Handle returned by [`Rank::irecv`]; `wait` blocks until the message lands.
pub struct RecvHandle<'a, T> {
    rank: &'a Rank,
    src: usize,
    tag: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send + 'static> RecvHandle<'_, T> {
    /// Block until the message arrives.
    pub fn wait(self) -> Result<Vec<T>, CommError> {
        self.rank.recv(self.src, self.tag)
    }

    /// Non-blocking probe: returns the message if already delivered.
    pub fn test(&self) -> Option<Result<Vec<T>, CommError>> {
        self.rank.try_recv(self.src, self.tag)
    }
}

impl Rank {
    /// This rank's id in `0..size` — the *virtual* rank under the current
    /// membership view (equal to [`Rank::world_id`] until a shrink).
    pub fn id(&self) -> usize {
        if self.shrunk.load(Ordering::Relaxed) {
            self.vid.load(Ordering::Relaxed)
        } else {
            self.id
        }
    }

    /// World size under the current membership view.
    pub fn size(&self) -> usize {
        if self.shrunk.load(Ordering::Relaxed) {
            self.members
                .lock()
                .as_ref()
                .map(|m| m.len())
                .unwrap_or(self.shared.n)
        } else {
            self.shared.n
        }
    }

    /// The physical rank of this thread (stable across shrinks).
    pub fn world_id(&self) -> usize {
        self.id
    }

    /// Number of ranks the world was launched with (stable across shrinks).
    pub fn world_size(&self) -> usize {
        self.shared.n
    }

    /// Current world generation: 0 until the first shrink.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Relaxed)
    }

    /// The current membership, if a shrunk view is installed.
    pub fn membership(&self) -> Option<Membership> {
        let members = self.members.lock().as_ref().map(Arc::clone)?;
        Some(Membership {
            generation: self.generation(),
            members: (*members).clone(),
        })
    }

    /// Physical rank behind virtual rank `r` under the current view.
    fn phys(&self, r: usize) -> usize {
        if self.shrunk.load(Ordering::Relaxed) {
            let guard = self.members.lock();
            match guard.as_ref() {
                Some(m) => m[r],
                None => r,
            }
        } else {
            r
        }
    }

    /// Install an agreed successor membership on this rank. The generation
    /// must advance and this physical rank must be a member — both are
    /// invariants the [`Rank::membership_vote`] protocol guarantees, so a
    /// violation is a protocol bug, not a runtime condition.
    pub fn install_membership(&self, m: &Membership) {
        assert!(
            m.generation > self.generation(),
            "membership generation must advance ({} -> {})",
            self.generation(),
            m.generation
        );
        let vid = m
            .virtual_of(self.id)
            .expect("install_membership on an evicted rank");
        *self.members.lock() = Some(Arc::new(m.members.clone()));
        self.vid.store(vid, Ordering::Relaxed);
        self.gen.store(m.generation, Ordering::Relaxed);
        self.shrunk.store(true, Ordering::Relaxed);
    }

    /// The world's per-receive timeout. Recovery layers size their
    /// agreement windows as multiples of this, so a slow-but-alive peer
    /// that just burned a data-plane timeout is not misdeclared dead.
    pub fn recv_timeout(&self) -> Duration {
        self.shared.recv_timeout
    }

    /// Traffic statistics shared by the world.
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// The world's fault injector, if one was installed. Drivers consult it
    /// for rank-kill and checkpoint-corruption events (message events are
    /// applied transparently on the send path).
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.shared.injector.as_ref()
    }

    /// The shared comm-event timeline (same instance for every rank, one
    /// ring per rank).
    pub fn comm_events(&self) -> &CommEventLog {
        &self.shared.events
    }

    /// World-shared diagnostic attachment slot (see [`World::blackbox`]).
    /// The first `get_or_init` wins; every rank observes the same `Arc`.
    pub fn blackbox(&self) -> &OnceLock<Arc<dyn Any + Send + Sync>> {
        &self.shared.blackbox
    }

    /// Send `data` to (virtual) rank `dst` under `tag`. Non-blocking in the
    /// MPI "buffered" sense: the payload is moved into the destination
    /// mailbox immediately, stamped with the sender's world generation.
    pub fn send<T: Send + Clone + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        let dst = self.phys(dst);
        let generation = self.gen.load(Ordering::Relaxed);
        let mut copies = 1usize;
        if let Some(injector) = &self.shared.injector {
            // Fault plans target physical ranks — injection is a statement
            // about the machine, not about the current logical layout.
            match injector.on_send(self.id, dst, tag) {
                Some(MsgFault::Drop) => copies = 0,
                Some(MsgFault::Delay { ms }) => std::thread::sleep(Duration::from_millis(ms)),
                Some(MsgFault::Duplicate) => copies = 2,
                None => {}
            }
        }
        let bytes = std::mem::size_of::<T>() * data.len();
        self.shared.stats.record_send(self.id, dst, tag, bytes);
        if self.shared.events.is_enabled() {
            self.shared.events.record(
                self.id,
                CommEvent {
                    kind: CommEventKind::Send,
                    ts_us: trace_now_us(),
                    dur_us: 0,
                    peer: dst,
                    tag,
                    bytes: bytes as u64,
                },
            );
        }
        if copies == 0 {
            return;
        }
        let mailbox = &self.shared.mailboxes[dst];
        {
            let mut inner = mailbox.inner.lock();
            for _ in 1..copies {
                inner
                    .queues
                    .entry((self.id, tag))
                    .or_default()
                    .push_back(Message {
                        generation,
                        payload: Box::new(data.clone()),
                    });
            }
            inner
                .queues
                .entry((self.id, tag))
                .or_default()
                .push_back(Message {
                    generation,
                    payload: Box::new(data),
                });
        }
        mailbox.notify.notify_all();
    }

    /// Non-blocking send — identical to [`Rank::send`] (kept for API parity
    /// with the paper's non-blocking point-to-point rearranger, §5.2.4).
    pub fn isend<T: Send + Clone + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.send(dst, tag, data);
    }

    /// Blocking receive of a `Vec<T>` from (virtual) rank `src` under `tag`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
        self.recv_impl(src, tag, self.shared.recv_timeout)
    }

    /// Blocking receive with an explicit overall deadline instead of the
    /// world's `recv_timeout`. The membership-agreement control plane uses
    /// this to give slow-but-alive peers a wider window than data traffic.
    pub fn recv_within<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Duration,
    ) -> Result<Vec<T>, CommError> {
        self.recv_impl(src, tag, deadline)
    }

    fn recv_impl<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Duration,
    ) -> Result<Vec<T>, CommError> {
        assert!(src < self.size(), "recv from invalid rank {src}");
        let src = self.phys(src);
        let my_gen = self.gen.load(Ordering::Relaxed);
        // Timeline start: the blocking window (including condvar waits) is
        // the coupler stall time the trace makes visible.
        let t_rec = self.shared.events.is_enabled().then(trace_now_us);
        let t0 = Instant::now();
        let mailbox = &self.shared.mailboxes[self.id];
        let msg = {
            let mut inner = mailbox.inner.lock();
            'wait: loop {
                if let Some(queue) = inner.queues.get_mut(&(src, tag)) {
                    // Discard stale-generation messages instead of
                    // misdelivering pre-shrink traffic into the new world; a
                    // future-generation message stays queued until this rank
                    // catches up (it will, via the same vote the sender took).
                    while let Some(front) = queue.front() {
                        if front.generation < my_gen {
                            queue.pop_front();
                            self.shared.stats.record_stale();
                            if self.shared.events.is_enabled() {
                                self.shared.events.record(
                                    self.id,
                                    CommEvent {
                                        kind: CommEventKind::Stale,
                                        ts_us: trace_now_us(),
                                        dur_us: 0,
                                        peer: src,
                                        tag,
                                        bytes: 1,
                                    },
                                );
                            }
                        } else {
                            break;
                        }
                    }
                    if queue.front().is_some_and(|m| m.generation == my_gen) {
                        break 'wait queue.pop_front().expect("non-empty queue");
                    }
                }
                let remaining = deadline.saturating_sub(t0.elapsed());
                if remaining.is_zero()
                    || mailbox.notify.wait_for(&mut inner, remaining).timed_out()
                {
                    if let Some(ts) = t_rec {
                        // The timed-out wait is itself a timeline event: a
                        // dropped message shows as a full-timeout stall.
                        self.shared.events.record(
                            self.id,
                            CommEvent {
                                kind: CommEventKind::Timeout,
                                ts_us: ts,
                                dur_us: trace_now_us().saturating_sub(ts),
                                peer: src,
                                tag,
                                bytes: 0,
                            },
                        );
                    }
                    return Err(CommError::Deadlock {
                        rank: self.id,
                        waiting: vec![(src, tag)],
                    });
                }
            }
        };
        let result = msg
            .payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                rank: self.id,
                src,
                tag,
            });
        if let Some(ts) = t_rec {
            let bytes = result
                .as_ref()
                .map(|v| (std::mem::size_of::<T>() * v.len()) as u64)
                .unwrap_or(0);
            self.shared.events.record(
                self.id,
                CommEvent {
                    kind: CommEventKind::Recv,
                    ts_us: ts,
                    dur_us: trace_now_us().saturating_sub(ts),
                    peer: src,
                    tag,
                    bytes,
                },
            );
        }
        result
    }

    /// Discard every message queued for this rank (all sources, all tags).
    /// Returns the number of messages dropped. Used by the recovery path:
    /// after a rollback every rank drains in-flight traffic so replayed
    /// streams start from clean FIFO queues.
    pub fn drain_mailbox(&self) -> usize {
        let mailbox = &self.shared.mailboxes[self.id];
        let mut inner = mailbox.inner.lock();
        let n = inner.queues.values().map(|q| q.len()).sum();
        inner.queues.clear();
        n
    }

    /// Discard only messages from generations older than this rank's —
    /// post-shrink hygiene that must *not* touch new-generation traffic a
    /// faster survivor may already have sent. Returns the drop counts per
    /// *source rank* (sorted by source, sources with zero drops omitted),
    /// so the recovery log and the flight-recorder journal can attribute
    /// the discarded traffic instead of reporting a flat total.
    pub fn drain_stale(&self) -> Vec<(usize, usize)> {
        let my_gen = self.gen.load(Ordering::Relaxed);
        let mailbox = &self.shared.mailboxes[self.id];
        let mut per_src: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        {
            let mut inner = mailbox.inner.lock();
            for (&(src, _tag), queue) in inner.queues.iter_mut() {
                let before = queue.len();
                queue.retain(|m| m.generation >= my_gen);
                let dropped = before - queue.len();
                if dropped > 0 {
                    *per_src.entry(src).or_insert(0) += dropped;
                }
            }
        }
        let events_on = self.shared.events.is_enabled();
        for (&src, &count) in &per_src {
            for _ in 0..count {
                self.shared.stats.record_stale();
            }
            if events_on {
                self.shared.events.record(
                    self.id,
                    CommEvent {
                        kind: CommEventKind::Stale,
                        ts_us: trace_now_us(),
                        dur_us: 0,
                        peer: src,
                        tag: 0,
                        bytes: count as u64,
                    },
                );
            }
        }
        per_src.into_iter().collect()
    }

    /// Non-blocking receive returning `None` when no message is queued yet.
    pub fn try_recv<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
    ) -> Option<Result<Vec<T>, CommError>> {
        let src = self.phys(src);
        let my_gen = self.gen.load(Ordering::Relaxed);
        let mailbox = &self.shared.mailboxes[self.id];
        let mut inner = mailbox.inner.lock();
        let queue = inner.queues.get_mut(&(src, tag))?;
        while let Some(front) = queue.front() {
            if front.generation < my_gen {
                queue.pop_front();
                self.shared.stats.record_stale();
                if self.shared.events.is_enabled() {
                    self.shared.events.record(
                        self.id,
                        CommEvent {
                            kind: CommEventKind::Stale,
                            ts_us: trace_now_us(),
                            dur_us: 0,
                            peer: src,
                            tag,
                            bytes: 1,
                        },
                    );
                }
            } else {
                break;
            }
        }
        if queue.front().is_none_or(|m| m.generation != my_gen) {
            return None;
        }
        let msg = queue.pop_front()?;
        Some(msg.payload.downcast::<Vec<T>>().map(|b| *b).map_err(|_| {
            CommError::TypeMismatch {
                rank: self.id,
                src,
                tag,
            }
        }))
    }

    /// Post a non-blocking receive; the returned handle can be waited later,
    /// letting callers overlap communication and computation (the paper's
    /// rearranger optimisation, §5.2.4).
    pub fn irecv<T: Send + 'static>(&self, src: usize, tag: u64) -> RecvHandle<'_, T> {
        RecvHandle {
            rank: self,
            src,
            tag,
            _marker: std::marker::PhantomData,
        }
    }

    /// Global synchronisation across every rank of the current membership.
    /// With the identity view this is the shared counting barrier (blocks
    /// indefinitely, exactly the pre-shrink behaviour); under a shrunk view
    /// it disseminates over the survivors and panics on timeout — recovery
    /// code that must survive a peer death uses [`Rank::try_barrier`].
    pub fn barrier(&self) {
        if self.shrunk.load(Ordering::Relaxed) {
            self.dissemination_barrier().expect("barrier on shrunk world");
            return;
        }
        let shared = &self.shared;
        let mut state = shared.barrier.lock();
        let gen = state.generation;
        state.arrived += 1;
        if state.arrived == shared.n {
            state.arrived = 0;
            state.generation += 1;
            shared.barrier_cv.notify_all();
        } else {
            while state.generation == gen {
                shared.barrier_cv.wait(&mut state);
            }
        }
    }

    /// Timeout-aware barrier: like [`Rank::barrier`] but a member that never
    /// arrives surfaces as `CommError::Deadlock` instead of a hang. On
    /// timeout this rank withdraws its arrival, so a later barrier does not
    /// observe a phantom participant.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        if self.shrunk.load(Ordering::Relaxed) {
            return self.dissemination_barrier();
        }
        let shared = &self.shared;
        let mut state = shared.barrier.lock();
        let gen = state.generation;
        state.arrived += 1;
        if state.arrived == shared.n {
            state.arrived = 0;
            state.generation += 1;
            shared.barrier_cv.notify_all();
            return Ok(());
        }
        let t0 = Instant::now();
        while state.generation == gen {
            let remaining = shared.recv_timeout.saturating_sub(t0.elapsed());
            let timed_out = remaining.is_zero()
                || shared.barrier_cv.wait_for(&mut state, remaining).timed_out();
            if timed_out && state.generation == gen {
                state.arrived -= 1;
                return Err(CommError::Deadlock {
                    rank: self.id,
                    waiting: vec![],
                });
            }
        }
        Ok(())
    }

    /// Dissemination barrier over the current (shrunk) membership: log₂(M)
    /// point-to-point rounds, each with the world's recv deadline, under a
    /// per-call tag sequence so back-to-back barriers never alias.
    fn dissemination_barrier(&self) -> Result<(), CommError> {
        let n = self.size();
        let me = self.id();
        let seq = self.barrier_seq.fetch_add(1, Ordering::Relaxed);
        let mut round = 1usize;
        let mut round_ix = 0u64;
        while round < n {
            let dst = (me + round) % n;
            let src = (me + n - round % n) % n;
            let tag = TAG_VIEW_BARRIER + seq * 64 + round_ix;
            self.send::<u8>(dst, tag, vec![]);
            self.recv_within::<u8>(src, tag, self.shared.recv_timeout)?;
            round <<= 1;
            round_ix += 1;
        }
        Ok(())
    }

    /// Agree on who is still alive after a failed collective, and — if
    /// anyone is permanently gone — on the successor membership.
    ///
    /// Every *current* member must call this (it is itself a collective).
    /// Virtual rank 0 coordinates: each other member sends a vote naming the
    /// rank it blames (or `None`), and the vote doubles as a liveness poll —
    /// a member that does not answer within the window is declared dead.
    /// If everyone answers, the failure was transient and the verdict is
    /// [`MembershipVerdict::AllAlive`]; otherwise the survivors' new
    /// membership (generation + 1) is distributed and installed on this rank
    /// before returning [`MembershipVerdict::Shrink`].
    ///
    /// An evicted-but-alive rank (one the coordinator timed out on) never
    /// receives a verdict and gets `Err(Deadlock)` — a structured outcome
    /// the caller turns into a clean failure, never a hang.
    ///
    /// The window is sized in units of the world's `recv_timeout`: peers
    /// enter the vote after suffering up to a few timed-out collective legs
    /// themselves, so the poll must out-wait that skew.
    pub fn membership_vote(
        &self,
        blamed: Option<usize>,
    ) -> Result<MembershipVerdict, CommError> {
        let n = self.size();
        let me = self.id();
        let window = self.shared.recv_timeout * 4;
        if n == 1 {
            return Ok(MembershipVerdict::AllAlive);
        }
        if me == 0 {
            let mut dead_virtual: Vec<usize> = Vec::new();
            let mut blames: Vec<(usize, i64)> = Vec::new();
            for m in 1..n {
                match self.recv_within::<i64>(m, TAG_VOTE, window) {
                    Ok(vote) => {
                        if let Some(&b) = vote.first().filter(|&&b| b >= 0) {
                            blames.push((m, b));
                        }
                    }
                    Err(_) => dead_virtual.push(m),
                }
            }
            if let Some(b) = blamed {
                blames.push((0, b as i64));
            }
            if dead_virtual.is_empty() {
                for m in 1..n {
                    self.send::<i64>(m, TAG_VERDICT, vec![0]);
                }
                return Ok(MembershipVerdict::AllAlive);
            }
            let members: Vec<usize> = (0..n)
                .filter(|v| !dead_virtual.contains(v))
                .map(|v| self.phys(v))
                .collect();
            let dead_world: Vec<usize> =
                dead_virtual.iter().map(|&v| self.phys(v)).collect();
            eprintln!(
                "[comm] membership vote: rank(s) {dead_world:?} unresponsive \
                 (blamed: {blames:?}); shrinking to {members:?}"
            );
            let membership = Membership {
                generation: self.generation() + 1,
                members,
            };
            let mut verdict: Vec<i64> = vec![1, membership.generation as i64];
            verdict.extend(membership.members.iter().map(|&m| m as i64));
            // Send verdicts before installing: they must carry the *old*
            // generation stamp so survivors still in the old world accept
            // them. Dead ranks get nothing.
            for m in 1..n {
                if !dead_virtual.contains(&m) {
                    self.send::<i64>(m, TAG_VERDICT, verdict.clone());
                }
            }
            self.install_membership(&membership);
            Ok(MembershipVerdict::Shrink(membership))
        } else {
            let vote = vec![blamed.map(|b| b as i64).unwrap_or(-1)];
            self.send::<i64>(0, TAG_VOTE, vote);
            // The coordinator polls up to n-1 members sequentially, each
            // with its own window — wait out the worst case plus slack.
            let verdict_window = window * (n as u32 + 1);
            let verdict = self.recv_within::<i64>(0, TAG_VERDICT, verdict_window)?;
            match verdict.first() {
                Some(0) => Ok(MembershipVerdict::AllAlive),
                Some(1) => {
                    let generation = verdict[1] as u64;
                    let members: Vec<usize> =
                        verdict[2..].iter().map(|&m| m as usize).collect();
                    let membership = Membership {
                        generation,
                        members,
                    };
                    self.install_membership(&membership);
                    Ok(MembershipVerdict::Shrink(membership))
                }
                _ => Err(CommError::TypeMismatch {
                    rank: self.id,
                    src: 0,
                    tag: TAG_VERDICT,
                }),
            }
        }
    }

    /// Split the world into sub-communicators by `color`; ranks sharing a
    /// color form one [`SubComm`], ordered by world rank. Mirrors
    /// `MPI_Comm_split`, which AP3ESM uses to carve the two task domains
    /// (ATM+ICE+LND+CPL | OCN) of §7.2.
    pub fn split(&self, color: u64) -> Result<SubComm<'_>, CommError> {
        // Exchange colors via allgather so every rank learns the grouping.
        let colors =
            crate::collectives::allgather(self, crate::collectives::TAG_SPLIT, vec![color])?;
        let members: Vec<usize> = colors
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == color)
            .map(|(r, _)| r)
            .collect();
        let local = members
            .iter()
            .position(|&r| r == self.id)
            .expect("rank is always a member of its own split group");
        Ok(SubComm {
            rank: self,
            members,
            local,
            color,
        })
    }
}

/// A subset communicator produced by [`Rank::split`].
pub struct SubComm<'a> {
    rank: &'a Rank,
    members: Vec<usize>,
    local: usize,
    color: u64,
}

impl SubComm<'_> {
    /// Rank within the sub-communicator.
    pub fn id(&self) -> usize {
        self.local
    }

    /// Sub-communicator size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The split color that formed this communicator.
    pub fn color(&self) -> u64 {
        self.color
    }

    /// World rank of sub-rank `i`.
    pub fn world_rank(&self, i: usize) -> usize {
        self.members[i]
    }

    /// Underlying world rank handle.
    pub fn world(&self) -> &Rank {
        self.rank
    }

    fn scoped_tag(&self, tag: u64) -> u64 {
        // Partition the tag space per color so concurrent sub-communicators
        // never alias each other's messages.
        (self.color.wrapping_add(1) << 32) ^ tag
    }

    /// Send to sub-rank `dst`.
    pub fn send<T: Send + Clone + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.rank
            .send(self.members[dst], self.scoped_tag(tag), data);
    }

    /// Receive from sub-rank `src`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
        self.rank.recv(self.members[src], self.scoped_tag(tag))
    }

    /// Barrier across this sub-communicator only (dissemination algorithm on
    /// point-to-point messages).
    pub fn barrier(&self) -> Result<(), CommError> {
        let n = self.size();
        let mut round = 1usize;
        while round < n {
            let dst = (self.local + round) % n;
            let src = (self.local + n - round % n) % n;
            self.send::<u8>(dst, crate::collectives::TAG_SUB_BARRIER + round as u64, vec![]);
            self.recv::<u8>(src, crate::collectives::TAG_SUB_BARRIER + round as u64)?;
            round <<= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_two_ranks() {
        let world = World::new(2);
        let out = world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                rank.recv::<f64>(1, 8).unwrap()
            } else {
                let got = rank.recv::<f64>(0, 7).unwrap();
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                rank.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn messages_keep_fifo_order_per_tag() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                for i in 0..100u32 {
                    rank.send(1, 1, vec![i]);
                }
            } else {
                for i in 0..100u32 {
                    let got = rank.recv::<u32>(0, 1).unwrap();
                    assert_eq!(got, vec![i]);
                }
            }
        });
    }

    #[test]
    fn tags_are_independent_channels() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 10, vec![10u8]);
                rank.send(1, 20, vec![20u8]);
            } else {
                // Receive in reverse tag order.
                assert_eq!(rank.recv::<u8>(0, 20).unwrap(), vec![20]);
                assert_eq!(rank.recv::<u8>(0, 10).unwrap(), vec![10]);
            }
        });
    }

    #[test]
    fn type_mismatch_detected() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 5, vec![1u64]);
            } else {
                let err = rank.recv::<f32>(0, 5).unwrap_err();
                assert!(matches!(err, CommError::TypeMismatch { .. }));
            }
        });
    }

    #[test]
    fn irecv_overlaps_with_work() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 3, vec![42i32]);
            } else {
                let handle = rank.irecv::<i32>(0, 3);
                // "Compute" while the message is (already) in flight.
                let local: i64 = (0..1000).sum();
                assert_eq!(local, 499_500);
                assert_eq!(handle.wait().unwrap(), vec![42]);
            }
        });
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let world = World::new(8);
        let phase1 = AtomicUsize::new(0);
        world.run(|rank| {
            phase1.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            assert_eq!(phase1.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn split_forms_correct_groups() {
        let world = World::new(6);
        let infos = world.run(|rank| {
            let comm = rank.split(if rank.id() < 4 { 0 } else { 1 }).unwrap();
            (comm.color(), comm.id(), comm.size())
        });
        assert_eq!(infos[0], (0, 0, 4));
        assert_eq!(infos[3], (0, 3, 4));
        assert_eq!(infos[4], (1, 0, 2));
        assert_eq!(infos[5], (1, 1, 2));
    }

    #[test]
    fn subcomm_p2p_and_barrier() {
        let world = World::new(5);
        world.run(|rank| {
            // Domain 0: ranks 0..3 (like ATM+CPL); domain 1: ranks 3..5 (OCN).
            let comm = rank.split(if rank.id() < 3 { 0 } else { 1 }).unwrap();
            if comm.size() == 3 {
                if comm.id() == 0 {
                    comm.send(2, 1, vec![99u16]);
                } else if comm.id() == 2 {
                    assert_eq!(comm.recv::<u16>(0, 1).unwrap(), vec![99]);
                }
            }
            comm.barrier().unwrap();
        });
    }

    #[test]
    fn recv_timeout_is_configurable_and_reports_waiting_set() {
        let world = World::new(2).with_recv_timeout(Duration::from_millis(20));
        assert_eq!(world.recv_timeout(), Duration::from_millis(20));
        let errs = world.run(|rank| {
            if rank.id() == 1 {
                // Nothing is ever sent: this must deadlock quickly.
                Some(rank.recv::<u8>(0, 99).unwrap_err())
            } else {
                None
            }
        });
        match errs[1].as_ref().unwrap() {
            CommError::Deadlock { rank, waiting } => {
                assert_eq!(*rank, 1);
                assert_eq!(waiting, &vec![(0usize, 99u64)]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn injected_drop_loses_exactly_one_message() {
        use crate::faultplan::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse("drop src=0 dst=1 tag=4 nth=2").unwrap();
        let world = World::new(2)
            .with_recv_timeout(Duration::from_millis(20))
            .with_fault_injector(Arc::new(FaultInjector::new(plan)));
        world.run(|rank| {
            if rank.id() == 0 {
                for i in 0..3u32 {
                    rank.send(1, 4, vec![i]);
                }
            } else {
                // Second message is dropped; FIFO delivers 0 then 2.
                assert_eq!(rank.recv::<u32>(0, 4).unwrap(), vec![0]);
                assert_eq!(rank.recv::<u32>(0, 4).unwrap(), vec![2]);
                assert!(matches!(
                    rank.recv::<u32>(0, 4),
                    Err(CommError::Deadlock { .. })
                ));
            }
        });
    }

    #[test]
    fn injected_duplicate_delivers_twice() {
        use crate::faultplan::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse("dup src=0 dst=1 tag=9 nth=1").unwrap();
        let world = World::new(2)
            .with_fault_injector(Arc::new(FaultInjector::new(plan)));
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 9, vec![7u8]);
            } else {
                assert_eq!(rank.recv::<u8>(0, 9).unwrap(), vec![7]);
                assert_eq!(rank.recv::<u8>(0, 9).unwrap(), vec![7]);
            }
        });
    }

    #[test]
    fn drain_mailbox_discards_in_flight_traffic() {
        let world = World::new(2).with_recv_timeout(Duration::from_millis(20));
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, vec![1u8]);
                rank.send(1, 2, vec![2u8]);
                rank.barrier();
            } else {
                rank.barrier();
                assert_eq!(rank.drain_mailbox(), 2);
                assert!(rank.recv::<u8>(0, 1).is_err());
            }
        });
    }

    #[test]
    fn comm_event_timeline_records_sends_and_blocking_recvs() {
        use crate::events::CommEventKind;
        let world = World::new(2);
        world.comm_events().set_enabled(true);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 9, vec![0u64; 50]);
            } else {
                rank.recv::<u64>(0, 9).unwrap();
            }
        });
        let (sends, d0) = world.comm_events().take(0);
        let (recvs, d1) = world.comm_events().take(1);
        assert_eq!((d0, d1), (0, 0));
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, CommEventKind::Send);
        assert_eq!((sends[0].peer, sends[0].tag, sends[0].bytes), (1, 9, 400));
        let recv = recvs
            .iter()
            .find(|e| e.kind == CommEventKind::Recv)
            .expect("recv recorded");
        assert_eq!((recv.peer, recv.tag, recv.bytes), (0, 9, 400));
    }

    #[test]
    fn comm_event_timeline_is_off_by_default() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, vec![1u8]);
            } else {
                rank.recv::<u8>(0, 1).unwrap();
            }
        });
        assert!(world.comm_events().is_empty(0));
        assert!(world.comm_events().is_empty(1));
    }

    #[test]
    fn shrunk_view_translates_ranks_and_rejects_stale() {
        let world = World::new(3);
        let stale_seen = world.run(|rank| {
            let m = Membership {
                generation: 1,
                members: vec![0, 1],
            };
            match rank.world_id() {
                0 => {
                    // Pre-shrink message that must never be delivered into
                    // the new generation.
                    rank.send(1, 5, vec![111u32]);
                    rank.barrier();
                    rank.install_membership(&m);
                    assert_eq!((rank.id(), rank.size()), (0, 2));
                    rank.send(1, 5, vec![222u32]);
                    0
                }
                1 => {
                    rank.barrier();
                    rank.install_membership(&m);
                    assert_eq!((rank.id(), rank.size()), (1, 2));
                    assert_eq!(rank.world_id(), 1);
                    assert_eq!(rank.generation(), 1);
                    // The gen-0 [111] at the queue head is discarded, the
                    // gen-1 [222] behind it is delivered.
                    assert_eq!(rank.recv::<u32>(0, 5).unwrap(), vec![222]);
                    rank.stats().stale_messages()
                }
                _ => {
                    // The "dead" rank: participates in the last gen-0
                    // barrier, then exits.
                    rank.barrier();
                    0
                }
            }
        });
        assert_eq!(stale_seen[1], 1);
    }

    #[test]
    fn shrunk_view_maps_non_contiguous_survivors() {
        // Kill the middle rank: virtual 1 must become physical 2.
        let world = World::new(3);
        world.run(|rank| {
            let m = Membership {
                generation: 1,
                members: vec![0, 2],
            };
            match rank.world_id() {
                0 => {
                    rank.barrier();
                    rank.install_membership(&m);
                    rank.send(1, 9, vec![7u8]); // virtual 1 → physical 2
                    assert_eq!(rank.recv::<u8>(1, 10).unwrap(), vec![8]);
                }
                2 => {
                    rank.barrier();
                    rank.install_membership(&m);
                    assert_eq!((rank.id(), rank.size(), rank.world_id()), (1, 2, 2));
                    assert_eq!(rank.recv::<u8>(0, 9).unwrap(), vec![7]);
                    rank.send(0, 10, vec![8u8]);
                    // The dissemination barrier works over the virtual world.
                    rank.try_barrier().unwrap();
                }
                _ => {
                    rank.barrier();
                }
            }
            if rank.world_id() == 0 {
                rank.try_barrier().unwrap();
            }
        });
    }

    #[test]
    fn future_generation_messages_stay_queued_until_catchup() {
        let world = World::new(2);
        world.run(|rank| {
            let m = Membership {
                generation: 1,
                members: vec![0, 1],
            };
            if rank.world_id() == 0 {
                rank.send(1, 5, vec![111u32]);
                rank.install_membership(&m);
                rank.send(1, 5, vec![222u32]);
            } else {
                // Still at gen 0: the gen-0 message is deliverable...
                let first = loop {
                    if let Some(got) = rank.try_recv::<u32>(0, 5) {
                        break got.unwrap();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                };
                assert_eq!(first, vec![111]);
                // ...but the gen-1 message is not (left queued, not dropped).
                std::thread::sleep(Duration::from_millis(20));
                assert!(rank.try_recv::<u32>(0, 5).is_none());
                rank.install_membership(&m);
                assert_eq!(rank.recv::<u32>(0, 5).unwrap(), vec![222]);
                assert_eq!(rank.stats().stale_messages(), 0);
            }
        });
    }

    #[test]
    fn try_barrier_times_out_and_withdraws_arrival() {
        let world = World::new(2).with_recv_timeout(Duration::from_millis(40));
        world.run(|rank| {
            if rank.world_id() == 0 {
                // Partner is late: first attempt must fail, not hang.
                let err = rank.try_barrier().unwrap_err();
                assert!(matches!(err, CommError::Deadlock { rank: 0, .. }));
                // The withdrawn arrival lets a later barrier pair up cleanly.
                rank.try_barrier().unwrap();
            } else {
                std::thread::sleep(Duration::from_millis(80));
                rank.try_barrier().unwrap();
            }
        });
    }

    #[test]
    fn recv_within_enforces_its_own_deadline() {
        let world = World::new(2); // default (long) recv_timeout
        world.run(|rank| {
            if rank.world_id() == 1 {
                let t0 = std::time::Instant::now();
                let err = rank
                    .recv_within::<u8>(0, 3, Duration::from_millis(30))
                    .unwrap_err();
                assert!(matches!(err, CommError::Deadlock { .. }));
                assert!(t0.elapsed() < Duration::from_secs(5));
            }
        });
    }

    #[test]
    fn membership_vote_all_alive_when_everyone_answers() {
        let world = World::new(3).with_recv_timeout(Duration::from_millis(100));
        let verdicts = world.run(|rank| {
            let v = rank
                .membership_vote(if rank.world_id() == 1 { Some(2) } else { None })
                .unwrap();
            assert_eq!(rank.generation(), 0); // no shrink installed
            v
        });
        assert!(verdicts.iter().all(|v| *v == MembershipVerdict::AllAlive));
    }

    #[test]
    fn membership_vote_shrinks_around_a_dead_rank() {
        let world = World::new(4).with_recv_timeout(Duration::from_millis(60));
        let out = world.run(|rank| {
            if rank.world_id() == 2 {
                return None; // permanently dead: never votes
            }
            let verdict = rank.membership_vote(Some(2)).unwrap();
            let MembershipVerdict::Shrink(m) = verdict else {
                panic!("expected shrink, got {verdict:?}");
            };
            assert_eq!(m.members, vec![0, 1, 3]);
            assert_eq!(m.generation, 1);
            assert_eq!(rank.generation(), 1);
            // The shrunk world is immediately usable: ring exchange over
            // virtual ranks.
            rank.drain_stale();
            rank.try_barrier().unwrap();
            let n = rank.size();
            let me = rank.id();
            rank.send((me + 1) % n, 77, vec![me as u64]);
            let got = rank.recv::<u64>((me + n - 1) % n, 77).unwrap();
            assert_eq!(got, vec![((me + n - 1) % n) as u64]);
            Some(rank.world_id())
        });
        assert_eq!(out, vec![Some(0), Some(1), None, Some(3)]);
    }

    #[test]
    fn stats_count_bytes() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, vec![0f64; 100]);
            } else {
                rank.recv::<f64>(0, 1).unwrap();
            }
        });
        assert_eq!(world.stats().total_messages(), 1);
        assert_eq!(world.stats().total_bytes(), 800);
    }
}
