//! The rank world: thread-backed ranks, mailboxes, and communicators.

use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::events::{trace_now_us, CommEvent, CommEventKind, CommEventLog};
use crate::faultplan::{FaultInjector, MsgFault};
use crate::stats::CommStats;
use crate::CommError;

/// Default blocking-receive deadline before declaring deadlock. Generous for
/// slow CI machines but finite so test hangs turn into diagnostics. Override
/// per-world with [`World::with_recv_timeout`] or globally with the
/// `AP3ESM_RECV_TIMEOUT_MS` environment variable.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

fn env_recv_timeout() -> Duration {
    match std::env::var("AP3ESM_RECV_TIMEOUT_MS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms),
            _ => DEFAULT_RECV_TIMEOUT,
        },
        Err(_) => DEFAULT_RECV_TIMEOUT,
    }
}

struct Message {
    payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<(usize, u64), VecDeque<Message>>,
}

/// One per rank: a tag/source-addressed queue with a wakeup condvar.
#[derive(Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
    notify: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

struct WorldShared {
    n: usize,
    mailboxes: Vec<Mailbox>,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    stats: CommStats,
    recv_timeout: Duration,
    /// Fault-injection hook; `None` in production runs (one pointer check
    /// per send, nothing per receive — zero-cost when disabled).
    injector: Option<Arc<FaultInjector>>,
    /// Per-rank timestamped send/recv timeline; disabled by default (one
    /// relaxed load per message when off).
    events: CommEventLog,
}

/// A communication world of `n` ranks, each running on its own OS thread.
///
/// `World::run` mirrors `mpirun -np N`: it spawns the ranks, hands each a
/// [`Rank`] handle, and joins them, returning each rank's result in rank
/// order.
pub struct World {
    shared: Arc<WorldShared>,
}

impl World {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "world needs at least one rank");
        World {
            shared: Arc::new(WorldShared {
                n,
                mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
                barrier: Mutex::new(BarrierState {
                    arrived: 0,
                    generation: 0,
                }),
                barrier_cv: Condvar::new(),
                stats: CommStats::default(),
                recv_timeout: env_recv_timeout(),
                injector: None,
                events: CommEventLog::new(n, crate::events::DEFAULT_COMM_EVENT_CAPACITY),
            }),
        }
    }

    /// Builder: set this world's blocking-receive deadline (overrides the
    /// `AP3ESM_RECV_TIMEOUT_MS` environment default).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_recv_timeout must be called before World::run")
            .recv_timeout = timeout;
        self
    }

    /// Builder: install a fault injector applying a plan's message events
    /// on the send path.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_fault_injector must be called before World::run")
            .injector = Some(injector);
        self
    }

    /// The effective blocking-receive deadline.
    pub fn recv_timeout(&self) -> Duration {
        self.shared.recv_timeout
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Traffic accounting for everything sent in this world.
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// The world's comm-event timeline (disabled until
    /// [`CommEventLog::set_enabled`] is called).
    pub fn comm_events(&self) -> &CommEventLog {
        &self.shared.events
    }

    /// Run `f` on every rank concurrently; returns per-rank results in rank
    /// order. Panics in any rank propagate after all threads are joined.
    pub fn run<R: Send>(&self, f: impl Fn(&Rank) -> R + Sync) -> Vec<R> {
        let shared = &self.shared;
        let mut results: Vec<Option<R>> = (0..shared.n).map(|_| None).collect();
        crossbeam::scope(|s| {
            let mut handles = Vec::with_capacity(shared.n);
            for (id, slot) in results.iter_mut().enumerate() {
                let f = &f;
                handles.push(s.spawn(move |_| {
                    let rank = Rank {
                        id,
                        shared: Arc::clone(shared),
                    };
                    *slot = Some(f(&rank));
                }));
            }
            for h in handles {
                h.join().expect("rank panicked");
            }
        })
        .expect("world scope");
        results.into_iter().map(|r| r.expect("rank result")).collect()
    }
}

/// A handle to one rank inside a [`World::run`] closure.
pub struct Rank {
    id: usize,
    shared: Arc<WorldShared>,
}

/// Handle returned by [`Rank::irecv`]; `wait` blocks until the message lands.
pub struct RecvHandle<'a, T> {
    rank: &'a Rank,
    src: usize,
    tag: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send + 'static> RecvHandle<'_, T> {
    /// Block until the message arrives.
    pub fn wait(self) -> Result<Vec<T>, CommError> {
        self.rank.recv(self.src, self.tag)
    }

    /// Non-blocking probe: returns the message if already delivered.
    pub fn test(&self) -> Option<Result<Vec<T>, CommError>> {
        self.rank.try_recv(self.src, self.tag)
    }
}

impl Rank {
    /// This rank's id in `0..size`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Traffic statistics shared by the world.
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// The world's fault injector, if one was installed. Drivers consult it
    /// for rank-kill and checkpoint-corruption events (message events are
    /// applied transparently on the send path).
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.shared.injector.as_ref()
    }

    /// The shared comm-event timeline (same instance for every rank, one
    /// ring per rank).
    pub fn comm_events(&self) -> &CommEventLog {
        &self.shared.events
    }

    /// Send `data` to `dst` under `tag`. Non-blocking in the MPI "buffered"
    /// sense: the payload is moved into the destination mailbox immediately.
    pub fn send<T: Send + Clone + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(dst < self.shared.n, "send to invalid rank {dst}");
        let mut copies = 1usize;
        if let Some(injector) = &self.shared.injector {
            match injector.on_send(self.id, dst, tag) {
                Some(MsgFault::Drop) => copies = 0,
                Some(MsgFault::Delay { ms }) => std::thread::sleep(Duration::from_millis(ms)),
                Some(MsgFault::Duplicate) => copies = 2,
                None => {}
            }
        }
        let bytes = std::mem::size_of::<T>() * data.len();
        self.shared.stats.record_send(self.id, dst, tag, bytes);
        if self.shared.events.is_enabled() {
            self.shared.events.record(
                self.id,
                CommEvent {
                    kind: CommEventKind::Send,
                    ts_us: trace_now_us(),
                    dur_us: 0,
                    peer: dst,
                    tag,
                    bytes: bytes as u64,
                },
            );
        }
        if copies == 0 {
            return;
        }
        let mailbox = &self.shared.mailboxes[dst];
        {
            let mut inner = mailbox.inner.lock();
            for _ in 1..copies {
                inner
                    .queues
                    .entry((self.id, tag))
                    .or_default()
                    .push_back(Message {
                        payload: Box::new(data.clone()),
                    });
            }
            inner
                .queues
                .entry((self.id, tag))
                .or_default()
                .push_back(Message {
                    payload: Box::new(data),
                });
        }
        mailbox.notify.notify_all();
    }

    /// Non-blocking send — identical to [`Rank::send`] (kept for API parity
    /// with the paper's non-blocking point-to-point rearranger, §5.2.4).
    pub fn isend<T: Send + Clone + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.send(dst, tag, data);
    }

    /// Blocking receive of a `Vec<T>` from `src` under `tag`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
        assert!(src < self.shared.n, "recv from invalid rank {src}");
        // Timeline start: the blocking window (including condvar waits) is
        // the coupler stall time the trace makes visible.
        let t_rec = self.shared.events.is_enabled().then(trace_now_us);
        let mailbox = &self.shared.mailboxes[self.id];
        let msg = {
            let mut inner = mailbox.inner.lock();
            'wait: loop {
                if let Some(queue) = inner.queues.get_mut(&(src, tag)) {
                    if let Some(msg) = queue.pop_front() {
                        break 'wait msg;
                    }
                }
                if mailbox
                    .notify
                    .wait_for(&mut inner, self.shared.recv_timeout)
                    .timed_out()
                {
                    if let Some(ts) = t_rec {
                        // The timed-out wait is itself a timeline event: a
                        // dropped message shows as a full-timeout stall.
                        self.shared.events.record(
                            self.id,
                            CommEvent {
                                kind: CommEventKind::Recv,
                                ts_us: ts,
                                dur_us: trace_now_us().saturating_sub(ts),
                                peer: src,
                                tag,
                                bytes: 0,
                            },
                        );
                    }
                    return Err(CommError::Deadlock {
                        rank: self.id,
                        waiting: vec![(src, tag)],
                    });
                }
            }
        };
        let result = msg
            .payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                rank: self.id,
                src,
                tag,
            });
        if let Some(ts) = t_rec {
            let bytes = result
                .as_ref()
                .map(|v| (std::mem::size_of::<T>() * v.len()) as u64)
                .unwrap_or(0);
            self.shared.events.record(
                self.id,
                CommEvent {
                    kind: CommEventKind::Recv,
                    ts_us: ts,
                    dur_us: trace_now_us().saturating_sub(ts),
                    peer: src,
                    tag,
                    bytes,
                },
            );
        }
        result
    }

    /// Discard every message queued for this rank (all sources, all tags).
    /// Returns the number of messages dropped. Used by the recovery path:
    /// after a rollback every rank drains in-flight traffic so replayed
    /// streams start from clean FIFO queues.
    pub fn drain_mailbox(&self) -> usize {
        let mailbox = &self.shared.mailboxes[self.id];
        let mut inner = mailbox.inner.lock();
        let n = inner.queues.values().map(|q| q.len()).sum();
        inner.queues.clear();
        n
    }

    /// Non-blocking receive returning `None` when no message is queued yet.
    pub fn try_recv<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
    ) -> Option<Result<Vec<T>, CommError>> {
        let mailbox = &self.shared.mailboxes[self.id];
        let mut inner = mailbox.inner.lock();
        let queue = inner.queues.get_mut(&(src, tag))?;
        let msg = queue.pop_front()?;
        Some(msg.payload.downcast::<Vec<T>>().map(|b| *b).map_err(|_| {
            CommError::TypeMismatch {
                rank: self.id,
                src,
                tag,
            }
        }))
    }

    /// Post a non-blocking receive; the returned handle can be waited later,
    /// letting callers overlap communication and computation (the paper's
    /// rearranger optimisation, §5.2.4).
    pub fn irecv<T: Send + 'static>(&self, src: usize, tag: u64) -> RecvHandle<'_, T> {
        RecvHandle {
            rank: self,
            src,
            tag,
            _marker: std::marker::PhantomData,
        }
    }

    /// Global synchronisation across every rank of the world.
    pub fn barrier(&self) {
        let shared = &self.shared;
        let mut state = shared.barrier.lock();
        let gen = state.generation;
        state.arrived += 1;
        if state.arrived == shared.n {
            state.arrived = 0;
            state.generation += 1;
            shared.barrier_cv.notify_all();
        } else {
            while state.generation == gen {
                shared.barrier_cv.wait(&mut state);
            }
        }
    }

    /// Split the world into sub-communicators by `color`; ranks sharing a
    /// color form one [`SubComm`], ordered by world rank. Mirrors
    /// `MPI_Comm_split`, which AP3ESM uses to carve the two task domains
    /// (ATM+ICE+LND+CPL | OCN) of §7.2.
    pub fn split(&self, color: u64) -> Result<SubComm<'_>, CommError> {
        // Exchange colors via allgather so every rank learns the grouping.
        let colors =
            crate::collectives::allgather(self, crate::collectives::TAG_SPLIT, vec![color])?;
        let members: Vec<usize> = colors
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == color)
            .map(|(r, _)| r)
            .collect();
        let local = members
            .iter()
            .position(|&r| r == self.id)
            .expect("rank is always a member of its own split group");
        Ok(SubComm {
            rank: self,
            members,
            local,
            color,
        })
    }
}

/// A subset communicator produced by [`Rank::split`].
pub struct SubComm<'a> {
    rank: &'a Rank,
    members: Vec<usize>,
    local: usize,
    color: u64,
}

impl SubComm<'_> {
    /// Rank within the sub-communicator.
    pub fn id(&self) -> usize {
        self.local
    }

    /// Sub-communicator size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The split color that formed this communicator.
    pub fn color(&self) -> u64 {
        self.color
    }

    /// World rank of sub-rank `i`.
    pub fn world_rank(&self, i: usize) -> usize {
        self.members[i]
    }

    /// Underlying world rank handle.
    pub fn world(&self) -> &Rank {
        self.rank
    }

    fn scoped_tag(&self, tag: u64) -> u64 {
        // Partition the tag space per color so concurrent sub-communicators
        // never alias each other's messages.
        (self.color.wrapping_add(1) << 32) ^ tag
    }

    /// Send to sub-rank `dst`.
    pub fn send<T: Send + Clone + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.rank
            .send(self.members[dst], self.scoped_tag(tag), data);
    }

    /// Receive from sub-rank `src`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
        self.rank.recv(self.members[src], self.scoped_tag(tag))
    }

    /// Barrier across this sub-communicator only (dissemination algorithm on
    /// point-to-point messages).
    pub fn barrier(&self) -> Result<(), CommError> {
        let n = self.size();
        let mut round = 1usize;
        while round < n {
            let dst = (self.local + round) % n;
            let src = (self.local + n - round % n) % n;
            self.send::<u8>(dst, crate::collectives::TAG_SUB_BARRIER + round as u64, vec![]);
            self.recv::<u8>(src, crate::collectives::TAG_SUB_BARRIER + round as u64)?;
            round <<= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_two_ranks() {
        let world = World::new(2);
        let out = world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                rank.recv::<f64>(1, 8).unwrap()
            } else {
                let got = rank.recv::<f64>(0, 7).unwrap();
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                rank.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn messages_keep_fifo_order_per_tag() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                for i in 0..100u32 {
                    rank.send(1, 1, vec![i]);
                }
            } else {
                for i in 0..100u32 {
                    let got = rank.recv::<u32>(0, 1).unwrap();
                    assert_eq!(got, vec![i]);
                }
            }
        });
    }

    #[test]
    fn tags_are_independent_channels() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 10, vec![10u8]);
                rank.send(1, 20, vec![20u8]);
            } else {
                // Receive in reverse tag order.
                assert_eq!(rank.recv::<u8>(0, 20).unwrap(), vec![20]);
                assert_eq!(rank.recv::<u8>(0, 10).unwrap(), vec![10]);
            }
        });
    }

    #[test]
    fn type_mismatch_detected() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 5, vec![1u64]);
            } else {
                let err = rank.recv::<f32>(0, 5).unwrap_err();
                assert!(matches!(err, CommError::TypeMismatch { .. }));
            }
        });
    }

    #[test]
    fn irecv_overlaps_with_work() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 3, vec![42i32]);
            } else {
                let handle = rank.irecv::<i32>(0, 3);
                // "Compute" while the message is (already) in flight.
                let local: i64 = (0..1000).sum();
                assert_eq!(local, 499_500);
                assert_eq!(handle.wait().unwrap(), vec![42]);
            }
        });
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let world = World::new(8);
        let phase1 = AtomicUsize::new(0);
        world.run(|rank| {
            phase1.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            assert_eq!(phase1.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn split_forms_correct_groups() {
        let world = World::new(6);
        let infos = world.run(|rank| {
            let comm = rank.split(if rank.id() < 4 { 0 } else { 1 }).unwrap();
            (comm.color(), comm.id(), comm.size())
        });
        assert_eq!(infos[0], (0, 0, 4));
        assert_eq!(infos[3], (0, 3, 4));
        assert_eq!(infos[4], (1, 0, 2));
        assert_eq!(infos[5], (1, 1, 2));
    }

    #[test]
    fn subcomm_p2p_and_barrier() {
        let world = World::new(5);
        world.run(|rank| {
            // Domain 0: ranks 0..3 (like ATM+CPL); domain 1: ranks 3..5 (OCN).
            let comm = rank.split(if rank.id() < 3 { 0 } else { 1 }).unwrap();
            if comm.size() == 3 {
                if comm.id() == 0 {
                    comm.send(2, 1, vec![99u16]);
                } else if comm.id() == 2 {
                    assert_eq!(comm.recv::<u16>(0, 1).unwrap(), vec![99]);
                }
            }
            comm.barrier().unwrap();
        });
    }

    #[test]
    fn recv_timeout_is_configurable_and_reports_waiting_set() {
        let world = World::new(2).with_recv_timeout(Duration::from_millis(20));
        assert_eq!(world.recv_timeout(), Duration::from_millis(20));
        let errs = world.run(|rank| {
            if rank.id() == 1 {
                // Nothing is ever sent: this must deadlock quickly.
                Some(rank.recv::<u8>(0, 99).unwrap_err())
            } else {
                None
            }
        });
        match errs[1].as_ref().unwrap() {
            CommError::Deadlock { rank, waiting } => {
                assert_eq!(*rank, 1);
                assert_eq!(waiting, &vec![(0usize, 99u64)]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn injected_drop_loses_exactly_one_message() {
        use crate::faultplan::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse("drop src=0 dst=1 tag=4 nth=2").unwrap();
        let world = World::new(2)
            .with_recv_timeout(Duration::from_millis(20))
            .with_fault_injector(Arc::new(FaultInjector::new(plan)));
        world.run(|rank| {
            if rank.id() == 0 {
                for i in 0..3u32 {
                    rank.send(1, 4, vec![i]);
                }
            } else {
                // Second message is dropped; FIFO delivers 0 then 2.
                assert_eq!(rank.recv::<u32>(0, 4).unwrap(), vec![0]);
                assert_eq!(rank.recv::<u32>(0, 4).unwrap(), vec![2]);
                assert!(matches!(
                    rank.recv::<u32>(0, 4),
                    Err(CommError::Deadlock { .. })
                ));
            }
        });
    }

    #[test]
    fn injected_duplicate_delivers_twice() {
        use crate::faultplan::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse("dup src=0 dst=1 tag=9 nth=1").unwrap();
        let world = World::new(2)
            .with_fault_injector(Arc::new(FaultInjector::new(plan)));
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 9, vec![7u8]);
            } else {
                assert_eq!(rank.recv::<u8>(0, 9).unwrap(), vec![7]);
                assert_eq!(rank.recv::<u8>(0, 9).unwrap(), vec![7]);
            }
        });
    }

    #[test]
    fn drain_mailbox_discards_in_flight_traffic() {
        let world = World::new(2).with_recv_timeout(Duration::from_millis(20));
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, vec![1u8]);
                rank.send(1, 2, vec![2u8]);
                rank.barrier();
            } else {
                rank.barrier();
                assert_eq!(rank.drain_mailbox(), 2);
                assert!(rank.recv::<u8>(0, 1).is_err());
            }
        });
    }

    #[test]
    fn comm_event_timeline_records_sends_and_blocking_recvs() {
        use crate::events::CommEventKind;
        let world = World::new(2);
        world.comm_events().set_enabled(true);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 9, vec![0u64; 50]);
            } else {
                rank.recv::<u64>(0, 9).unwrap();
            }
        });
        let (sends, d0) = world.comm_events().take(0);
        let (recvs, d1) = world.comm_events().take(1);
        assert_eq!((d0, d1), (0, 0));
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, CommEventKind::Send);
        assert_eq!((sends[0].peer, sends[0].tag, sends[0].bytes), (1, 9, 400));
        let recv = recvs
            .iter()
            .find(|e| e.kind == CommEventKind::Recv)
            .expect("recv recorded");
        assert_eq!((recv.peer, recv.tag, recv.bytes), (0, 9, 400));
    }

    #[test]
    fn comm_event_timeline_is_off_by_default() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, vec![1u8]);
            } else {
                rank.recv::<u8>(0, 1).unwrap();
            }
        });
        assert!(world.comm_events().is_empty(0));
        assert!(world.comm_events().is_empty(1));
    }

    #[test]
    fn stats_count_bytes() {
        let world = World::new(2);
        world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, vec![0f64; 100]);
            } else {
                rank.recv::<f64>(0, 1).unwrap();
            }
        });
        assert_eq!(world.stats().total_messages(), 1);
        assert_eq!(world.stats().total_bytes(), 800);
    }
}
