//! Attribute vectors (MCT `AttrVect` analogue): named field bundles on a
//! local decomposition slice, with the §5.2.4 trimming of "unnecessary
//! communication variables that are registered in MCT and are not used in
//! GRIST and LICOM".

use std::collections::BTreeMap;

/// A bundle of named fields over `npoints` local points.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrVect {
    npoints: usize,
    fields: BTreeMap<String, Vec<f64>>,
}

impl AttrVect {
    pub fn new(npoints: usize, field_names: &[&str]) -> Self {
        AttrVect {
            npoints,
            fields: field_names
                .iter()
                .map(|n| (n.to_string(), vec![0.0; npoints]))
                .collect(),
        }
    }

    pub fn npoints(&self) -> usize {
        self.npoints
    }

    pub fn field_names(&self) -> Vec<&str> {
        self.fields.keys().map(|s| s.as_str()).collect()
    }

    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    pub fn get(&self, name: &str) -> &[f64] {
        self.fields
            .get(name)
            .unwrap_or_else(|| panic!("no field {name:?} in attribute vector"))
    }

    pub fn get_mut(&mut self, name: &str) -> &mut [f64] {
        self.fields
            .get_mut(name)
            .unwrap_or_else(|| panic!("no field {name:?} in attribute vector"))
    }

    pub fn set(&mut self, name: &str, data: &[f64]) {
        assert_eq!(data.len(), self.npoints, "field length mismatch");
        self.get_mut(name).copy_from_slice(data);
    }

    /// Drop every field not in `used` — the paper's removal of registered-
    /// but-unused coupling variables. Returns how many were trimmed.
    pub fn retain_used(&mut self, used: &[&str]) -> usize {
        let before = self.fields.len();
        self.fields.retain(|name, _| used.contains(&name.as_str()));
        before - self.fields.len()
    }

    /// Bytes of payload this bundle contributes to one rearrangement.
    pub fn payload_bytes(&self) -> usize {
        self.fields.len() * self.npoints * 8
    }

    /// Pack all fields (in name order) into one flat buffer for a single
    /// rearrangement message, and the unpack inverse.
    pub fn pack(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.fields.len() * self.npoints);
        for data in self.fields.values() {
            out.extend_from_slice(data);
        }
        out
    }

    pub fn unpack(&mut self, buf: &[f64]) {
        assert_eq!(buf.len(), self.fields.len() * self.npoints, "unpack size");
        for (k, data) in self.fields.values_mut().enumerate() {
            data.copy_from_slice(&buf[k * self.npoints..(k + 1) * self.npoints]);
        }
    }
}

/// The standard atmosphere→ocean export fields of the coupled model.
pub const ATM_TO_OCN_FIELDS: &[&str] = &["taux", "tauy", "qnet", "precip"];
/// The ocean→atmosphere export fields.
pub const OCN_TO_ATM_FIELDS: &[&str] = &["sst", "ssu", "ssv"];
/// The ice exports merged into the ocean forcing.
pub const ICE_TO_OCN_FIELDS: &[&str] = &["fresh", "heat", "ifrac"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut av = AttrVect::new(4, ATM_TO_OCN_FIELDS);
        av.set("taux", &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(av.get("taux"), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(av.get("tauy"), &[0.0; 4]);
        assert_eq!(av.num_fields(), 4);
    }

    #[test]
    fn trim_unused_variables() {
        let mut av = AttrVect::new(8, &["taux", "tauy", "qnet", "dust", "co2", "isotopes"]);
        let bytes_before = av.payload_bytes();
        let trimmed = av.retain_used(&["taux", "tauy", "qnet"]);
        assert_eq!(trimmed, 3);
        assert_eq!(av.num_fields(), 3);
        assert_eq!(av.payload_bytes() * 2, bytes_before);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut av = AttrVect::new(3, &["a", "b"]);
        av.set("a", &[1.0, 2.0, 3.0]);
        av.set("b", &[-1.0, -2.0, -3.0]);
        let packed = av.pack();
        assert_eq!(packed.len(), 6);
        let mut other = AttrVect::new(3, &["a", "b"]);
        other.unpack(&packed);
        assert_eq!(av, other);
    }

    #[test]
    #[should_panic(expected = "no field")]
    fn unknown_field_panics() {
        let av = AttrVect::new(2, &["x"]);
        let _ = av.get("y");
    }
}
