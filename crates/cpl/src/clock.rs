//! Coupling clocks and alarms.
//!
//! "The coupler manages the main clock in the system and maintains a clock
//! that is associated with each component. GRIST and LICOM implement the
//! clock, which is consistent with the coupling clock, and make sure the
//! coupling period is consistent with their internal timestep" (§5.1.1).
//! The coupling frequencies are 180 / 36 / 180 couplings per day for the
//! atmosphere, ocean, and sea ice (§6.1).

/// Seconds in a day.
pub const DAY: i64 = 86_400;

/// A periodic alarm on the coupling clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// Period in seconds.
    pub period: i64,
}

impl Alarm {
    /// Alarm firing `per_day` times per day (must divide the day evenly, as
    /// CPL7 requires).
    pub fn per_day(per_day: i64) -> Self {
        assert!(per_day > 0 && DAY % per_day == 0, "period must divide a day");
        Alarm {
            period: DAY / per_day,
        }
    }

    /// Does the alarm ring at `time` (seconds since start)?
    pub fn ringing(&self, time: i64) -> bool {
        time % self.period == 0
    }
}

/// The coupler's main clock plus the three component alarms.
#[derive(Debug, Clone)]
pub struct CouplingClock {
    /// Seconds since simulation start.
    pub time: i64,
    /// Base coupling step (the greatest common divisor of the alarms).
    pub dt: i64,
    pub atm_alarm: Alarm,
    pub ocn_alarm: Alarm,
    pub ice_alarm: Alarm,
}

impl CouplingClock {
    /// The paper's configuration: atm 180, ocn 36, ice 180 couplings/day.
    pub fn paper_default() -> Self {
        Self::new(180, 36, 180)
    }

    pub fn new(atm_per_day: i64, ocn_per_day: i64, ice_per_day: i64) -> Self {
        let atm_alarm = Alarm::per_day(atm_per_day);
        let ocn_alarm = Alarm::per_day(ocn_per_day);
        let ice_alarm = Alarm::per_day(ice_per_day);
        let dt = gcd(gcd(atm_alarm.period, ocn_alarm.period), ice_alarm.period);
        CouplingClock {
            time: 0,
            dt,
            atm_alarm,
            ocn_alarm,
            ice_alarm,
        }
    }

    /// Advance one base step; returns which components couple at the *new*
    /// interval start (i.e. which alarms ring at the pre-advance time).
    pub fn advance(&mut self) -> CouplingEvent {
        let event = CouplingEvent {
            time: self.time,
            atm: self.atm_alarm.ringing(self.time),
            ocn: self.ocn_alarm.ringing(self.time),
            ice: self.ice_alarm.ringing(self.time),
        };
        self.time += self.dt;
        event
    }

    /// Simulated days elapsed.
    pub fn days(&self) -> f64 {
        self.time as f64 / DAY as f64
    }

    /// Check a component's internal timestep divides its coupling period —
    /// the consistency requirement of §5.1.1.
    pub fn consistent_with(&self, component_dt: f64, alarm: Alarm) -> bool {
        let steps = alarm.period as f64 / component_dt;
        (steps - steps.round()).abs() < 1e-9 && steps >= 1.0
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplingEvent {
    pub time: i64,
    pub atm: bool,
    pub ocn: bool,
    pub ice: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frequencies() {
        let clock = CouplingClock::paper_default();
        assert_eq!(clock.atm_alarm.period, 480); // 86400/180
        assert_eq!(clock.ocn_alarm.period, 2400); // 86400/36
        assert_eq!(clock.ice_alarm.period, 480);
        assert_eq!(clock.dt, 480);
    }

    #[test]
    fn one_day_fires_the_right_counts() {
        let mut clock = CouplingClock::paper_default();
        let mut atm = 0;
        let mut ocn = 0;
        let mut ice = 0;
        while clock.time < DAY {
            let e = clock.advance();
            atm += e.atm as usize;
            ocn += e.ocn as usize;
            ice += e.ice as usize;
        }
        assert_eq!(atm, 180);
        assert_eq!(ocn, 36);
        assert_eq!(ice, 180);
        assert!((clock.days() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ocn_couples_every_fifth_atm_interval() {
        let mut clock = CouplingClock::paper_default();
        let mut pattern = Vec::new();
        for _ in 0..10 {
            let e = clock.advance();
            pattern.push(e.ocn);
        }
        assert_eq!(
            pattern,
            vec![true, false, false, false, false, true, false, false, false, false]
        );
    }

    #[test]
    fn timestep_consistency_check() {
        let clock = CouplingClock::paper_default();
        // A 120 s atmosphere model step divides the 480 s coupling period.
        assert!(clock.consistent_with(120.0, clock.atm_alarm));
        // A 100 s step does not.
        assert!(!clock.consistent_with(100.0, clock.atm_alarm));
        // An ocean step of 2400 s divides its period exactly once.
        assert!(clock.consistent_with(2400.0, clock.ocn_alarm));
        // Steps longer than the coupling period are inconsistent.
        assert!(!clock.consistent_with(4800.0, clock.ocn_alarm));
    }

    #[test]
    #[should_panic(expected = "period must divide a day")]
    fn non_divisor_frequency_rejected() {
        let _ = Alarm::per_day(7);
    }
}
