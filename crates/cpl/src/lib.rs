//! # AP3ESM coupler (`ap3esm-cpl`)
//!
//! The CPL7 + MCT analogue (paper §5.1.1, §5.2.4). The coupler "runs on all
//! processors and handles coupler sequencing, model concurrency, and
//! communication between components"; MCT supplies the datatypes this crate
//! reimplements:
//!
//! * [`GSMap`] — the global segment map describing a field's decomposition,
//! * [`Router`] — the M×N table mapping one decomposition onto another,
//!   with **offline precomputation + serialisation** (§5.2.4: on Sunway the
//!   per-CG memory cannot afford online construction, so "the two data
//!   structures are generated offline as a preprocessing step"),
//! * [`Rearranger`] — executes a Router with either the original
//!   **all-to-all** strategy or the optimised **non-blocking point-to-point**
//!   strategy that "overlaps communication and computation",
//! * [`AttrVect`] — named multi-field bundles (MCT attribute vectors), with
//!   the §5.2.4 trimming of unused variables,
//! * [`clock`] — coupling clocks and alarms (atm 180 / ocn 36 / ice 180
//!   couplings per day),
//! * [`fluxes`] — air–sea/ice flux merging on the exchange grid,
//! * [`mapping`] — inter-grid interpolation (icosahedral ↔ tripolar).

pub mod avect;
pub mod clock;
pub mod fluxes;
pub mod gsmap;
pub mod mapping;
pub mod rearrange;
pub mod router;

pub use avect::AttrVect;
pub use clock::{Alarm, CouplingClock};
pub use gsmap::GSMap;
pub use mapping::RemapMatrix;
pub use rearrange::{RearrangeStrategy, Rearranger};
pub use router::Router;
