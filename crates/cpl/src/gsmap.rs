//! The global segment map (MCT `GlobalSegMap` analogue): which rank owns
//! which contiguous runs of the global index space.

use ap3esm_grid::decomp::BlockDecomp2d;
use serde::{Deserialize, Serialize};

/// One contiguous run of global indices owned by a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    pub start: usize,
    pub length: usize,
    pub owner: usize,
}

/// A decomposition of `0..nglobal` into rank-owned segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GSMap {
    pub nglobal: usize,
    pub nranks: usize,
    /// Sorted by `start`; disjoint; covering exactly `0..nglobal`.
    pub segments: Vec<Segment>,
}

impl GSMap {
    /// Build from per-rank index ranges `[start, end)` (one per rank, in
    /// rank order; ranges may be empty).
    pub fn from_ranges(nglobal: usize, ranges: &[(usize, usize)]) -> Self {
        let mut segments: Vec<Segment> = ranges
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| e > s)
            .map(|(owner, &(s, e))| Segment {
                start: s,
                length: e - s,
                owner,
            })
            .collect();
        segments.sort_by_key(|s| s.start);
        let map = GSMap {
            nglobal,
            nranks: ranges.len(),
            segments,
        };
        map.validate().expect("invalid ranges");
        map
    }

    /// Even contiguous split of `0..nglobal` over `nranks`.
    pub fn even(nglobal: usize, nranks: usize) -> Self {
        let base = nglobal / nranks;
        let rem = nglobal % nranks;
        let mut ranges = Vec::with_capacity(nranks);
        let mut start = 0;
        for r in 0..nranks {
            let len = base + usize::from(r < rem);
            ranges.push((start, start + len));
            start += len;
        }
        Self::from_ranges(nglobal, &ranges)
    }

    /// All indices on one rank (the root), as CESM uses for a
    /// single-process component in an M×N coupling.
    pub fn all_on_rank(nglobal: usize, nranks: usize, root: usize) -> Self {
        let mut ranges = vec![(0, 0); nranks];
        ranges[root] = (0, nglobal);
        Self::from_ranges(nglobal, &ranges)
    }

    /// Build from an arbitrary owner-per-index assignment (segments are
    /// coalesced; this is how a 2-D block decomposition becomes a GSMap).
    pub fn from_owners(owners: &[usize], nranks: usize) -> Self {
        let mut segments = Vec::new();
        let mut i = 0;
        while i < owners.len() {
            let owner = owners[i];
            assert!(owner < nranks, "owner {owner} out of range");
            let start = i;
            while i < owners.len() && owners[i] == owner {
                i += 1;
            }
            segments.push(Segment {
                start,
                length: i - start,
                owner,
            });
        }
        let map = GSMap {
            nglobal: owners.len(),
            nranks,
            segments,
        };
        map.validate().expect("owners produced invalid map");
        map
    }

    /// Build the map of a 2-D block decomposition laid j-major over
    /// `0..nlon*nlat`, with block `r` owned by rank `rank_offset + r`
    /// (the two-task-domain layout puts the coupler on rank 0 and ocean
    /// block `r` on rank `1 + r`).
    ///
    /// This is the single code path for ocean ownership: the initial
    /// layout and the shrink-to-fit re-decomposition after permanent rank
    /// loss both call it, so a degraded M-rank world and a fresh M-rank
    /// run get bit-identical segment tables.
    pub fn from_block2d(decomp: &BlockDecomp2d, nranks: usize, rank_offset: usize) -> Self {
        let mut owners = vec![0usize; decomp.nlon * decomp.nlat];
        for r in 0..decomp.nranks() {
            let b = decomp.block(r);
            for j in b.j0..b.j1 {
                for i in b.i0..b.i1 {
                    owners[j * decomp.nlon + i] = rank_offset + r;
                }
            }
        }
        Self::from_owners(&owners, nranks)
    }

    /// Check the invariant: sorted, disjoint, complete coverage.
    pub fn validate(&self) -> Result<(), String> {
        let mut expect = 0usize;
        for s in &self.segments {
            if s.start != expect {
                return Err(format!(
                    "gap or overlap at {expect}: next segment starts {}",
                    s.start
                ));
            }
            if s.owner >= self.nranks {
                return Err(format!("owner {} out of 0..{}", s.owner, self.nranks));
            }
            expect = s.start + s.length;
        }
        if expect != self.nglobal {
            return Err(format!("coverage ends at {expect}, expected {}", self.nglobal));
        }
        Ok(())
    }

    /// Owner of a global index.
    pub fn owner_of(&self, gid: usize) -> usize {
        assert!(gid < self.nglobal);
        let mut lo = 0;
        let mut hi = self.segments.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.segments[mid].start <= gid {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.segments[lo].owner
    }

    /// Global indices owned by `rank` in ascending order.
    pub fn local_indices(&self, rank: usize) -> Vec<usize> {
        self.segments
            .iter()
            .filter(|s| s.owner == rank)
            .flat_map(|s| s.start..s.start + s.length)
            .collect()
    }

    /// Number of indices owned by `rank`.
    pub fn local_size(&self, rank: usize) -> usize {
        self.segments
            .iter()
            .filter(|s| s.owner == rank)
            .map(|s| s.length)
            .sum()
    }

    /// Rough memory footprint in bytes (the quantity that overflows a
    /// Sunway CG when built online, motivating offline precompute).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Segment>() * self.segments.len() + std::mem::size_of::<Self>()
    }

    /// Serialise for the offline-precompute store (§5.2.4).
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::new();
        b.put_u64_le(self.nglobal as u64);
        b.put_u64_le(self.nranks as u64);
        b.put_u64_le(self.segments.len() as u64);
        for s in &self.segments {
            b.put_u64_le(s.start as u64);
            b.put_u64_le(s.length as u64);
            b.put_u64_le(s.owner as u64);
        }
        b.to_vec()
    }

    /// Deserialise an offline-precomputed map, re-validating invariants.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, String> {
        use bytes::Buf;
        if buf.len() < 24 {
            return Err("truncated GSMap".into());
        }
        let nglobal = buf.get_u64_le() as usize;
        let nranks = buf.get_u64_le() as usize;
        let nseg = buf.get_u64_le() as usize;
        if buf.len() < nseg * 24 {
            return Err("truncated GSMap segments".into());
        }
        let mut segments = Vec::with_capacity(nseg);
        for _ in 0..nseg {
            segments.push(Segment {
                start: buf.get_u64_le() as usize,
                length: buf.get_u64_le() as usize,
                owner: buf.get_u64_le() as usize,
            });
        }
        let map = GSMap {
            nglobal,
            nranks,
            segments,
        };
        map.validate()?;
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_everything() {
        let m = GSMap::even(103, 4);
        m.validate().unwrap();
        let total: usize = (0..4).map(|r| m.local_size(r)).sum();
        assert_eq!(total, 103);
        // Sizes differ by at most 1.
        let sizes: Vec<usize> = (0..4).map(|r| m.local_size(r)).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn owner_lookup_matches_local_indices() {
        let m = GSMap::from_ranges(20, &[(0, 5), (5, 12), (12, 20)]);
        for r in 0..3 {
            for gid in m.local_indices(r) {
                assert_eq!(m.owner_of(gid), r);
            }
        }
    }

    #[test]
    fn all_on_rank_is_degenerate_but_valid() {
        let m = GSMap::all_on_rank(50, 4, 2);
        m.validate().unwrap();
        assert_eq!(m.local_size(2), 50);
        assert_eq!(m.local_size(0), 0);
        assert_eq!(m.owner_of(49), 2);
    }

    #[test]
    fn from_owners_coalesces_segments() {
        let owners = vec![0, 0, 1, 1, 1, 0, 2, 2];
        let m = GSMap::from_owners(&owners, 3);
        assert_eq!(m.segments.len(), 4);
        assert_eq!(m.local_indices(0), vec![0, 1, 5]);
        assert_eq!(m.local_indices(1), vec![2, 3, 4]);
        assert_eq!(m.local_indices(2), vec![6, 7]);
    }

    #[test]
    fn block2d_map_matches_block_rectangles() {
        let decomp = BlockDecomp2d::new(8, 6, 2, 2);
        let m = GSMap::from_block2d(&decomp, 5, 1);
        m.validate().unwrap();
        assert_eq!(m.nglobal, 48);
        assert_eq!(m.local_size(0), 0, "rank 0 is the coupler, owns nothing");
        for r in 0..decomp.nranks() {
            let b = decomp.block(r);
            assert_eq!(m.local_size(1 + r), b.ncols());
            for j in b.j0..b.j1 {
                for i in b.i0..b.i1 {
                    assert_eq!(m.owner_of(j * 8 + i), 1 + r);
                }
            }
        }
    }

    #[test]
    fn block2d_redecomposition_shrinks_cleanly() {
        // Same grid, fewer ranks: still valid, still covers everything —
        // the shrink path after permanent rank loss relies on this.
        let m4 = GSMap::from_block2d(&BlockDecomp2d::auto(36, 24, 4), 5, 1);
        let m3 = GSMap::from_block2d(&BlockDecomp2d::auto(36, 24, 3), 4, 1);
        m4.validate().unwrap();
        m3.validate().unwrap();
        assert_eq!(m4.nglobal, m3.nglobal);
        assert_eq!((1..5).map(|r| m4.local_size(r)).sum::<usize>(), 36 * 24);
        assert_eq!((1..4).map(|r| m3.local_size(r)).sum::<usize>(), 36 * 24);
    }

    #[test]
    fn validation_catches_gaps() {
        let broken = GSMap {
            nglobal: 10,
            nranks: 2,
            segments: vec![
                Segment {
                    start: 0,
                    length: 4,
                    owner: 0,
                },
                Segment {
                    start: 6,
                    length: 4,
                    owner: 1,
                },
            ],
        };
        assert!(broken.validate().is_err());
    }

    #[test]
    fn binary_roundtrip_for_offline_store() {
        // The offline-precompute path serialises GSMaps to disk (§5.2.4).
        let m = GSMap::even(1000, 7);
        let bytes = m.to_bytes();
        let back = GSMap::from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
    }
}
