//! Rearrangement: executing a [`Router`] over the communication world.
//!
//! "Rearrangement in the coupler generalizes the matrix transpose. The
//! original all-to-all MPI was inefficient; we implemented non-blocking
//! point-to-point MPI, which overlaps communication and computation for
//! improved performance" (§5.2.4). Both strategies are implemented so the
//! S524 benchmark can compare them on identical routers.

use ap3esm_comm::collectives::alltoallv;
use ap3esm_comm::{CommError, Rank};

use crate::router::Router;

/// Wire-tag namespace of the non-blocking point-to-point strategy.
const P2P_TAG_BASE: u64 = 0x5240_0000;

/// Which MPI pattern moves the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RearrangeStrategy {
    /// One `MPI_Alltoallv`-style collective (the original implementation).
    AllToAll,
    /// Non-blocking point-to-point sends to only the ranks that need data,
    /// receives drained in arrival-friendly order (the optimisation).
    NonBlockingP2p,
}

/// Executes one router in either direction.
pub struct Rearranger {
    pub router: Router,
    tag: u64,
}

impl Rearranger {
    pub fn new(router: Router, tag: u64) -> Self {
        Rearranger { router, tag }
    }

    /// Move `src_data` (this rank's source-decomposition slice) into the
    /// destination decomposition; returns this rank's destination slice of
    /// length `dst_len`.
    ///
    /// Every rank of the world participates (the coupler "runs on all
    /// processors"); ranks with no data still make the call.
    pub fn rearrange(
        &self,
        rank: &Rank,
        strategy: RearrangeStrategy,
        src_data: &[f64],
        dst_len: usize,
    ) -> Vec<f64> {
        self.try_rearrange(rank, strategy, src_data, dst_len)
            .expect("rearrange failed")
    }

    /// Fallible variant of [`Rearranger::rearrange`]: a dropped or delayed
    /// message under fault injection surfaces as [`CommError`] instead of a
    /// panic, keeping the driver's recovery path reachable.
    pub fn try_rearrange(
        &self,
        rank: &Rank,
        strategy: RearrangeStrategy,
        src_data: &[f64],
        dst_len: usize,
    ) -> Result<Vec<f64>, CommError> {
        let _span = ap3esm_obs::span("rearrange");
        let t0 = std::time::Instant::now();
        let out = match strategy {
            RearrangeStrategy::AllToAll => self.rearrange_a2a(rank, src_data, dst_len),
            RearrangeStrategy::NonBlockingP2p => self.rearrange_p2p(rank, src_data, dst_len),
        };
        ap3esm_obs::histogram_record("cpl.rearrange.ns", t0.elapsed().as_nanos() as u64);
        out
    }

    /// The wire tags this rearranger's traffic travels under (all-to-all
    /// collective, then point-to-point), for per-phase byte attribution via
    /// [`ap3esm_comm::CommStats::tag_traffic`].
    pub fn wire_tags(&self) -> [u64; 2] {
        Self::wire_tags_for(self.tag)
    }

    /// [`Rearranger::wire_tags`] from the user tag alone — the wire tags
    /// depend only on the tag, not the layout, so traffic attribution
    /// stays possible after the rearranger itself is gone (e.g. a report
    /// built after a shrink rebuilt the coupler's rearrangers).
    pub fn wire_tags_for(tag: u64) -> [u64; 2] {
        [
            ap3esm_comm::collectives::alltoall_wire_tag(tag),
            P2P_TAG_BASE + tag,
        ]
    }

    fn gather_for(&self, me: usize, dst: usize, src_data: &[f64]) -> Vec<f64> {
        let leg = &self.router.legs[me][dst];
        leg.src_local
            .iter()
            .map(|&p| src_data[p as usize])
            .collect()
    }

    fn scatter_from(&self, src: usize, me: usize, buf: &[f64], out: &mut [f64]) {
        let leg = &self.router.legs[src][me];
        assert_eq!(buf.len(), leg.dst_local.len(), "leg length mismatch");
        for (&p, &v) in leg.dst_local.iter().zip(buf) {
            out[p as usize] = v;
        }
    }

    fn rearrange_a2a(
        &self,
        rank: &Rank,
        src_data: &[f64],
        dst_len: usize,
    ) -> Result<Vec<f64>, CommError> {
        let me = rank.id();
        let sends: Vec<Vec<f64>> = (0..rank.size())
            .map(|dst| {
                if me < self.router.src_ranks && dst < self.router.dst_ranks {
                    self.gather_for(me, dst, src_data)
                } else {
                    Vec::new()
                }
            })
            .collect();
        let recvd = alltoallv(rank, self.tag, sends)?;
        let mut out = vec![0.0; dst_len];
        if me < self.router.dst_ranks {
            for (src, buf) in recvd.into_iter().enumerate() {
                if src < self.router.src_ranks && !buf.is_empty() {
                    self.scatter_from(src, me, &buf, &mut out);
                }
            }
        }
        Ok(out)
    }

    fn rearrange_p2p(
        &self,
        rank: &Rank,
        src_data: &[f64],
        dst_len: usize,
    ) -> Result<Vec<f64>, CommError> {
        let me = rank.id();
        let tag = P2P_TAG_BASE + self.tag;
        // Post sends only to destinations with nonempty legs.
        if me < self.router.src_ranks {
            for dst in 0..self.router.dst_ranks {
                if !self.router.legs[me][dst].src_local.is_empty() {
                    rank.isend(dst, tag, self.gather_for(me, dst, src_data));
                }
            }
        }
        // Receive only from sources with nonempty legs for us; scatter as
        // each message arrives (communication/computation overlap).
        let mut out = vec![0.0; dst_len];
        if me < self.router.dst_ranks {
            for src in 0..self.router.src_ranks {
                if !self.router.legs[src][me].dst_local.is_empty() {
                    let buf: Vec<f64> = rank.recv(src, tag)?;
                    self.scatter_from(src, me, &buf, &mut out);
                }
            }
        }
        Ok(out)
    }

    /// Messages the P2P strategy sends from this rank (sparsity gain over
    /// all-to-all's `world_size` buffers).
    pub fn p2p_message_count(&self, me: usize) -> usize {
        if me >= self.router.src_ranks {
            return 0;
        }
        self.router.legs[me]
            .iter()
            .filter(|l| !l.src_local.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsmap::GSMap;
    use ap3esm_comm::World;

    fn check_strategy(strategy: RearrangeStrategy) {
        let nglobal = 97;
        let nranks = 4;
        let src = GSMap::even(nglobal, nranks);
        let dst = GSMap::from_ranges(nglobal, &[(0, 10), (10, 40), (40, 41), (41, 97)]);
        let world = World::new(nranks);
        let outs = world.run(|rank| {
            let router = Router::build(&src, &dst);
            let rearranger = Rearranger::new(router, 7);
            // Source data: global index value, in local gather order.
            let local: Vec<f64> = src
                .local_indices(rank.id())
                .iter()
                .map(|&g| g as f64)
                .collect();
            rearranger.rearrange(rank, strategy, &local, dst.local_size(rank.id()))
        });
        // Every rank must hold exactly its destination global ids.
        for (r, out) in outs.iter().enumerate() {
            let expect: Vec<f64> = dst.local_indices(r).iter().map(|&g| g as f64).collect();
            assert_eq!(out, &expect, "rank {r} under {strategy:?}");
        }
    }

    #[test]
    fn alltoall_rearrange_is_a_permutation() {
        check_strategy(RearrangeStrategy::AllToAll);
    }

    #[test]
    fn p2p_rearrange_matches_alltoall() {
        check_strategy(RearrangeStrategy::NonBlockingP2p);
    }

    #[test]
    fn round_trip_restores_source_layout() {
        let nglobal = 64;
        let nranks = 3;
        let a = GSMap::even(nglobal, nranks);
        let b = GSMap::from_ranges(nglobal, &[(0, 30), (30, 31), (31, 64)]);
        let world = World::new(nranks);
        world.run(|rank| {
            let fwd = Rearranger::new(Router::build(&a, &b), 1);
            let back = Rearranger::new(Router::build(&b, &a), 2);
            let local: Vec<f64> = a
                .local_indices(rank.id())
                .iter()
                .map(|&g| (g as f64).sin())
                .collect();
            let there = fwd.rearrange(
                rank,
                RearrangeStrategy::NonBlockingP2p,
                &local,
                b.local_size(rank.id()),
            );
            let home = back.rearrange(
                rank,
                RearrangeStrategy::AllToAll,
                &there,
                a.local_size(rank.id()),
            );
            assert_eq!(home, local);
        });
    }

    #[test]
    fn p2p_sends_fewer_messages_than_world_size() {
        // 1→N routing: source rank 0 sends N messages; others send none —
        // all-to-all would enqueue world_size buffers from every rank.
        let src = GSMap::all_on_rank(100, 6, 0);
        let dst = GSMap::even(100, 6);
        let router = Router::build(&src, &dst);
        let r = Rearranger::new(router, 3);
        assert_eq!(r.p2p_message_count(0), 6);
        for rank in 1..6 {
            assert_eq!(r.p2p_message_count(rank), 0);
        }
    }

    #[test]
    fn wire_tags_attribute_traffic_per_strategy() {
        let nglobal = 40;
        let nranks = 4;
        let src = GSMap::all_on_rank(nglobal, nranks, 0);
        let dst = GSMap::even(nglobal, nranks);
        for (strategy, tag_slot) in [
            (RearrangeStrategy::AllToAll, 0),
            (RearrangeStrategy::NonBlockingP2p, 1),
        ] {
            let world = World::new(nranks);
            let tags = world.run(|rank| {
                let r = Rearranger::new(Router::build(&src, &dst), 11);
                let data: Vec<f64> = if rank.id() == 0 {
                    (0..nglobal).map(|g| g as f64).collect()
                } else {
                    Vec::new()
                };
                r.rearrange(rank, strategy, &data, dst.local_size(rank.id()));
                r.wire_tags()
            });
            let (msgs, bytes) = world.stats().tag_traffic(tags[0][tag_slot]);
            assert!(msgs > 0 && bytes > 0, "{strategy:?} left no traffic on its tag");
            // The other strategy's tag stays quiet (a2a runs through the
            // collective namespace, p2p through its own).
            let (other_msgs, _) = world.stats().tag_traffic(tags[0][1 - tag_slot]);
            assert_eq!(other_msgs, 0, "{strategy:?} leaked onto the other tag");
        }
    }

    #[test]
    fn one_to_many_and_back_through_world() {
        // The coupled model's ATM-root ↔ OCN-ranks exchange.
        let nglobal = 48;
        let nranks = 4;
        let atm = GSMap::all_on_rank(nglobal, nranks, 0);
        let ocn = GSMap::even(nglobal, nranks);
        let world = World::new(nranks);
        let outs = world.run(|rank| {
            let scatter = Rearranger::new(Router::build(&atm, &ocn), 11);
            let gather = Rearranger::new(Router::build(&ocn, &atm), 12);
            let src: Vec<f64> = if rank.id() == 0 {
                (0..nglobal).map(|g| g as f64 * 2.0).collect()
            } else {
                Vec::new()
            };
            let mine = scatter.rearrange(
                rank,
                RearrangeStrategy::NonBlockingP2p,
                &src,
                ocn.local_size(rank.id()),
            );
            // Each rank doubles its part, then it is gathered back.
            let processed: Vec<f64> = mine.iter().map(|v| v + 1.0).collect();
            gather.rearrange(
                rank,
                RearrangeStrategy::NonBlockingP2p,
                &processed,
                atm.local_size(rank.id()),
            )
        });
        let expect: Vec<f64> = (0..nglobal).map(|g| g as f64 * 2.0 + 1.0).collect();
        assert_eq!(outs[0], expect);
        assert!(outs[1].is_empty());
    }
}
