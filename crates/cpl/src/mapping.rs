//! Inter-grid mapping (icosahedral ↔ tripolar), the coupler's spatial
//! interpolation. CESM precomputes mapping weight files; we build
//! inverse-distance weights over the `k` nearest source points, which is
//! what its bilinear maps reduce to on unstructured meshes.

use ap3esm_grid::sphere::Vec3;

/// Sparse interpolation matrix: for each destination point, up to `k`
/// `(source index, weight)` pairs with weights summing to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapMatrix {
    pub n_src: usize,
    pub n_dst: usize,
    pub weights: Vec<Vec<(usize, f64)>>,
}

impl RemapMatrix {
    /// Build an inverse-distance map from `src` to `dst` point clouds on
    /// the unit sphere using the `k` nearest sources per destination.
    ///
    /// Neighbor search uses a longitude-band index: O(n·√n)-ish, fine for
    /// the coupling grids we instantiate (≤ 10⁵ points in tests/examples).
    pub fn inverse_distance(src: &[Vec3], dst: &[Vec3], k: usize) -> Self {
        assert!(k >= 1 && !src.is_empty());
        // Sort sources into latitude bands for pruned search.
        let nbands = ((src.len() as f64).sqrt() as usize).clamp(1, 256);
        let mut bands: Vec<Vec<usize>> = vec![Vec::new(); nbands];
        let band_of = |p: &Vec3| -> usize {
            let t = (p.lat() / std::f64::consts::PI + 0.5).clamp(0.0, 1.0 - 1e-12);
            (t * nbands as f64) as usize
        };
        for (i, p) in src.iter().enumerate() {
            bands[band_of(p)].push(i);
        }
        let weights = dst
            .iter()
            .map(|d| {
                let b = band_of(d);
                // Expand the band window until we have at least k candidates.
                let mut candidates: Vec<usize> = Vec::new();
                let mut radius = 0usize;
                while candidates.len() < k.max(4) && radius <= nbands {
                    candidates.clear();
                    let lo = b.saturating_sub(radius);
                    let hi = (b + radius).min(nbands - 1);
                    for band in &bands[lo..=hi] {
                        candidates.extend_from_slice(band);
                    }
                    radius += 1;
                }
                let mut dists: Vec<(usize, f64)> = candidates
                    .iter()
                    .map(|&i| (i, d.arc_distance(src[i])))
                    .collect();
                dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"));
                dists.truncate(k);
                // Inverse-distance weights; exact hit takes everything.
                if dists[0].1 < 1e-12 {
                    vec![(dists[0].0, 1.0)]
                } else {
                    let inv: Vec<f64> = dists.iter().map(|(_, r)| 1.0 / r).collect();
                    let total: f64 = inv.iter().sum();
                    dists
                        .iter()
                        .zip(inv)
                        .map(|(&(i, _), w)| (i, w / total))
                        .collect()
                }
            })
            .collect();
        RemapMatrix {
            n_src: src.len(),
            n_dst: dst.len(),
            weights,
        }
    }

    /// Apply the map: `out[d] = Σ w·field[s]`.
    pub fn apply(&self, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), self.n_src, "remap input length");
        self.weights
            .iter()
            .map(|row| row.iter().map(|&(s, w)| w * field[s]).sum())
            .collect()
    }

    /// Apply with a source validity mask (e.g. ocean-only SST): masked
    /// sources are dropped and the remaining weights renormalised; if no
    /// valid source contributes, `fallback` is used.
    pub fn apply_masked(&self, field: &[f64], valid: &[bool], fallback: f64) -> Vec<f64> {
        assert_eq!(field.len(), self.n_src);
        assert_eq!(valid.len(), self.n_src);
        self.weights
            .iter()
            .map(|row| {
                let mut num = 0.0;
                let mut den = 0.0;
                for &(s, w) in row {
                    if valid[s] {
                        num += w * field[s];
                        den += w;
                    }
                }
                if den > 0.0 {
                    num / den
                } else {
                    fallback
                }
            })
            .collect()
    }

    /// Weight-sum check (≈1 everywhere for an interpolation matrix).
    pub fn max_weight_sum_error(&self) -> f64 {
        self.weights
            .iter()
            .map(|row| (row.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib_sphere(n: usize, offset: f64) -> Vec<Vec3> {
        let phi = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
        (0..n)
            .map(|i| {
                let y = 1.0 - 2.0 * (i as f64 + 0.5) / n as f64;
                let r = (1.0 - y * y).sqrt();
                let t = phi * i as f64 + offset;
                Vec3::new(r * t.cos(), y, r * t.sin())
            })
            .collect()
    }

    #[test]
    fn weights_sum_to_one() {
        let src = fib_sphere(500, 0.0);
        let dst = fib_sphere(300, 0.4);
        let m = RemapMatrix::inverse_distance(&src, &dst, 4);
        assert!(m.max_weight_sum_error() < 1e-12);
    }

    #[test]
    fn constant_field_maps_to_constant() {
        let src = fib_sphere(400, 0.0);
        let dst = fib_sphere(250, 1.0);
        let m = RemapMatrix::inverse_distance(&src, &dst, 4);
        let out = m.apply(&vec![5.5; 400]);
        assert!(out.iter().all(|&v| (v - 5.5).abs() < 1e-12));
    }

    #[test]
    fn smooth_field_maps_accurately() {
        let src = fib_sphere(2000, 0.0);
        let dst = fib_sphere(500, 0.7);
        let m = RemapMatrix::inverse_distance(&src, &dst, 4);
        // Smooth on the sphere: a low-order polynomial of the embedding
        // coordinates (lon-based fields are not smooth at the poles).
        let f = |p: &Vec3| p.z + 0.5 * p.x * p.y;
        let field: Vec<f64> = src.iter().map(f).collect();
        let out = m.apply(&field);
        for (d, got) in dst.iter().zip(&out) {
            assert!(
                (got - f(d)).abs() < 0.08,
                "remap error {} at lat {}",
                (got - f(d)).abs(),
                d.lat()
            );
        }
    }

    #[test]
    fn exact_hit_takes_identity() {
        let src = fib_sphere(100, 0.0);
        let dst = vec![src[17]];
        let m = RemapMatrix::inverse_distance(&src, &dst, 4);
        let field: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(m.apply(&field)[0], 17.0);
    }

    #[test]
    fn masked_apply_ignores_invalid_sources() {
        let src = fib_sphere(200, 0.0);
        let dst = fib_sphere(50, 0.3);
        let m = RemapMatrix::inverse_distance(&src, &dst, 4);
        // Half the sources are "land" carrying a poison value.
        let mut field = vec![10.0; 200];
        let mut valid = vec![true; 200];
        for i in 0..200 {
            if i % 2 == 0 {
                field[i] = 1e9;
                valid[i] = false;
            }
        }
        let out = m.apply_masked(&field, &valid, -999.0);
        for v in &out {
            assert!(*v == -999.0 || (*v - 10.0).abs() < 1e-9, "leak: {v}");
        }
        // Most destinations should find at least one valid neighbor.
        let ok = out.iter().filter(|&&v| (v - 10.0).abs() < 1e-9).count();
        assert!(ok > 25, "only {ok} valid remaps");
    }
}
