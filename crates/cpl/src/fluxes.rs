//! Flux merging on the exchange grid: combining atmosphere-computed air–sea
//! fluxes with ice cover into the net forcing each surface component
//! receives — the coupler's flux module.

/// Per-point merged surface forcing for the ocean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergedOcnForcing {
    pub taux: f64,
    pub tauy: f64,
    /// Net heat into the ocean (W/m²).
    pub qnet: f64,
    /// Virtual salt flux (psu·m/s).
    pub salt_flux: f64,
}

/// Merge atmosphere fluxes with ice exports over one exchange point.
///
/// * open-water fraction gets the atmosphere's stress/heat directly,
/// * the ice-covered fraction transmits a reduced stress (ice–ocean drag)
///   and the ice model's basal heat flux,
/// * ice melt fresh water appears as a negative salt flux (dilution),
///   using the reference salinity convention.
pub fn merge_ocean_forcing(
    taux_atm: f64,
    tauy_atm: f64,
    qnet_atm: f64,
    evap_minus_precip: f64,
    ice_fraction: f64,
    ice_heat: f64,
    ice_fresh: f64,
) -> MergedOcnForcing {
    let f = ice_fraction.clamp(0.0, 1.0);
    let open = 1.0 - f;
    const ICE_STRESS_TRANSMISSION: f64 = 0.4;
    const S_REF: f64 = 35.0;
    const RHO_FRESH: f64 = 1000.0;
    let taux = open * taux_atm + f * ICE_STRESS_TRANSMISSION * taux_atm;
    let tauy = open * tauy_atm + f * ICE_STRESS_TRANSMISSION * tauy_atm;
    let qnet = open * qnet_atm + f * ice_heat;
    // Salt flux: evaporation concentrates, precipitation + melt dilute.
    let water_flux = evap_minus_precip - ice_fresh / RHO_FRESH; // m/s equivalent
    let salt_flux = water_flux * S_REF;
    MergedOcnForcing {
        taux,
        tauy,
        qnet,
        salt_flux,
    }
}

/// Blend SST and ice surface temperature into the surface temperature the
/// atmosphere's lowest level sees (°C in, K out).
pub fn blended_surface_temperature(sst_c: f64, ice_tsfc_c: f64, ice_fraction: f64) -> f64 {
    let f = ice_fraction.clamp(0.0, 1.0);
    273.15 + (1.0 - f) * sst_c + f * ice_tsfc_c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_water_passes_atmosphere_fluxes() {
        let m = merge_ocean_forcing(0.1, -0.05, 50.0, 0.0, 0.0, -30.0, 0.0);
        assert_eq!(m.taux, 0.1);
        assert_eq!(m.tauy, -0.05);
        assert_eq!(m.qnet, 50.0);
        assert_eq!(m.salt_flux, 0.0);
    }

    #[test]
    fn full_ice_cover_reduces_stress_and_uses_ice_heat() {
        let m = merge_ocean_forcing(0.1, 0.0, 80.0, 0.0, 1.0, -25.0, 0.0);
        assert!((m.taux - 0.04).abs() < 1e-12);
        assert_eq!(m.qnet, -25.0);
    }

    #[test]
    fn melt_freshwater_freshens() {
        let m = merge_ocean_forcing(0.0, 0.0, 0.0, 0.0, 0.5, 0.0, 1e-3);
        assert!(m.salt_flux < 0.0, "melt must freshen: {}", m.salt_flux);
    }

    #[test]
    fn evaporation_salts() {
        let m = merge_ocean_forcing(0.0, 0.0, 0.0, 2e-8, 0.0, 0.0, 0.0);
        assert!(m.salt_flux > 0.0);
    }

    #[test]
    fn blended_temperature_interpolates() {
        let t = blended_surface_temperature(10.0, -10.0, 0.5);
        assert!((t - 273.15).abs() < 1e-12);
        assert_eq!(blended_surface_temperature(20.0, -5.0, 0.0), 293.15);
        assert_eq!(blended_surface_temperature(20.0, -5.0, 1.0), 268.15);
    }
}
