//! The M×N Router (MCT `Router` analogue): "given two decompositions
//! specified in two GSMaps, the Router table can easily build a mapping
//! between the location of one grid point on a processor and its location
//! on another processor" (§5.2.4). Construction is time- and
//! memory-expensive at scale, so AP3ESM precomputes it offline — both the
//! online build and the offline serialise/load path live here.

use std::time::Instant;

use crate::gsmap::GSMap;

/// For one (src_rank → dst_rank) pair: positions to gather on the source
/// and positions to scatter on the destination (same order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteLeg {
    /// Positions into the source rank's local array.
    pub src_local: Vec<u32>,
    /// Positions into the destination rank's local array.
    pub dst_local: Vec<u32>,
}

/// The full routing table between a source and destination decomposition
/// of the same global index space.
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    pub nglobal: usize,
    pub src_ranks: usize,
    pub dst_ranks: usize,
    /// legs[src][dst].
    pub legs: Vec<Vec<RouteLeg>>,
    /// Wall time spent building (reported by the S524 experiment).
    pub build_seconds: f64,
}

impl Router {
    /// Online construction from two GSMaps over the same global space.
    pub fn build(src: &GSMap, dst: &GSMap) -> Self {
        assert_eq!(src.nglobal, dst.nglobal, "GSMap size mismatch");
        let _span = ap3esm_obs::span("router_build");
        let t0 = Instant::now();
        let mut legs = vec![vec![RouteLeg::default(); dst.nranks]; src.nranks];
        // Local position of each global index on its owner, per map.
        let src_pos = local_positions(src);
        let dst_pos = local_positions(dst);
        // Walk both segment lists in order, emitting intersection runs.
        let mut si = 0;
        let mut di = 0;
        while si < src.segments.len() && di < dst.segments.len() {
            let s = src.segments[si];
            let d = dst.segments[di];
            let lo = s.start.max(d.start);
            let hi = (s.start + s.length).min(d.start + d.length);
            if lo < hi {
                let leg = &mut legs[s.owner][d.owner];
                for gid in lo..hi {
                    leg.src_local.push(src_pos[gid]);
                    leg.dst_local.push(dst_pos[gid]);
                }
            }
            if s.start + s.length <= d.start + d.length {
                si += 1;
            } else {
                di += 1;
            }
        }
        Router {
            nglobal: src.nglobal,
            src_ranks: src.nranks,
            dst_ranks: dst.nranks,
            legs,
            build_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Total entries in the table (memory proxy).
    pub fn total_entries(&self) -> usize {
        self.legs
            .iter()
            .flat_map(|row| row.iter())
            .map(|l| l.src_local.len())
            .sum()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.total_entries() * 8 + self.legs.len() * std::mem::size_of::<Vec<RouteLeg>>()
    }

    /// Every global index must be routed exactly once.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_entries() != self.nglobal {
            return Err(format!(
                "router covers {} of {} indices",
                self.total_entries(),
                self.nglobal
            ));
        }
        Ok(())
    }

    /// Serialise for the offline store (§5.2.4 preprocessing step).
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::new();
        b.put_u64_le(self.nglobal as u64);
        b.put_u32_le(self.src_ranks as u32);
        b.put_u32_le(self.dst_ranks as u32);
        for row in &self.legs {
            for leg in row {
                b.put_u32_le(leg.src_local.len() as u32);
                for (&s, &d) in leg.src_local.iter().zip(&leg.dst_local) {
                    b.put_u32_le(s);
                    b.put_u32_le(d);
                }
            }
        }
        b.to_vec()
    }

    /// Load an offline-precomputed router. Loading is O(table) with no
    /// segment intersection — the cheap path a memory-limited CG can run.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, String> {
        use bytes::Buf;
        if buf.len() < 16 {
            return Err("truncated router".into());
        }
        let t0 = Instant::now();
        let nglobal = buf.get_u64_le() as usize;
        let src_ranks = buf.get_u32_le() as usize;
        let dst_ranks = buf.get_u32_le() as usize;
        let mut legs = vec![vec![RouteLeg::default(); dst_ranks]; src_ranks];
        for row in legs.iter_mut() {
            for leg in row.iter_mut() {
                if buf.len() < 4 {
                    return Err("truncated router leg".into());
                }
                let n = buf.get_u32_le() as usize;
                if buf.len() < n * 8 {
                    return Err("truncated router entries".into());
                }
                leg.src_local.reserve(n);
                leg.dst_local.reserve(n);
                for _ in 0..n {
                    leg.src_local.push(buf.get_u32_le());
                    leg.dst_local.push(buf.get_u32_le());
                }
            }
        }
        let router = Router {
            nglobal,
            src_ranks,
            dst_ranks,
            legs,
            build_seconds: t0.elapsed().as_secs_f64(),
        };
        router.validate()?;
        Ok(router)
    }
}

/// Local position (0-based, ascending-gid order) of every global index on
/// its owning rank.
fn local_positions(map: &GSMap) -> Vec<u32> {
    let mut pos = vec![0u32; map.nglobal];
    let mut counters = vec![0u32; map.nranks];
    for s in &map.segments {
        let c = &mut counters[s.owner];
        for p in &mut pos[s.start..s.start + s.length] {
            *p = *c;
            *c += 1;
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_covers_every_index_once() {
        let src = GSMap::even(100, 3);
        let dst = GSMap::even(100, 5);
        let r = Router::build(&src, &dst);
        r.validate().unwrap();
        assert_eq!(r.total_entries(), 100);
    }

    #[test]
    fn identity_router_is_diagonal() {
        let m = GSMap::even(60, 4);
        let r = Router::build(&m, &m);
        for (s, row) in r.legs.iter().enumerate() {
            for (d, leg) in row.iter().enumerate() {
                if s == d {
                    assert_eq!(leg.src_local.len(), m.local_size(s));
                    assert_eq!(leg.src_local, leg.dst_local);
                } else {
                    assert!(leg.src_local.is_empty(), "off-diagonal leg {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn one_to_many_router() {
        // The ATM-root → distributed-OCN pattern of the coupled model.
        let src = GSMap::all_on_rank(40, 5, 0);
        let dst = GSMap::even(40, 5);
        let r = Router::build(&src, &dst);
        r.validate().unwrap();
        for d in 0..5 {
            assert_eq!(r.legs[0][d].src_local.len(), dst.local_size(d));
        }
        for s in 1..5 {
            assert!(r.legs[s].iter().all(|l| l.src_local.is_empty()));
        }
    }

    #[test]
    fn local_positions_are_gather_order() {
        let m = GSMap::from_ranges(10, &[(0, 4), (4, 10)]);
        let pos = local_positions(&m);
        assert_eq!(&pos[0..4], &[0, 1, 2, 3]);
        assert_eq!(&pos[4..10], &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn offline_roundtrip_identical_and_cheaper() {
        let src = GSMap::even(5000, 8);
        let dst = GSMap::even(5000, 3);
        let online = Router::build(&src, &dst);
        let bytes = online.to_bytes();
        let offline = Router::from_bytes(&bytes).unwrap();
        assert_eq!(online.legs, offline.legs);
        assert_eq!(online.nglobal, offline.nglobal);
        // The offline load performs no segment intersection; both paths
        // time themselves so the S524 experiment can report the ratio.
        assert!(offline.build_seconds >= 0.0);
    }

    #[test]
    fn mismatched_global_sizes_rejected() {
        let src = GSMap::even(10, 2);
        let dst = GSMap::even(12, 2);
        let result = std::panic::catch_unwind(|| Router::build(&src, &dst));
        assert!(result.is_err());
    }
}
