//! Icosahedral-geodesic Voronoi grid — the GRIST atmosphere mesh.
//!
//! Construction: start from the icosahedron, bisect every spherical triangle
//! `g` times ("glevel"), project midpoints to the sphere. The refined
//! triangulation has `V = 10·4^g + 2` vertices, `E = 30·4^g` edges and
//! `F = 20·4^g` triangles. GRIST's prognostic mesh is the *Voronoi dual*:
//! one (mostly hexagonal) cell per triangulation vertex, with normal
//! velocities carried on the shared edges — an unstructured C-grid. These
//! are exactly the formulas behind the paper's Table 1 grid counts
//! (g = 8 → 25 km, …, g = 12/13 → 1 km).

use std::collections::HashMap;

use crate::sphere::{circumcenter, spherical_triangle_area, Vec3};

/// The full mesh: triangulation plus Voronoi-dual connectivity and metrics.
#[derive(Debug, Clone)]
pub struct GeodesicGrid {
    /// Refinement level.
    pub glevel: u32,
    /// Cell centers (= triangulation vertices), unit vectors.
    pub cells: Vec<Vec3>,
    /// Dual corners (= triangle circumcenters), unit vectors.
    pub corners: Vec<Vec3>,
    /// Triangles as cell-index triples (counter-clockwise seen from outside).
    pub triangles: Vec<[usize; 3]>,
    /// Edges as (cell_a, cell_b) with a < b.
    pub edges: Vec<(usize, usize)>,
    /// Per edge: the two adjacent triangles (corner indices).
    pub edge_corners: Vec<(usize, usize)>,
    /// Per edge: midpoint on the sphere.
    pub edge_midpoints: Vec<Vec3>,
    /// Per edge: unit normal (direction cell_a → cell_b at the midpoint).
    pub edge_normals: Vec<Vec3>,
    /// Per edge: geodesic distance between the two cell centers (dual edge).
    pub edge_cell_dist: Vec<f64>,
    /// Per edge: geodesic length of the Voronoi face (between corners).
    pub edge_lengths: Vec<f64>,
    /// Per cell: edges bounding the cell, with sign (+1 if the edge normal
    /// points out of this cell, i.e. the cell is `cell_a`).
    pub cell_edges: Vec<Vec<(usize, f64)>>,
    /// Per cell: neighboring cells (same order as `cell_edges`).
    pub cell_neighbors: Vec<Vec<usize>>,
    /// Per cell: spherical area (unit sphere; multiply by R² for physical).
    pub cell_areas: Vec<f64>,
}

/// Counts without building the mesh (used for Table 1 and the machine model
/// at glevels far beyond what fits in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeodesicCounts {
    pub cells: usize,
    pub edges: usize,
    pub corners: usize,
}

impl GeodesicCounts {
    pub fn at_glevel(g: u32) -> Self {
        let p = 4usize.pow(g);
        GeodesicCounts {
            cells: 10 * p + 2,
            edges: 30 * p,
            corners: 20 * p,
        }
    }
}

/// Base icosahedron vertices (unit sphere).
fn icosahedron_vertices() -> Vec<Vec3> {
    let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
    let verts = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ];
    verts
        .iter()
        .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
        .collect()
}

/// Base icosahedron faces (counter-clockwise from outside).
fn icosahedron_faces() -> Vec<[usize; 3]> {
    vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ]
}

impl GeodesicGrid {
    /// Build the grid at refinement level `glevel`. Memory grows as
    /// `O(4^g)`; levels up to ~7 (163 842 cells) are comfortable in tests.
    pub fn new(glevel: u32) -> Self {
        let mut vertices = icosahedron_vertices();
        let mut faces = icosahedron_faces();
        for _ in 0..glevel {
            let mut midpoint_cache: HashMap<(usize, usize), usize> = HashMap::new();
            let mut new_faces = Vec::with_capacity(faces.len() * 4);
            let mut midpoint = |a: usize, b: usize, vertices: &mut Vec<Vec3>| -> usize {
                let key = (a.min(b), a.max(b));
                *midpoint_cache.entry(key).or_insert_with(|| {
                    let m = (vertices[a] + vertices[b]).normalized();
                    vertices.push(m);
                    vertices.len() - 1
                })
            };
            for &[a, b, c] in &faces {
                let ab = midpoint(a, b, &mut vertices);
                let bc = midpoint(b, c, &mut vertices);
                let ca = midpoint(c, a, &mut vertices);
                new_faces.push([a, ab, ca]);
                new_faces.push([b, bc, ab]);
                new_faces.push([c, ca, bc]);
                new_faces.push([ab, bc, ca]);
            }
            faces = new_faces;
        }

        let ncells = vertices.len();

        // Corners: one per triangle (circumcenter).
        let corners: Vec<Vec3> = faces
            .iter()
            .map(|&[a, b, c]| circumcenter(vertices[a], vertices[b], vertices[c]))
            .collect();

        // Edges with adjacent triangles.
        let mut edge_index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut edge_tris: Vec<[Option<usize>; 2]> = Vec::new();
        for (t, &[a, b, c]) in faces.iter().enumerate() {
            for &(u, v) in &[(a, b), (b, c), (c, a)] {
                let key = (u.min(v), u.max(v));
                let e = *edge_index.entry(key).or_insert_with(|| {
                    edges.push(key);
                    edge_tris.push([None, None]);
                    edges.len() - 1
                });
                if edge_tris[e][0].is_none() {
                    edge_tris[e][0] = Some(t);
                } else {
                    edge_tris[e][1] = Some(t);
                }
            }
        }
        let edge_corners: Vec<(usize, usize)> = edge_tris
            .iter()
            .map(|ts| {
                (
                    ts[0].expect("every edge borders a triangle"),
                    ts[1].expect("closed surface: every edge borders two triangles"),
                )
            })
            .collect();

        // Edge metrics.
        let mut edge_midpoints = Vec::with_capacity(edges.len());
        let mut edge_normals = Vec::with_capacity(edges.len());
        let mut edge_cell_dist = Vec::with_capacity(edges.len());
        let mut edge_lengths = Vec::with_capacity(edges.len());
        for (e, &(a, b)) in edges.iter().enumerate() {
            let pa = vertices[a];
            let pb = vertices[b];
            let mid = (pa + pb).normalized();
            edge_midpoints.push(mid);
            // Normal: tangent direction a → b at the midpoint.
            let n = pb - pa;
            let n = (n - mid.scale(n.dot(mid))).normalized();
            edge_normals.push(n);
            edge_cell_dist.push(pa.arc_distance(pb));
            let (t0, t1) = edge_corners[e];
            edge_lengths.push(corners[t0].arc_distance(corners[t1]));
        }

        // Cell adjacency.
        let mut cell_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncells];
        let mut cell_neighbors: Vec<Vec<usize>> = vec![Vec::new(); ncells];
        for (e, &(a, b)) in edges.iter().enumerate() {
            cell_edges[a].push((e, 1.0));
            cell_edges[b].push((e, -1.0));
            cell_neighbors[a].push(b);
            cell_neighbors[b].push(a);
        }

        // Cell areas: each triangle contributes three kite-ish thirds. Using
        // exact triangle thirds keeps ∑areas = 4π to machine precision.
        let mut cell_areas = vec![0.0; ncells];
        for &[a, b, c] in &faces {
            let area = spherical_triangle_area(vertices[a], vertices[b], vertices[c]);
            cell_areas[a] += area / 3.0;
            cell_areas[b] += area / 3.0;
            cell_areas[c] += area / 3.0;
        }

        GeodesicGrid {
            glevel,
            cells: vertices,
            corners,
            triangles: faces,
            edges,
            edge_corners,
            edge_midpoints,
            edge_normals,
            edge_cell_dist,
            edge_lengths,
            cell_edges,
            cell_neighbors,
            cell_areas,
        }
    }

    pub fn ncells(&self) -> usize {
        self.cells.len()
    }

    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    pub fn ncorners(&self) -> usize {
        self.corners.len()
    }

    /// Mean grid spacing in km on the real Earth.
    pub fn mean_spacing_km(&self) -> f64 {
        crate::mean_spacing_km(self.ncells())
    }

    /// Divergence of an edge-normal flux field at every cell:
    /// `div_i = (1/A_i) Σ_e sign(i,e) · F_e · l_e` (unit-sphere metrics).
    pub fn divergence(&self, edge_flux: &[f64], out: &mut [f64]) {
        assert_eq!(edge_flux.len(), self.nedges());
        assert_eq!(out.len(), self.ncells());
        for (i, edges) in self.cell_edges.iter().enumerate() {
            let mut acc = 0.0;
            for &(e, sign) in edges {
                acc += sign * edge_flux[e] * self.edge_lengths[e];
            }
            out[i] = acc / self.cell_areas[i];
        }
    }

    /// Gradient of a cell field along every edge normal:
    /// `grad_e = (q_b − q_a) / d_e`.
    pub fn gradient(&self, cell_field: &[f64], out: &mut [f64]) {
        assert_eq!(cell_field.len(), self.ncells());
        assert_eq!(out.len(), self.nedges());
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            out[e] = (cell_field[b] - cell_field[a]) / self.edge_cell_dist[e];
        }
    }

    /// Reconstruct the full tangent-plane velocity vector at each cell from
    /// edge-normal components by unweighted least squares (2×2 normal
    /// equations in the local (east, north) basis).
    pub fn reconstruct_cell_vectors(&self, edge_normal_vel: &[f64]) -> Vec<(f64, f64)> {
        assert_eq!(edge_normal_vel.len(), self.nedges());
        let mut out = Vec::with_capacity(self.ncells());
        for (i, edges) in self.cell_edges.iter().enumerate() {
            let east = self.cells[i].east();
            let north = self.cells[i].north();
            let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for &(e, _sign) in edges {
                let n = self.edge_normals[e];
                let ne = n.dot(east);
                let nn = n.dot(north);
                a11 += ne * ne;
                a12 += ne * nn;
                a22 += nn * nn;
                b1 += ne * edge_normal_vel[e];
                b2 += nn * edge_normal_vel[e];
            }
            let det = a11 * a22 - a12 * a12;
            if det.abs() < 1e-14 {
                out.push((0.0, 0.0));
            } else {
                out.push(((a22 * b1 - a12 * b2) / det, (a11 * b2 - a12 * b1) / det));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn counts_follow_formulas() {
        for g in 0..=4 {
            let grid = GeodesicGrid::new(g);
            let c = GeodesicCounts::at_glevel(g);
            assert_eq!(grid.ncells(), c.cells, "cells at g={g}");
            assert_eq!(grid.nedges(), c.edges, "edges at g={g}");
            assert_eq!(grid.ncorners(), c.corners, "corners at g={g}");
        }
    }

    #[test]
    fn euler_formula_holds() {
        for g in 0..=3 {
            let grid = GeodesicGrid::new(g);
            // V - E + F = 2 for a sphere (cells are vertices of the
            // triangulation, corners are faces).
            assert_eq!(
                grid.ncells() as i64 - grid.nedges() as i64 + grid.ncorners() as i64,
                2
            );
        }
    }

    #[test]
    fn table1_grid_counts() {
        // Paper Table 1 (GRIST column), sizes at each resolution.
        assert_eq!(GeodesicCounts::at_glevel(8).cells, 655_362); // 25 km: 6.7e5
        assert_eq!(GeodesicCounts::at_glevel(9).cells, 2_621_442); // 10 km: 2.6e6
        assert_eq!(GeodesicCounts::at_glevel(10).cells, 10_485_762); // 6 km: 1.1e7
        assert_eq!(GeodesicCounts::at_glevel(11).cells, 41_943_042); // 3 km: 4.2e7
        assert_eq!(GeodesicCounts::at_glevel(11).edges, 125_829_120); // 1.3e8
        assert_eq!(GeodesicCounts::at_glevel(11).corners, 83_886_080); // 8.4e7
    }

    #[test]
    fn areas_partition_the_sphere() {
        let grid = GeodesicGrid::new(3);
        let total: f64 = grid.cell_areas.iter().sum();
        assert!(
            (total - 4.0 * PI).abs() < 1e-9,
            "area sum {total} != 4π"
        );
        assert!(grid.cell_areas.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn twelve_pentagons_rest_hexagons() {
        let grid = GeodesicGrid::new(3);
        let pentagons = grid
            .cell_neighbors
            .iter()
            .filter(|n| n.len() == 5)
            .count();
        let hexagons = grid
            .cell_neighbors
            .iter()
            .filter(|n| n.len() == 6)
            .count();
        assert_eq!(pentagons, 12);
        assert_eq!(hexagons, grid.ncells() - 12);
    }

    #[test]
    fn divergence_of_uniform_solid_rotation_is_small() {
        // Velocity field of solid-body rotation about z is divergence-free.
        let grid = GeodesicGrid::new(4);
        let flux: Vec<f64> = (0..grid.nedges())
            .map(|e| {
                let m = grid.edge_midpoints[e];
                // u = Ω × r, normal component at the edge.
                let omega = Vec3::new(0.0, 0.0, 1.0);
                let u = omega.cross(m);
                u.dot(grid.edge_normals[e])
            })
            .collect();
        let mut div = vec![0.0; grid.ncells()];
        grid.divergence(&flux, &mut div);
        let max = div.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        // Discretization error only; should be far below the field scale (1).
        assert!(max < 0.05, "max |div| = {max}");
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let grid = GeodesicGrid::new(3);
        let field = vec![7.5; grid.ncells()];
        let mut grad = vec![1.0; grid.nedges()];
        grid.gradient(&field, &mut grad);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn reconstruction_recovers_solid_rotation() {
        let grid = GeodesicGrid::new(4);
        let omega = Vec3::new(0.0, 0.0, 1.0);
        let vel: Vec<f64> = (0..grid.nedges())
            .map(|e| omega.cross(grid.edge_midpoints[e]).dot(grid.edge_normals[e]))
            .collect();
        let rec = grid.reconstruct_cell_vectors(&vel);
        for (i, &(ue, un)) in rec.iter().enumerate() {
            let p = grid.cells[i];
            let u_true = omega.cross(p);
            let ue_true = u_true.dot(p.east());
            let un_true = u_true.dot(p.north());
            assert!(
                (ue - ue_true).abs() < 0.05 && (un - un_true).abs() < 0.05,
                "cell {i}: rec=({ue},{un}) true=({ue_true},{un_true})"
            );
        }
    }

    #[test]
    fn edge_normals_are_tangent_unit_vectors() {
        let grid = GeodesicGrid::new(2);
        for e in 0..grid.nedges() {
            let n = grid.edge_normals[e];
            let m = grid.edge_midpoints[e];
            assert!((n.norm() - 1.0).abs() < 1e-12);
            assert!(n.dot(m).abs() < 1e-12);
        }
    }
}
