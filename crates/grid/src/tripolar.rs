//! Tripolar structured ocean grid — the LICOM mesh.
//!
//! LICOM uses a `nlon × nlat` tripolar grid: regular longitude spacing, a
//! latitude row structure that follows Mercator-like refinement, and two
//! artificial poles placed over land north of ~65°N so that no singularity
//! sits in the ocean. For everything AP3ESM computes — metric terms, masks,
//! halos, point exclusion — what matters is the structured (i, j) topology,
//! the per-row latitude/area metrics, and the displacement of the north
//! poles onto land; all are modelled here.
//!
//! Dimension presets follow the paper's Table 1:
//! 1 km → 36000×22018, 2 km → 18000×11511, 3 km → 10800×6907,
//! 5 km → 7200×4605, 10 km → 3600×2302, all with 80 vertical levels.

use crate::mask::MaskGenerator;
use crate::sphere::Vec3;
use crate::vertical::ocn_z_levels;
use crate::EARTH_RADIUS;

/// Table 1 dimension presets: `(resolution_km, nlon, nlat)`.
pub const TABLE1_PRESETS: [(f64, usize, usize); 5] = [
    (1.0, 36000, 22018),
    (2.0, 18000, 11511),
    (3.0, 10800, 6907),
    (5.0, 7200, 4605),
    (10.0, 3600, 2302),
];

/// Southernmost ocean row latitude (deg); LICOM grids start near the
/// Antarctic coastline.
const LAT_SOUTH_DEG: f64 = -78.5;
/// Latitude (deg) where the tripolar fold begins.
const TRIPOLE_LAT_DEG: f64 = 65.0;
/// North of this latitude the (displaced-pole) grid is guaranteed land.
pub const POLAR_CAP_DEG: f64 = 84.0;

/// The structured tripolar grid with synthetic land/sea mask and bathymetry.
#[derive(Debug, Clone)]
pub struct TripolarGrid {
    pub nlon: usize,
    pub nlat: usize,
    pub nlev: usize,
    /// Latitude (rad) of each row center.
    pub lat: Vec<f64>,
    /// Longitude (rad) of each column center (row-independent south of the
    /// fold; inside the fold the mapping is distorted but topology-identical).
    pub lon: Vec<f64>,
    /// Cell areas (m²), per row (zonally uniform).
    pub row_area: Vec<f64>,
    /// Depth levels (m) — interface depths of the 80 levels.
    pub z_levels: Vec<f64>,
    /// Number of active vertical levels per column (0 = land).
    pub kmt: Vec<u16>,
    /// First row index of the tripolar fold region.
    pub fold_start_row: usize,
}

impl TripolarGrid {
    /// Build the preset closest to `res_km` from Table 1.
    pub fn from_table1(res_km: f64) -> Self {
        let &(_, nlon, nlat) = TABLE1_PRESETS
            .iter()
            .min_by(|a, b| {
                (a.0 - res_km)
                    .abs()
                    .partial_cmp(&(b.0 - res_km).abs())
                    .expect("finite")
            })
            .expect("presets nonempty");
        Self::new(nlon, nlat, 80, MaskGenerator::default())
    }

    /// Build an arbitrary-size grid (tests use small ones); `nlat` rows from
    /// 78.5°S to 90°N, `nlev` z-levels, and a synthetic mask from `gen`.
    pub fn new(nlon: usize, nlat: usize, nlev: usize, generator: MaskGenerator) -> Self {
        assert!(nlon >= 4 && nlat >= 4 && nlev >= 1);
        let lat_south = LAT_SOUTH_DEG.to_radians();
        let lat_north = 90.0_f64.to_radians();
        let dlat = (lat_north - lat_south) / nlat as f64;
        let lat: Vec<f64> = (0..nlat)
            .map(|j| lat_south + (j as f64 + 0.5) * dlat)
            .collect();
        let dlon = 2.0 * std::f64::consts::PI / nlon as f64;
        let lon: Vec<f64> = (0..nlon).map(|i| (i as f64 + 0.5) * dlon).collect();
        let row_area: Vec<f64> = lat
            .iter()
            .map(|&phi| EARTH_RADIUS * EARTH_RADIUS * dlon * dlat * phi.cos().max(1e-6))
            .collect();
        let fold_start_row = lat
            .iter()
            .position(|&phi| phi.to_degrees() >= TRIPOLE_LAT_DEG)
            .unwrap_or(nlat);

        let z_levels = ocn_z_levels(nlev);
        let max_depth = *z_levels.last().expect("levels");

        // Build kmt from the synthetic bathymetry. Land fraction targets the
        // Earth's ~29 % at the surface; the Arctic cap (fold region) is
        // forced to include land under the two displaced poles.
        let points: Vec<Vec3> = (0..nlat)
            .flat_map(|j| {
                let phi = lat[j];
                lon.iter()
                    .map(move |&lam| Vec3::from_lat_lon(phi, lam))
                    .collect::<Vec<_>>()
            })
            .collect();
        let (land, threshold) = generator.land_mask(&points, 0.29);
        let mut kmt = vec![0u16; nlon * nlat];
        for (j, &latj) in lat.iter().enumerate() {
            for i in 0..nlon {
                let idx = j * nlon + i;
                // The tripolar construction displaces both northern poles
                // onto land so no ocean point sits at a metric singularity;
                // we emulate that by forcing the polar cap (> 84°N) to land.
                if land[idx] || latj.to_degrees() > POLAR_CAP_DEG {
                    kmt[idx] = 0;
                    continue;
                }
                let depth = generator.depth(points[idx], threshold, max_depth);
                // Number of z-levels shallower than the local depth.
                let k = z_levels.iter().take_while(|&&z| z <= depth).count();
                kmt[idx] = k.max(1) as u16;
            }
        }

        TripolarGrid {
            nlon,
            nlat,
            nlev,
            lat,
            lon,
            row_area,
            z_levels,
            kmt,
            fold_start_row,
        }
    }

    /// Flat column index.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nlon && j < self.nlat);
        j * self.nlon + i
    }

    /// Total horizontal columns.
    pub fn ncols(&self) -> usize {
        self.nlon * self.nlat
    }

    /// Total 3-D grid points, active or not (the paper's "No. of Grids").
    pub fn npoints_3d(&self) -> usize {
        self.ncols() * self.nlev
    }

    /// Number of *active* (ocean) 3-D points.
    pub fn active_points_3d(&self) -> usize {
        self.kmt.iter().map(|&k| k as usize).sum()
    }

    /// Fraction of 3-D points that are ocean.
    pub fn active_fraction(&self) -> f64 {
        self.active_points_3d() as f64 / self.npoints_3d() as f64
    }

    /// Is column (i, j) ocean at level k?
    #[inline]
    pub fn is_ocean(&self, i: usize, j: usize, k: usize) -> bool {
        (k as u16) < self.kmt[self.idx(i, j)]
    }

    /// Zonal neighbor with periodic wrap.
    #[inline]
    pub fn east_of(&self, i: usize) -> usize {
        (i + 1) % self.nlon
    }

    #[inline]
    pub fn west_of(&self, i: usize) -> usize {
        (i + self.nlon - 1) % self.nlon
    }

    /// Across-the-fold partner column for the top row (tripolar seam): row
    /// `nlat-1` column `i` abuts row `nlat-1` column `nlon-1-i`.
    pub fn fold_partner(&self, i: usize) -> usize {
        self.nlon - 1 - i
    }

    /// Area-weighted mean of a surface field (ignores land).
    pub fn ocean_area_mean(&self, field: &[f64]) -> f64 {
        assert_eq!(field.len(), self.ncols());
        let mut num = 0.0;
        let mut den = 0.0;
        for j in 0..self.nlat {
            for i in 0..self.nlon {
                let idx = self.idx(i, j);
                if self.kmt[idx] > 0 {
                    num += field[idx] * self.row_area[j];
                    den += self.row_area[j];
                }
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TripolarGrid {
        TripolarGrid::new(72, 46, 20, MaskGenerator::default())
    }

    #[test]
    fn presets_match_table1_counts() {
        // 1 km: 36000 × 22018 × 80 = 6.34e10 ≈ paper's 6.3e10.
        let (_, nlon, nlat) = TABLE1_PRESETS[0];
        assert_eq!(nlon * nlat * 80, 63_411_840_000);
        // 3 km: 10800 × 6907 × 80 = 5.97e9 ≈ paper's 5.8e9.
        let (_, nlon, nlat) = TABLE1_PRESETS[2];
        assert_eq!(nlon * nlat * 80, 5_967_648_000);
    }

    #[test]
    fn lat_lon_ranges() {
        let g = small();
        assert!(g.lat[0].to_degrees() > -79.0 && g.lat[0].to_degrees() < -75.0);
        assert!(g.lat[g.nlat - 1].to_degrees() < 90.0);
        assert!(g.lon.iter().all(|&l| (0.0..2.0 * std::f64::consts::PI).contains(&l)));
    }

    #[test]
    fn active_fraction_near_earth_like() {
        let g = small();
        let f = g.active_fraction();
        // Surface ocean fraction is ~71 %, but deep levels lose points to
        // bathymetry — total 3-D active fraction lands well below that.
        assert!(f > 0.3 && f < 0.75, "active 3-D fraction = {f}");
    }

    #[test]
    fn kmt_bounded_by_nlev() {
        let g = small();
        assert!(g.kmt.iter().all(|&k| (k as usize) <= g.nlev));
        // Land exists, ocean exists.
        assert!(g.kmt.contains(&0));
        assert!(g.kmt.iter().any(|&k| k > 0));
    }

    #[test]
    fn zonal_wrap() {
        let g = small();
        assert_eq!(g.east_of(g.nlon - 1), 0);
        assert_eq!(g.west_of(0), g.nlon - 1);
        assert_eq!(g.fold_partner(0), g.nlon - 1);
        assert_eq!(g.fold_partner(g.nlon - 1), 0);
    }

    #[test]
    fn area_mean_of_constant_is_constant() {
        let g = small();
        let field = vec![3.25; g.ncols()];
        assert!((g.ocean_area_mean(&field) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn is_ocean_respects_kmt() {
        let g = small();
        for j in 0..g.nlat {
            for i in 0..g.nlon {
                let kmt = g.kmt[g.idx(i, j)] as usize;
                if kmt > 0 {
                    assert!(g.is_ocean(i, j, kmt - 1));
                }
                if kmt < g.nlev {
                    assert!(!g.is_ocean(i, j, kmt));
                }
            }
        }
    }

    #[test]
    fn fold_region_identified() {
        let g = small();
        assert!(g.fold_start_row > 0 && g.fold_start_row < g.nlat);
        assert!(g.lat[g.fold_start_row].to_degrees() >= 65.0);
    }
}
