//! Domain decomposition: 2-D blocks for the structured ocean grid and
//! graph-greedy patches for the unstructured atmosphere grid, plus the halo
//! specs each induces (consumed by `ap3esm-comm`).

use ap3esm_comm::halo::{HaloLink, HaloSpec};

use crate::icosahedral::GeodesicGrid;

/// 2-D block decomposition of an `nlon × nlat` structured grid over a
/// `px × py` process mesh (zonally periodic, meridionally bounded).
#[derive(Debug, Clone)]
pub struct BlockDecomp2d {
    pub nlon: usize,
    pub nlat: usize,
    pub px: usize,
    pub py: usize,
}

/// One rank's rectangle in a [`BlockDecomp2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    pub i0: usize,
    pub i1: usize, // exclusive
    pub j0: usize,
    pub j1: usize, // exclusive
}

impl Block {
    pub fn ni(&self) -> usize {
        self.i1 - self.i0
    }

    pub fn nj(&self) -> usize {
        self.j1 - self.j0
    }

    pub fn ncols(&self) -> usize {
        self.ni() * self.nj()
    }
}

impl BlockDecomp2d {
    pub fn new(nlon: usize, nlat: usize, px: usize, py: usize) -> Self {
        assert!(px >= 1 && py >= 1);
        assert!(px <= nlon && py <= nlat, "more ranks than rows/cols");
        BlockDecomp2d { nlon, nlat, px, py }
    }

    /// Pick a near-square process mesh for `nranks`.
    pub fn auto(nlon: usize, nlat: usize, nranks: usize) -> Self {
        let mut best = (1, nranks);
        let mut best_score = f64::INFINITY;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) {
                continue;
            }
            let py = nranks / px;
            if px > nlon || py > nlat {
                continue;
            }
            // Prefer blocks whose aspect matches the grid's.
            let aspect = (nlon as f64 / px as f64) / (nlat as f64 / py as f64);
            let score = (aspect.ln()).abs();
            if score < best_score {
                best_score = score;
                best = (px, py);
            }
        }
        Self::new(nlon, nlat, best.0, best.1)
    }

    pub fn nranks(&self) -> usize {
        self.px * self.py
    }

    /// Rank's (pi, pj) coordinates.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank % self.px, rank / self.px)
    }

    pub fn rank_at(&self, pi: usize, pj: usize) -> usize {
        pj * self.px + pi
    }

    /// The block owned by `rank` (even split with remainders spread low).
    pub fn block(&self, rank: usize) -> Block {
        let (pi, pj) = self.coords(rank);
        let split = |n: usize, p: usize, k: usize| -> (usize, usize) {
            let base = n / p;
            let rem = n % p;
            let start = k * base + k.min(rem);
            let len = base + usize::from(k < rem);
            (start, start + len)
        };
        let (i0, i1) = split(self.nlon, self.px, pi);
        let (j0, j1) = split(self.nlat, self.py, pj);
        Block { i0, i1, j0, j1 }
    }

    /// Halo spec for `rank` with a one-cell halo, zonally periodic. The
    /// local layout is `(nj + 2) × (ni + 2)` row-major with ghosts on the
    /// rim; interior cell (i, j) lives at `(j+1)*(ni+2) + (i+1)`.
    ///
    /// Channels: 0 = westward, 1 = eastward, 2 = southward, 3 = northward.
    pub fn halo_spec(&self, rank: usize) -> HaloSpec {
        let (pi, pj) = self.coords(rank);
        let b = self.block(rank);
        let (ni, nj) = (b.ni(), b.nj());
        let stride = ni + 2;
        let at = |i: usize, j: usize| (j + 1) * stride + (i + 1);

        let mut sends = Vec::new();
        let mut recvs = Vec::new();

        // East-west: periodic.
        let west = self.rank_at((pi + self.px - 1) % self.px, pj);
        let east = self.rank_at((pi + 1) % self.px, pj);
        let west_col: Vec<usize> = (0..nj).map(|j| at(0, j)).collect();
        let east_col: Vec<usize> = (0..nj).map(|j| at(ni - 1, j)).collect();
        let west_ghost: Vec<usize> = (0..nj).map(|j| (j + 1) * stride).collect();
        let east_ghost: Vec<usize> = (0..nj).map(|j| (j + 1) * stride + ni + 1).collect();
        sends.push(HaloLink {
            peer: west,
            channel: 0,
            indices: west_col,
        });
        sends.push(HaloLink {
            peer: east,
            channel: 1,
            indices: east_col,
        });
        recvs.push(HaloLink {
            peer: west,
            channel: 1,
            indices: west_ghost,
        });
        recvs.push(HaloLink {
            peer: east,
            channel: 0,
            indices: east_ghost,
        });

        // North-south: bounded (no send at domain edge).
        if pj > 0 {
            let south = self.rank_at(pi, pj - 1);
            sends.push(HaloLink {
                peer: south,
                channel: 2,
                indices: (0..ni).map(|i| at(i, 0)).collect(),
            });
            recvs.push(HaloLink {
                peer: south,
                channel: 3,
                indices: (0..ni).map(|i| i + 1).collect(), // row j = -1
            });
        }
        if pj + 1 < self.py {
            let north = self.rank_at(pi, pj + 1);
            sends.push(HaloLink {
                peer: north,
                channel: 3,
                indices: (0..ni).map(|i| at(i, nj - 1)).collect(),
            });
            recvs.push(HaloLink {
                peer: north,
                channel: 2,
                indices: (0..ni).map(|i| (nj + 1) * stride + i + 1).collect(),
            });
        }
        HaloSpec { sends, recvs }
    }
}

/// Greedy BFS partition of the icosahedral grid into `nparts` connected,
/// balanced patches (a light-weight stand-in for METIS/SFC partitioners).
#[derive(Debug, Clone)]
pub struct GraphDecomp {
    /// Part id per cell.
    pub part_of: Vec<usize>,
    pub nparts: usize,
}

impl GraphDecomp {
    pub fn new(grid: &GeodesicGrid, nparts: usize) -> Self {
        let n = grid.ncells();
        assert!(nparts >= 1 && nparts <= n);
        let target = n.div_ceil(nparts);
        let mut part_of = vec![usize::MAX; n];
        let mut assigned = 0usize;
        let mut part = 0usize;
        let mut frontier: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut count = 0usize;
        let mut next_seed = 0usize;
        while assigned < n {
            if frontier.is_empty() || count >= target {
                // Start (or move to) the next part at the first unassigned
                // cell — keeps patches compact because cells are generated
                // in subdivision locality order.
                if count >= target && part + 1 < nparts {
                    part += 1;
                    count = 0;
                }
                while next_seed < n && part_of[next_seed] != usize::MAX {
                    next_seed += 1;
                }
                if next_seed >= n {
                    break;
                }
                frontier.clear();
                frontier.push_back(next_seed);
            }
            while let Some(c) = frontier.pop_front() {
                if part_of[c] != usize::MAX {
                    continue;
                }
                part_of[c] = part;
                assigned += 1;
                count += 1;
                for &nb in &grid.cell_neighbors[c] {
                    if part_of[nb] == usize::MAX {
                        frontier.push_back(nb);
                    }
                }
                if count >= target && part + 1 < nparts {
                    break;
                }
            }
        }
        GraphDecomp { part_of, nparts }
    }

    /// Cells of part `p` in global order.
    pub fn cells_of(&self, p: usize) -> Vec<usize> {
        self.part_of
            .iter()
            .enumerate()
            .filter(|(_, &q)| q == p)
            .map(|(c, _)| c)
            .collect()
    }

    /// Part sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.nparts];
        for &p in &self.part_of {
            s[p] += 1;
        }
        s
    }

    /// Number of cut edges (communication volume proxy).
    pub fn cut_edges(&self, grid: &GeodesicGrid) -> usize {
        grid.edges
            .iter()
            .filter(|&&(a, b)| self.part_of[a] != self.part_of[b])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_comm::world::World;
    use ap3esm_comm::HaloExchange;

    #[test]
    fn blocks_partition_grid_exactly() {
        let d = BlockDecomp2d::new(100, 60, 4, 3);
        let mut covered = vec![0u8; 100 * 60];
        for r in 0..d.nranks() {
            let b = d.block(r);
            for j in b.j0..b.j1 {
                for i in b.i0..b.i1 {
                    covered[j * 100 + i] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn block_sizes_balanced() {
        let d = BlockDecomp2d::new(103, 57, 4, 3);
        let sizes: Vec<usize> = (0..d.nranks()).map(|r| d.block(r).ncols()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= max / 10 + 40, "sizes {sizes:?}");
    }

    #[test]
    fn auto_picks_reasonable_mesh() {
        let d = BlockDecomp2d::auto(360, 180, 8);
        assert_eq!(d.nranks(), 8);
        // 360/px vs 180/py should be near-isotropic: 4×2 expected.
        assert_eq!((d.px, d.py), (4, 2));
    }

    #[test]
    fn structured_halo_exchange_moves_neighbors() {
        let (nlon, nlat) = (16, 12);
        let d = BlockDecomp2d::new(nlon, nlat, 2, 2);
        let world = World::new(d.nranks());
        world.run(|rank| {
            let b = d.block(rank.id());
            let (ni, nj) = (b.ni(), b.nj());
            let stride = ni + 2;
            let mut field = vec![f64::NAN; (nj + 2) * stride];
            // Fill interior with the *global* column index encoding.
            for j in 0..nj {
                for i in 0..ni {
                    let gi = b.i0 + i;
                    let gj = b.j0 + j;
                    field[(j + 1) * stride + (i + 1)] = (gj * nlon + gi) as f64;
                }
            }
            let ex = HaloExchange::new(d.halo_spec(rank.id()), 9);
            ex.exchange(rank, &mut field).unwrap();
            // West ghost of local row j must hold global (gj, gi0-1 mod nlon).
            for j in 0..nj {
                let gj = b.j0 + j;
                let gi_west = (b.i0 + nlon - 1) % nlon;
                let got = field[(j + 1) * stride];
                assert_eq!(got, (gj * nlon + gi_west) as f64, "west ghost row {j}");
                let gi_east = (b.i0 + ni) % nlon;
                let got = field[(j + 1) * stride + ni + 1];
                assert_eq!(got, (gj * nlon + gi_east) as f64, "east ghost row {j}");
            }
            // South ghosts only if an interior neighbor exists.
            if b.j0 > 0 {
                for i in 0..ni {
                    let got = field[i + 1];
                    assert_eq!(got, ((b.j0 - 1) * nlon + b.i0 + i) as f64);
                }
            }
            if b.j1 < nlat {
                for i in 0..ni {
                    let got = field[(nj + 1) * stride + i + 1];
                    assert_eq!(got, (b.j1 * nlon + b.i0 + i) as f64);
                }
            }
        });
    }

    #[test]
    fn graph_decomp_covers_all_cells_balanced() {
        let grid = GeodesicGrid::new(3); // 642 cells
        let d = GraphDecomp::new(&grid, 7);
        assert!(d.part_of.iter().all(|&p| p < 7));
        let sizes = d.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), grid.ncells());
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= max / 2, "unbalanced parts {sizes:?}");
    }

    #[test]
    fn graph_decomp_locality_beats_random() {
        let grid = GeodesicGrid::new(3);
        let d = GraphDecomp::new(&grid, 8);
        let cut = d.cut_edges(&grid);
        // Random assignment would cut ~(1 - 1/8) of all edges; BFS patches
        // must do much better.
        assert!(
            (cut as f64) < 0.5 * grid.nedges() as f64,
            "cut {cut} of {}",
            grid.nedges()
        );
    }

    #[test]
    fn single_part_decomp() {
        let grid = GeodesicGrid::new(2);
        let d = GraphDecomp::new(&grid, 1);
        assert!(d.part_of.iter().all(|&p| p == 0));
        assert_eq!(d.cut_edges(&grid), 0);
    }
}
