//! Vertical coordinates: 30 atmosphere sigma layers and 80 ocean z-levels
//! (the paper's Table 1 configuration).

/// Sigma mid-layer values for the atmosphere: `nlev` layers from the surface
/// (σ≈1) to the model top (σ≈0), concentrated toward the surface the way
/// operational configurations are. Returned top-down (σ decreasing… no —
/// bottom-up: index 0 = lowest layer), each in (0, 1).
pub fn atm_sigma_layers(nlev: usize) -> Vec<f64> {
    assert!(nlev >= 1);
    // Stretched distribution: uniform in s^1.7 puts more layers near σ = 1.
    (0..nlev)
        .map(|k| {
            let s = (k as f64 + 0.5) / nlev as f64; // 0 near surface
            1.0 - s.powf(1.7)
        })
        .collect()
}

/// Layer thicknesses dσ matching [`atm_sigma_layers`] (sum to 1).
pub fn atm_sigma_thickness(nlev: usize) -> Vec<f64> {
    let edges: Vec<f64> = (0..=nlev)
        .map(|k| {
            let s = k as f64 / nlev as f64;
            1.0 - s.powf(1.7)
        })
        .collect();
    (0..nlev).map(|k| edges[k] - edges[k + 1]).collect()
}

/// Bottom interface depth (m) of each of `nlev` ocean levels: ~10 m near the
/// surface stretching to ~5500 m total, the classic LICOM/POP stretched
/// z-grid shape. Monotonically increasing.
pub fn ocn_z_levels(nlev: usize) -> Vec<f64> {
    assert!(nlev >= 1);
    let max_depth = 5500.0;
    let surface_dz = 10.0;
    // Geometric-ish stretching: dz_k = surface_dz * r^k with r chosen so the
    // column sums to max_depth. Solve r by bisection.
    let target = max_depth / surface_dz;
    let sum_ratio = |r: f64| -> f64 {
        if (r - 1.0).abs() < 1e-12 {
            nlev as f64
        } else {
            (r.powi(nlev as i32) - 1.0) / (r - 1.0)
        }
    };
    let (mut lo, mut hi) = (1.0, 2.0);
    while sum_ratio(hi) < target {
        hi *= 1.5;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sum_ratio(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let r = 0.5 * (lo + hi);
    let mut depth = 0.0;
    let mut dz = surface_dz;
    let mut out = Vec::with_capacity(nlev);
    for _ in 0..nlev {
        depth += dz;
        out.push(depth);
        dz *= r;
    }
    out
}

/// Level thicknesses dz (m) matching [`ocn_z_levels`].
pub fn ocn_z_thickness(nlev: usize) -> Vec<f64> {
    let z = ocn_z_levels(nlev);
    let mut out = Vec::with_capacity(nlev);
    let mut prev = 0.0;
    for d in z {
        out.push(d - prev);
        prev = d;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_layers_in_unit_interval_decreasing() {
        let s = atm_sigma_layers(30);
        assert_eq!(s.len(), 30);
        assert!(s.iter().all(|&v| v > 0.0 && v < 1.0));
        for w in s.windows(2) {
            assert!(w[0] > w[1], "sigma must decrease with height index");
        }
    }

    #[test]
    fn sigma_thickness_sums_to_one() {
        let d = atm_sigma_thickness(30);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|&v| v > 0.0));
        // Near-surface layers thinner than top layers? Our stretching puts
        // *more* resolution near the surface: first < last.
        assert!(d[0] < d[29]);
    }

    #[test]
    fn ocean_levels_reach_max_depth() {
        let z = ocn_z_levels(80);
        assert_eq!(z.len(), 80);
        assert!((z[79] - 5500.0).abs() < 1.0, "bottom at {}", z[79]);
        assert!((z[0] - 10.0).abs() < 1e-9);
        for w in z.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn ocean_thickness_monotone_increasing() {
        let dz = ocn_z_thickness(80);
        for w in dz.windows(2) {
            assert!(w[1] >= w[0] * 0.999); // non-decreasing within tolerance
        }
        let total: f64 = dz.iter().sum();
        assert!((total - 5500.0).abs() < 1.0);
    }

    #[test]
    fn few_level_configs_work() {
        let z = ocn_z_levels(5);
        assert_eq!(z.len(), 5);
        assert!((z[4] - 5500.0).abs() < 1.0);
    }
}
