//! # AP3ESM grids (`ap3esm-grid`)
//!
//! The two meshes of the paper's Table 1 plus the decomposition machinery:
//!
//! * [`icosahedral`] — the GRIST atmosphere mesh: an icosahedral-geodesic
//!   Voronoi grid whose cell/edge/vertex counts follow the
//!   `10·4^g + 2 / 30·4^g / 20·4^g` formulas that generate the paper's grid
//!   sizes (g = 8 → 25 km … g = 12 → 1 km),
//! * [`tripolar`] — the LICOM ocean mesh: a structured lon×lat tripolar grid
//!   with the Table 1 dimension presets (36000×22018 at 1 km … 3600×2302 at
//!   10 km) and 80 vertical levels,
//! * [`mask`] — deterministic synthetic continents/bathymetry standing in
//!   for the ETOPO-style datasets we do not have (see DESIGN.md),
//! * [`decomp`] — block and graph domain decomposition with halo specs,
//! * [`compress`] — the §5.2.2 "excluding 3-D non-ocean grid points"
//!   optimisation: active-point compression, rank remapping and the rebuilt
//!   communication topology,
//! * [`vertical`] — vertical coordinates (30 atmosphere layers, 80 ocean
//!   levels).

pub mod compress;
pub mod decomp;
pub mod icosahedral;
pub mod mask;
pub mod sphere;
pub mod tripolar;
pub mod vertical;

pub use compress::{ActiveSet, CompressionReport};
pub use decomp::{BlockDecomp2d, GraphDecomp};
pub use icosahedral::GeodesicGrid;
pub use mask::MaskGenerator;
pub use tripolar::TripolarGrid;
pub use vertical::{atm_sigma_layers, ocn_z_levels};

/// Earth radius (m), used for physical metric terms.
pub const EARTH_RADIUS: f64 = 6.371e6;

/// Mean grid spacing (km) of a geodesic grid with the given cell count
/// (square-root of the mean cell area on the real Earth).
pub fn mean_spacing_km(ncells: usize) -> f64 {
    let area = 4.0 * std::f64::consts::PI * EARTH_RADIUS * EARTH_RADIUS / ncells as f64;
    area.sqrt() / 1000.0
}

/// Glevel for a nominal resolution label, following the paper's Table 1
/// convention: the "25 km" GRIST configuration is G8 (27.9 km mean spacing),
/// "10 km" is G9, "6 km" G10, "3 km" G11, and "1 km" G12 — each level
/// halves the spacing. For labels off the table, the log-closest level is
/// chosen.
pub fn glevel_for_resolution_km(res_km: f64) -> u32 {
    const TABLE: [(f64, u32); 5] = [(25.0, 8), (10.0, 9), (6.0, 10), (3.0, 11), (1.0, 12)];
    for (label, g) in TABLE {
        if (res_km - label).abs() < 1e-9 {
            return g;
        }
    }
    (0..=14u32)
        .min_by(|&a, &b| {
            let da = (mean_spacing_km(10 * 4usize.pow(a) + 2) / res_km).ln().abs();
            let db = (mean_spacing_km(10 * 4usize.pow(b) + 2) / res_km).ln().abs();
            da.partial_cmp(&db).expect("finite")
        })
        .expect("nonempty range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glevels_match_paper_resolutions() {
        // Table 1: 25 km -> 6.7e5 cells (G8), 10 km -> 2.6e6 (G9),
        // 6 km -> 1.1e7 (G10), 3 km -> 4.2e7 (G11), 1 km -> G12/G13 regime.
        assert_eq!(glevel_for_resolution_km(25.0), 8);
        assert_eq!(glevel_for_resolution_km(10.0), 9);
        assert_eq!(glevel_for_resolution_km(6.0), 10);
        assert_eq!(glevel_for_resolution_km(3.0), 11);
    }

    #[test]
    fn mean_spacing_is_monotone() {
        assert!(mean_spacing_km(1000) > mean_spacing_km(10_000));
    }
}
