//! Excluding 3-D non-ocean grid points (paper §5.2.2, Fig. 5).
//!
//! Oceans cover ~71 % of the surface and bathymetry removes further points
//! at depth, so a naive dense 3-D layout wastes ~30 % of compute resources.
//! This module implements the paper's optimisation end to end:
//!
//! 1. partition the columns, **count only active points**,
//! 2. remove non-ocean points into a packed layout ([`ActiveSet`]),
//! 3. remap MPI ranks so each holds an equal share of *active* points,
//! 4. report the resource reduction ([`CompressionReport`]).
//!
//! The rebuilt communication topology falls out of the remapping: neighbors
//! are recomputed over the active columns (`ActiveSet::column_owner`).

use crate::tripolar::TripolarGrid;

/// Packed representation of the active (ocean) 3-D points of a tripolar
/// grid: columns with `kmt > 0`, each contributing its `kmt` levels.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    /// Flat column indices (into the full grid) of active columns.
    pub columns: Vec<usize>,
    /// kmt per active column.
    pub kmt: Vec<u16>,
    /// Exclusive prefix sum of kmt: packed offset of each active column.
    pub offsets: Vec<usize>,
    /// Total active 3-D points.
    pub total_points: usize,
    /// Full-grid dimensions for reference.
    pub ncols_full: usize,
    pub nlev: usize,
}

impl ActiveSet {
    pub fn from_grid(grid: &TripolarGrid) -> Self {
        let mut columns = Vec::new();
        let mut kmt = Vec::new();
        let mut offsets = Vec::new();
        let mut total = 0usize;
        for (c, &k) in grid.kmt.iter().enumerate() {
            if k > 0 {
                columns.push(c);
                kmt.push(k);
                offsets.push(total);
                total += k as usize;
            }
        }
        ActiveSet {
            columns,
            kmt,
            offsets,
            total_points: total,
            ncols_full: grid.ncols(),
            nlev: grid.nlev,
        }
    }

    /// Number of active columns.
    pub fn ncolumns(&self) -> usize {
        self.columns.len()
    }

    /// Packed index of level `k` in active column `a`, if it is ocean.
    pub fn packed_index(&self, a: usize, k: usize) -> Option<usize> {
        if k < self.kmt[a] as usize {
            Some(self.offsets[a] + k)
        } else {
            None
        }
    }

    /// Compress a dense field (`ncols_full × nlev`, column-major by level:
    /// `field[c * nlev + k]`) into the packed layout.
    pub fn compress(&self, dense: &[f64]) -> Vec<f64> {
        assert_eq!(dense.len(), self.ncols_full * self.nlev);
        let mut packed = Vec::with_capacity(self.total_points);
        for (a, &c) in self.columns.iter().enumerate() {
            for k in 0..self.kmt[a] as usize {
                packed.push(dense[c * self.nlev + k]);
            }
        }
        packed
    }

    /// Scatter a packed field back to a dense layout; non-ocean points get
    /// `fill`.
    pub fn decompress(&self, packed: &[f64], fill: f64) -> Vec<f64> {
        assert_eq!(packed.len(), self.total_points);
        let mut dense = vec![fill; self.ncols_full * self.nlev];
        for (a, &c) in self.columns.iter().enumerate() {
            for k in 0..self.kmt[a] as usize {
                dense[c * self.nlev + k] = packed[self.offsets[a] + k];
            }
        }
        dense
    }

    /// Partition active columns over `nranks` so each rank receives a
    /// near-equal number of *active points* (not columns): the paper's rank
    /// remapping. Returns per-rank contiguous ranges `[start, end)` into
    /// `self.columns`.
    pub fn balanced_ranges(&self, nranks: usize) -> Vec<(usize, usize)> {
        assert!(nranks >= 1);
        let target = self.total_points as f64 / nranks as f64;
        let mut ranges = Vec::with_capacity(nranks);
        let mut start = 0usize;
        let mut acc = 0usize;
        let mut next_cut = target;
        for (a, &k) in self.kmt.iter().enumerate() {
            acc += k as usize;
            // Cut when we pass the running target, leaving columns for the
            // remaining ranks.
            while ranges.len() + 1 < nranks && acc as f64 >= next_cut {
                ranges.push((start, a + 1));
                start = a + 1;
                next_cut += target;
                if start >= self.kmt.len() {
                    break;
                }
            }
        }
        ranges.push((start, self.kmt.len()));
        while ranges.len() < nranks {
            ranges.push((self.kmt.len(), self.kmt.len()));
        }
        ranges
    }

    /// Owner rank per *active column* under [`Self::balanced_ranges`].
    pub fn column_owner(&self, nranks: usize) -> Vec<usize> {
        let ranges = self.balanced_ranges(nranks);
        let mut owner = vec![0usize; self.ncolumns()];
        for (r, &(s, e)) in ranges.iter().enumerate() {
            for o in owner.iter_mut().take(e).skip(s) {
                *o = r;
            }
        }
        owner
    }

    /// Active points per rank under the balanced partition.
    pub fn points_per_rank(&self, nranks: usize) -> Vec<usize> {
        self.balanced_ranges(nranks)
            .iter()
            .map(|&(s, e)| (s..e).map(|a| self.kmt[a] as usize).sum())
            .collect()
    }
}

/// Resource accounting for the exclusion optimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    pub total_points: usize,
    pub active_points: usize,
    /// Fraction of points removed (the paper reports ~30 %).
    pub reduction: f64,
    /// Ranks needed at `points_per_rank` capacity, dense vs packed.
    pub ranks_dense: usize,
    pub ranks_packed: usize,
}

impl CompressionReport {
    pub fn new(grid: &TripolarGrid, points_per_rank: usize) -> Self {
        let total = grid.npoints_3d();
        let active = grid.active_points_3d();
        CompressionReport {
            total_points: total,
            active_points: active,
            reduction: 1.0 - active as f64 / total as f64,
            ranks_dense: total.div_ceil(points_per_rank),
            ranks_packed: active.div_ceil(points_per_rank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskGenerator;

    fn grid() -> TripolarGrid {
        TripolarGrid::new(60, 40, 12, MaskGenerator::default())
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let g = grid();
        let set = ActiveSet::from_grid(&g);
        let mut dense = vec![0.0; g.ncols() * g.nlev];
        for (c, v) in dense.iter_mut().enumerate() {
            *v = c as f64 * 0.5;
        }
        let packed = set.compress(&dense);
        assert_eq!(packed.len(), set.total_points);
        let back = set.decompress(&packed, f64::NAN);
        // Active points identical; non-ocean points are fill.
        for (a, &c) in set.columns.iter().enumerate() {
            for k in 0..g.nlev {
                let d = back[c * g.nlev + k];
                if k < set.kmt[a] as usize {
                    assert_eq!(d, dense[c * g.nlev + k]);
                } else {
                    assert!(d.is_nan());
                }
            }
        }
    }

    #[test]
    fn active_counts_match_grid() {
        let g = grid();
        let set = ActiveSet::from_grid(&g);
        assert_eq!(set.total_points, g.active_points_3d());
        assert_eq!(
            set.ncolumns(),
            g.kmt.iter().filter(|&&k| k > 0).count()
        );
    }

    #[test]
    fn balanced_ranges_cover_and_balance() {
        let g = grid();
        let set = ActiveSet::from_grid(&g);
        for nranks in [1, 2, 5, 16] {
            let ranges = set.balanced_ranges(nranks);
            assert_eq!(ranges.len(), nranks);
            // Coverage: contiguous, disjoint, complete.
            let mut expect = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, expect);
                expect = e;
            }
            assert_eq!(expect, set.ncolumns());
            // Balance: every rank within 2× of the mean (column granularity
            // limits perfection).
            let pts = set.points_per_rank(nranks);
            let mean = set.total_points as f64 / nranks as f64;
            for &p in &pts {
                assert!(
                    (p as f64) < 2.0 * mean + g.nlev as f64,
                    "rank load {p} vs mean {mean}"
                );
            }
            assert_eq!(pts.iter().sum::<usize>(), set.total_points);
        }
    }

    #[test]
    fn column_owner_is_monotone() {
        let g = grid();
        let set = ActiveSet::from_grid(&g);
        let owner = set.column_owner(7);
        for w in owner.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*owner.last().unwrap(), 6);
    }

    #[test]
    fn report_shows_reduction() {
        let g = grid();
        let rep = CompressionReport::new(&g, 1000);
        assert!(rep.reduction > 0.2, "reduction {}", rep.reduction);
        assert!(rep.ranks_packed < rep.ranks_dense);
        assert_eq!(rep.active_points, g.active_points_3d());
    }

    #[test]
    fn packed_index_respects_kmt() {
        let g = grid();
        let set = ActiveSet::from_grid(&g);
        for a in 0..set.ncolumns().min(50) {
            let kmt = set.kmt[a] as usize;
            assert!(set.packed_index(a, kmt.saturating_sub(1)).is_some());
            assert!(set.packed_index(a, kmt).is_none());
        }
    }
}
