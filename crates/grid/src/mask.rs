//! Deterministic synthetic land/sea masks and bathymetry.
//!
//! The paper's grids carry real ETOPO-style topography; we do not have that
//! dataset, so we synthesise continents from smooth value noise on the
//! sphere (hash-based lattice noise summed over octaves). The generator is
//! deterministic in its seed, produces connected continent-scale features,
//! and lets callers request an exact target land fraction — the Earth's
//! ~29 % by default, which drives the §5.2.2 "~30 % computational resource
//! reduction" experiment.

use crate::sphere::Vec3;

/// Smooth deterministic noise on the sphere, used for masks and bathymetry.
#[derive(Debug, Clone, Copy)]
pub struct MaskGenerator {
    pub seed: u64,
    /// Number of noise octaves (more = rougher coastlines).
    pub octaves: u32,
    /// Base spatial frequency (continent count scale).
    pub base_frequency: f64,
}

impl Default for MaskGenerator {
    fn default() -> Self {
        MaskGenerator {
            seed: 20250704,
            octaves: 4,
            base_frequency: 1.5,
        }
    }
}

fn hash3(seed: u64, ix: i64, iy: i64, iz: i64) -> f64 {
    // SplitMix64-style integer hash over the lattice cell.
    let mut h = seed
        ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (iz as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Trilinear value noise at a 3-D point.
fn value_noise(seed: u64, p: Vec3, freq: f64) -> f64 {
    let (x, y, z) = (p.x * freq + 100.0, p.y * freq + 100.0, p.z * freq + 100.0);
    let (ix, iy, iz) = (x.floor() as i64, y.floor() as i64, z.floor() as i64);
    let (fx, fy, fz) = (x - x.floor(), y - y.floor(), z - z.floor());
    let (sx, sy, sz) = (smoothstep(fx), smoothstep(fy), smoothstep(fz));
    let mut acc = 0.0;
    for (dz, wz) in [(0, 1.0 - sz), (1, sz)] {
        for (dy, wy) in [(0, 1.0 - sy), (1, sy)] {
            for (dx, wx) in [(0, 1.0 - sx), (1, sx)] {
                acc += wx * wy * wz * hash3(seed, ix + dx, iy + dy, iz + dz);
            }
        }
    }
    acc
}

impl MaskGenerator {
    /// Smooth scalar "elevation" field in roughly [-1, 1] at a point on the
    /// unit sphere. Positive values become land after thresholding.
    pub fn elevation(&self, p: Vec3) -> f64 {
        let mut acc = 0.0;
        let mut amp = 1.0;
        let mut freq = self.base_frequency;
        let mut norm = 0.0;
        for o in 0..self.octaves {
            acc += amp * value_noise(self.seed.wrapping_add(o as u64 * 7919), p, freq);
            norm += amp;
            amp *= 0.55;
            freq *= 2.1;
        }
        acc / norm
    }

    /// Land mask over arbitrary points with an (approximately) exact target
    /// land fraction: the threshold is the appropriate quantile of the
    /// sampled elevations. Returns `(mask, threshold)`; `mask[i] == true`
    /// means land.
    pub fn land_mask(&self, points: &[Vec3], land_fraction: f64) -> (Vec<bool>, f64) {
        assert!((0.0..=1.0).contains(&land_fraction));
        let elev: Vec<f64> = points.iter().map(|&p| self.elevation(p)).collect();
        let mut sorted = elev.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite elevations"));
        let k = ((1.0 - land_fraction) * (sorted.len() as f64)) as usize;
        let threshold = if sorted.is_empty() {
            0.0
        } else {
            sorted[k.min(sorted.len() - 1)]
        };
        (elev.iter().map(|&e| e >= threshold).collect(), threshold)
    }

    /// Ocean depth (m) at a point: 0 over land, up to `max_depth` in basins.
    /// Smooth, deterministic; plays the role of real bathymetry when
    /// building the 3-D ocean mask.
    pub fn depth(&self, p: Vec3, threshold: f64, max_depth: f64) -> f64 {
        let e = self.elevation(p);
        if e >= threshold {
            0.0
        } else {
            // Deeper the farther below the coastline threshold; normalise by
            // a plausible dynamic range so most basins reach 50-100% depth.
            let d = ((threshold - e) / 0.6).clamp(0.0, 1.0);
            // Continental-shelf shaping: shallow margins, flat abyss.
            max_depth * d.powf(0.7)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib_sphere(n: usize) -> Vec<Vec3> {
        // Fibonacci sphere sampling: quasi-uniform test points.
        let phi = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
        (0..n)
            .map(|i| {
                let y = 1.0 - 2.0 * (i as f64 + 0.5) / n as f64;
                let r = (1.0 - y * y).sqrt();
                let t = phi * i as f64;
                Vec3::new(r * t.cos(), y, r * t.sin())
            })
            .collect()
    }

    #[test]
    fn deterministic_in_seed() {
        let g = MaskGenerator::default();
        let p = Vec3::from_lat_lon(0.3, 1.2);
        assert_eq!(g.elevation(p).to_bits(), g.elevation(p).to_bits());
        let g2 = MaskGenerator {
            seed: 42,
            ..MaskGenerator::default()
        };
        assert_ne!(g.elevation(p).to_bits(), g2.elevation(p).to_bits());
    }

    #[test]
    fn land_fraction_close_to_target() {
        let g = MaskGenerator::default();
        let pts = fib_sphere(20_000);
        let (mask, _) = g.land_mask(&pts, 0.29);
        let frac = mask.iter().filter(|&&m| m).count() as f64 / mask.len() as f64;
        assert!(
            (frac - 0.29).abs() < 0.01,
            "land fraction {frac} not within 1% of 0.29"
        );
    }

    #[test]
    fn elevation_is_smooth() {
        // Nearby points have nearby elevations (continuity proxy).
        let g = MaskGenerator::default();
        let p = Vec3::from_lat_lon(0.5, 0.5);
        let q = Vec3::from_lat_lon(0.5001, 0.5001);
        assert!((g.elevation(p) - g.elevation(q)).abs() < 0.01);
    }

    #[test]
    fn depth_zero_on_land_positive_in_ocean() {
        let g = MaskGenerator::default();
        let pts = fib_sphere(2000);
        let (mask, thr) = g.land_mask(&pts, 0.3);
        for (p, &is_land) in pts.iter().zip(&mask) {
            let d = g.depth(*p, thr, 5500.0);
            if is_land {
                assert_eq!(d, 0.0);
            } else {
                assert!((0.0..=5500.0).contains(&d));
            }
        }
        // Some deep ocean must exist.
        let deep = pts
            .iter()
            .filter(|&&p| g.depth(p, thr, 5500.0) > 3000.0)
            .count();
        assert!(deep > 0, "no deep basins generated");
    }

    #[test]
    fn extreme_fractions() {
        let g = MaskGenerator::default();
        let pts = fib_sphere(500);
        let (all_ocean, _) = g.land_mask(&pts, 0.0);
        assert!(all_ocean.iter().filter(|&&m| m).count() <= 1);
        let (all_land, _) = g.land_mask(&pts, 1.0);
        assert!(all_land.iter().all(|&m| m));
    }
}
