//! Small spherical-geometry toolkit shared by both meshes.

/// A point on (or near) the unit sphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize zero vector");
        Vec3::new(self.x / n, self.y / n, self.z / n)
    }

    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Geodesic (great-circle) distance to `o` on the unit sphere.
    pub fn arc_distance(self, o: Vec3) -> f64 {
        // atan2 form is accurate for both small and large separations.
        let cross = self.cross(o).norm();
        let dot = self.dot(o);
        cross.atan2(dot)
    }

    /// Latitude in radians.
    pub fn lat(self) -> f64 {
        self.z.clamp(-1.0, 1.0).asin()
    }

    /// Longitude in radians in (-π, π].
    pub fn lon(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector from spherical coordinates.
    pub fn from_lat_lon(lat: f64, lon: f64) -> Vec3 {
        Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
    }

    /// Local east unit vector at this point. At the poles (where east is
    /// undefined) an arbitrary but fixed tangent direction is returned so
    /// that (east, north, up) stays a right-handed orthonormal frame.
    pub fn east(self) -> Vec3 {
        let e = Vec3::new(-self.y, self.x, 0.0);
        if e.dot(e) < 1e-24 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            e.normalized()
        }
    }

    /// Local north unit vector at this point (up × east, valid at poles).
    pub fn north(self) -> Vec3 {
        self.normalized().cross(self.east())
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

/// Spherical area of the triangle (a, b, c) on the unit sphere
/// (L'Huilier-free: Girard via dihedral angles through `atan2`).
pub fn spherical_triangle_area(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    // Oosterom & Strackee: tan(E/2) = |a·(b×c)| / (1 + a·b + b·c + c·a)
    let num = a.dot(b.cross(c)).abs();
    let den = 1.0 + a.dot(b) + b.dot(c) + c.dot(a);
    2.0 * num.atan2(den)
}

/// Circumcenter of the spherical triangle (a, b, c), on the unit sphere,
/// oriented to the same hemisphere as the triangle.
pub fn circumcenter(a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    let n = (b - a).cross(c - a);
    let n = n.normalized();
    // Choose the orientation pointing toward the triangle's centroid.
    let centroid = (a + b + c).scale(1.0 / 3.0);
    if n.dot(centroid) < 0.0 {
        n.scale(-1.0)
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arc_distance_quarter_circle() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert!((a.arc_distance(b) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn octant_triangle_area() {
        // One octant of the sphere has area 4π/8 = π/2.
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = Vec3::new(0.0, 0.0, 1.0);
        assert!((spherical_triangle_area(a, b, c) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_equidistant() {
        let a = Vec3::from_lat_lon(0.1, 0.0);
        let b = Vec3::from_lat_lon(0.0, 0.15);
        let c = Vec3::from_lat_lon(-0.12, -0.05);
        let cc = circumcenter(a, b, c);
        let da = cc.arc_distance(a);
        let db = cc.arc_distance(b);
        let dc = cc.arc_distance(c);
        assert!((da - db).abs() < 1e-12 && (db - dc).abs() < 1e-12);
    }

    #[test]
    fn latlon_roundtrip() {
        let p = Vec3::from_lat_lon(0.7, -2.1);
        assert!((p.lat() - 0.7).abs() < 1e-12);
        assert!((p.lon() + 2.1).abs() < 1e-12);
        assert!((p.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn east_north_orthonormal() {
        let p = Vec3::from_lat_lon(0.5, 1.0);
        let e = p.east();
        let n = p.north();
        assert!(e.dot(n).abs() < 1e-12);
        assert!(e.dot(p).abs() < 1e-12);
        assert!(n.dot(p).abs() < 1e-12);
        assert!((e.norm() - 1.0).abs() < 1e-12);
    }
}
