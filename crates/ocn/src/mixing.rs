//! Canuto-style Richardson-number vertical mixing with an implicit
//! (tridiagonal) solve.
//!
//! The *canuto* scheme is where the paper's 3-D point-removal optimisation
//! was first applied (§5.2.2: "previous research utilized this technique
//! for thread-level optimization only in the canuto parameterization
//! scheme"); in AP3ESM it is extended to the whole component. Our
//! diffusivity closure keeps the scheme's structure — stability-dependent
//! coefficients from Ri — with a standard (1 + 5·Ri)⁻² fit.

/// Mixing-scheme parameters.
#[derive(Debug, Clone, Copy)]
pub struct CanutoMixing {
    /// Maximum (neutral) diffusivity (m²/s).
    pub k_max: f64,
    /// Background (abyssal) diffusivity (m²/s).
    pub k_background: f64,
    /// Convective-adjustment diffusivity for unstable columns (m²/s).
    pub k_convective: f64,
}

impl Default for CanutoMixing {
    fn default() -> Self {
        CanutoMixing {
            k_max: 1.0e-2,
            k_background: 1.0e-5,
            k_convective: 1.0,
        }
    }
}

impl CanutoMixing {
    /// Interface diffusivity from the local Richardson number
    /// `Ri = N² / S²` (shear squared `s2`, buoyancy frequency `n2`).
    pub fn diffusivity(&self, n2: f64, s2: f64) -> f64 {
        if n2 < 0.0 {
            return self.k_convective; // unstable: convective overturn
        }
        let ri = n2 / s2.max(1e-10);
        self.k_background + self.k_max / (1.0 + 5.0 * ri).powi(2)
    }

    /// Implicit vertical diffusion of one column:
    /// `(I − dt·D) xⁿ⁺¹ = xⁿ + dt·b`, where `D` is the diffusion operator
    /// with interface diffusivities `k_int` (len = nlev−1), cell thicknesses
    /// `dz`, and `surface_flux` enters the top cell (field·m/s). Solves the
    /// tridiagonal system with the Thomas algorithm (unconditionally
    /// stable, as LICOM's vmix must be at 80 levels).
    pub fn diffuse_implicit(
        &self,
        x: &mut [f64],
        dz: &[f64],
        k_int: &[f64],
        dt: f64,
        surface_flux: f64,
    ) {
        let n = x.len();
        assert_eq!(dz.len(), n);
        if n == 0 {
            return;
        }
        assert_eq!(k_int.len(), n.saturating_sub(1));
        // Build tridiagonal coefficients: a·x[k-1] + b·x[k] + c·x[k+1] = d.
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        let mut c = vec![0.0; n];
        let mut d = vec![0.0; n];
        for k in 0..n {
            let up = if k > 0 {
                k_int[k - 1] / (0.5 * (dz[k - 1] + dz[k]))
            } else {
                0.0
            };
            let dn = if k + 1 < n {
                k_int[k] / (0.5 * (dz[k] + dz[k + 1]))
            } else {
                0.0
            };
            a[k] = -dt * up / dz[k];
            c[k] = -dt * dn / dz[k];
            b[k] = 1.0 - a[k] - c[k];
            d[k] = x[k];
        }
        d[0] += dt * surface_flux / dz[0];
        // Thomas algorithm.
        for k in 1..n {
            let m = a[k] / b[k - 1];
            b[k] -= m * c[k - 1];
            d[k] -= m * d[k - 1];
        }
        x[n - 1] = d[n - 1] / b[n - 1];
        for k in (0..n - 1).rev() {
            x[k] = (d[k] - c[k] * x[k + 1]) / b[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusivity_regimes() {
        let m = CanutoMixing::default();
        // Unstable → convective.
        assert_eq!(m.diffusivity(-1e-5, 1e-4), m.k_convective);
        // Strongly stratified → background.
        let k_strat = m.diffusivity(1e-3, 1e-6);
        assert!(k_strat < 2.0 * m.k_background, "k = {k_strat}");
        // Strong shear, weak stratification → near k_max.
        let k_shear = m.diffusivity(1e-8, 1e-3);
        assert!(k_shear > 0.5 * m.k_max, "k = {k_shear}");
        assert!(k_shear > k_strat);
    }

    #[test]
    fn implicit_diffusion_conserves_without_flux() {
        let m = CanutoMixing::default();
        let mut x = vec![20.0, 15.0, 10.0, 6.0, 4.0];
        let dz = vec![10.0, 20.0, 40.0, 80.0, 160.0];
        let total0: f64 = x.iter().zip(&dz).map(|(v, d)| v * d).sum();
        let k = vec![1e-2; 4];
        m.diffuse_implicit(&mut x, &dz, &k, 3600.0, 0.0);
        let total1: f64 = x.iter().zip(&dz).map(|(v, d)| v * d).sum();
        assert!(
            ((total1 - total0) / total0).abs() < 1e-12,
            "drift {}",
            (total1 - total0) / total0
        );
        // Gradient weakened.
        assert!(x[0] < 20.0 && x[4] > 4.0);
    }

    #[test]
    fn implicit_diffusion_stable_at_huge_dt() {
        // K·dt/dz² ≈ 360: explicit would explode; implicit must stay
        // bounded by the initial extrema.
        let m = CanutoMixing::default();
        let mut x = vec![25.0, 5.0, 5.0, 5.0];
        let dz = vec![10.0; 4];
        let k = vec![1.0; 3];
        m.diffuse_implicit(&mut x, &dz, &k, 3600.0, 0.0);
        assert!(x.iter().all(|&v| (5.0 - 1e-9..=25.0 + 1e-9).contains(&v)), "{x:?}");
        // Nearly homogenised.
        assert!((x[0] - x[3]).abs() < 1.0);
    }

    #[test]
    fn surface_flux_enters_top_cell() {
        let m = CanutoMixing::default();
        let mut x = vec![10.0; 5];
        let dz = vec![10.0; 5];
        let k = vec![0.0; 4]; // no mixing: flux stays in the top cell
        m.diffuse_implicit(&mut x, &dz, &k, 100.0, 0.05);
        assert!((x[0] - 10.0 - 100.0 * 0.05 / 10.0).abs() < 1e-12);
        assert!(x[1..].iter().all(|&v| v == 10.0));
    }

    #[test]
    fn single_level_column() {
        let m = CanutoMixing::default();
        let mut x = vec![5.0];
        m.diffuse_implicit(&mut x, &[10.0], &[], 100.0, 0.1);
        assert!((x[0] - 6.0).abs() < 1e-12);
    }
}
