//! Performance-portable ocean kernels dispatched through the `ap3esm-pp`
//! hash registry — the LICOMK++ execution path on Sunway (§5.3): kernels
//! registered once under hashed names, launched by callback on whichever
//! execution space the configuration selects.

use ap3esm_pp::{ExecSpace, KernelArgs, KernelRegistry};

/// Kernel names registered by [`register_kernels`].
pub const K_AXPY: &str = "ocn_axpy";
pub const K_CORIOLIS_ROTATE: &str = "ocn_coriolis_rotate";
pub const K_EOS_DENSITY: &str = "ocn_eos_density";

/// Register the ocean's portable kernels. Returns the number registered.
pub fn register_kernels(reg: &KernelRegistry) -> usize {
    // y ← y + a·x (tendency accumulation).
    reg.register(K_AXPY, |space: &dyn ExecSpace, args: &mut KernelArgs| {
        let a = args.scalars[0];
        let n = args.n;
        let x: Vec<f64> = args.inputs[0].to_vec();
        let y = &mut args.outputs[0];
        let shared = ap3esm_pp::SharedSlice::new(y);
        space.for_each(n, &|i| unsafe {
            let v = *shared.get(i) + a * x[i];
            shared.set(i, v);
        });
    });

    // Rotation-implicit Coriolis: (u, v) ← R(f·dt)·(u, v)/(1+(f·dt)²).
    reg.register(
        K_CORIOLIS_ROTATE,
        |space: &dyn ExecSpace, args: &mut KernelArgs| {
            let a = args.scalars[0]; // f·dt
            let n = args.n;
            let denom = 1.0 + a * a;
            let [u, v] = &mut args.outputs[..] else {
                panic!("coriolis kernel needs (u, v) outputs");
            };
            let su = ap3esm_pp::SharedSlice::new(u);
            let sv = ap3esm_pp::SharedSlice::new(v);
            space.for_each(n, &|i| unsafe {
                let (ui, vi) = (*su.get(i), *sv.get(i));
                su.set(i, (ui + a * vi) / denom);
                sv.set(i, (vi - a * ui) / denom);
            });
        },
    );

    // Linear EOS over a packed level: rho ← ρ(T, S).
    reg.register(
        K_EOS_DENSITY,
        |space: &dyn ExecSpace, args: &mut KernelArgs| {
            let n = args.n;
            let t: Vec<f64> = args.inputs[0].to_vec();
            let s: Vec<f64> = args.inputs[1].to_vec();
            let rho = &mut args.outputs[0];
            let out = ap3esm_pp::SharedSlice::new(rho);
            space.for_each(n, &|i| unsafe {
                out.set(i, crate::eos::density(t[i], s[i]));
            });
        },
    );
    3
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_pp::{Serial, SimulatedCpe, Threads};

    #[test]
    fn kernels_register_and_run_on_all_backends() {
        let reg = KernelRegistry::new();
        assert_eq!(register_kernels(&reg), 3);
        let backends: Vec<Box<dyn ExecSpace>> = vec![
            Box::new(Serial),
            Box::new(Threads::new(3)),
            Box::new(SimulatedCpe::default()),
        ];
        for backend in &backends {
            let x = vec![1.0, 2.0, 3.0];
            let mut y = vec![10.0, 10.0, 10.0];
            let mut args = KernelArgs {
                n: 3,
                inputs: vec![&x],
                outputs: vec![&mut y],
                scalars: vec![0.5],
            };
            reg.launch_by_name(K_AXPY, backend.as_ref(), &mut args)
                .unwrap();
            assert_eq!(y, vec![10.5, 11.0, 11.5], "axpy on {}", backend.name());
        }
    }

    #[test]
    fn coriolis_kernel_preserves_speed() {
        let reg = KernelRegistry::new();
        register_kernels(&reg);
        let mut u: Vec<f64> = vec![1.0, 0.0, 3.0];
        let mut v: Vec<f64> = vec![0.0, 2.0, -4.0];
        let speed0: Vec<f64> = u
            .iter()
            .zip(&v)
            .map(|(a, b)| (a * a + b * b).sqrt())
            .collect();
        let mut args = KernelArgs {
            n: 3,
            inputs: vec![],
            outputs: vec![&mut u, &mut v],
            scalars: vec![0.3],
        };
        reg.launch_by_name(K_CORIOLIS_ROTATE, &Serial, &mut args)
            .unwrap();
        // Implicit rotation shrinks speed slightly (never grows it).
        for ((a, b), s0) in u.iter().zip(&v).zip(&speed0) {
            let s1 = (a * a + b * b).sqrt();
            assert!(s1 <= *s0 + 1e-12, "speed grew {s0} -> {s1}");
            assert!(s1 > 0.9 * s0, "over-damped {s0} -> {s1}");
        }
    }

    #[test]
    fn eos_kernel_matches_direct_call() {
        let reg = KernelRegistry::new();
        register_kernels(&reg);
        let t = vec![5.0, 15.0, 25.0];
        let s = vec![34.0, 35.0, 36.0];
        let mut rho = vec![0.0; 3];
        let mut args = KernelArgs {
            n: 3,
            inputs: vec![&t, &s],
            outputs: vec![&mut rho],
            scalars: vec![],
        };
        reg.launch_by_name(K_EOS_DENSITY, &Threads::new(2), &mut args)
            .unwrap();
        for i in 0..3 {
            assert_eq!(rho[i], crate::eos::density(t[i], s[i]));
        }
    }
}
