//! The ocean model driver: split time stepping, halo exchange, masking and
//! the point-exclusion loop path.

use ap3esm_comm::{CommError, HaloExchange, Rank};
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_physics::constants::CP_SEAWATER;

use crate::eos::density;
use crate::mixing::CanutoMixing;
use crate::state::OcnState;
use crate::{G, RHO0};

/// Model configuration.
#[derive(Debug, Clone)]
pub struct OcnConfig {
    pub nlon: usize,
    pub nlat: usize,
    pub nlev: usize,
    /// Process mesh.
    pub px: usize,
    pub py: usize,
    /// Baroclinic/tracer timestep (s); the paper uses 20 s at 1 km.
    pub dt_baroclinic: f64,
    /// Barotropic substeps per baroclinic step (paper ratio 20 s : 2 s = 10).
    pub n_barotropic: usize,
    /// §5.2.2 point exclusion on/off (the Fig. 5 ablation switch).
    pub exclude_land: bool,
    /// Rayleigh drag on the barotropic mode (1/s).
    pub r_drag: f64,
    /// Offset added to decomposition rank ids to get world rank ids (the
    /// coupled model places the ocean domain at world ranks `offset..`).
    pub rank_offset: usize,
}

impl OcnConfig {
    /// CFL-scaled configuration for a grid: barotropic gravity waves move
    /// at √(gH) ≈ 230 m/s, so dt_btr ≈ 1.2 s per km of the *smallest ocean*
    /// spacing — the row just south of the displaced-pole land cap, where
    /// zonal convergence shrinks dx by cos(84°) (the paper's 2 s at 1 km is
    /// the same scaling with its implicit free surface and polar filter);
    /// the 1:10 barotropic:baroclinic ratio of Table 1 is kept.
    pub fn for_grid(nlon: usize, nlat: usize, nlev: usize, px: usize, py: usize) -> Self {
        let dx_km = 40_000.0 / nlon as f64
            * ap3esm_grid::tripolar::POLAR_CAP_DEG.to_radians().cos();
        let dt_btr = 1.2 * dx_km;
        OcnConfig {
            nlon,
            nlat,
            nlev,
            px,
            py,
            dt_baroclinic: dt_btr * 10.0,
            n_barotropic: 10,
            exclude_land: true,
            r_drag: 1.0e-6,
            rank_offset: 0,
        }
    }
}

/// Surface forcing on the interior cells (row-major `nj × ni`).
#[derive(Debug, Clone)]
pub struct OcnForcing {
    /// Zonal/meridional wind stress (N/m²).
    pub taux: Vec<f64>,
    pub tauy: Vec<f64>,
    /// Net surface heat flux into the ocean (W/m²).
    pub qnet: Vec<f64>,
    /// Virtual salt flux (psu·m/s, positive salts the surface).
    pub salt_flux: Vec<f64>,
}

impl OcnForcing {
    pub fn zeros(ni: usize, nj: usize) -> Self {
        OcnForcing {
            taux: vec![0.0; ni * nj],
            tauy: vec![0.0; ni * nj],
            qnet: vec![0.0; ni * nj],
            salt_flux: vec![0.0; ni * nj],
        }
    }

    /// Idealised climatological forcing: easterly trades / westerlies
    /// pattern and solar heating peaked at the equator.
    pub fn climatology(grid: &TripolarGrid, decomp: &BlockDecomp2d, rank_id: usize) -> Self {
        let block = decomp.block(rank_id);
        let (ni, nj) = (block.ni(), block.nj());
        let mut f = Self::zeros(ni, nj);
        for j in 0..nj {
            let phi = grid.lat[block.j0 + j];
            let tau = 0.08 * (3.0 * phi).sin() * phi.cos();
            let q = 120.0 * phi.cos().powi(2) - 60.0;
            for i in 0..ni {
                f.taux[j * ni + i] = tau;
                f.qnet[j * ni + i] = q;
            }
        }
        f
    }
}

/// The assembled per-rank ocean model.
pub struct OcnModel {
    pub config: OcnConfig,
    pub state: OcnState,
    halo2d: HaloExchange,
    halo3d: HaloExchange,
    mixing: CanutoMixing,
    /// Packed active-column list (used when `exclude_land`).
    active: Vec<(usize, usize)>,
    /// Columns visited last step (exclusion accounting for Fig. 5).
    pub columns_visited: usize,
}

impl OcnModel {
    pub fn new(grid: &TripolarGrid, config: OcnConfig, rank_id: usize) -> Self {
        let decomp = BlockDecomp2d::new(config.nlon, config.nlat, config.px, config.py);
        let state = OcnState::new(grid, &decomp, rank_id);
        let mut spec = decomp.halo_spec(rank_id);
        for link in spec.sends.iter_mut().chain(spec.recvs.iter_mut()) {
            link.peer += config.rank_offset;
        }
        let halo2d = HaloExchange::new(spec.clone(), 100);
        let halo3d = HaloExchange::new(spec, 200);
        let active = state.active_columns();
        OcnModel {
            config,
            state,
            halo2d,
            halo3d,
            mixing: CanutoMixing::default(),
            active,
            columns_visited: 0,
        }
    }

    /// Iterate interior columns under the configured loop policy, calling
    /// `f(i, j, idx)` for every *ocean* column.
    fn for_active_columns(&mut self, mut f: impl FnMut(&mut OcnState, usize, usize, usize)) {
        let mut visited = 0;
        if self.config.exclude_land {
            for &(i, j) in &self.active {
                let idx = self.state.at(i, j);
                visited += 1;
                f(&mut self.state, i, j, idx);
            }
        } else {
            for j in 0..self.state.nj {
                for i in 0..self.state.ni {
                    visited += 1; // dense policy visits land too
                    let idx = self.state.at(i, j);
                    if self.state.kmt[idx] > 0 {
                        f(&mut self.state, i, j, idx);
                    }
                }
            }
        }
        self.columns_visited = visited;
    }

    /// One barotropic substep (forward-backward, rotation-implicit
    /// Coriolis).
    fn barotropic_substep(
        &mut self,
        rank: &Rank,
        forcing: &OcnForcing,
        dt: f64,
    ) -> Result<(), CommError> {
        let st = &mut self.state;
        let stride = st.stride;
        let (ni, nj) = (st.ni, st.nj);

        // Continuity: η ← η − dt·∇·(H u) with masked face fluxes.
        let mut new_eta = st.eta.clone();
        for j in 0..nj {
            for i in 0..ni {
                let idx = st.at(i, j);
                if st.kmt[idx] == 0 {
                    continue;
                }
                let (e, w, n, s) = (idx + 1, idx - 1, idx + stride, idx - stride);
                let face = |a: usize, b: usize, vel: f64| -> f64 {
                    if st.kmt[a] > 0 && st.kmt[b] > 0 {
                        0.5 * (st.depth[a] + st.depth[b]) * vel
                    } else {
                        0.0
                    }
                };
                let fx_e = face(idx, e, 0.5 * (st.ubar[idx] + st.ubar[e]));
                let fx_w = face(w, idx, 0.5 * (st.ubar[w] + st.ubar[idx]));
                let fy_n = face(idx, n, 0.5 * (st.vbar[idx] + st.vbar[n]));
                let fy_s = face(s, idx, 0.5 * (st.vbar[s] + st.vbar[idx]));
                // Meridional faces use the *shared* interface length
                // (mean of the adjacent rows' dx), so the discrete
                // divergence telescopes and volume is conserved exactly on
                // the converging tripolar rows.
                let lx_n = 0.5 * (st.dx_ext[j + 1] + st.dx_ext[j + 2]);
                let lx_s = 0.5 * (st.dx_ext[j] + st.dx_ext[j + 1]);
                let area = st.dx[j] * st.dy;
                let div = ((fx_e - fx_w) * st.dy + fy_n * lx_n - fy_s * lx_s) / area;
                new_eta[idx] = st.eta[idx] - dt * div;
            }
        }
        st.eta = new_eta;
        self.halo2d.exchange(rank, &mut self.state.eta)?;

        // Momentum: pressure gradient from the *new* η (forward-backward),
        // wind stress, drag, then implicit rotation.
        let st = &mut self.state;
        let mut new_u = st.ubar.clone();
        let mut new_v = st.vbar.clone();
        for j in 0..nj {
            for i in 0..ni {
                let idx = st.at(i, j);
                if st.kmt[idx] == 0 {
                    continue;
                }
                let (e, w, n, s) = (idx + 1, idx - 1, idx + stride, idx - stride);
                let detadx = if st.kmt[e] > 0 && st.kmt[w] > 0 {
                    (st.eta[e] - st.eta[w]) / (2.0 * st.dx[j])
                } else if st.kmt[e] > 0 {
                    (st.eta[e] - st.eta[idx]) / st.dx[j]
                } else if st.kmt[w] > 0 {
                    (st.eta[idx] - st.eta[w]) / st.dx[j]
                } else {
                    0.0
                };
                let detady = if st.kmt[n] > 0 && st.kmt[s] > 0 {
                    (st.eta[n] - st.eta[s]) / (2.0 * st.dy)
                } else if st.kmt[n] > 0 {
                    (st.eta[n] - st.eta[idx]) / st.dy
                } else if st.kmt[s] > 0 {
                    (st.eta[idx] - st.eta[s]) / st.dy
                } else {
                    0.0
                };
                let h = st.depth[idx].max(1.0);
                let fi = j * ni + i;
                let du = dt
                    * (-G * detadx - self.config.r_drag * st.ubar[idx]
                        + forcing.taux[fi] / (RHO0 * h));
                let dv = dt
                    * (-G * detady - self.config.r_drag * st.vbar[idx]
                        + forcing.tauy[fi] / (RHO0 * h));
                let (u1, v1) = (st.ubar[idx] + du, st.vbar[idx] + dv);
                let a = dt * st.fcor[j];
                let denom = 1.0 + a * a;
                new_u[idx] = (u1 + a * v1) / denom;
                new_v[idx] = (v1 - a * u1) / denom;
            }
        }
        st.ubar = new_u;
        st.vbar = new_v;
        self.halo2d
            .exchange_many(rank, &mut [&mut self.state.ubar, &mut self.state.vbar])?;
        Ok(())
    }

    /// One full baroclinic + tracer step (with `n_barotropic` substeps).
    /// Panics on communication failure; fault-tolerant drivers use
    /// [`OcnModel::try_step`].
    pub fn step(&mut self, rank: &Rank, forcing: &OcnForcing) {
        self.try_step(rank, forcing).expect("ocn step comm failure")
    }

    /// One full step, surfacing halo-exchange failures (dropped messages
    /// under fault injection, deadlocks) as [`CommError`] so the coupled
    /// driver can roll back instead of aborting.
    pub fn try_step(&mut self, rank: &Rank, forcing: &OcnForcing) -> Result<(), CommError> {
        let _span = ap3esm_obs::span("ocn_step");
        let nbt = self.config.n_barotropic;
        let dt_btr = self.config.dt_baroclinic / nbt as f64;
        {
            let _btr = ap3esm_obs::span("barotropic");
            for _ in 0..nbt {
                self.barotropic_substep(rank, forcing, dt_btr)?;
            }
        }

        let _bcl = ap3esm_obs::span("baroclinic");
        let dt = self.config.dt_baroclinic;
        let nlev = self.state.nlev;
        let stride = self.state.stride;

        // --- Baroclinic pressure: p[k]/ρ0 = g·η + g·Σ (ρ'−ρ0)/ρ0·dz ---
        let slab = self.state.eta.len();
        let mut press = vec![vec![0.0; slab]; nlev];
        {
            let st = &self.state;
            for (idx, &eta) in st.eta.iter().enumerate() {
                let mut acc = G * eta;
                for (k, pk) in press.iter_mut().enumerate() {
                    let rho = density(st.t[k][idx], st.s[k][idx]);
                    acc += G * (rho - RHO0) / RHO0 * st.dz[k];
                    pk[idx] = acc;
                }
            }
        }

        // --- Momentum + tracer advection per level (old-field copies for
        //     neighbor reads keep the update order-independent). ---
        let u_old: Vec<Vec<f64>> = self.state.u.clone();
        let v_old: Vec<Vec<f64>> = self.state.v.clone();
        let t_old: Vec<Vec<f64>> = self.state.t.clone();
        let s_old: Vec<Vec<f64>> = self.state.s.clone();
        let r_drag = self.config.r_drag;
        self.for_active_columns(|st, _i, j, idx| {
            let kmax = st.kmt[idx] as usize;
            let (e, w, n, s_) = (idx + 1, idx - 1, idx + stride, idx - stride);
            for k in 0..kmax {
                let ocean = |nb: usize| (k as u16) < st.kmt[nb];
                // Pressure gradient (masked one-sided fallbacks).
                let dpdx = if ocean(e) && ocean(w) {
                    (press[k][e] - press[k][w]) / (2.0 * st.dx[j])
                } else if ocean(e) {
                    (press[k][e] - press[k][idx]) / st.dx[j]
                } else if ocean(w) {
                    (press[k][idx] - press[k][w]) / st.dx[j]
                } else {
                    0.0
                };
                let dpdy = if ocean(n) && ocean(s_) {
                    (press[k][n] - press[k][s_]) / (2.0 * st.dy)
                } else if ocean(n) {
                    (press[k][n] - press[k][idx]) / st.dy
                } else if ocean(s_) {
                    (press[k][idx] - press[k][s_]) / st.dy
                } else {
                    0.0
                };
                let du = dt * (-dpdx - r_drag * u_old[k][idx]);
                let dv = dt * (-dpdy - r_drag * v_old[k][idx]);
                let (u1, v1) = (u_old[k][idx] + du, v_old[k][idx] + dv);
                let a = dt * st.fcor[j];
                let denom = 1.0 + a * a;
                st.u[k][idx] = (u1 + a * v1) / denom;
                st.v[k][idx] = (v1 - a * u1) / denom;

                // Upwind advection of T, S by the old velocity.
                let adv = |field: &Vec<Vec<f64>>| -> f64 {
                    let uo = u_old[k][idx];
                    let vo = v_old[k][idx];
                    let fx = if uo >= 0.0 {
                        let upw = if ocean(w) { field[k][w] } else { field[k][idx] };
                        uo * (field[k][idx] - upw) / st.dx[j]
                    } else {
                        let upw = if ocean(e) { field[k][e] } else { field[k][idx] };
                        uo * (upw - field[k][idx]) / st.dx[j]
                    };
                    let fy = if vo >= 0.0 {
                        let upw = if ocean(s_) { field[k][s_] } else { field[k][idx] };
                        vo * (field[k][idx] - upw) / st.dy
                    } else {
                        let upw = if ocean(n) { field[k][n] } else { field[k][idx] };
                        vo * (upw - field[k][idx]) / st.dy
                    };
                    -(fx + fy)
                };
                st.t[k][idx] += dt * adv(&t_old);
                st.s[k][idx] += dt * adv(&s_old);
            }
        });

        // --- Vertical mixing (implicit) + surface forcing per column. ---
        let ni = self.state.ni;
        let mixing = self.mixing;
        self.for_active_columns(|st, i, j, idx| {
            let kmax = st.kmt[idx] as usize;
            if kmax == 0 {
                return;
            }
            let fi = j * ni + i;
            // Interface diffusivities from Ri.
            let mut kq = Vec::with_capacity(kmax.saturating_sub(1));
            for k in 0..kmax.saturating_sub(1) {
                let dzi = 0.5 * (st.dz[k] + st.dz[k + 1]);
                let n2 = crate::eos::brunt_vaisala_sq(
                    st.t[k][idx],
                    st.s[k][idx],
                    st.t[k + 1][idx],
                    st.s[k + 1][idx],
                    dzi,
                );
                let du = (st.u[k][idx] - st.u[k + 1][idx]) / dzi;
                let dv = (st.v[k][idx] - st.v[k + 1][idx]) / dzi;
                kq.push(mixing.diffusivity(n2, du * du + dv * dv));
            }
            let dz = &st.dz[..kmax];
            // Gather columns, diffuse, scatter.
            let mut col_t: Vec<f64> = (0..kmax).map(|k| st.t[k][idx]).collect();
            let mut col_s: Vec<f64> = (0..kmax).map(|k| st.s[k][idx]).collect();
            let mut col_u: Vec<f64> = (0..kmax).map(|k| st.u[k][idx]).collect();
            let mut col_v: Vec<f64> = (0..kmax).map(|k| st.v[k][idx]).collect();
            let heat_flux = forcing.qnet[fi] / (RHO0 * CP_SEAWATER); // K·m/s
            mixing.diffuse_implicit(&mut col_t, dz, &kq, dt, heat_flux);
            mixing.diffuse_implicit(&mut col_s, dz, &kq, dt, forcing.salt_flux[fi]);
            mixing.diffuse_implicit(&mut col_u, dz, &kq, dt, forcing.taux[fi] / RHO0);
            mixing.diffuse_implicit(&mut col_v, dz, &kq, dt, forcing.tauy[fi] / RHO0);
            for k in 0..kmax {
                st.t[k][idx] = col_t[k];
                st.s[k][idx] = col_s[k];
                st.u[k][idx] = col_u[k];
                st.v[k][idx] = col_v[k];
            }
        });

        // --- Refresh 3-D halos for the next step: one packed message per
        //     neighbor per level (u, v, T, S together). ---
        let st = &mut self.state;
        for k in 0..nlev {
            self.halo3d.exchange_many(
                rank,
                &mut [
                    &mut st.u[k][..],
                    &mut st.v[k][..],
                    &mut st.t[k][..],
                    &mut st.s[k][..],
                ],
            )?;
        }
        Ok(())
    }

    /// Volume anomaly ∫η dA over the local interior (conservation checks).
    pub fn local_volume_anomaly(&self) -> f64 {
        let st = &self.state;
        let mut v = 0.0;
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                if st.kmt[idx] > 0 {
                    v += st.eta[idx] * st.dx[j] * st.dy;
                }
            }
        }
        v
    }

    /// Fraction of 3-D points actually visited vs the dense box — the
    /// Fig. 5 resource-reduction number for this rank.
    pub fn exclusion_ratio(&self) -> f64 {
        let st = &self.state;
        let active: usize = self
            .active
            .iter()
            .map(|&(i, j)| st.kmt[st.at(i, j)] as usize)
            .sum();
        active as f64 / (st.ni * st.nj * st.nlev) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_comm::World;
    use ap3esm_grid::mask::MaskGenerator;

    fn grid(nlev: usize) -> TripolarGrid {
        TripolarGrid::new(36, 24, nlev, MaskGenerator::default())
    }

    fn run_steps(px: usize, py: usize, steps: usize, exclude: bool) -> Vec<Vec<f64>> {
        let g = grid(6);
        let mut config = OcnConfig::for_grid(36, 24, 6, px, py);
        config.exclude_land = exclude;
        let world = World::new(px * py);
        world.run(|rank| {
            let decomp = BlockDecomp2d::new(36, 24, px, py);
            let mut model = OcnModel::new(&g, config.clone(), rank.id());
            let forcing = OcnForcing::climatology(&g, &decomp, rank.id());
            for _ in 0..steps {
                model.step(rank, &forcing);
            }
            // Return the interior SST row-major for comparison.
            let st = &model.state;
            let mut out = Vec::new();
            for j in 0..st.nj {
                for i in 0..st.ni {
                    out.push(st.t[0][st.at(i, j)]);
                }
            }
            out
        })
    }

    #[test]
    fn model_runs_stably_with_forcing() {
        let g = grid(6);
        let config = OcnConfig::for_grid(36, 24, 6, 1, 1);
        let world = World::new(1);
        world.run(|rank| {
            let decomp = BlockDecomp2d::new(36, 24, 1, 1);
            let mut model = OcnModel::new(&g, config.clone(), 0);
            let forcing = OcnForcing::climatology(&g, &decomp, 0);
            for _ in 0..10 {
                model.step(rank, &forcing);
            }
            let st = &model.state;
            assert!(st.eta.iter().all(|v| v.is_finite()));
            assert!(st.t[0].iter().all(|v| v.is_finite() && *v > -5.0 && *v < 45.0));
            // Wind forcing must spin up currents.
            assert!(model.state.kinetic_energy() > 0.0);
            let max_speed = st
                .surface_speed()
                .into_iter()
                .fold(0.0f64, f64::max);
            assert!(max_speed > 1e-6 && max_speed < 5.0, "speed {max_speed}");
        });
    }

    #[test]
    fn volume_conserved_without_forcing() {
        let g = grid(4);
        let config = OcnConfig::for_grid(36, 24, 4, 1, 1);
        let world = World::new(1);
        world.run(|rank| {
            let mut model = OcnModel::new(&g, config.clone(), 0);
            // Seed an η anomaly, no forcing.
            let idx = model.state.at(10, 12);
            if model.state.kmt[idx] > 0 {
                model.state.eta[idx] = 0.5;
            }
            let forcing = OcnForcing::zeros(model.state.ni, model.state.nj);
            let v0 = model.local_volume_anomaly();
            for _ in 0..20 {
                model.step(rank, &forcing);
            }
            let v1 = model.local_volume_anomaly();
            assert!(
                (v1 - v0).abs() <= v0.abs() * 1e-9 + 1e-3,
                "volume drift {v0} -> {v1}"
            );
        });
    }

    #[test]
    fn exclusion_and_dense_paths_agree_bitwise() {
        let a = run_steps(1, 1, 5, true);
        let b = run_steps(1, 1, 5, false);
        assert_eq!(a[0].len(), b[0].len());
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert_eq!(x.to_bits(), y.to_bits(), "exclusion changed results");
        }
    }

    #[test]
    fn one_rank_and_four_ranks_agree() {
        let serial = run_steps(1, 1, 3, true);
        let parallel = run_steps(2, 2, 3, true);
        // Reassemble the 2×2 fields into the global layout.
        let decomp = BlockDecomp2d::new(36, 24, 2, 2);
        let mut global = vec![f64::NAN; 36 * 24];
        for (r, field) in parallel.iter().enumerate() {
            let b = decomp.block(r);
            for j in 0..b.nj() {
                for i in 0..b.ni() {
                    global[(b.j0 + j) * 36 + (b.i0 + i)] = field[j * b.ni() + i];
                }
            }
        }
        for (k, (x, y)) in serial[0].iter().zip(&global).enumerate() {
            assert!(
                (x - y).abs() < 1e-9,
                "cell {k}: serial {x} vs parallel {y}"
            );
        }
    }

    #[test]
    fn exclusion_ratio_matches_grid_activity() {
        let g = grid(6);
        let config = OcnConfig::for_grid(36, 24, 6, 1, 1);
        let model = OcnModel::new(&g, config, 0);
        let ratio = model.exclusion_ratio();
        assert!(
            (ratio - g.active_fraction()).abs() < 1e-12,
            "ratio {ratio} vs grid {}",
            g.active_fraction()
        );
        // The paper's ~30 % reduction regime: a substantial share skipped.
        assert!(ratio < 0.9);
    }

    #[test]
    fn tracers_stay_within_physical_bounds() {
        let g = grid(6);
        let config = OcnConfig::for_grid(36, 24, 6, 1, 1);
        let world = World::new(1);
        world.run(|rank| {
            let decomp = BlockDecomp2d::new(36, 24, 1, 1);
            let mut model = OcnModel::new(&g, config.clone(), 0);
            let forcing = OcnForcing::climatology(&g, &decomp, 0);
            for _ in 0..15 {
                model.step(rank, &forcing);
            }
            for k in 0..model.state.nlev {
                for &(i, j) in &model.state.active_columns() {
                    let idx = model.state.at(i, j);
                    if model.state.is_ocean(i, j, k) {
                        let t = model.state.t[k][idx];
                        let s = model.state.s[k][idx];
                        assert!((-3.0..45.0).contains(&t), "T out of bounds: {t}");
                        assert!((30.0..40.0).contains(&s), "S out of bounds: {s}");
                    }
                }
            }
        });
    }
}
