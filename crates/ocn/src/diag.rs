//! Global ocean diagnostics (cross-rank reductions).

use ap3esm_comm::collectives::{allreduce, allreduce_sum};
use ap3esm_comm::{CommError, Rank};

use crate::model::OcnModel;

/// Global kinetic energy (J-like; ∫½|u|² dV × ρ₀ omitted).
pub fn global_kinetic_energy(model: &OcnModel, rank: &Rank) -> Result<f64, CommError> {
    allreduce_sum(rank, 300, model.state.kinetic_energy())
}

/// Global mean sea-surface temperature (°C) over ocean points.
pub fn global_mean_sst(model: &OcnModel, rank: &Rank) -> Result<f64, CommError> {
    let (sum, count) = model.state.sst_sum_count();
    let totals = allreduce(rank, 301, vec![sum, count as f64], |a, b| a + b)?;
    Ok(if totals[1] > 0.0 {
        totals[0] / totals[1]
    } else {
        0.0
    })
}

/// Global max surface current speed (m/s).
pub fn global_max_speed(model: &OcnModel, rank: &Rank) -> Result<f64, CommError> {
    let local = model
        .state
        .surface_speed()
        .into_iter()
        .fold(0.0f64, f64::max);
    ap3esm_comm::collectives::allreduce_max(rank, 302, local)
}

/// Sea-surface kinetic-energy snapshot statistics for Fig. 1: mean and the
/// high-speed tail fraction (share of ocean cells above `threshold` m/s).
pub fn surface_ke_stats(
    model: &OcnModel,
    rank: &Rank,
    threshold: f64,
) -> Result<(f64, f64), CommError> {
    let speeds = model.state.surface_speed();
    let st = &model.state;
    let mut sum = 0.0;
    let mut count = 0.0;
    let mut above = 0.0;
    for j in 0..st.nj {
        for i in 0..st.ni {
            if st.kmt[st.at(i, j)] > 0 {
                let sp = speeds[j * st.ni + i];
                sum += 0.5 * sp * sp;
                count += 1.0;
                if sp > threshold {
                    above += 1.0;
                }
            }
        }
    }
    let totals = allreduce(rank, 303, vec![sum, count, above], |a, b| a + b)?;
    Ok(if totals[1] > 0.0 {
        (totals[0] / totals[1], totals[2] / totals[1])
    } else {
        (0.0, 0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OcnConfig, OcnForcing, OcnModel};
    use ap3esm_comm::World;
    use ap3esm_grid::decomp::BlockDecomp2d;
    use ap3esm_grid::mask::MaskGenerator;
    use ap3esm_grid::tripolar::TripolarGrid;

    #[test]
    fn diagnostics_agree_across_rank_counts() {
        let grid = TripolarGrid::new(36, 24, 4, MaskGenerator::default());
        let run = |px: usize, py: usize| -> (f64, f64) {
            let world = World::new(px * py);
            let out = world.run(|rank| {
                let config = OcnConfig::for_grid(36, 24, 4, px, py);
                let decomp = BlockDecomp2d::new(36, 24, px, py);
                let mut model = OcnModel::new(&grid, config, rank.id());
                let forcing = OcnForcing::climatology(&grid, &decomp, rank.id());
                for _ in 0..3 {
                    model.step(rank, &forcing);
                }
                (
                    global_kinetic_energy(&model, rank).unwrap(),
                    global_mean_sst(&model, rank).unwrap(),
                )
            });
            out[0]
        };
        let (ke1, sst1) = run(1, 1);
        let (ke4, sst4) = run(2, 2);
        assert!((ke1 - ke4).abs() <= ke1.abs() * 1e-9, "KE {ke1} vs {ke4}");
        assert!((sst1 - sst4).abs() < 1e-9, "SST {sst1} vs {sst4}");
        assert!(ke1 > 0.0);
    }

    #[test]
    fn ke_stats_fraction_in_range() {
        let grid = TripolarGrid::new(36, 24, 4, MaskGenerator::default());
        let world = World::new(1);
        world.run(|rank| {
            let config = OcnConfig::for_grid(36, 24, 4, 1, 1);
            let decomp = BlockDecomp2d::new(36, 24, 1, 1);
            let mut model = OcnModel::new(&grid, config, 0);
            let forcing = OcnForcing::climatology(&grid, &decomp, 0);
            for _ in 0..5 {
                model.step(rank, &forcing);
            }
            let (mean_ke, frac) = surface_ke_stats(&model, rank, 1e-4).unwrap();
            assert!(mean_ke >= 0.0);
            assert!((0.0..=1.0).contains(&frac));
        });
    }
}
