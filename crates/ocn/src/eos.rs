//! Linear equation of state (the leading-order term of the UNESCO EOS that
//! LICOM evaluates; sufficient for the density gradients our dynamics use).

use crate::RHO0;

/// Thermal expansion coefficient (1/K).
pub const ALPHA_T: f64 = 2.0e-4;
/// Haline contraction coefficient (1/psu).
pub const BETA_S: f64 = 7.6e-4;
/// Reference temperature (°C) and salinity (psu).
pub const T_REF: f64 = 10.0;
pub const S_REF: f64 = 35.0;

/// In-situ density (kg/m³) from temperature (°C) and salinity (psu).
pub fn density(t: f64, s: f64) -> f64 {
    RHO0 * (1.0 - ALPHA_T * (t - T_REF) + BETA_S * (s - S_REF))
}

/// Buoyancy frequency squared N² (s⁻²) between two stacked cells
/// (upper first), separated by `dz` (m).
pub fn brunt_vaisala_sq(t_up: f64, s_up: f64, t_dn: f64, s_dn: f64, dz: f64) -> f64 {
    let rho_up = density(t_up, s_up);
    let rho_dn = density(t_dn, s_dn);
    -crate::G / RHO0 * (rho_up - rho_dn) / dz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_state_density() {
        assert!((density(T_REF, S_REF) - RHO0).abs() < 1e-9);
    }

    #[test]
    fn warm_water_is_lighter_salty_is_denser() {
        assert!(density(20.0, 35.0) < density(10.0, 35.0));
        assert!(density(10.0, 36.0) > density(10.0, 35.0));
    }

    #[test]
    fn stable_stratification_positive_n2() {
        // Warm over cold = stable.
        let n2 = brunt_vaisala_sq(15.0, 35.0, 5.0, 35.0, 100.0);
        assert!(n2 > 0.0);
        // Cold over warm = unstable.
        let n2 = brunt_vaisala_sq(5.0, 35.0, 15.0, 35.0, 100.0);
        assert!(n2 < 0.0);
    }

    #[test]
    fn n2_magnitude_reasonable() {
        // Typical thermocline: ΔT ≈ 10 K over 200 m → N ≈ 1e-2 s⁻¹.
        let n2 = brunt_vaisala_sq(20.0, 35.0, 10.0, 35.0, 200.0);
        let n = n2.sqrt();
        assert!(n > 1e-3 && n < 2e-2, "N = {n}");
    }
}
