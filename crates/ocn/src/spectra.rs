//! Kinetic-energy analysis diagnostics for the Fig. 1c-class comparisons.
//!
//! Km-scale ocean modelling is motivated by mesoscale/submesoscale eddies
//! "containing the majority of the oceanic kinetic energy" (§3). These
//! diagnostics quantify that: an eddy/mean (Reynolds) decomposition of the
//! surface flow and a zonal-wavenumber KE spectrum per latitude band —
//! the standard way resolved eddy content is compared across resolutions.

use std::f64::consts::PI;

use crate::state::OcnState;

/// Eddy/mean decomposition of surface kinetic energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EddyMeanKe {
    /// KE of the zonal-mean flow (m²/s²).
    pub mean_ke: f64,
    /// KE of deviations from the zonal mean ("eddy" KE, m²/s²).
    pub eddy_ke: f64,
}

impl EddyMeanKe {
    /// Fraction of total KE carried by eddies (0..1).
    pub fn eddy_fraction(&self) -> f64 {
        let total = self.mean_ke + self.eddy_ke;
        if total <= 0.0 {
            0.0
        } else {
            self.eddy_ke / total
        }
    }
}

/// Reynolds decomposition of the surface flow: per row, split (u, v) into
/// the zonal mean and the deviation, and area-average both KE parts over
/// ocean points.
pub fn eddy_mean_decomposition(state: &OcnState) -> EddyMeanKe {
    let (ni, nj) = (state.ni, state.nj);
    let mut mean_ke = 0.0;
    let mut eddy_ke = 0.0;
    let mut total_w = 0.0;
    for j in 0..nj {
        // Zonal means over ocean points of this row.
        let mut su = 0.0;
        let mut sv = 0.0;
        let mut count = 0.0;
        for i in 0..ni {
            let idx = state.at(i, j);
            if state.kmt[idx] > 0 {
                su += state.u[0][idx] + state.ubar[idx];
                sv += state.v[0][idx] + state.vbar[idx];
                count += 1.0;
            }
        }
        if count == 0.0 {
            continue;
        }
        let (ub, vb) = (su / count, sv / count);
        let w = state.dx[j] * state.dy;
        for i in 0..ni {
            let idx = state.at(i, j);
            if state.kmt[idx] > 0 {
                let u = state.u[0][idx] + state.ubar[idx];
                let v = state.v[0][idx] + state.vbar[idx];
                mean_ke += 0.5 * (ub * ub + vb * vb) * w;
                eddy_ke += 0.5 * ((u - ub) * (u - ub) + (v - vb) * (v - vb)) * w;
                total_w += w;
            }
        }
    }
    if total_w == 0.0 {
        EddyMeanKe {
            mean_ke: 0.0,
            eddy_ke: 0.0,
        }
    } else {
        EddyMeanKe {
            mean_ke: mean_ke / total_w,
            eddy_ke: eddy_ke / total_w,
        }
    }
}

/// Zonal-wavenumber power spectrum of a periodic row (plain DFT; rows are
/// a few thousand points at most on the grids we instantiate). Returns
/// power at wavenumbers `0..=n/2`.
pub fn zonal_power_spectrum(row: &[f64]) -> Vec<f64> {
    let n = row.len();
    assert!(n >= 2, "spectrum needs at least two points");
    let kmax = n / 2;
    let mut power = Vec::with_capacity(kmax + 1);
    for k in 0..=kmax {
        let mut re = 0.0;
        let mut im = 0.0;
        for (i, &v) in row.iter().enumerate() {
            let phase = -2.0 * PI * (k * i) as f64 / n as f64;
            re += v * phase.cos();
            im += v * phase.sin();
        }
        // One-sided normalisation: interior wavenumbers count twice.
        let factor = if k == 0 || (n.is_multiple_of(2) && k == kmax) {
            1.0
        } else {
            2.0
        };
        power.push(factor * (re * re + im * im) / (n * n) as f64);
    }
    power
}

/// Surface-KE zonal spectrum averaged over the rows in `[j0, j1)` (land
/// filled with the row's ocean mean so coastlines don't ring).
pub fn surface_ke_spectrum(state: &OcnState, j0: usize, j1: usize) -> Vec<f64> {
    assert!(j0 < j1 && j1 <= state.nj);
    let ni = state.ni;
    let mut acc: Option<Vec<f64>> = None;
    let mut rows = 0.0;
    for j in j0..j1 {
        let mut row = Vec::with_capacity(ni);
        let mut mean = 0.0;
        let mut count = 0.0;
        for i in 0..ni {
            let idx = state.at(i, j);
            if state.kmt[idx] > 0 {
                let u = state.u[0][idx] + state.ubar[idx];
                let v = state.v[0][idx] + state.vbar[idx];
                mean += 0.5 * (u * u + v * v);
                count += 1.0;
            }
        }
        if count < 2.0 {
            continue;
        }
        mean /= count;
        for i in 0..ni {
            let idx = state.at(i, j);
            if state.kmt[idx] > 0 {
                let u = state.u[0][idx] + state.ubar[idx];
                let v = state.v[0][idx] + state.vbar[idx];
                row.push(0.5 * (u * u + v * v));
            } else {
                row.push(mean);
            }
        }
        let p = zonal_power_spectrum(&row);
        match &mut acc {
            None => acc = Some(p),
            Some(a) => {
                for (x, y) in a.iter_mut().zip(&p) {
                    *x += y;
                }
            }
        }
        rows += 1.0;
    }
    let mut out = acc.unwrap_or_default();
    if rows > 0.0 {
        for v in &mut out {
            *v /= rows;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::decomp::BlockDecomp2d;
    use ap3esm_grid::mask::MaskGenerator;
    use ap3esm_grid::tripolar::TripolarGrid;

    fn state() -> OcnState {
        let grid = TripolarGrid::new(48, 30, 4, MaskGenerator::default());
        let decomp = BlockDecomp2d::new(48, 30, 1, 1);
        OcnState::new(&grid, &decomp, 0)
    }

    #[test]
    fn pure_zonal_jet_has_no_eddy_ke() {
        let mut st = state();
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                st.u[0][idx] = 0.5 + 0.01 * j as f64; // row-uniform
            }
        }
        let d = eddy_mean_decomposition(&st);
        assert!(d.mean_ke > 0.0);
        assert!(d.eddy_ke < 1e-24, "eddy KE {}", d.eddy_ke);
        assert!(d.eddy_fraction() < 1e-12);
    }

    #[test]
    fn wavy_flow_is_eddy_dominated() {
        let mut st = state();
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                st.u[0][idx] = (2.0 * PI * 5.0 * i as f64 / st.ni as f64).sin();
            }
        }
        let d = eddy_mean_decomposition(&st);
        // A pure wave has (almost) no zonal-mean flow. Land gaps alias a
        // little of the wave into the row mean, so allow a small residual.
        assert!(
            d.eddy_fraction() > 0.9,
            "eddy fraction {}",
            d.eddy_fraction()
        );
    }

    #[test]
    fn spectrum_peaks_at_forcing_wavenumber() {
        let n = 64;
        let k0 = 6;
        let row: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * (k0 * i) as f64 / n as f64).cos())
            .collect();
        let p = zonal_power_spectrum(&row);
        let peak = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        // Parseval: total power equals mean square.
        let total: f64 = p.iter().sum();
        let ms: f64 = row.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((total - ms).abs() < 1e-10, "Parseval {total} vs {ms}");
    }

    #[test]
    fn constant_row_is_all_wavenumber_zero() {
        let p = zonal_power_spectrum(&[3.0; 32]);
        assert!((p[0] - 9.0).abs() < 1e-10);
        assert!(p[1..].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn ke_spectrum_runs_on_model_state() {
        let mut st = state();
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                st.u[0][idx] = (2.0 * PI * 3.0 * i as f64 / st.ni as f64).sin() * 0.1;
            }
        }
        let spec = surface_ke_spectrum(&st, 5, 20);
        assert_eq!(spec.len(), st.ni / 2 + 1);
        assert!(spec.iter().all(|v| v.is_finite() && *v >= 0.0));
        // KE of a k-wave concentrates at 2k and 0 (sin² = ½ − ½cos(2kx)).
        let peak_nonzero = spec[1..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert_eq!(peak_nonzero, 6, "spectrum {spec:?}");
    }
}
