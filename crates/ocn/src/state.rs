//! Ocean state: one rank's block of the tripolar grid, with one-cell halos.

use ap3esm_grid::decomp::{Block, BlockDecomp2d};
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_grid::vertical::ocn_z_thickness;
use ap3esm_physics::constants::coriolis;

/// Per-rank prognostic state. 2-D slabs are `(nj+2) × (ni+2)` row-major
/// with a one-cell ghost rim; interior cell `(i, j)` lives at
/// `(j+1)·stride + (i+1)`. 3-D fields are one slab per level.
#[derive(Debug, Clone)]
pub struct OcnState {
    pub block: Block,
    pub ni: usize,
    pub nj: usize,
    pub nlev: usize,
    pub stride: usize,
    /// Free surface elevation (m).
    pub eta: Vec<f64>,
    /// Barotropic velocities (m/s).
    pub ubar: Vec<f64>,
    pub vbar: Vec<f64>,
    /// Baroclinic velocity, temperature (°C), salinity (psu) per level.
    pub u: Vec<Vec<f64>>,
    pub v: Vec<Vec<f64>>,
    pub t: Vec<Vec<f64>>,
    pub s: Vec<Vec<f64>>,
    /// Active levels per local column (with ghosts).
    pub kmt: Vec<u16>,
    /// Column depth (m, with ghosts).
    pub depth: Vec<f64>,
    /// Zonal spacing per interior row (m).
    pub dx: Vec<f64>,
    /// Zonal spacing including ghost rows (index j+1 ↔ interior row j);
    /// rank-independent, so shared face lengths match across rank cuts.
    pub dx_ext: Vec<f64>,
    /// Meridional spacing (m).
    pub dy: f64,
    /// Coriolis parameter per interior row.
    pub fcor: Vec<f64>,
    /// Level thicknesses (m).
    pub dz: Vec<f64>,
}

impl OcnState {
    /// Build the local state for `rank_id` of `decomp` over `grid`, with an
    /// Earth-like initial stratification:
    /// `T(φ, z) = 2 + 26·cos²φ·exp(−z/1000)` °C, `S = 35 − 0.5·cosφ·e^{−z/500}`.
    pub fn new(grid: &TripolarGrid, decomp: &BlockDecomp2d, rank_id: usize) -> Self {
        let block = decomp.block(rank_id);
        let (ni, nj) = (block.ni(), block.nj());
        let stride = ni + 2;
        let slab = (nj + 2) * stride;
        let dz = ocn_z_thickness(grid.nlev);

        let mut kmt = vec![0u16; slab];
        let mut depth = vec![0.0; slab];
        // Fill interior + ghosts from the global grid (zonally periodic,
        // meridionally clamped — the closed tripolar seam approximation).
        for jj in 0..nj + 2 {
            let gj = (block.j0 + jj).saturating_sub(1).min(grid.nlat - 1);
            // Rows beyond the global domain are solid walls (the closed
            // tripolar seam / Antarctic coast approximation).
            let outside = (jj == 0 && block.j0 == 0) || (jj == nj + 1 && block.j1 == grid.nlat);
            for ii in 0..ni + 2 {
                let gi = (block.i0 + grid.nlon + ii - 1) % grid.nlon;
                let k = if outside { 0 } else { grid.kmt[grid.idx(gi, gj)] };
                kmt[jj * stride + ii] = k;
                depth[jj * stride + ii] = dz.iter().take(k as usize).sum();
            }
        }

        let dx_of = |gj: usize| {
            let phi = grid.lat[gj.min(grid.nlat - 1)];
            ap3esm_grid::EARTH_RADIUS * phi.cos().max(0.02) * 2.0 * std::f64::consts::PI
                / grid.nlon as f64
        };
        let dx: Vec<f64> = (0..nj).map(|j| dx_of(block.j0 + j)).collect();
        let dx_ext: Vec<f64> = (0..nj + 2)
            .map(|jj| dx_of((block.j0 + jj).saturating_sub(1)))
            .collect();
        let dy = ap3esm_grid::EARTH_RADIUS
            * (grid.lat[grid.nlat - 1] - grid.lat[0])
            / (grid.nlat - 1).max(1) as f64;
        let fcor: Vec<f64> = (0..nj).map(|j| coriolis(grid.lat[block.j0 + j])).collect();

        let mut t = Vec::with_capacity(grid.nlev);
        let mut s = Vec::with_capacity(grid.nlev);
        let mut depth_mid = 0.0;
        for &dzk in dz.iter().take(grid.nlev) {
            depth_mid += 0.5 * dzk;
            let mut tk = vec![0.0; slab];
            let mut sk = vec![35.0; slab];
            for jj in 0..nj + 2 {
                let gj = (block.j0 + jj).saturating_sub(1).min(grid.nlat - 1);
                let phi = grid.lat[gj];
                let t_surf = 2.0 + 26.0 * phi.cos().powi(2);
                let tv = 2.0 + (t_surf - 2.0) * (-depth_mid / 1000.0).exp();
                let sv = 35.0 - 0.5 * phi.cos() * (-depth_mid / 500.0).exp();
                for ii in 0..ni + 2 {
                    tk[jj * stride + ii] = tv;
                    sk[jj * stride + ii] = sv;
                }
            }
            t.push(tk);
            s.push(sk);
            depth_mid += 0.5 * dzk;
        }

        OcnState {
            block,
            ni,
            nj,
            nlev: grid.nlev,
            stride,
            eta: vec![0.0; slab],
            ubar: vec![0.0; slab],
            vbar: vec![0.0; slab],
            u: vec![vec![0.0; slab]; grid.nlev],
            v: vec![vec![0.0; slab]; grid.nlev],
            t,
            s,
            kmt,
            depth,
            dx,
            dx_ext,
            dy,
            fcor,
            dz,
        }
    }

    /// Local index of interior cell `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.ni && j < self.nj);
        (j + 1) * self.stride + (i + 1)
    }

    /// Is local interior cell (i, j) ocean at level k?
    #[inline]
    pub fn is_ocean(&self, i: usize, j: usize, k: usize) -> bool {
        (k as u16) < self.kmt[self.at(i, j)]
    }

    /// Interior active-column list `(i, j)` (the §5.2.2 packed loop set).
    pub fn active_columns(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for j in 0..self.nj {
            for i in 0..self.ni {
                if self.kmt[self.at(i, j)] > 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Local kinetic energy ∫ ½(u²+v²) dV over interior ocean points.
    pub fn kinetic_energy(&self) -> f64 {
        let mut ke = 0.0;
        for j in 0..self.nj {
            for i in 0..self.ni {
                let idx = self.at(i, j);
                let kmax = self.kmt[idx] as usize;
                for k in 0..kmax {
                    let (u, v) = (self.u[k][idx], self.v[k][idx]);
                    ke += 0.5 * (u * u + v * v) * self.dx[j] * self.dy * self.dz[k];
                }
            }
        }
        ke
    }

    /// Local mean SST over ocean points (unweighted; callers reduce).
    pub fn sst_sum_count(&self) -> (f64, usize) {
        let mut sum = 0.0;
        let mut count = 0;
        for j in 0..self.nj {
            for i in 0..self.ni {
                let idx = self.at(i, j);
                if self.kmt[idx] > 0 {
                    sum += self.t[0][idx];
                    count += 1;
                }
            }
        }
        (sum, count)
    }

    /// Surface current speed (m/s) per interior cell, row-major `nj × ni`
    /// (land = 0) — the Fig. 1c field.
    pub fn surface_speed(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.ni * self.nj];
        for j in 0..self.nj {
            for i in 0..self.ni {
                let idx = self.at(i, j);
                if self.kmt[idx] > 0 {
                    let u = self.u[0][idx] + self.ubar[idx];
                    let v = self.v[0][idx] + self.vbar[idx];
                    out[j * self.ni + i] = (u * u + v * v).sqrt();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::mask::MaskGenerator;

    fn small() -> (TripolarGrid, BlockDecomp2d) {
        let grid = TripolarGrid::new(36, 24, 8, MaskGenerator::default());
        let decomp = BlockDecomp2d::new(36, 24, 1, 1);
        (grid, decomp)
    }

    #[test]
    fn initial_state_is_stratified_and_at_rest() {
        let (grid, decomp) = small();
        let st = OcnState::new(&grid, &decomp, 0);
        assert_eq!(st.ni, 36);
        assert_eq!(st.nj, 24);
        assert_eq!(st.kinetic_energy(), 0.0);
        // Tropics warmer than poles at the surface.
        let (sum, count) = st.sst_sum_count();
        let mean = sum / count as f64;
        assert!(mean > 5.0 && mean < 28.0, "mean SST {mean}");
        // Deep water colder than surface everywhere ocean-deep enough.
        for (i, j) in st.active_columns() {
            let idx = st.at(i, j);
            let kmax = st.kmt[idx] as usize;
            if kmax >= 4 {
                assert!(st.t[kmax - 1][idx] < st.t[0][idx] + 1e-9);
            }
        }
    }

    #[test]
    fn active_columns_match_kmt() {
        let (grid, decomp) = small();
        let st = OcnState::new(&grid, &decomp, 0);
        let active = st.active_columns();
        let expect = (0..st.nj)
            .flat_map(|j| (0..st.ni).map(move |i| (i, j)))
            .filter(|&(i, j)| st.kmt[st.at(i, j)] > 0)
            .count();
        assert_eq!(active.len(), expect);
        assert!(!active.is_empty());
        assert!(active.len() < st.ni * st.nj, "some land must exist");
    }

    #[test]
    fn metrics_shrink_toward_poles() {
        let (grid, decomp) = small();
        let st = OcnState::new(&grid, &decomp, 0);
        // dx near the first (southern) row < dx in the tropics.
        let tropics_j = st.nj / 2;
        assert!(st.dx[0] < st.dx[tropics_j]);
        assert!(st.dy > 0.0);
        // Coriolis changes sign across the equator.
        assert!(st.fcor[0] < 0.0);
        assert!(st.fcor[st.nj - 1] > 0.0);
    }

    #[test]
    fn blocks_partition_matches_global_kmt() {
        let grid = TripolarGrid::new(36, 24, 6, MaskGenerator::default());
        let decomp = BlockDecomp2d::new(36, 24, 2, 2);
        for r in 0..4 {
            let st = OcnState::new(&grid, &decomp, r);
            for j in 0..st.nj {
                for i in 0..st.ni {
                    let gi = st.block.i0 + i;
                    let gj = st.block.j0 + j;
                    assert_eq!(st.kmt[st.at(i, j)], grid.kmt[grid.idx(gi, gj)]);
                }
            }
        }
    }
}
