//! # AP3ESM ocean component (`ap3esm-ocn`)
//!
//! The LICOM/LICOMK++ analogue: a free-surface primitive-equation ocean on
//! the structured tripolar grid (`ap3esm-grid::tripolar`), with
//!
//! * LICOM's split time stepping — barotropic (2 s at 1 km), baroclinic
//!   (20 s) and tracer (20 s) rates (Table 1), here with the same 1:10
//!   ratio structure at CFL-scaled absolute steps,
//! * a Canuto-style Richardson-number vertical mixing scheme solved
//!   implicitly (tridiagonal), the scheme the paper first applied 3-D point
//!   removal to,
//! * the §5.2.2 **3-D non-ocean point exclusion** path: kernels iterate a
//!   packed active-column list instead of the dense (i, j) box, with
//!   bitwise-identical results,
//! * performance-portable kernels dispatched through `ap3esm-pp` execution
//!   spaces (the Kokkos role in LICOMK++),
//! * MPI-style domain decomposition over `ap3esm-comm` ranks with halo
//!   exchange (one-cell rims, zonally periodic).
//!
//! Simplifications vs LICOM (documented in DESIGN.md): A-grid collocation,
//! linear equation of state, closed tripolar seam, and upwind tracer
//! advection — the communication pattern, masking machinery, and time-split
//! structure (what the paper's optimisations act on) are preserved.

pub mod diag;
pub mod dynamics;
pub mod eos;
pub mod mixing;
pub mod model;
pub mod spectra;
pub mod state;

pub use model::{OcnConfig, OcnModel};
pub use state::OcnState;

/// Gravitational acceleration (m/s²), ocean-side.
pub const G: f64 = 9.80665;
/// Reference density (kg/m³).
pub const RHO0: f64 = 1025.0;
