//! Multi-dimensional array views with explicit memory layout.
//!
//! The Kokkos `View` analogue. AP3ESM's ocean kernels are written against
//! (k, j, i) panels whose fastest-varying dimension must match the backend:
//! `LayoutRight` (C order, i fastest) suits CPUs/CPEs, `LayoutLeft`
//! (Fortran order) matches the legacy LICOM arrays the paper refactors.

/// Memory layout of a 2-D/3-D view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Row-major / C order: last index fastest.
    Right,
    /// Column-major / Fortran order: first index fastest.
    Left,
}

/// Owned 2-D array of `T` with a runtime-selected layout.
#[derive(Debug, Clone, PartialEq)]
pub struct View<T> {
    data: Vec<T>,
    n0: usize,
    n1: usize,
    layout: Layout,
}

impl<T: Clone + Default> View<T> {
    /// Zero-initialised (n0 × n1) view with the given layout.
    pub fn new(n0: usize, n1: usize, layout: Layout) -> Self {
        View {
            data: vec![T::default(); n0 * n1],
            n0,
            n1,
            layout,
        }
    }
}

impl<T> View<T> {
    /// Construct from existing data (length must equal n0*n1).
    pub fn from_vec(data: Vec<T>, n0: usize, n1: usize, layout: Layout) -> Self {
        assert_eq!(data.len(), n0 * n1, "View::from_vec size mismatch");
        View {
            data,
            n0,
            n1,
            layout,
        }
    }

    #[inline]
    fn offset(&self, i0: usize, i1: usize) -> usize {
        debug_assert!(i0 < self.n0 && i1 < self.n1);
        match self.layout {
            Layout::Right => i0 * self.n1 + i1,
            Layout::Left => i1 * self.n0 + i0,
        }
    }

    #[inline]
    pub fn get(&self, i0: usize, i1: usize) -> &T {
        &self.data[self.offset(i0, i1)]
    }

    #[inline]
    pub fn get_mut(&mut self, i0: usize, i1: usize) -> &mut T {
        let o = self.offset(i0, i1);
        &mut self.data[o]
    }

    #[inline]
    pub fn set(&mut self, i0: usize, i1: usize, v: T) {
        let o = self.offset(i0, i1);
        self.data[o] = v;
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.n0, self.n1)
    }

    pub fn layout(&self) -> Layout {
        self.layout
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat access in storage order (for kernels that don't care about shape).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Clone> View<T> {
    /// Deep-copy into the opposite layout (a Kokkos `deep_copy` with
    /// remapping); used when a kernel prefers the other stride order.
    pub fn relayout(&self, layout: Layout) -> View<T> {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.data.len());
        match layout {
            Layout::Right => {
                for i0 in 0..self.n0 {
                    for i1 in 0..self.n1 {
                        out.push(self.get(i0, i1).clone());
                    }
                }
            }
            Layout::Left => {
                for i1 in 0..self.n1 {
                    for i0 in 0..self.n0 {
                        out.push(self.get(i0, i1).clone());
                    }
                }
            }
        }
        View {
            data: out,
            n0: self.n0,
            n1: self.n1,
            layout,
        }
    }
}

/// Owned 3-D array of `T` (n0 × n1 × n2) with a runtime-selected layout.
#[derive(Debug, Clone, PartialEq)]
pub struct View3<T> {
    data: Vec<T>,
    n0: usize,
    n1: usize,
    n2: usize,
    layout: Layout,
}

impl<T: Clone + Default> View3<T> {
    pub fn new(n0: usize, n1: usize, n2: usize, layout: Layout) -> Self {
        View3 {
            data: vec![T::default(); n0 * n1 * n2],
            n0,
            n1,
            n2,
            layout,
        }
    }
}

impl<T> View3<T> {
    pub fn from_vec(data: Vec<T>, n0: usize, n1: usize, n2: usize, layout: Layout) -> Self {
        assert_eq!(data.len(), n0 * n1 * n2, "View3::from_vec size mismatch");
        View3 {
            data,
            n0,
            n1,
            n2,
            layout,
        }
    }

    #[inline]
    fn offset(&self, i0: usize, i1: usize, i2: usize) -> usize {
        debug_assert!(i0 < self.n0 && i1 < self.n1 && i2 < self.n2);
        match self.layout {
            Layout::Right => (i0 * self.n1 + i1) * self.n2 + i2,
            Layout::Left => (i2 * self.n1 + i1) * self.n0 + i0,
        }
    }

    #[inline]
    pub fn get(&self, i0: usize, i1: usize, i2: usize) -> &T {
        &self.data[self.offset(i0, i1, i2)]
    }

    #[inline]
    pub fn get_mut(&mut self, i0: usize, i1: usize, i2: usize) -> &mut T {
        let o = self.offset(i0, i1, i2);
        &mut self.data[o]
    }

    #[inline]
    pub fn set(&mut self, i0: usize, i1: usize, i2: usize, v: T) {
        let o = self.offset(i0, i1, i2);
        self.data[o] = v;
    }

    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n0, self.n1, self.n2)
    }

    pub fn layout(&self) -> Layout {
        self.layout
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view2_roundtrip_both_layouts() {
        for layout in [Layout::Right, Layout::Left] {
            let mut v = View::<f64>::new(3, 5, layout);
            for i in 0..3 {
                for j in 0..5 {
                    v.set(i, j, (i * 10 + j) as f64);
                }
            }
            for i in 0..3 {
                for j in 0..5 {
                    assert_eq!(*v.get(i, j), (i * 10 + j) as f64);
                }
            }
        }
    }

    #[test]
    fn view2_storage_order() {
        let mut right = View::<u32>::new(2, 3, Layout::Right);
        let mut left = View::<u32>::new(2, 3, Layout::Left);
        for i in 0..2 {
            for j in 0..3 {
                right.set(i, j, (i * 3 + j) as u32);
                left.set(i, j, (i * 3 + j) as u32);
            }
        }
        assert_eq!(right.as_slice(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(left.as_slice(), &[0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn relayout_preserves_logical_content() {
        let mut v = View::<i32>::new(4, 7, Layout::Right);
        for i in 0..4 {
            for j in 0..7 {
                v.set(i, j, (100 * i + j) as i32);
            }
        }
        let w = v.relayout(Layout::Left);
        for i in 0..4 {
            for j in 0..7 {
                assert_eq!(v.get(i, j), w.get(i, j));
            }
        }
        assert_ne!(v.as_slice(), w.as_slice()); // storage differs
    }

    #[test]
    fn view3_roundtrip() {
        for layout in [Layout::Right, Layout::Left] {
            let mut v = View3::<i64>::new(2, 3, 4, layout);
            let mut c = 0;
            for k in 0..2 {
                for j in 0..3 {
                    for i in 0..4 {
                        v.set(k, j, i, c);
                        c += 1;
                    }
                }
            }
            let mut c = 0;
            for k in 0..2 {
                for j in 0..3 {
                    for i in 0..4 {
                        assert_eq!(*v.get(k, j, i), c);
                        c += 1;
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_rejects_wrong_size() {
        let _ = View::from_vec(vec![1, 2, 3], 2, 2, Layout::Right);
    }
}
