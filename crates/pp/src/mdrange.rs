//! Tiled multi-dimensional iteration (the Kokkos `MDRangePolicy` analogue).
//!
//! The paper notes that "Kokkos offers finer-grained tile profiling for
//! multi-dimensional parallel iterations, enhancing algorithmic flexibility"
//! (§5.3). Here tiles are the unit of scheduling *and* of profiling: each
//! tile execution can be timed through a [`crate::TileProfiler`].

use crate::exec::ExecSpace;
use crate::profile::TileProfiler;

/// A 2-D or 3-D iteration space split into rectangular tiles.
#[derive(Debug, Clone)]
pub struct MDRangePolicy {
    /// Extents of each dimension (2 or 3 entries).
    pub extents: Vec<usize>,
    /// Tile shape (same rank as `extents`).
    pub tile: Vec<usize>,
}

impl MDRangePolicy {
    /// 2-D policy over `(n0, n1)` with tile `(t0, t1)`.
    pub fn new_2d(n0: usize, n1: usize, t0: usize, t1: usize) -> Self {
        assert!(t0 > 0 && t1 > 0, "tile dims must be positive");
        MDRangePolicy {
            extents: vec![n0, n1],
            tile: vec![t0, t1],
        }
    }

    /// 3-D policy over `(n0, n1, n2)` with tile `(t0, t1, t2)`.
    pub fn new_3d(n0: usize, n1: usize, n2: usize, t0: usize, t1: usize, t2: usize) -> Self {
        assert!(t0 > 0 && t1 > 0 && t2 > 0, "tile dims must be positive");
        MDRangePolicy {
            extents: vec![n0, n1, n2],
            tile: vec![t0, t1, t2],
        }
    }

    /// Number of tiles along each dimension.
    pub fn tiles_per_dim(&self) -> Vec<usize> {
        self.extents
            .iter()
            .zip(&self.tile)
            .map(|(&n, &t)| n.div_ceil(t))
            .collect()
    }

    /// Total tile count.
    pub fn num_tiles(&self) -> usize {
        self.tiles_per_dim().iter().product()
    }

    /// Execute `f(i0, i1)` over a 2-D policy, tile-parallel on `space`.
    pub fn for_each_2d<E: ExecSpace + ?Sized>(
        &self,
        space: &E,
        f: impl Fn(usize, usize) + Sync,
    ) {
        assert_eq!(self.extents.len(), 2, "for_each_2d needs a 2-D policy");
        let (n0, n1) = (self.extents[0], self.extents[1]);
        let (t0, t1) = (self.tile[0], self.tile[1]);
        let tiles0 = n0.div_ceil(t0);
        let tiles1 = n1.div_ceil(t1);
        space.for_each(tiles0 * tiles1, &|t| {
            let (b0, b1) = (t / tiles1, t % tiles1);
            let (lo0, hi0) = (b0 * t0, ((b0 + 1) * t0).min(n0));
            let (lo1, hi1) = (b1 * t1, ((b1 + 1) * t1).min(n1));
            for i0 in lo0..hi0 {
                for i1 in lo1..hi1 {
                    f(i0, i1);
                }
            }
        });
    }

    /// Same as [`Self::for_each_2d`] but records per-tile wall time.
    pub fn for_each_2d_profiled<E: ExecSpace + ?Sized>(
        &self,
        space: &E,
        profiler: &TileProfiler,
        f: impl Fn(usize, usize) + Sync,
    ) {
        assert_eq!(self.extents.len(), 2, "for_each_2d needs a 2-D policy");
        let (n0, n1) = (self.extents[0], self.extents[1]);
        let (t0, t1) = (self.tile[0], self.tile[1]);
        let tiles0 = n0.div_ceil(t0);
        let tiles1 = n1.div_ceil(t1);
        space.for_each(tiles0 * tiles1, &|t| {
            let start = std::time::Instant::now();
            let (b0, b1) = (t / tiles1, t % tiles1);
            let (lo0, hi0) = (b0 * t0, ((b0 + 1) * t0).min(n0));
            let (lo1, hi1) = (b1 * t1, ((b1 + 1) * t1).min(n1));
            let mut work = 0usize;
            for i0 in lo0..hi0 {
                for i1 in lo1..hi1 {
                    f(i0, i1);
                    work += 1;
                }
            }
            profiler.record(t, work, start.elapsed());
        });
    }

    /// Execute `f(i0, i1, i2)` over a 3-D policy, tile-parallel on `space`.
    pub fn for_each_3d<E: ExecSpace + ?Sized>(
        &self,
        space: &E,
        f: impl Fn(usize, usize, usize) + Sync,
    ) {
        assert_eq!(self.extents.len(), 3, "for_each_3d needs a 3-D policy");
        let (n0, n1, n2) = (self.extents[0], self.extents[1], self.extents[2]);
        let (t0, t1, t2) = (self.tile[0], self.tile[1], self.tile[2]);
        let tiles0 = n0.div_ceil(t0);
        let tiles1 = n1.div_ceil(t1);
        let tiles2 = n2.div_ceil(t2);
        space.for_each(tiles0 * tiles1 * tiles2, &|t| {
            let b0 = t / (tiles1 * tiles2);
            let r = t % (tiles1 * tiles2);
            let (b1, b2) = (r / tiles2, r % tiles2);
            let (lo0, hi0) = (b0 * t0, ((b0 + 1) * t0).min(n0));
            let (lo1, hi1) = (b1 * t1, ((b1 + 1) * t1).min(n1));
            let (lo2, hi2) = (b2 * t2, ((b2 + 1) * t2).min(n2));
            for i0 in lo0..hi0 {
                for i1 in lo1..hi1 {
                    for i2 in lo2..hi2 {
                        f(i0, i1, i2);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Serial, Threads};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tiles_cover_2d_exactly_once() {
        let n0 = 37;
        let n1 = 53; // deliberately not tile multiples
        let policy = MDRangePolicy::new_2d(n0, n1, 8, 16);
        let hits: Vec<AtomicUsize> = (0..n0 * n1).map(|_| AtomicUsize::new(0)).collect();
        policy.for_each_2d(&Threads::new(4), |i, j| {
            hits[i * n1 + j].fetch_add(1, Ordering::Relaxed);
        });
        for (idx, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {idx} hit count");
        }
    }

    #[test]
    fn tiles_cover_3d_exactly_once() {
        let (n0, n1, n2) = (5, 11, 13);
        let policy = MDRangePolicy::new_3d(n0, n1, n2, 2, 4, 8);
        let hits: Vec<AtomicUsize> = (0..n0 * n1 * n2).map(|_| AtomicUsize::new(0)).collect();
        policy.for_each_3d(&Serial, |i, j, k| {
            hits[(i * n1 + j) * n2 + k].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn tile_counts() {
        let policy = MDRangePolicy::new_2d(100, 64, 32, 32);
        assert_eq!(policy.tiles_per_dim(), vec![4, 2]);
        assert_eq!(policy.num_tiles(), 8);
    }

    #[test]
    fn profiled_records_every_tile() {
        let policy = MDRangePolicy::new_2d(16, 16, 4, 4);
        let profiler = TileProfiler::new("test-kernel");
        policy.for_each_2d_profiled(&Serial, &profiler, |_i, _j| {});
        let profile = profiler.finish();
        assert_eq!(profile.tiles, 16);
        assert_eq!(profile.work_items, 256);
    }

    #[test]
    #[should_panic(expected = "tile dims must be positive")]
    fn zero_tile_rejected() {
        let _ = MDRangePolicy::new_2d(8, 8, 0, 4);
    }
}
