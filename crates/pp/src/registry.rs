//! Hash-based kernel registration and callback.
//!
//! The Sunway compiler cannot instantiate C++ template metaprogramming on
//! CPEs, so LICOMK++ registers each kernel under a hashed name at start-up
//! and launches it later through a callback table (paper §5.3: "we propose a
//! hash-based function registration and callback mechanism to enable Kokkos
//! execution on TMP-constrained Sunway processors"). This module reproduces
//! the mechanism: kernels are erased to `fn(&KernelArgs)`-style closures and
//! dispatched by an FNV-1a hash of their name.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::exec::ExecSpace;

/// FNV-1a 64-bit hash — the classic cheap hash used for registration tables
/// on accelerators (no allocation, stable across runs).
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Arguments passed to a registered kernel: the iteration extent plus
/// borrowed input/output buffers. Buffers are type-erased to `f64` slices,
/// matching the flat field panels AP3ESM kernels operate on.
pub struct KernelArgs<'a> {
    pub n: usize,
    pub inputs: Vec<&'a [f64]>,
    pub outputs: Vec<&'a mut [f64]>,
    /// Scalar parameters (timestep, coefficients, …).
    pub scalars: Vec<f64>,
}

type Kernel = Box<dyn Fn(&dyn ExecSpace, &mut KernelArgs) + Send + Sync>;

/// The registration table: hash(name) → kernel callback.
#[derive(Default)]
pub struct KernelRegistry {
    table: RwLock<HashMap<u64, (String, Kernel)>>,
}

/// Error returned by [`KernelRegistry::launch`] for unknown kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKernel(pub u64);

impl std::fmt::Display for UnknownKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no kernel registered under hash {:#018x}", self.0)
    }
}

impl std::error::Error for UnknownKernel {}

impl KernelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `kernel` under `name`. Returns the hash handle used to
    /// launch it. Registering the same name twice replaces the kernel
    /// (mirroring re-registration on model restart).
    pub fn register(
        &self,
        name: &str,
        kernel: impl Fn(&dyn ExecSpace, &mut KernelArgs) + Send + Sync + 'static,
    ) -> u64 {
        let h = fnv1a(name);
        let mut table = self.table.write();
        if let Some((existing, _)) = table.get(&h) {
            // FNV collisions across *different* names would silently alias
            // kernels; the paper's registry assumes none, we verify it.
            assert_eq!(
                existing, name,
                "kernel-name hash collision: {existing:?} vs {name:?}"
            );
        }
        table.insert(h, (name.to_owned(), Box::new(kernel)));
        h
    }

    /// Launch the kernel registered under `hash` on `space`.
    pub fn launch(
        &self,
        hash: u64,
        space: &dyn ExecSpace,
        args: &mut KernelArgs,
    ) -> Result<(), UnknownKernel> {
        let table = self.table.read();
        let (_, kernel) = table.get(&hash).ok_or(UnknownKernel(hash))?;
        kernel(space, args);
        Ok(())
    }

    /// Launch by name (hash computed on the fly).
    pub fn launch_by_name(
        &self,
        name: &str,
        space: &dyn ExecSpace,
        args: &mut KernelArgs,
    ) -> Result<(), UnknownKernel> {
        self.launch(fnv1a(name), space, args)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.table.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered kernel names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.table.read().values().map(|(n, _)| n.clone()).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Serial, Threads};

    #[test]
    fn fnv_is_stable_and_distinct() {
        assert_eq!(fnv1a("axpy"), fnv1a("axpy"));
        assert_ne!(fnv1a("axpy"), fnv1a("axpby"));
        // Known FNV-1a vector: empty string.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn register_and_launch_axpy() {
        let reg = KernelRegistry::new();
        let h = reg.register("axpy", |space, args| {
            let a = args.scalars[0];
            let x: Vec<f64> = args.inputs[0].to_vec();
            let y = &mut args.outputs[0];
            space.for_each(args.n, &|_| {}); // exercise the space
            for i in 0..args.n {
                y[i] += a * x[i];
            }
        });
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        let mut args = KernelArgs {
            n: 3,
            inputs: vec![&x],
            outputs: vec![&mut y],
            scalars: vec![2.0],
        };
        reg.launch(h, &Serial, &mut args).unwrap();
        assert_eq!(y, vec![12.0, 14.0, 16.0]);
    }

    #[test]
    fn launch_by_name_matches_hash_launch() {
        let reg = KernelRegistry::new();
        reg.register("fill7", |_s, args| {
            for o in args.outputs.iter_mut() {
                for v in o.iter_mut() {
                    *v = 7.0;
                }
            }
        });
        let mut out = vec![0.0; 4];
        let mut args = KernelArgs {
            n: 4,
            inputs: vec![],
            outputs: vec![&mut out],
            scalars: vec![],
        };
        reg.launch_by_name("fill7", &Threads::new(2), &mut args)
            .unwrap();
        assert_eq!(out, vec![7.0; 4]);
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let reg = KernelRegistry::new();
        let mut args = KernelArgs {
            n: 0,
            inputs: vec![],
            outputs: vec![],
            scalars: vec![],
        };
        let err = reg.launch(42, &Serial, &mut args).unwrap_err();
        assert_eq!(err, UnknownKernel(42));
        assert!(err.to_string().contains("no kernel registered"));
    }

    #[test]
    fn names_listed_sorted() {
        let reg = KernelRegistry::new();
        reg.register("zeta", |_, _| {});
        reg.register("alpha", |_, _| {});
        assert_eq!(reg.names(), vec!["alpha".to_string(), "zeta".to_string()]);
        assert_eq!(reg.len(), 2);
    }
}
