//! # AP3ESM performance-portability layer (`ap3esm-pp`)
//!
//! A Kokkos-style performance-portability abstraction, reproducing the role
//! Kokkos plays in LICOMK++ and the AP3ESM ocean component (SC '25 paper,
//! §5.3): one kernel source, multiple execution backends.
//!
//! The paper targets three backends — host CPU, Sunway CPE clusters (via a
//! hash-based function-registration workaround for the TMP-constrained Sunway
//! compiler), and HIP GPUs on ORISE. Here we provide:
//!
//! * [`Serial`] — reference single-thread backend (the paper's "MPE-only"
//!   execution path),
//! * [`Threads`] — a work-stealing thread-pool backend (stands in for the
//!   host-parallel/GPU paths),
//! * [`SimulatedCpe`] — an emulation of one Sunway core group: 64 compute
//!   processing elements with a small local device memory (LDM), which forces
//!   kernels through the same tiling discipline the real CPE code uses,
//! * [`View`]/[`View3`] multi-dimensional arrays with explicit layouts,
//! * [`MDRangePolicy`] tiled multi-dimensional iteration with per-tile
//!   profiling (the paper's "finer-grained tile profiling"),
//! * a [hash-based kernel registry](registry) mirroring the paper's
//!   registration-and-callback mechanism.

pub mod exec;
pub mod hybrid;
pub mod mdrange;
pub mod profile;
pub mod registry;
pub mod shared;
pub mod view;

pub use exec::{ExecSpace, ExecSpaceExt, Serial, SimulatedCpe, Threads};
pub use hybrid::Hybrid;
pub use mdrange::MDRangePolicy;
pub use profile::{measure, KernelProfile, SampleSet, SampleSummary, TileProfiler};
pub use registry::{KernelArgs, KernelRegistry};
pub use shared::SharedSlice;
pub use view::{Layout, View, View3};

/// Convenience: run `f(i)` for `i in 0..n` on the given execution space.
pub fn parallel_for<E: ExecSpace + ?Sized>(space: &E, n: usize, f: impl Fn(usize) + Sync) {
    space.for_each(n, &f);
}

/// Convenience: reduce `f(i)` for `i in 0..n` with `combine`, starting from
/// `identity`, on the given execution space. The result is independent of the
/// backend for commutative/associative `combine` (floating-point sums may
/// differ by rounding between backends; use [`parallel_reduce_det`] for a
/// deterministic chunked tree order).
pub fn parallel_reduce<E, T>(
    space: &E,
    n: usize,
    identity: T,
    f: impl Fn(usize) -> T + Sync,
    combine: impl Fn(T, T) -> T + Sync,
) -> T
where
    E: ExecSpace + ?Sized,
    T: Send + Sync + Clone,
{
    space.reduce(n, identity, &f, &combine)
}

/// Deterministic parallel reduction: results are bitwise identical across
/// backends because partial sums are always combined in fixed chunk order.
/// This is what AP3ESM's bit-for-bit coupled-model validation (§5.1) relies
/// on when comparing MPE and CPE execution paths.
pub fn parallel_reduce_det<E, T>(
    space: &E,
    n: usize,
    identity: T,
    f: impl Fn(usize) -> T + Sync,
    combine: impl Fn(T, T) -> T + Sync,
) -> T
where
    E: ExecSpace + ?Sized,
    T: Send + Sync + Clone,
{
    const CHUNK: usize = 1024;
    let nchunks = n.div_ceil(CHUNK);
    let mut partials: Vec<Option<T>> = (0..nchunks).map(|_| None).collect();
    {
        let slots: Vec<parking_lot::Mutex<&mut Option<T>>> =
            partials.iter_mut().map(parking_lot::Mutex::new).collect();
        space.for_each(nchunks, &|c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let mut acc = identity.clone();
            for i in lo..hi {
                acc = combine(acc, f(i));
            }
            **slots[c].lock() = Some(acc);
        });
    }
    partials
        .into_iter()
        .map(|p| p.expect("chunk computed"))
        .fold(identity, combine)
}

/// Inclusive parallel scan (prefix combine) of `f(i)`; writes results through
/// `out(i, prefix)`. Two-pass chunked algorithm, deterministic.
pub fn parallel_scan<E, T>(
    space: &E,
    n: usize,
    identity: T,
    f: impl Fn(usize) -> T + Sync,
    combine: impl Fn(T, T) -> T + Sync,
    out: impl Fn(usize, T) + Sync,
) where
    E: ExecSpace + ?Sized,
    T: Send + Sync + Clone,
{
    const CHUNK: usize = 1024;
    let nchunks = n.div_ceil(CHUNK);
    // Pass 1: per-chunk totals.
    let mut totals: Vec<Option<T>> = (0..nchunks).map(|_| None).collect();
    {
        let slots: Vec<parking_lot::Mutex<&mut Option<T>>> =
            totals.iter_mut().map(parking_lot::Mutex::new).collect();
        space.for_each(nchunks, &|c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let mut acc = identity.clone();
            for i in lo..hi {
                acc = combine(acc, f(i));
            }
            **slots[c].lock() = Some(acc);
        });
    }
    // Exclusive prefix over chunk totals (serial; nchunks is small).
    let mut offsets = Vec::with_capacity(nchunks);
    let mut run = identity.clone();
    for t in &totals {
        offsets.push(run.clone());
        run = combine(run.clone(), t.clone().expect("chunk total"));
    }
    // Pass 2: emit inclusive prefixes.
    space.for_each(nchunks, &|c| {
        let lo = c * CHUNK;
        let hi = ((c + 1) * CHUNK).min(n);
        let mut acc = offsets[c].clone();
        for i in lo..hi {
            acc = combine(acc, f(i));
            out(i, acc.clone());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_serial_prefix_sum() {
        let space = Threads::new(4);
        let n = 5000;
        let out = (0..n).map(|_| parking_lot::Mutex::new(0u64)).collect::<Vec<_>>();
        parallel_scan(
            &space,
            n,
            0u64,
            |i| i as u64,
            |a, b| a + b,
            |i, v| *out[i].lock() = v,
        );
        let mut acc = 0u64;
        for (i, slot) in out.iter().enumerate() {
            acc += i as u64;
            assert_eq!(*slot.lock(), acc, "prefix mismatch at {i}");
        }
    }

    #[test]
    fn deterministic_reduce_is_backend_invariant() {
        let n = 10_000;
        let f = |i: usize| ((i as f64) * 0.1).sin();
        let serial = parallel_reduce_det(&Serial, n, 0.0, f, |a, b| a + b);
        let threads = parallel_reduce_det(&Threads::new(7), n, 0.0, f, |a, b| a + b);
        let cpe = parallel_reduce_det(&SimulatedCpe::default(), n, 0.0, f, |a, b| a + b);
        assert_eq!(serial.to_bits(), threads.to_bits());
        assert_eq!(serial.to_bits(), cpe.to_bits());
    }
}
