//! Execution spaces: the backend abstraction of the portability layer.
//!
//! Mirrors Kokkos execution spaces as used by LICOMK++ (paper §5.3). A kernel
//! written against [`ExecSpace`] runs unchanged on every backend; only
//! performance differs. The `Serial` backend corresponds to the paper's
//! MPE-only baseline; `Threads` to host/device parallel execution; and
//! `SimulatedCpe` emulates a Sunway SW26010P core group, including its
//! 64-lane structure and limited local device memory (LDM), so that kernels
//! exercise the same tiling discipline the Athread/CPE code path requires.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A backend capable of executing data-parallel index ranges.
///
/// The two primitive operations (`for_each`, `reduce`) take `&dyn` closures
/// so the trait stays object-safe: AP3ESM components hold a
/// `Box<dyn ExecSpace>` chosen at configuration time, exactly as the paper's
/// ocean component "flexibly selects the most suitable implementation for
/// each architecture" (§5.1.1).
pub trait ExecSpace: Sync + Send {
    /// Human-readable backend name (used in profiles and experiment CSVs).
    fn name(&self) -> &'static str;

    /// Number of hardware lanes the backend exposes (1 for serial, thread
    /// count for `Threads`, 64 for a CPE cluster).
    fn concurrency(&self) -> usize;

    /// Execute `f(i)` for every `i in 0..n`.
    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync));

    /// Reduce `f(i)` over `0..n` into a single `f64` via `combine`.
    ///
    /// The f64-typed primitive keeps the trait object-safe; the generic
    /// typed wrapper is [`ExecSpace::reduce`].
    fn reduce_f64(
        &self,
        n: usize,
        identity: f64,
        f: &(dyn Fn(usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64;
}

/// Generic typed reduction built on `for_each` (works for any `ExecSpace`).
pub trait ExecSpaceExt: ExecSpace {
    fn reduce<T: Send + Sync + Clone>(
        &self,
        n: usize,
        identity: T,
        f: &(dyn Fn(usize) -> T + Sync),
        combine: &(dyn Fn(T, T) -> T + Sync),
    ) -> T {
        // Accumulate per-chunk partials under short-lived locks, then fold.
        const CHUNK: usize = 2048;
        let nchunks = n.div_ceil(CHUNK);
        let partials: Vec<Mutex<Option<T>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
        self.for_each(nchunks, &|c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let mut acc = identity.clone();
            for i in lo..hi {
                acc = combine(acc, f(i));
            }
            *partials[c].lock() = Some(acc);
        });
        partials
            .into_iter()
            .map(|m| m.into_inner().expect("partial"))
            .fold(identity, combine)
    }
}

impl<E: ExecSpace + ?Sized> ExecSpaceExt for E {}

// ---------------------------------------------------------------------------
// Serial
// ---------------------------------------------------------------------------

/// Reference backend: runs every index on the calling thread.
///
/// This is the "MPE" execution path of the paper's Table 2 (the Sunway
/// management processing element running the kernel alone, without CPE
/// offload).
#[derive(Debug, Default, Clone, Copy)]
pub struct Serial;

impl ExecSpace for Serial {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn concurrency(&self) -> usize {
        1
    }

    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            f(i);
        }
    }

    fn reduce_f64(
        &self,
        n: usize,
        identity: f64,
        f: &(dyn Fn(usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64 {
        let mut acc = identity;
        for i in 0..n {
            acc = combine(acc, f(i));
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

enum Job {
    Run(RawJob),
    Shutdown,
}

/// A borrowed kernel smuggled to persistent workers as a raw pointer.
///
/// SAFETY invariant: the submitting thread blocks until `state.remaining`
/// reaches zero (signalled through `done_tx`) before the borrow ends, so the
/// pointee is alive for as long as any worker can dereference it.
struct RawJob {
    f: *const (dyn Fn(usize) + Sync + 'static),
    state: Arc<JobState>,
}

// SAFETY: see RawJob invariant above; the pointee is Sync so shared calls
// from many workers are allowed.
unsafe impl Send for RawJob {}

struct JobState {
    next: AtomicUsize,
    n: usize,
    chunk: usize,
    remaining: AtomicUsize,
    done_tx: Sender<()>,
}

impl JobState {
    /// Grab-and-run loop shared by workers and the submitting thread.
    fn drive(&self, f: &(dyn Fn(usize) + Sync)) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                break;
            }
            let end = (start + self.chunk).min(self.n);
            for i in start..end {
                f(i);
            }
            let prev = self.remaining.fetch_sub(end - start, Ordering::AcqRel);
            if prev == end - start {
                let _ = self.done_tx.send(());
            }
        }
    }
}

/// Persistent thread-pool backend with dynamic (chunk-grabbing) scheduling.
///
/// Built directly on crossbeam channels and atomics rather than an external
/// task framework, so the scheduling policy is visible and tunable — the
/// dynamic chunk size plays the role of the paper's "automatic loop space
/// mapping" on CPEs (SWGOMP, §5.3).
pub struct Threads {
    txs: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
}

impl Threads {
    /// Spawn a pool of `nthreads` workers (at least 1).
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        let mut txs = Vec::with_capacity(nthreads);
        let mut handles = Vec::with_capacity(nthreads);
        for t in 0..nthreads {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            txs.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pp-worker-{t}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            match job {
                                // SAFETY: upheld by RawJob's invariant — the
                                // submitter waits for completion before the
                                // borrow ends.
                                Job::Run(raw) => raw.state.drive(unsafe { &*raw.f }),
                                Job::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawn pp worker"),
            );
        }
        Threads {
            txs,
            handles,
            nthreads,
        }
    }

    /// Pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4);
        Self::new(n)
    }

    fn run_job(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // Aim for ~8 chunks per worker so dynamic scheduling can balance load.
        let chunk = (n / (self.nthreads * 8)).max(1);
        let (done_tx, done_rx) = unbounded();
        let state = Arc::new(JobState {
            next: AtomicUsize::new(0),
            n,
            chunk,
            remaining: AtomicUsize::new(n),
            done_tx,
        });
        // Hand the borrowed kernel to every persistent worker, then help
        // drive the job from this thread and wait for full completion. The
        // wait is what makes the raw-pointer hand-off sound.
        let fp: *const (dyn Fn(usize) + Sync) = f;
        // SAFETY: lifetime erasure only; RawJob's completion-wait invariant
        // guarantees the pointee outlives all uses.
        let fp: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(fp) };
        for tx in &self.txs {
            let _ = tx.send(Job::Run(RawJob {
                f: fp,
                state: Arc::clone(&state),
            }));
        }
        state.drive(f);
        while state.remaining.load(Ordering::Acquire) != 0 {
            let _ = done_rx.recv();
        }
    }
}

impl Drop for Threads {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Job::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl ExecSpace for Threads {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn concurrency(&self) -> usize {
        self.nthreads
    }

    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        self.run_job(n, f);
    }

    fn reduce_f64(
        &self,
        n: usize,
        identity: f64,
        f: &(dyn Fn(usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64 {
        self.reduce(n, identity, f, combine)
    }
}

// ---------------------------------------------------------------------------
// SimulatedCpe
// ---------------------------------------------------------------------------

/// Emulation of a Sunway SW26010P core group: 64 compute processing elements,
/// each with a fixed-size local device memory (LDM).
///
/// Kernels run through the same 64-lane round-robin tiling that Athread code
/// uses on the real hardware, and the emulator counts LDM tile loads so that
/// the machine model (crate `ap3esm-machine`) can charge DMA traffic. Work is
/// executed on a host thread pool, one pool thread per emulated CPE row.
pub struct SimulatedCpe {
    /// Emulated CPEs per core group (64 on SW26010P).
    pub lanes: usize,
    /// LDM capacity per CPE in bytes (256 KiB on SW26010P).
    pub ldm_bytes: usize,
    /// Bytes of state a kernel needs per index; determines the tile size the
    /// LDM can hold. Kernels refine this via [`SimulatedCpe::with_state_bytes`].
    pub state_bytes_per_index: usize,
    /// Number of LDM tile loads performed so far (≈ DMA transactions).
    tile_loads: AtomicUsize,
    pool: Threads,
}

impl Default for SimulatedCpe {
    fn default() -> Self {
        Self::new(64, 256 * 1024, 64)
    }
}

impl SimulatedCpe {
    pub fn new(lanes: usize, ldm_bytes: usize, state_bytes_per_index: usize) -> Self {
        SimulatedCpe {
            lanes: lanes.max(1),
            ldm_bytes,
            state_bytes_per_index: state_bytes_per_index.max(1),
            tile_loads: AtomicUsize::new(0),
            pool: Threads::new(
                std::thread::available_parallelism()
                    .map(|v| v.get())
                    .unwrap_or(4)
                    .min(8),
            ),
        }
    }

    /// Set per-index working-set size in bytes (shrinks the LDM tile).
    pub fn with_state_bytes(mut self, bytes: usize) -> Self {
        self.state_bytes_per_index = bytes.max(1);
        self
    }

    /// Indices one LDM tile can hold.
    pub fn tile_len(&self) -> usize {
        (self.ldm_bytes / self.state_bytes_per_index).max(1)
    }

    /// Total LDM tile loads since construction (proxy for DMA transactions).
    pub fn tile_loads(&self) -> usize {
        self.tile_loads.load(Ordering::Relaxed)
    }
}

impl ExecSpace for SimulatedCpe {
    fn name(&self) -> &'static str {
        "simulated-cpe"
    }

    fn concurrency(&self) -> usize {
        self.lanes
    }

    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        let tile = self.tile_len();
        // Round-robin tiles over the 64 emulated lanes, exactly like Athread
        // static scheduling; lanes map onto the host pool.
        let ntiles = n.div_ceil(tile);
        self.tile_loads.fetch_add(ntiles, Ordering::Relaxed);
        self.pool.for_each(ntiles, &|t| {
            let lo = t * tile;
            let hi = ((t + 1) * tile).min(n);
            for i in lo..hi {
                f(i);
            }
        });
    }

    fn reduce_f64(
        &self,
        n: usize,
        identity: f64,
        f: &(dyn Fn(usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64 {
        self.reduce(n, identity, f, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn check_space(space: &dyn ExecSpace) {
        let n = 10_000usize;
        let counter = AtomicU64::new(0);
        space.for_each(n, &|i| {
            counter.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (n as u64 - 1) * n as u64 / 2,
            "{} for_each visited wrong index set",
            space.name()
        );
        let sum = space.reduce_f64(n, 0.0, &|i| i as f64, &|a, b| a + b);
        assert_eq!(sum, ((n - 1) * n / 2) as f64);
    }

    #[test]
    fn serial_visits_all_indices() {
        check_space(&Serial);
    }

    #[test]
    fn threads_visits_all_indices() {
        check_space(&Threads::new(4));
    }

    #[test]
    fn threads_single_worker_ok() {
        check_space(&Threads::new(1));
    }

    #[test]
    fn cpe_visits_all_indices_and_counts_tiles() {
        let cpe = SimulatedCpe::new(64, 1024, 8); // tiny LDM => many tiles
        check_space(&cpe);
        // 10_000 indices, 128 per tile -> 79 tiles for for_each, plus the
        // reduce's internal chunked for_each.
        assert!(cpe.tile_loads() >= 79, "tile loads = {}", cpe.tile_loads());
    }

    #[test]
    fn empty_range_is_noop() {
        let space = Threads::new(3);
        space.for_each(0, &|_| panic!("must not be called"));
    }

    #[test]
    fn typed_reduce_max() {
        let space = Threads::new(4);
        let m = space.reduce(1000, i64::MIN, &|i| (i as i64 % 97) * 3, &|a, b| a.max(b));
        assert_eq!(m, 96 * 3);
    }
}
