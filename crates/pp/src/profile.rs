//! Per-tile kernel profiling.
//!
//! AP3ESM uses Kokkos' "finer-grained tile profiling for multi-dimensional
//! parallel iterations" (§5.3) to find imbalanced tiles (e.g. ocean panels
//! that are mostly land). [`TileProfiler`] collects per-tile wall time and
//! work counts; [`KernelProfile`] summarises them.
//!
//! For *cost attribution* (the perf-trajectory's ns/gridpoint numbers) the
//! raw mean over every launch is too jittery to gate on: the first few
//! iterations pay cold caches, lazy page faults and thread-pool wake-up,
//! and a single descheduling blip can double one sample. [`SampleSet`]
//! fixes both: warm-up samples are discarded and the summary is a
//! **trimmed mean + sample stddev** over the survivors, which is what the
//! `BENCH_*.json` gate builds its noise bands from.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Accumulates per-tile statistics for one kernel launch. Thread-safe;
/// cheap enough to keep on in production runs.
pub struct TileProfiler {
    name: &'static str,
    tiles: AtomicUsize,
    work_items: AtomicUsize,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    min_nanos: AtomicU64,
}

impl TileProfiler {
    pub fn new(name: &'static str) -> Self {
        TileProfiler {
            name,
            tiles: AtomicUsize::new(0),
            work_items: AtomicUsize::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one executed tile: its index, item count, and wall time.
    pub fn record(&self, _tile_index: usize, work: usize, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        self.tiles.fetch_add(1, Ordering::Relaxed);
        self.work_items.fetch_add(work, Ordering::Relaxed);
        self.total_nanos.fetch_add(ns, Ordering::Relaxed);
        self.max_nanos.fetch_max(ns, Ordering::Relaxed);
        self.min_nanos.fetch_min(ns, Ordering::Relaxed);
    }

    /// Snapshot the accumulated statistics.
    pub fn finish(&self) -> KernelProfile {
        let tiles = self.tiles.load(Ordering::Relaxed);
        let min = self.min_nanos.load(Ordering::Relaxed);
        KernelProfile {
            name: self.name,
            tiles,
            work_items: self.work_items.load(Ordering::Relaxed),
            total: Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed)),
            max_tile: Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)),
            min_tile: Duration::from_nanos(if tiles == 0 { 0 } else { min }),
        }
    }
}

/// Summary of one kernel's tile executions.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    pub name: &'static str,
    /// Number of tiles executed.
    pub tiles: usize,
    /// Total iteration-space items visited.
    pub work_items: usize,
    /// Sum of tile wall times (CPU time across lanes, not wall time).
    pub total: Duration,
    /// Slowest tile.
    pub max_tile: Duration,
    /// Fastest tile.
    pub min_tile: Duration,
}

impl KernelProfile {
    /// Load-imbalance ratio: slowest tile over mean tile time (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.tiles == 0 || self.total.as_nanos() == 0 {
            return 1.0;
        }
        let mean = self.total.as_secs_f64() / self.tiles as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_tile.as_secs_f64() / mean
        }
    }
}

// --- repeated-launch sampling (warm-up discard + trimmed statistics) ---

/// Wall-time samples of repeated kernel launches.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    ns: Vec<u64>,
}

impl SampleSet {
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Record one launch's wall time.
    pub fn record(&mut self, elapsed: Duration) {
        self.ns.push(elapsed.as_nanos() as u64);
    }

    /// Time one invocation of `f` and record it.
    pub fn time(&mut self, mut f: impl FnMut()) {
        let t0 = std::time::Instant::now();
        f();
        self.record(t0.elapsed());
    }

    pub fn len(&self) -> usize {
        self.ns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ns.is_empty()
    }

    /// Summarise: drop the first `warmup` samples (cold caches, pool
    /// wake-up), sort the rest, symmetrically trim `trim_frac` of the
    /// remaining samples from *each* end, and report mean + sample stddev
    /// of the survivors. At least one sample always survives.
    pub fn summary(&self, warmup: usize, trim_frac: f64) -> SampleSummary {
        let body = if self.ns.len() > warmup {
            &self.ns[warmup..]
        } else {
            // Too few samples to afford a warm-up discard; keep the last.
            &self.ns[self.ns.len().saturating_sub(1)..]
        };
        let mut sorted: Vec<u64> = body.to_vec();
        sorted.sort_unstable();
        let cut = ((sorted.len() as f64) * trim_frac.clamp(0.0, 0.45)) as usize;
        let trimmed = &sorted[cut..sorted.len() - cut];
        let n = trimmed.len();
        let mean = trimmed.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = trimmed
                .iter()
                .map(|&x| (x as f64 - mean) * (x as f64 - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            var.sqrt()
        };
        SampleSummary {
            n,
            mean_ns: mean,
            stddev_ns: stddev,
            min_ns: *trimmed.first().unwrap_or(&0),
            max_ns: *trimmed.last().unwrap_or(&0),
        }
    }
}

/// Warm-up-discarded, trimmed statistics of repeated launches.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSummary {
    /// Samples surviving warm-up discard and trimming.
    pub n: usize,
    /// Trimmed mean wall time per launch.
    pub mean_ns: f64,
    /// Sample standard deviation of the surviving launches.
    pub stddev_ns: f64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SampleSummary {
    /// Mean cost per iteration-space item (ns/gridpoint for field
    /// kernels), the unit the perf trajectory gates on.
    pub fn per_item(&self, items: usize) -> f64 {
        if items == 0 {
            0.0
        } else {
            self.mean_ns / items as f64
        }
    }

    /// Stddev scaled per item (for the gate's noise band).
    pub fn stddev_per_item(&self, items: usize) -> f64 {
        if items == 0 {
            0.0
        } else {
            self.stddev_ns / items as f64
        }
    }
}

/// Launch `f` `warmup + iters` times, discard the warm-up launches and
/// return trimmed statistics over the measured ones (20% trimmed from
/// each end). The standard way to produce a stable per-kernel cost.
pub fn measure(warmup: usize, iters: usize, mut f: impl FnMut()) -> SampleSummary {
    assert!(iters > 0, "measure needs at least one measured iteration");
    let mut set = SampleSet::new();
    for _ in 0..warmup + iters {
        set.time(&mut f);
    }
    set.summary(warmup, 0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates() {
        let p = TileProfiler::new("k");
        p.record(0, 10, Duration::from_nanos(100));
        p.record(1, 20, Duration::from_nanos(300));
        let s = p.finish();
        assert_eq!(s.tiles, 2);
        assert_eq!(s.work_items, 30);
        assert_eq!(s.total, Duration::from_nanos(400));
        assert_eq!(s.max_tile, Duration::from_nanos(300));
        assert_eq!(s.min_tile, Duration::from_nanos(100));
    }

    #[test]
    fn imbalance_of_uniform_tiles_is_one() {
        let p = TileProfiler::new("k");
        for i in 0..4 {
            p.record(i, 1, Duration::from_nanos(200));
        }
        let s = p.finish();
        assert!((s.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_hot_tile() {
        let p = TileProfiler::new("k");
        p.record(0, 1, Duration::from_nanos(100));
        p.record(1, 1, Duration::from_nanos(100));
        p.record(2, 1, Duration::from_nanos(100));
        p.record(3, 1, Duration::from_nanos(700));
        let s = p.finish();
        assert!(s.imbalance() > 2.0, "imbalance = {}", s.imbalance());
    }

    #[test]
    fn empty_profile_is_sane() {
        let s = TileProfiler::new("k").finish();
        assert_eq!(s.tiles, 0);
        assert_eq!(s.min_tile, Duration::ZERO);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn samples_discard_warmup_and_trim_outliers() {
        let mut set = SampleSet::new();
        // Two cold first iterations, then a steady 100ns signal with one
        // descheduling spike and one suspiciously fast sample.
        for ns in [5000, 2000, 100, 101, 99, 100, 3000, 100, 5, 101, 100, 100] {
            set.record(Duration::from_nanos(ns));
        }
        let s = set.summary(2, 0.2);
        // Raw mean of the post-warm-up body would be ~580ns; the trimmed
        // mean must sit on the 100ns signal.
        assert!(
            (s.mean_ns - 100.0).abs() < 2.0,
            "trimmed mean {} not on signal",
            s.mean_ns
        );
        assert!(s.stddev_ns < 5.0, "stddev {} inflated by outliers", s.stddev_ns);
        assert!(s.n >= 6);
        assert!(s.min_ns >= 99 && s.max_ns <= 101);
    }

    #[test]
    fn summary_survives_tiny_sample_counts() {
        let mut set = SampleSet::new();
        set.record(Duration::from_nanos(42));
        // warmup >= len: the last sample is still reported, not a panic.
        let s = set.summary(5, 0.2);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean_ns, 42.0);
        assert_eq!(s.stddev_ns, 0.0);
    }

    #[test]
    fn per_item_scales_by_work() {
        let s = SampleSummary {
            n: 4,
            mean_ns: 1000.0,
            stddev_ns: 100.0,
            min_ns: 900,
            max_ns: 1100,
        };
        assert_eq!(s.per_item(500), 2.0);
        assert_eq!(s.stddev_per_item(500), 0.2);
        assert_eq!(s.per_item(0), 0.0);
    }

    #[test]
    fn measure_runs_and_reports() {
        let mut calls = 0u32;
        let s = measure(3, 8, || calls += 1);
        assert_eq!(calls, 11);
        assert!(s.n >= 5 && s.n <= 8);
        assert!(s.mean_ns >= 0.0);
    }
}
