//! Per-tile kernel profiling.
//!
//! AP3ESM uses Kokkos' "finer-grained tile profiling for multi-dimensional
//! parallel iterations" (§5.3) to find imbalanced tiles (e.g. ocean panels
//! that are mostly land). [`TileProfiler`] collects per-tile wall time and
//! work counts; [`KernelProfile`] summarises them.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Accumulates per-tile statistics for one kernel launch. Thread-safe;
/// cheap enough to keep on in production runs.
pub struct TileProfiler {
    name: &'static str,
    tiles: AtomicUsize,
    work_items: AtomicUsize,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    min_nanos: AtomicU64,
}

impl TileProfiler {
    pub fn new(name: &'static str) -> Self {
        TileProfiler {
            name,
            tiles: AtomicUsize::new(0),
            work_items: AtomicUsize::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one executed tile: its index, item count, and wall time.
    pub fn record(&self, _tile_index: usize, work: usize, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        self.tiles.fetch_add(1, Ordering::Relaxed);
        self.work_items.fetch_add(work, Ordering::Relaxed);
        self.total_nanos.fetch_add(ns, Ordering::Relaxed);
        self.max_nanos.fetch_max(ns, Ordering::Relaxed);
        self.min_nanos.fetch_min(ns, Ordering::Relaxed);
    }

    /// Snapshot the accumulated statistics.
    pub fn finish(&self) -> KernelProfile {
        let tiles = self.tiles.load(Ordering::Relaxed);
        let min = self.min_nanos.load(Ordering::Relaxed);
        KernelProfile {
            name: self.name,
            tiles,
            work_items: self.work_items.load(Ordering::Relaxed),
            total: Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed)),
            max_tile: Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)),
            min_tile: Duration::from_nanos(if tiles == 0 { 0 } else { min }),
        }
    }
}

/// Summary of one kernel's tile executions.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    pub name: &'static str,
    /// Number of tiles executed.
    pub tiles: usize,
    /// Total iteration-space items visited.
    pub work_items: usize,
    /// Sum of tile wall times (CPU time across lanes, not wall time).
    pub total: Duration,
    /// Slowest tile.
    pub max_tile: Duration,
    /// Fastest tile.
    pub min_tile: Duration,
}

impl KernelProfile {
    /// Load-imbalance ratio: slowest tile over mean tile time (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.tiles == 0 || self.total.as_nanos() == 0 {
            return 1.0;
        }
        let mean = self.total.as_secs_f64() / self.tiles as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_tile.as_secs_f64() / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates() {
        let p = TileProfiler::new("k");
        p.record(0, 10, Duration::from_nanos(100));
        p.record(1, 20, Duration::from_nanos(300));
        let s = p.finish();
        assert_eq!(s.tiles, 2);
        assert_eq!(s.work_items, 30);
        assert_eq!(s.total, Duration::from_nanos(400));
        assert_eq!(s.max_tile, Duration::from_nanos(300));
        assert_eq!(s.min_tile, Duration::from_nanos(100));
    }

    #[test]
    fn imbalance_of_uniform_tiles_is_one() {
        let p = TileProfiler::new("k");
        for i in 0..4 {
            p.record(i, 1, Duration::from_nanos(200));
        }
        let s = p.finish();
        assert!((s.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_hot_tile() {
        let p = TileProfiler::new("k");
        p.record(0, 1, Duration::from_nanos(100));
        p.record(1, 1, Duration::from_nanos(100));
        p.record(2, 1, Duration::from_nanos(100));
        p.record(3, 1, Duration::from_nanos(700));
        let s = p.finish();
        assert!(s.imbalance() > 2.0, "imbalance = {}", s.imbalance());
    }

    #[test]
    fn empty_profile_is_sane() {
        let s = TileProfiler::new("k").finish();
        assert_eq!(s.tiles, 0);
        assert_eq!(s.min_tile, Duration::ZERO);
        assert_eq!(s.imbalance(), 1.0);
    }
}
