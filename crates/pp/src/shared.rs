//! Disjoint-write shared slices — the OpenMP "parallel loop writes its own
//! index" pattern that SWGOMP generates for GRIST loops (§5.1.1: "most of
//! the GRIST loops are conflict-free").

use std::marker::PhantomData;

/// A slice handle that permits concurrent writes from a data-parallel loop
/// **provided each index is written by at most one iteration** — the
/// conflict-free property the paper's loop annotations assert.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: concurrent access is only sound under the disjoint-index contract
// of `set`; the type exists precisely to express that contract.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// Each index must be written by at most one concurrent iteration, and
    /// no concurrent reads of the same index may occur during the loop.
    #[inline]
    pub unsafe fn set(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = value };
    }

    /// Read the value at `i`.
    ///
    /// # Safety
    /// No concurrent write to the same index may occur.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        unsafe { &*self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecSpace, Threads};

    #[test]
    fn parallel_disjoint_writes_land() {
        let mut data = vec![0usize; 10_000];
        {
            let shared = SharedSlice::new(&mut data);
            let pool = Threads::new(4);
            pool.for_each(10_000, &|i| unsafe { shared.set(i, i * 3) });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn reads_after_loop_are_consistent() {
        let mut data = vec![1.5f64; 64];
        let shared = SharedSlice::new(&mut data);
        assert_eq!(shared.len(), 64);
        unsafe {
            shared.set(3, 9.0);
            assert_eq!(*shared.get(3), 9.0);
            assert_eq!(*shared.get(0), 1.5);
        }
    }
}
