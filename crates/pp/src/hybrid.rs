//! Hybrid host–device backend (§5.3): "we enhance processor utilization
//! through a hybrid host-device backend parallelism strategy" — on Sunway,
//! the MPE (host) works alongside its 64 CPEs (device) instead of idling
//! while the device computes. [`Hybrid`] splits every index range between
//! a host and a device execution space by a tunable fraction.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::exec::ExecSpace;

/// Runs the leading `device_fraction` of each range on the device space
/// and the rest on the host space, concurrently.
pub struct Hybrid<D: ExecSpace, H: ExecSpace> {
    pub device: D,
    pub host: H,
    /// Fraction of the iteration space sent to the device (0..=1). On
    /// SW26010P the CPE cluster takes the overwhelming share; the MPE mops
    /// up the remainder.
    pub device_fraction: f64,
    launches: AtomicU64,
}

impl<D: ExecSpace, H: ExecSpace> Hybrid<D, H> {
    pub fn new(device: D, host: H, device_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&device_fraction));
        Hybrid {
            device,
            host,
            device_fraction,
            launches: AtomicU64::new(0),
        }
    }

    /// Auto-balance the split by the two spaces' concurrency (the static
    /// heuristic the paper's strategy starts from).
    pub fn balanced(device: D, host: H) -> Self {
        let d = device.concurrency() as f64;
        let h = host.concurrency() as f64;
        let frac = d / (d + h);
        Self::new(device, host, frac)
    }

    /// Kernel launches so far (both halves count as one).
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    fn split(&self, n: usize) -> usize {
        ((n as f64) * self.device_fraction).round() as usize
    }
}

impl<D: ExecSpace, H: ExecSpace> ExecSpace for Hybrid<D, H> {
    fn name(&self) -> &'static str {
        "hybrid-host-device"
    }

    fn concurrency(&self) -> usize {
        self.device.concurrency() + self.host.concurrency()
    }

    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        let cut = self.split(n);
        if cut == 0 {
            return self.host.for_each(n, f);
        }
        if cut == n {
            return self.device.for_each(n, f);
        }
        // Device half runs on a scoped thread while the host half executes
        // on the calling thread — both processors busy, as on the CG.
        crossbeam::scope(|s| {
            s.spawn(|_| self.device.for_each(cut, f));
            self.host.for_each(n - cut, &|i| f(cut + i));
        })
        .expect("hybrid scope");
    }

    fn reduce_f64(
        &self,
        n: usize,
        identity: f64,
        f: &(dyn Fn(usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64 {
        let cut = self.split(n);
        if cut == 0 {
            return self.host.reduce_f64(n, identity, f, combine);
        }
        if cut == n {
            return self.device.reduce_f64(n, identity, f, combine);
        }
        let mut device_part = identity;
        let mut host_part = identity;
        crossbeam::scope(|s| {
            let dev = s.spawn(|_| self.device.reduce_f64(cut, identity, f, combine));
            host_part = self
                .host
                .reduce_f64(n - cut, identity, &|i| f(cut + i), combine);
            device_part = dev.join().expect("device reduce");
        })
        .expect("hybrid scope");
        combine(device_part, host_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Serial, SimulatedCpe, Threads};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hybrid_visits_every_index_once() {
        let hybrid = Hybrid::new(SimulatedCpe::default(), Serial, 0.8);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        hybrid.for_each(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(hybrid.launches(), 1);
    }

    #[test]
    fn balanced_split_follows_concurrency() {
        let hybrid = Hybrid::balanced(SimulatedCpe::default(), Serial);
        // 64 device lanes vs 1 host lane → ~64/65 of the work on device.
        assert!((hybrid.device_fraction - 64.0 / 65.0).abs() < 1e-9);
        assert_eq!(hybrid.concurrency(), 65);
    }

    #[test]
    fn degenerate_fractions_use_one_side() {
        let all_host = Hybrid::new(Threads::new(2), Serial, 0.0);
        let sum = all_host.reduce_f64(100, 0.0, &|i| i as f64, &|a, b| a + b);
        assert_eq!(sum, 4950.0);
        let all_device = Hybrid::new(Threads::new(2), Serial, 1.0);
        let sum = all_device.reduce_f64(100, 0.0, &|i| i as f64, &|a, b| a + b);
        assert_eq!(sum, 4950.0);
    }

    #[test]
    fn hybrid_reduce_matches_serial() {
        let hybrid = Hybrid::new(Threads::new(3), Serial, 0.6);
        let n = 5000;
        let expect: f64 = (0..n).map(|i| ((i as f64) * 0.01).cos()).sum();
        let got = hybrid.reduce_f64(n, 0.0, &|i| ((i as f64) * 0.01).cos(), &|a, b| a + b);
        assert!((got - expect).abs() < 1e-9);
    }
}
