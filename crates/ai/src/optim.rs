//! Adam optimizer.

use crate::tensor::Tensor;

/// Adam with bias correction; state is held per parameter tensor in
/// registration order.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: i32,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Apply one update step to `(param, grad)` pairs. Must be called with
    /// the same parameter list (same order and sizes) every step.
    pub fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (slot, (p, g)) in params.iter_mut().enumerate() {
            assert_eq!(self.m[slot].len(), p.len(), "parameter size changed");
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            for i in 0..p.len() {
                let grad = g.data[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad * grad;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // minimise (x - 3)²; gradient 2(x - 3).
        let mut x = Tensor::from_vec(vec![0.0], &[1]);
        let mut g = Tensor::zeros(&[1]);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            g.data[0] = 2.0 * (x.data[0] - 3.0);
            opt.step(&mut [(&mut x, &mut g)]);
        }
        assert!((x.data[0] - 3.0).abs() < 0.05, "x = {}", x.data[0]);
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut a = Tensor::from_vec(vec![5.0, -5.0], &[2]);
        let mut ga = Tensor::zeros(&[2]);
        let mut b = Tensor::from_vec(vec![1.0], &[1]);
        let mut gb = Tensor::zeros(&[1]);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            for i in 0..2 {
                ga.data[i] = 2.0 * a.data[i];
            }
            gb.data[0] = 2.0 * (b.data[0] + 2.0);
            opt.step(&mut [(&mut a, &mut ga), (&mut b, &mut gb)]);
        }
        assert!(a.data.iter().all(|v| v.abs() < 0.1));
        assert!((b.data[0] + 2.0).abs() < 0.1);
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the first Adam step has magnitude ≈ lr.
        let mut x = Tensor::from_vec(vec![0.0], &[1]);
        let mut g = Tensor::from_vec(vec![123.0], &[1]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [(&mut x, &mut g)]);
        assert!((x.data[0].abs() - 0.01).abs() < 1e-4, "step {}", x.data[0]);
    }
}
