//! Minimal FP32 tensor with the operations the physics networks need.

/// A dense row-major FP32 tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub data: Vec<f32>,
    pub shape: Vec<usize>,
}

impl Tensor {
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "tensor shape mismatch"
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Xavier/Glorot-uniform initialisation with a deterministic xorshift
    /// stream (reproducible training runs, as the coupled-model validation
    /// requires).
    pub fn xavier(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Self {
        let n: usize = shape.iter().product();
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                / (1u64 << 53) as f64;
            data.push(((r * 2.0 - 1.0) as f32) * bound);
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Mean squared difference against another tensor.
    pub fn mse(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        let n = self.len().max(1);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n as f32
    }
}

/// `out[m×n] = a[m×k] · b[k×n]` (row-major), accumulated in f32 with a
/// blocked loop ordering that vectorises well.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let bro = &b[p * n..(p + 1) * n];
            let oro = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                oro[j] += aip * bro[j];
            }
        }
    }
}

/// `out[k×n] += aᵀ[k×m] · b[m×n]` — gradient helper (accumulates).
pub fn matmul_at_b(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), m * n);
    assert_eq!(out.len(), k * n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let bro = &b[i * n..(i + 1) * n];
            let oro = &mut out[p * n..(p + 1) * n];
            for j in 0..n {
                oro[j] += aip * bro[j];
            }
        }
    }
}

/// `out[m×k] = a[m×n] · bᵀ[n×k]` where b is row-major `[k×n]`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * k);
    for i in 0..m {
        let aro = &a[i * n..(i + 1) * n];
        for p in 0..k {
            let bro = &b[p * n..(p + 1) * n];
            let mut acc = 0.0;
            for j in 0..n {
                acc += aro[j] * bro[j];
            }
            out[i * k + p] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &eye, &mut out, 2, 2, 2);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let m = 3;
        let k = 4;
        let n = 2;
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..m * n).map(|i| (i as f32).sin()).collect();
        // at_b: aᵀ(k×m)·b(m×n)
        let mut got = vec![0.0; k * n];
        matmul_at_b(&a, &b, &mut got, m, k, n);
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut want = vec![0.0; k * n];
        matmul(&at, &b, &mut want, k, m, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn a_bt_matches_reference() {
        let m = 2;
        let n = 3;
        let k = 4;
        let a: Vec<f32> = (0..m * n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.1).collect();
        let mut got = vec![0.0; m * k];
        matmul_a_bt(&a, &b, &mut got, m, n, k);
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut want = vec![0.0; m * k];
        matmul(&a, &bt, &mut want, m, n, k);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let t1 = Tensor::xavier(&[16, 16], 16, 16, 7);
        let t2 = Tensor::xavier(&[16, 16], 16, 16, 7);
        assert_eq!(t1, t2);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(t1.data.iter().all(|v| v.abs() <= bound));
        let t3 = Tensor::xavier(&[16, 16], 16, 16, 8);
        assert_ne!(t1, t3);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.mse(&t), 0.0);
        let u = Tensor::from_vec(vec![1.0, 4.0], &[2]);
        assert_eq!(t.mse(&u), 2.0);
    }
}
