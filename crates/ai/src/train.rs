//! Training harness implementing the paper's protocol (§5.2.1): training
//! data from high-resolution model output, a 7:1 train:test partition, and
//! three random time steps per day held out as a validation subset.

use crate::net::TendencyCnn;
use crate::optim::Adam;
use crate::tensor::Tensor;

/// Deterministic split of sample indices into train/test with ratio 7:1
/// (every 8th sample is test), mirroring "a 7:1 training:test partition".
pub fn train_test_split(nsamples: usize) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for i in 0..nsamples {
        if i % 8 == 7 {
            test.push(i);
        } else {
            train.push(i);
        }
    }
    (train, test)
}

/// Pick `per_day` pseudo-random steps from each day for validation
/// ("extract three random time steps per day as a validation subset").
/// Deterministic in `seed`.
pub fn validation_steps(days: usize, steps_per_day: usize, per_day: usize, seed: u64) -> Vec<usize> {
    let mut out = Vec::with_capacity(days * per_day);
    let mut state = seed | 1;
    for d in 0..days {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < per_day.min(steps_per_day) {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let s = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) as usize) % steps_per_day;
            chosen.insert(d * steps_per_day + s);
        }
        out.extend(chosen);
    }
    out
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 16,
            lr: 1e-3,
        }
    }
}

/// Per-epoch record for convergence reporting.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_mse: f32,
    pub test_mse: f32,
}

/// Trains a [`TendencyCnn`] on (input, target) column pairs.
pub struct Trainer {
    pub config: TrainConfig,
}

impl Trainer {
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// `inputs[i]`: `[5, nlev]` flattened; `targets[i]`: `[4, nlev]`
    /// flattened. Returns per-epoch train/test MSE.
    pub fn train_cnn(
        &self,
        net: &mut TendencyCnn,
        inputs: &[Vec<f32>],
        targets: &[Vec<f32>],
    ) -> Vec<EpochStats> {
        assert_eq!(inputs.len(), targets.len());
        assert!(!inputs.is_empty());
        let nlev = net.nlev;
        let (train_idx, test_idx) = train_test_split(inputs.len());
        let mut opt = Adam::new(self.config.lr);
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let mut train_mse = 0.0;
            let mut batches = 0;
            for chunk in train_idx.chunks(self.config.batch_size) {
                let (x, y) = Self::collect_batch(inputs, targets, chunk, nlev);
                let pred = net.forward(&x);
                train_mse += pred.mse(&y);
                batches += 1;
                // dL/dpred for MSE = 2(pred − y)/n
                let n = pred.len() as f32;
                let dy = Tensor {
                    data: pred
                        .data
                        .iter()
                        .zip(&y.data)
                        .map(|(p, t)| 2.0 * (p - t) / n)
                        .collect(),
                    shape: pred.shape.clone(),
                };
                net.zero_grad();
                net.backward(&dy);
                opt.step(&mut net.params_mut());
            }
            let test_mse = self.evaluate_cnn(net, inputs, targets, &test_idx);
            stats.push(EpochStats {
                epoch,
                train_mse: train_mse / batches.max(1) as f32,
                test_mse,
            });
        }
        stats
    }

    /// MSE of the network over the given sample indices.
    pub fn evaluate_cnn(
        &self,
        net: &mut TendencyCnn,
        inputs: &[Vec<f32>],
        targets: &[Vec<f32>],
        idx: &[usize],
    ) -> f32 {
        if idx.is_empty() {
            return 0.0;
        }
        let nlev = net.nlev;
        let mut total = 0.0;
        for chunk in idx.chunks(self.config.batch_size) {
            let (x, y) = Self::collect_batch(inputs, targets, chunk, nlev);
            let pred = net.forward(&x);
            total += pred.mse(&y) * chunk.len() as f32;
        }
        total / idx.len() as f32
    }

    fn collect_batch(
        inputs: &[Vec<f32>],
        targets: &[Vec<f32>],
        idx: &[usize],
        nlev: usize,
    ) -> (Tensor, Tensor) {
        let b = idx.len();
        let mut x = Vec::with_capacity(b * 5 * nlev);
        let mut y = Vec::with_capacity(b * 4 * nlev);
        for &i in idx {
            assert_eq!(inputs[i].len(), 5 * nlev, "input sample size");
            assert_eq!(targets[i].len(), 4 * nlev, "target sample size");
            x.extend_from_slice(&inputs[i]);
            y.extend_from_slice(&targets[i]);
        }
        (
            Tensor::from_vec(x, &[b, 5, nlev]),
            Tensor::from_vec(y, &[b, 4, nlev]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_seven_to_one() {
        let (train, test) = train_test_split(800);
        assert_eq!(train.len(), 700);
        assert_eq!(test.len(), 100);
        // Disjoint and complete.
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort();
        assert_eq!(all, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn validation_steps_three_per_day() {
        let v = validation_steps(80, 24, 3, 99);
        assert_eq!(v.len(), 240);
        // Every step belongs to its day's range and days are distinct.
        for (i, &s) in v.iter().enumerate() {
            let day = i / 3;
            assert!(s >= day * 24 && s < (day + 1) * 24);
        }
        // Deterministic.
        assert_eq!(v, validation_steps(80, 24, 3, 99));
        assert_ne!(v, validation_steps(80, 24, 3, 100));
    }

    #[test]
    fn training_reduces_loss_on_learnable_map() {
        // Target: a fixed linear map of the input profiles — learnable by
        // the CNN. Loss must drop substantially.
        let nlev = 8;
        let nsamples = 64;
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        let mut state = 12345u64;
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / 16777216.0 - 0.5
        };
        for _ in 0..nsamples {
            let x: Vec<f32> = (0..5 * nlev).map(|_| rnd()).collect();
            // target channel c = 0.5*x[c] − 0.25*x[c+1]
            let mut y = vec![0.0f32; 4 * nlev];
            for c in 0..4 {
                for l in 0..nlev {
                    y[c * nlev + l] = 0.5 * x[c * nlev + l] - 0.25 * x[(c + 1) * nlev + l];
                }
            }
            inputs.push(x);
            targets.push(y);
        }
        let mut net = TendencyCnn::with_width(nlev, 8, 5);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 3e-3,
        });
        let stats = trainer.train_cnn(&mut net, &inputs, &targets);
        let first = stats.first().unwrap().train_mse;
        let last = stats.last().unwrap().train_mse;
        assert!(
            last < first * 0.2,
            "loss did not drop: {first} -> {last}"
        );
        // Generalisation: test error also improved.
        assert!(stats.last().unwrap().test_mse < stats.first().unwrap().test_mse);
    }
}
