//! Physics-facing wrappers: normalisation + the two AI modules with the
//! dycore-facing call signature of Fig. 4 — "this suite gets the input
//! variables from the dynamical core and returns full physical variables
//! back to the physics-dynamics coupling interface".

use crate::net::{RadiationMlp, TendencyCnn, TENDENCY_IN_CH, TENDENCY_OUT_CH};
use crate::tensor::Tensor;

/// Per-channel standardisation (mean/std over the training set).
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    pub mean: Vec<f32>,
    pub std: Vec<f32>,
}

impl Normalizer {
    /// Fit per-channel statistics from samples laid out `[channels × n]`
    /// per sample.
    pub fn fit(samples: &[Vec<f32>], channels: usize) -> Self {
        assert!(!samples.is_empty());
        let per_ch = samples[0].len() / channels;
        let mut mean = vec![0.0f64; channels];
        let mut count = 0usize;
        for s in samples {
            assert_eq!(s.len(), channels * per_ch);
            for c in 0..channels {
                for l in 0..per_ch {
                    mean[c] += s[c * per_ch + l] as f64;
                }
            }
            count += per_ch;
        }
        for m in &mut mean {
            *m /= count as f64;
        }
        let mut var = vec![0.0f64; channels];
        for s in samples {
            for c in 0..channels {
                for l in 0..per_ch {
                    let d = s[c * per_ch + l] as f64 - mean[c];
                    var[c] += d * d;
                }
            }
        }
        Normalizer {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std: var
                .iter()
                .map(|&v| ((v / count as f64).sqrt().max(1e-8)) as f32)
                .collect(),
        }
    }

    pub fn normalize(&self, sample: &[f32], channels: usize) -> Vec<f32> {
        let per_ch = sample.len() / channels;
        let mut out = Vec::with_capacity(sample.len());
        for c in 0..channels {
            for l in 0..per_ch {
                out.push((sample[c * per_ch + l] - self.mean[c]) / self.std[c]);
            }
        }
        out
    }

    pub fn denormalize(&self, sample: &[f32], channels: usize) -> Vec<f32> {
        let per_ch = sample.len() / channels;
        let mut out = Vec::with_capacity(sample.len());
        for c in 0..channels {
            for l in 0..per_ch {
                out.push(sample[c * per_ch + l] * self.std[c] + self.mean[c]);
            }
        }
        out
    }
}

/// One atmospheric column's state handed to the AI suite: per-level U, V,
/// T, Q plus pressure P (all SI units, surface first).
#[derive(Debug, Clone)]
pub struct ColumnState {
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub t: Vec<f64>,
    pub q: Vec<f64>,
    pub p: Vec<f64>,
}

impl ColumnState {
    pub fn nlev(&self) -> usize {
        self.u.len()
    }

    /// Flatten to the `[5, nlev]` FP32 layout the CNN consumes.
    pub fn to_input(&self) -> Vec<f32> {
        let n = self.nlev();
        assert!(
            self.v.len() == n && self.t.len() == n && self.q.len() == n && self.p.len() == n,
            "ragged column"
        );
        let mut x = Vec::with_capacity(5 * n);
        for src in [&self.u, &self.v, &self.t, &self.q, &self.p] {
            x.extend(src.iter().map(|&v| v as f32));
        }
        x
    }
}

/// Physics tendencies for one column (per level, per second).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnTendency {
    pub du: Vec<f64>,
    pub dv: Vec<f64>,
    pub dt: Vec<f64>,
    pub dq: Vec<f64>,
}

impl ColumnTendency {
    pub fn from_output(out: &[f32], nlev: usize) -> Self {
        assert_eq!(out.len(), TENDENCY_OUT_CH * nlev);
        let grab = |c: usize| out[c * nlev..(c + 1) * nlev].iter().map(|&v| v as f64).collect();
        ColumnTendency {
            du: grab(0),
            dv: grab(1),
            dt: grab(2),
            dq: grab(3),
        }
    }

    pub fn zeros(nlev: usize) -> Self {
        ColumnTendency {
            du: vec![0.0; nlev],
            dv: vec![0.0; nlev],
            dt: vec![0.0; nlev],
            dq: vec![0.0; nlev],
        }
    }
}

/// The trained AI tendency module with its input/output normalisers.
pub struct TendencyModule {
    pub net: TendencyCnn,
    pub in_norm: Normalizer,
    pub out_norm: Normalizer,
}

impl TendencyModule {
    pub fn new(net: TendencyCnn, in_norm: Normalizer, out_norm: Normalizer) -> Self {
        assert_eq!(in_norm.mean.len(), TENDENCY_IN_CH);
        assert_eq!(out_norm.mean.len(), TENDENCY_OUT_CH);
        TendencyModule {
            net,
            in_norm,
            out_norm,
        }
    }

    /// Predict tendencies for a batch of columns.
    pub fn predict(&mut self, columns: &[ColumnState]) -> Vec<ColumnTendency> {
        if columns.is_empty() {
            return Vec::new();
        }
        let nlev = self.net.nlev;
        let b = columns.len();
        let mut x = Vec::with_capacity(b * TENDENCY_IN_CH * nlev);
        for col in columns {
            assert_eq!(col.nlev(), nlev, "column level mismatch");
            x.extend(self.in_norm.normalize(&col.to_input(), TENDENCY_IN_CH));
        }
        let xt = Tensor::from_vec(x, &[b, TENDENCY_IN_CH, nlev]);
        let y = self.net.forward(&xt);
        let per = TENDENCY_OUT_CH * nlev;
        (0..b)
            .map(|bi| {
                let raw = self
                    .out_norm
                    .denormalize(&y.data[bi * per..(bi + 1) * per], TENDENCY_OUT_CH);
                ColumnTendency::from_output(&raw, nlev)
            })
            .collect()
    }

    /// [`TendencyModule::predict`] by shared reference: normalisation plus
    /// one batched inference forward ([`TendencyCnn::forward_batch`]), no
    /// backward caches touched — safe to call concurrently from many
    /// serving threads on one warm module.
    pub fn predict_batch(&self, columns: &[ColumnState]) -> Vec<ColumnTendency> {
        if columns.is_empty() {
            return Vec::new();
        }
        let nlev = self.net.nlev;
        let b = columns.len();
        let mut x = Vec::with_capacity(b * TENDENCY_IN_CH * nlev);
        for col in columns {
            assert_eq!(col.nlev(), nlev, "column level mismatch");
            x.extend(self.in_norm.normalize(&col.to_input(), TENDENCY_IN_CH));
        }
        let xt = Tensor::from_vec(x, &[b, TENDENCY_IN_CH, nlev]);
        let y = self.net.forward_batch(&xt);
        let per = TENDENCY_OUT_CH * nlev;
        (0..b)
            .map(|bi| {
                let raw = self
                    .out_norm
                    .denormalize(&y.data[bi * per..(bi + 1) * per], TENDENCY_OUT_CH);
                ColumnTendency::from_output(&raw, nlev)
            })
            .collect()
    }
}

/// Surface radiation estimates from the MLP module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceRadiation {
    /// Surface downward shortwave flux (W/m²).
    pub gsw: f64,
    /// Surface downward longwave flux (W/m²).
    pub glw: f64,
}

/// The trained AI radiation diagnosis module.
pub struct RadiationModule {
    pub net: RadiationMlp,
    pub in_norm: Normalizer,
    pub out_norm: Normalizer,
}

impl RadiationModule {
    pub fn new(net: RadiationMlp, in_norm: Normalizer, out_norm: Normalizer) -> Self {
        RadiationModule {
            net,
            in_norm,
            out_norm,
        }
    }

    /// Input vector: the column profiles plus skin temperature and cosine
    /// solar zenith angle (§5.2.1).
    pub fn build_input(col: &ColumnState, tskin: f64, coszr: f64) -> Vec<f32> {
        let mut x = col.to_input();
        x.push(tskin as f32);
        x.push(coszr as f32);
        x
    }

    pub fn predict(&mut self, inputs: &[Vec<f32>]) -> Vec<SurfaceRadiation> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let dim = inputs[0].len();
        let b = inputs.len();
        let mut x = Vec::with_capacity(b * dim);
        for s in inputs {
            assert_eq!(s.len(), dim);
            x.extend(self.in_norm.normalize(s, 1));
        }
        let xt = Tensor::from_vec(x, &[b, dim]);
        let y = self.net.forward(&xt);
        (0..b)
            .map(|bi| {
                let raw = self.out_norm.denormalize(&y.data[bi * 2..bi * 2 + 2], 2);
                SurfaceRadiation {
                    gsw: raw[0] as f64,
                    glw: raw[1] as f64,
                }
            })
            .collect()
    }

    /// [`RadiationModule::predict`] by shared reference (see
    /// [`TendencyModule::predict_batch`]): the concurrent serving path.
    pub fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<SurfaceRadiation> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let dim = inputs[0].len();
        let b = inputs.len();
        let mut x = Vec::with_capacity(b * dim);
        for s in inputs {
            assert_eq!(s.len(), dim);
            x.extend(self.in_norm.normalize(s, 1));
        }
        let xt = Tensor::from_vec(x, &[b, dim]);
        let y = self.net.forward_batch(&xt);
        (0..b)
            .map(|bi| {
                let raw = self.out_norm.denormalize(&y.data[bi * 2..bi * 2 + 2], 2);
                SurfaceRadiation {
                    gsw: raw[0] as f64,
                    glw: raw[1] as f64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::TendencyCnn;

    #[test]
    fn normalizer_roundtrip() {
        let samples = vec![
            vec![1.0, 2.0, 10.0, 20.0], // 2 channels × 2 levels
            vec![3.0, 4.0, 30.0, 40.0],
        ];
        let n = Normalizer::fit(&samples, 2);
        let z = n.normalize(&samples[0], 2);
        let back = n.denormalize(&z, 2);
        for (a, b) in samples[0].iter().zip(&back) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn normalizer_standardises() {
        let samples = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
        let n = Normalizer::fit(&samples, 1);
        assert!((n.mean[0] - 5.0).abs() < 1e-5);
        assert!((n.std[0] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn column_to_input_layout() {
        let col = ColumnState {
            u: vec![1.0, 2.0],
            v: vec![3.0, 4.0],
            t: vec![5.0, 6.0],
            q: vec![7.0, 8.0],
            p: vec![9.0, 10.0],
        };
        assert_eq!(
            col.to_input(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        );
    }

    #[test]
    fn tendency_module_batch_predict_shapes() {
        let nlev = 6;
        let net = TendencyCnn::with_width(nlev, 4, 3);
        let in_norm = Normalizer {
            mean: vec![0.0; 5],
            std: vec![1.0; 5],
        };
        let out_norm = Normalizer {
            mean: vec![0.0; 4],
            std: vec![1.0; 4],
        };
        let mut module = TendencyModule::new(net, in_norm, out_norm);
        let col = ColumnState {
            u: vec![1.0; nlev],
            v: vec![0.5; nlev],
            t: vec![280.0; nlev],
            q: vec![0.01; nlev],
            p: vec![9.0e4; nlev],
        };
        let out = module.predict(&[col.clone(), col]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].du.len(), nlev);
        assert_eq!(out[0].dq.len(), nlev);
        // Identical inputs → identical outputs.
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn radiation_module_predicts_two_fluxes() {
        let nlev = 4;
        let net = RadiationMlp::with_width(nlev, 8, 17);
        let dim = RadiationMlp::input_dim(nlev);
        let in_norm = Normalizer {
            mean: vec![0.0; 1],
            std: vec![1.0; 1],
        };
        let out_norm = Normalizer {
            mean: vec![100.0, 300.0],
            std: vec![50.0, 30.0],
        };
        let mut module = RadiationModule::new(net, in_norm, out_norm);
        let col = ColumnState {
            u: vec![0.0; nlev],
            v: vec![0.0; nlev],
            t: vec![280.0; nlev],
            q: vec![0.005; nlev],
            p: vec![9.0e4; nlev],
        };
        let x = RadiationModule::build_input(&col, 290.0, 0.7);
        assert_eq!(x.len(), dim);
        let out = module.predict(&[x]);
        assert_eq!(out.len(), 1);
        assert!(out[0].gsw.is_finite() && out[0].glw.is_finite());
    }

    #[test]
    fn empty_batch_ok() {
        let net = TendencyCnn::with_width(4, 4, 1);
        let mut module = TendencyModule::new(
            net,
            Normalizer {
                mean: vec![0.0; 5],
                std: vec![1.0; 5],
            },
            Normalizer {
                mean: vec![0.0; 4],
                std: vec![1.0; 4],
            },
        );
        assert!(module.predict(&[]).is_empty());
    }
}
