//! # AP3ESM AI physics library (`ap3esm-ai`)
//!
//! The paper's §5.2.1 AI-powered, resolution-adaptive physics suite is built
//! from two networks:
//!
//! * an **AI tendency module**: a 1-D CNN along the vertical column — five
//!   ResUnits inside an 11-layer deep CNN, ≈ 5×10⁵ trainable parameters —
//!   taking (U, V, T, Q, P) profiles and returning physics tendencies,
//! * an **AI radiation diagnosis module**: a 7-layer MLP with residual
//!   connections taking the atmospheric inputs plus skin temperature and
//!   the cosine of the solar zenith angle, estimating surface downward
//!   shortwave (`gsw`) and longwave (`glw`) fluxes.
//!
//! No ML framework is available offline, so this crate implements the whole
//! stack from scratch: FP32 tensors, conv1d/dense layers with hand-written
//! backward passes, Adam, MSE training, and the two physics-facing modules
//! with the paper's training protocol (80 days of high-resolution model
//! output, 7:1 train:test split, three random steps per day for validation).

pub mod layers;
pub mod modules;
pub mod net;
pub mod optim;
pub mod tensor;
pub mod train;

pub use modules::{RadiationModule, TendencyModule};
pub use net::{RadiationMlp, TendencyCnn};
pub use optim::Adam;
pub use tensor::Tensor;
pub use train::{train_test_split, TrainConfig, Trainer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architectures_have_paper_sizes() {
        // §5.2.1: "five ResUnits within an 11-layer deep CNN totaling
        // approximately 5×10^5 trainable parameters".
        let cnn = TendencyCnn::paper(30);
        let p = cnn.num_parameters();
        assert!(
            (450_000..=550_000).contains(&p),
            "CNN has {p} params, expected ≈5e5"
        );
        assert_eq!(cnn.conv_layers(), 11);
        assert_eq!(cnn.res_units(), 5);

        // "A 7-layer multi-layer perceptron (MLP) with residual connections".
        let mlp = RadiationMlp::paper(30);
        assert_eq!(mlp.layers(), 7);
    }
}
