//! Neural-network layers with hand-written backward passes.
//!
//! Shapes: dense layers take `[batch, in]`; conv layers take
//! `[batch, channels, length]` where `length` is the vertical column (the
//! paper applies "a one-dimensional convolution along the vertical column").

use crate::tensor::{matmul, matmul_a_bt, matmul_at_b, Tensor};

/// A trainable layer: forward caches what backward needs; backward
/// accumulates parameter gradients and returns the input gradient.
pub trait Layer {
    fn forward(&mut self, x: &Tensor) -> Tensor;
    fn backward(&mut self, dy: &Tensor) -> Tensor;
    /// (parameter, gradient) pairs for the optimizer.
    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)>;
    fn num_parameters(&self) -> usize;
    fn zero_grad(&mut self);
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x·Wᵀ + b`, W: `[out, in]`.
pub struct Dense {
    pub w: Tensor,
    pub b: Tensor,
    pub dw: Tensor,
    pub db: Tensor,
    input: Option<Tensor>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Dense {
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Dense {
            w: Tensor::xavier(&[out_dim, in_dim], in_dim, out_dim, seed),
            b: Tensor::zeros(&[out_dim]),
            dw: Tensor::zeros(&[out_dim, in_dim]),
            db: Tensor::zeros(&[out_dim]),
            input: None,
            in_dim,
            out_dim,
        }
    }

    /// Inference-only forward: the same arithmetic as [`Layer::forward`]
    /// (one GEMM then bias), but by shared reference and without caching
    /// the input for backward — one warm layer can serve many threads.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape.len(), 2, "dense expects [batch, in]");
        assert_eq!(x.shape[1], self.in_dim);
        let batch = x.shape[0];
        let mut y = Tensor::zeros(&[batch, self.out_dim]);
        matmul_a_bt(&x.data, &self.w.data, &mut y.data, batch, self.in_dim, self.out_dim);
        for bi in 0..batch {
            for o in 0..self.out_dim {
                y.data[bi * self.out_dim + o] += self.b.data[o];
            }
        }
        y
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape.len(), 2, "dense expects [batch, in]");
        assert_eq!(x.shape[1], self.in_dim);
        let batch = x.shape[0];
        let mut y = Tensor::zeros(&[batch, self.out_dim]);
        // y = x[b,in]·Wᵀ[in,out]
        matmul_a_bt(&x.data, &self.w.data, &mut y.data, batch, self.in_dim, self.out_dim);
        for bi in 0..batch {
            for o in 0..self.out_dim {
                y.data[bi * self.out_dim + o] += self.b.data[o];
            }
        }
        self.input = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.input.as_ref().expect("forward before backward");
        let batch = x.shape[0];
        assert_eq!(dy.shape, vec![batch, self.out_dim]);
        // dW += dyᵀ[out,batch]·x[batch,in]
        matmul_at_b(
            &dy.data,
            &x.data,
            &mut self.dw.data,
            batch,
            self.out_dim,
            self.in_dim,
        );
        for bi in 0..batch {
            for o in 0..self.out_dim {
                self.db.data[o] += dy.data[bi * self.out_dim + o];
            }
        }
        // dx = dy[batch,out]·W[out,in]
        let mut dx = Tensor::zeros(&[batch, self.in_dim]);
        matmul(
            &dy.data,
            &self.w.data,
            &mut dx.data,
            batch,
            self.out_dim,
            self.in_dim,
        );
        dx
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.w, &mut self.dw), (&mut self.b, &mut self.db)]
    }

    fn num_parameters(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.dw.data.fill(0.0);
        self.db.data.fill(0.0);
    }
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

/// 1-D convolution with "same" zero padding, odd kernel size.
/// W: `[out_ch, in_ch, k]`; input `[batch, in_ch, L]`.
pub struct Conv1d {
    pub w: Tensor,
    pub b: Tensor,
    pub dw: Tensor,
    pub db: Tensor,
    input: Option<Tensor>,
    pub in_ch: usize,
    pub out_ch: usize,
    pub k: usize,
}

impl Conv1d {
    pub fn new(in_ch: usize, out_ch: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "odd kernel only");
        Conv1d {
            w: Tensor::xavier(&[out_ch, in_ch, k], in_ch * k, out_ch * k, seed),
            b: Tensor::zeros(&[out_ch]),
            dw: Tensor::zeros(&[out_ch, in_ch, k]),
            db: Tensor::zeros(&[out_ch]),
            input: None,
            in_ch,
            out_ch,
            k,
        }
    }

    /// Inference-only forward via im2col: the whole `[batch, ch, L]` input
    /// is lowered to one `[batch·L, in_ch·k]` patch matrix and the
    /// convolution becomes a dense GEMM with branch-free inner loops —
    /// the batched serving path. Accumulation order matches
    /// [`Layer::forward`] (bias first, then taps in `(in_ch, k)` order;
    /// padding contributes an exact `+0.0`), so results agree element-wise
    /// with the per-sample training forward. Takes `&self` and leaves no
    /// backward caches, so many threads can share one warm layer.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape.len(), 3, "conv1d expects [batch, ch, L]");
        assert_eq!(x.shape[1], self.in_ch);
        let (batch, len) = (x.shape[0], x.shape[2]);
        let half = self.k / 2;
        let patch = self.in_ch * self.k;
        let patch_of = |i: usize, t: usize| i * self.k + t;
        let bl = batch * len;
        // Transposed im2col: `colst[p][bi·len + l]`, patch row p = (i, t).
        // Pre-zeroed, so the padded window contributes an exact +0.0.
        let mut colst = vec![0.0f32; patch * bl];
        for bi in 0..batch {
            let xb = &x.data[bi * self.in_ch * len..(bi + 1) * self.in_ch * len];
            for i in 0..self.in_ch {
                let xrow = &xb[i * len..(i + 1) * len];
                for t in 0..self.k {
                    // Output position l reads x[l + t - half]; restrict l to
                    // the in-bounds window so padding stays zero.
                    let lo = half.saturating_sub(t);
                    let hi = (len + half).saturating_sub(t).min(len);
                    let dst = &mut colst[patch_of(i, t) * bl + bi * len..][..len];
                    for l in lo..hi {
                        dst[l] = xrow[l + t - half];
                    }
                }
            }
        }
        // GEMM with the reduction kept *serial per output element* (bias
        // first, then taps in (in_ch, k) order — exactly the training
        // forward's order) while the `bl` output positions act as
        // independent accumulators, so the inner axpy loops vectorize.
        let mut rows = vec![0.0f32; bl];
        let mut y = Tensor::zeros(&[batch, self.out_ch, len]);
        for o in 0..self.out_ch {
            rows.fill(self.b.data[o]);
            let wrow = &self.w.data[o * patch..(o + 1) * patch];
            for (p, &w) in wrow.iter().enumerate() {
                let col = &colst[p * bl..(p + 1) * bl];
                for (r, &c) in rows.iter_mut().zip(col) {
                    *r += c * w;
                }
            }
            // Scatter [o][bi·len + l] → y[bi][o][l].
            for bi in 0..batch {
                y.data[(bi * self.out_ch + o) * len..(bi * self.out_ch + o + 1) * len]
                    .copy_from_slice(&rows[bi * len..(bi + 1) * len]);
            }
        }
        y
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape.len(), 3, "conv1d expects [batch, ch, L]");
        assert_eq!(x.shape[1], self.in_ch);
        let (batch, len) = (x.shape[0], x.shape[2]);
        let half = self.k / 2;
        let mut y = Tensor::zeros(&[batch, self.out_ch, len]);
        for bi in 0..batch {
            let xb = &x.data[bi * self.in_ch * len..(bi + 1) * self.in_ch * len];
            let yb = &mut y.data[bi * self.out_ch * len..(bi + 1) * self.out_ch * len];
            for o in 0..self.out_ch {
                let bias = self.b.data[o];
                for l in 0..len {
                    let mut acc = bias;
                    for i in 0..self.in_ch {
                        let xrow = &xb[i * len..(i + 1) * len];
                        let base = (o * self.in_ch + i) * self.k;
                        let wrow = &self.w.data[base..base + self.k];
                        for (t, &w) in wrow.iter().enumerate() {
                            let src = l + t;
                            if src >= half && src - half < len {
                                acc += w * xrow[src - half];
                            }
                        }
                    }
                    yb[o * len + l] = acc;
                }
            }
        }
        self.input = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.input.as_ref().expect("forward before backward");
        let (batch, len) = (x.shape[0], x.shape[2]);
        assert_eq!(dy.shape, vec![batch, self.out_ch, len]);
        let half = self.k / 2;
        let mut dx = Tensor::zeros(&[batch, self.in_ch, len]);
        for bi in 0..batch {
            let xb = &x.data[bi * self.in_ch * len..(bi + 1) * self.in_ch * len];
            let dyb = &dy.data[bi * self.out_ch * len..(bi + 1) * self.out_ch * len];
            let dxb = &mut dx.data[bi * self.in_ch * len..(bi + 1) * self.in_ch * len];
            for o in 0..self.out_ch {
                let dyrow = &dyb[o * len..(o + 1) * len];
                self.db.data[o] += dyrow.iter().sum::<f32>();
                for i in 0..self.in_ch {
                    let xrow = &xb[i * len..(i + 1) * len];
                    let wbase = (o * self.in_ch + i) * self.k;
                    for t in 0..self.k {
                        let w = self.w.data[wbase + t];
                        let mut dwt = 0.0;
                        for (l, &g) in dyrow.iter().enumerate() {
                            let src = l + t;
                            if src >= half && src - half < len {
                                let xv = xrow[src - half];
                                dwt += g * xv;
                                dxb[i * len + src - half] += g * w;
                            }
                        }
                        self.dw.data[wbase + t] += dwt;
                    }
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.w, &mut self.dw), (&mut self.b, &mut self.db)]
    }

    fn num_parameters(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.dw.data.fill(0.0);
        self.db.data.fill(0.0);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Inference-only elementwise ReLU, in place (no gradient mask is kept).
/// Uses the same `max(0.0)` as [`Relu::forward`] so both paths agree
/// element-wise.
pub fn relu_infer_inplace(t: &mut Tensor) {
    for v in &mut t.data {
        *v = v.max(0.0);
    }
}

/// Elementwise rectifier.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = x.data.iter().map(|&v| v > 0.0).collect();
        Tensor {
            data: x.data.iter().map(|&v| v.max(0.0)).collect(),
            shape: x.shape.clone(),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(dy.len(), self.mask.len());
        Tensor {
            data: dy
                .data
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
            shape: dy.shape.clone(),
        }
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![]
    }

    fn num_parameters(&self) -> usize {
        0
    }

    fn zero_grad(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check against the analytic backward pass.
    fn grad_check<L: Layer>(layer: &mut L, x: &Tensor, eps: f32, tol: f32) {
        // Loss = sum(y); dy = ones.
        let y = layer.forward(x);
        let dy = Tensor::from_vec(vec![1.0; y.len()], &y.shape);
        layer.zero_grad();
        let dx = layer.backward(&dy);
        // Check input gradient numerically for a few entries.
        for idx in [0, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let yp: f32 = layer.forward(&xp).data.iter().sum();
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let ym: f32 = layer.forward(&xm).data.iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - dx.data[idx]).abs() < tol,
                "dx[{idx}]: numeric {num} analytic {}",
                dx.data[idx]
            );
        }
    }

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 2, 1);
        d.w.data = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        d.b.data = vec![0.5, -0.5];
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&x);
        assert_eq!(y.data, vec![3.5, 6.5]);
    }

    #[test]
    fn dense_gradcheck() {
        let mut d = Dense::new(5, 3, 42);
        let x = Tensor::xavier(&[2, 5], 5, 3, 9);
        grad_check(&mut d, &x, 1e-3, 1e-2);
    }

    #[test]
    fn dense_weight_gradient_numeric() {
        let mut d = Dense::new(3, 2, 7);
        let x = Tensor::xavier(&[4, 3], 3, 2, 11);
        let y = d.forward(&x);
        let dy = Tensor::from_vec(vec![1.0; y.len()], &y.shape);
        d.zero_grad();
        d.backward(&dy);
        let analytic = d.dw.data[2];
        let eps = 1e-3;
        d.w.data[2] += eps;
        let yp: f32 = d.forward(&x).data.iter().sum();
        d.w.data[2] -= 2.0 * eps;
        let ym: f32 = d.forward(&x).data.iter().sum();
        d.w.data[2] += eps;
        let numeric = (yp - ym) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-2, "{analytic} vs {numeric}");
    }

    #[test]
    fn conv1d_forward_identity_kernel() {
        let mut c = Conv1d::new(1, 1, 3, 1);
        c.w.data = vec![0.0, 1.0, 0.0]; // delta kernel
        c.b.data = vec![0.0];
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = c.forward(&x);
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn conv1d_same_padding_shape() {
        let mut c = Conv1d::new(3, 5, 3, 2);
        let x = Tensor::zeros(&[2, 3, 30]);
        let y = c.forward(&x);
        assert_eq!(y.shape, vec![2, 5, 30]);
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut c = Conv1d::new(2, 3, 3, 5);
        let x = Tensor::xavier(&[1, 2, 7], 6, 9, 3);
        grad_check(&mut c, &x, 1e-3, 1e-2);
    }

    #[test]
    fn relu_masks_negative_gradients() {
        let mut r = Relu::default();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0], &[3]);
        let y = r.forward(&x);
        assert_eq!(y.data, vec![0.0, 2.0, 0.0]);
        let dx = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(dx.data, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn conv1d_infer_matches_forward_exactly() {
        let mut c = Conv1d::new(3, 4, 3, 9);
        for batch in [1usize, 2, 5] {
            let x = Tensor::xavier(&[batch, 3, 7], 9, 12, batch as u64 + 1);
            let want = c.forward(&x);
            let got = c.infer(&x);
            assert_eq!(got.shape, want.shape);
            for (g, w) in got.data.iter().zip(&want.data) {
                assert!((g - w).abs() <= 1e-7, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn conv1d_infer_handles_kernel_wider_than_column() {
        // k = 5 on a length-2 column: every tap is partially padded.
        let mut c = Conv1d::new(2, 2, 5, 4);
        let x = Tensor::xavier(&[2, 2, 2], 10, 10, 3);
        let want = c.forward(&x);
        let got = c.infer(&x);
        for (g, w) in got.data.iter().zip(&want.data) {
            assert!((g - w).abs() <= 1e-7, "{g} vs {w}");
        }
    }

    #[test]
    fn dense_infer_matches_forward_exactly() {
        let mut d = Dense::new(6, 3, 21);
        let x = Tensor::xavier(&[4, 6], 6, 3, 2);
        assert_eq!(d.infer(&x).data, d.forward(&x).data);
    }

    #[test]
    fn relu_infer_matches_layer() {
        let x = Tensor::from_vec(vec![-2.0, -0.0, 0.0, 3.5], &[4]);
        let mut r = Relu::default();
        let want = r.forward(&x);
        let mut got = x.clone();
        relu_infer_inplace(&mut got);
        assert_eq!(got.data, want.data);
    }

    #[test]
    fn param_counts() {
        let d = Dense::new(10, 4, 0);
        assert_eq!(d.num_parameters(), 44);
        let c = Conv1d::new(5, 128, 3, 0);
        assert_eq!(c.num_parameters(), 5 * 128 * 3 + 128);
    }
}
