//! The paper's two network architectures (§5.2.1, Fig. 4).

use crate::layers::{relu_infer_inplace, Conv1d, Dense, Layer, Relu};
use crate::tensor::Tensor;

/// One residual unit: `y = relu(conv2(relu(conv1(x))) + x)`.
struct ResUnit {
    conv1: Conv1d,
    relu1: Relu,
    conv2: Conv1d,
    relu_out: Relu,
}

impl ResUnit {
    fn new(ch: usize, k: usize, seed: u64) -> Self {
        ResUnit {
            conv1: Conv1d::new(ch, ch, k, seed),
            relu1: Relu::default(),
            conv2: Conv1d::new(ch, ch, k, seed.wrapping_add(1)),
            relu_out: Relu::default(),
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.conv1.forward(x);
        let h = self.relu1.forward(&h);
        let h = self.conv2.forward(&h);
        let mut sum = h;
        for (s, xv) in sum.data.iter_mut().zip(&x.data) {
            *s += xv;
        }
        self.relu_out.forward(&sum)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dsum = self.relu_out.backward(dy);
        let dh = self.conv2.backward(&dsum);
        let dh = self.relu1.backward(&dh);
        let mut dx = self.conv1.backward(&dh);
        for (d, s) in dx.data.iter_mut().zip(&dsum.data) {
            *d += s; // skip-connection gradient
        }
        dx
    }

    /// Inference-only forward (shared reference, batched im2col convs,
    /// no backward caches).
    fn infer(&self, x: &Tensor) -> Tensor {
        let mut h = self.conv1.infer(x);
        relu_infer_inplace(&mut h);
        let mut sum = self.conv2.infer(&h);
        for (s, xv) in sum.data.iter_mut().zip(&x.data) {
            *s += xv;
        }
        relu_infer_inplace(&mut sum);
        sum
    }
}

/// The AI tendency module: an 11-layer CNN along the vertical column with
/// five ResUnits. Input `[batch, 5, nlev]` (U, V, T, Q, P profiles), output
/// `[batch, 4, nlev]` (dU, dV, dT, dQ tendencies).
pub struct TendencyCnn {
    conv_in: Conv1d,
    relu_in: Relu,
    units: Vec<ResUnit>,
    head: Conv1d,
    pub nlev: usize,
    pub width: usize,
}

/// Input channels: U, V, T, Q, P.
pub const TENDENCY_IN_CH: usize = 5;
/// Output channels: dU, dV, dT, dQ.
pub const TENDENCY_OUT_CH: usize = 4;

impl TendencyCnn {
    /// Paper-sized network: width 128 → ≈ 5×10⁵ parameters, 11 conv layers
    /// (1 input conv + 5 ResUnits × 2), 1×1 projection head.
    pub fn paper(nlev: usize) -> Self {
        Self::with_width(nlev, 128, 20250704)
    }

    /// Small configurations for tests.
    pub fn with_width(nlev: usize, width: usize, seed: u64) -> Self {
        TendencyCnn {
            conv_in: Conv1d::new(TENDENCY_IN_CH, width, 3, seed),
            relu_in: Relu::default(),
            units: (0..5)
                .map(|u| ResUnit::new(width, 3, seed.wrapping_add(100 + 10 * u as u64)))
                .collect(),
            head: Conv1d::new(width, TENDENCY_OUT_CH, 1, seed.wrapping_add(999)),
            nlev,
            width,
        }
    }

    /// Convolutional depth (the paper's "11-layer deep CNN").
    pub fn conv_layers(&self) -> usize {
        1 + self.units.len() * 2
    }

    pub fn res_units(&self) -> usize {
        self.units.len()
    }

    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape[1], TENDENCY_IN_CH, "expected [B, 5, nlev]");
        assert_eq!(x.shape[2], self.nlev);
        let mut h = self.conv_in.forward(x);
        h = self.relu_in.forward(&h);
        for u in &mut self.units {
            h = u.forward(&h);
        }
        self.head.forward(&h)
    }

    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut g = self.head.backward(dy);
        for u in self.units.iter_mut().rev() {
            g = u.backward(&g);
        }
        let g = self.relu_in.backward(&g);
        self.conv_in.backward(&g)
    }

    /// Batched inference path for the serving layer: a batch of B columns
    /// flows through one im2col GEMM per conv layer instead of B per-sample
    /// loops, by shared reference (no backward caches), so one set of warm
    /// weights serves many threads concurrently. Agrees element-wise with
    /// [`TendencyCnn::forward`] — same accumulation order per output.
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape[1], TENDENCY_IN_CH, "expected [B, 5, nlev]");
        assert_eq!(x.shape[2], self.nlev);
        let mut h = self.conv_in.infer(x);
        relu_infer_inplace(&mut h);
        for u in &self.units {
            h = u.infer(&h);
        }
        self.head.infer(&h)
    }

    pub fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut p = self.conv_in.params_mut();
        for u in &mut self.units {
            p.extend(u.conv1.params_mut());
            p.extend(u.conv2.params_mut());
        }
        p.extend(self.head.params_mut());
        p
    }

    pub fn num_parameters(&self) -> usize {
        let mut n = self.conv_in.num_parameters() + self.head.num_parameters();
        for u in &self.units {
            n += u.conv1.num_parameters() + u.conv2.num_parameters();
        }
        n
    }

    pub fn zero_grad(&mut self) {
        self.conv_in.zero_grad();
        for u in &mut self.units {
            u.conv1.zero_grad();
            u.conv2.zero_grad();
        }
        self.head.zero_grad();
    }
}

/// The AI radiation diagnosis module: a 7-layer MLP with residual
/// connections. Input: flattened (U, V, T, Q, P) profiles plus `tskin` and
/// `coszr`; output: surface downward shortwave and longwave fluxes
/// (gsw, glw).
pub struct RadiationMlp {
    input: Dense,
    relu_in: Relu,
    hidden: Vec<(Dense, Relu)>, // 5 residual hidden layers
    output: Dense,
    pub nlev: usize,
    pub width: usize,
}

/// Radiation outputs: gsw, glw.
pub const RADIATION_OUT: usize = 2;

impl RadiationMlp {
    /// Input dimension: 5 profile channels × nlev + tskin + coszr.
    pub fn input_dim(nlev: usize) -> usize {
        5 * nlev + 2
    }

    /// Paper-shaped network: 7 dense layers (input + 5 residual hidden +
    /// output) of width 64.
    pub fn paper(nlev: usize) -> Self {
        Self::with_width(nlev, 64, 20250705)
    }

    pub fn with_width(nlev: usize, width: usize, seed: u64) -> Self {
        RadiationMlp {
            input: Dense::new(Self::input_dim(nlev), width, seed),
            relu_in: Relu::default(),
            hidden: (0..5)
                .map(|h| {
                    (
                        Dense::new(width, width, seed.wrapping_add(31 * (h as u64 + 1))),
                        Relu::default(),
                    )
                })
                .collect(),
            output: Dense::new(width, RADIATION_OUT, seed.wrapping_add(1009)),
            nlev,
            width,
        }
    }

    /// Dense-layer depth (the paper's "7-layer MLP").
    pub fn layers(&self) -> usize {
        2 + self.hidden.len()
    }

    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape[1], Self::input_dim(self.nlev));
        let h = self.input.forward(x);
        let mut h = self.relu_in.forward(&h);
        for (dense, relu) in &mut self.hidden {
            let z = dense.forward(&h);
            let mut z = relu.forward(&z);
            for (zv, hv) in z.data.iter_mut().zip(&h.data) {
                *zv += hv; // residual connection
            }
            h = z;
        }
        self.output.forward(&h)
    }

    /// Batched inference path (see [`TendencyCnn::forward_batch`]): shared
    /// reference, no backward caches, element-wise equal to
    /// [`RadiationMlp::forward`].
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape[1], Self::input_dim(self.nlev));
        let mut h = self.input.infer(x);
        relu_infer_inplace(&mut h);
        for (dense, _) in &self.hidden {
            let mut z = dense.infer(&h);
            relu_infer_inplace(&mut z);
            for (zv, hv) in z.data.iter_mut().zip(&h.data) {
                *zv += hv; // residual connection
            }
            h = z;
        }
        self.output.infer(&h)
    }

    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut g = self.output.backward(dy);
        for (dense, relu) in self.hidden.iter_mut().rev() {
            let dz = relu.backward(&g);
            let dx = dense.backward(&dz);
            let mut gnext = dx;
            for (gn, gv) in gnext.data.iter_mut().zip(&g.data) {
                *gn += gv; // residual gradient
            }
            g = gnext;
        }
        let g = self.relu_in.backward(&g);
        self.input.backward(&g)
    }

    pub fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut p = self.input.params_mut();
        for (dense, _) in &mut self.hidden {
            p.extend(dense.params_mut());
        }
        p.extend(self.output.params_mut());
        p
    }

    pub fn num_parameters(&self) -> usize {
        self.input.num_parameters()
            + self
                .hidden
                .iter()
                .map(|(d, _)| d.num_parameters())
                .sum::<usize>()
            + self.output.num_parameters()
    }

    pub fn zero_grad(&mut self) {
        self.input.zero_grad();
        for (d, _) in &mut self.hidden {
            d.zero_grad();
        }
        self.output.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn_shapes() {
        let mut net = TendencyCnn::with_width(10, 8, 1);
        let x = Tensor::zeros(&[3, 5, 10]);
        let y = net.forward(&x);
        assert_eq!(y.shape, vec![3, 4, 10]);
    }

    #[test]
    fn cnn_backward_shapes_and_grads_nonzero() {
        let mut net = TendencyCnn::with_width(8, 4, 2);
        let x = Tensor::xavier(&[2, 5, 8], 5, 4, 3);
        let y = net.forward(&x);
        let dy = Tensor::from_vec(vec![1.0; y.len()], &y.shape);
        net.zero_grad();
        let dx = net.backward(&dy);
        assert_eq!(dx.shape, x.shape);
        let grads_nonzero = net
            .params_mut()
            .iter()
            .any(|(_, g)| g.data.iter().any(|&v| v != 0.0));
        assert!(grads_nonzero);
    }

    #[test]
    fn cnn_gradient_check_end_to_end() {
        let mut net = TendencyCnn::with_width(6, 4, 7);
        let x = Tensor::xavier(&[1, 5, 6], 5, 4, 5);
        let y = net.forward(&x);
        let dy = Tensor::from_vec(vec![1.0; y.len()], &y.shape);
        net.zero_grad();
        let dx = net.backward(&dy);
        let eps = 1e-2;
        for idx in [0, 10, 29] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let yp: f32 = net.forward(&xp).data.iter().sum();
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let ym: f32 = net.forward(&xm).data.iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - dx.data[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dx[{idx}]: numeric {num} analytic {}",
                dx.data[idx]
            );
        }
    }

    #[test]
    fn mlp_shapes_and_depth() {
        let mut net = RadiationMlp::with_width(10, 16, 3);
        assert_eq!(net.layers(), 7);
        let x = Tensor::zeros(&[4, 52]);
        let y = net.forward(&x);
        assert_eq!(y.shape, vec![4, 2]);
    }

    #[test]
    fn mlp_gradient_check() {
        let mut net = RadiationMlp::with_width(4, 8, 11);
        let x = Tensor::xavier(&[1, 22], 22, 8, 13);
        let y = net.forward(&x);
        let dy = Tensor::from_vec(vec![1.0; y.len()], &y.shape);
        net.zero_grad();
        let dx = net.backward(&dy);
        let eps = 1e-2;
        for idx in [0, 11, 21] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let yp: f32 = net.forward(&xp).data.iter().sum();
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let ym: f32 = net.forward(&xm).data.iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - dx.data[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dx[{idx}]: numeric {num} analytic {}",
                dx.data[idx]
            );
        }
    }

    #[test]
    fn cnn_forward_batch_matches_training_forward() {
        let mut net = TendencyCnn::with_width(9, 8, 31);
        let x = Tensor::xavier(&[4, 5, 9], 5, 8, 17);
        let want = net.forward(&x);
        let got = net.forward_batch(&x);
        assert_eq!(got.shape, want.shape);
        for (g, w) in got.data.iter().zip(&want.data) {
            assert!((g - w).abs() <= 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn mlp_forward_batch_matches_training_forward() {
        let mut net = RadiationMlp::with_width(6, 16, 13);
        let x = Tensor::xavier(&[5, 32], 32, 16, 23);
        let want = net.forward(&x);
        let got = net.forward_batch(&x);
        for (g, w) in got.data.iter().zip(&want.data) {
            assert!((g - w).abs() <= 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn forward_batch_rows_are_batch_independent() {
        // Row bi of a size-B batch must equal the same sample run alone.
        let net = TendencyCnn::with_width(7, 8, 5);
        let x = Tensor::xavier(&[3, 5, 7], 5, 8, 29);
        let all = net.forward_batch(&x);
        let per = 5 * 7;
        let out_per = 4 * 7;
        for bi in 0..3 {
            let xs = Tensor::from_vec(x.data[bi * per..(bi + 1) * per].to_vec(), &[1, 5, 7]);
            let ys = net.forward_batch(&xs);
            assert_eq!(&all.data[bi * out_per..(bi + 1) * out_per], &ys.data[..]);
        }
    }

    #[test]
    fn networks_are_deterministic() {
        let mut a = TendencyCnn::with_width(8, 4, 77);
        let mut b = TendencyCnn::with_width(8, 4, 77);
        let x = Tensor::xavier(&[1, 5, 8], 5, 4, 1);
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }
}
