//! Property tests: the inference-only batched forward path
//! (`forward_batch`, used by the serving subsystem) must match the
//! per-sample training `forward` element-wise within 1e-6 for random
//! batch sizes in 1..=32.

use ap3esm_ai::net::{RadiationMlp, TendencyCnn, TENDENCY_IN_CH, TENDENCY_OUT_CH};
use ap3esm_ai::Tensor;
use proptest::prelude::*;

/// Deterministic xorshift-based input filler so every proptest case is
/// reproducible from its drawn seed.
fn fill(seed: u64, n: usize, scale: f32) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f32 / (1u64 << 53) as f32;
            (u * 2.0 - 1.0) * scale
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cnn_batched_matches_per_sample(
        batch in 1usize..=32,
        nlev in 4usize..=12,
        seed in 1u64..u64::MAX,
        scale in 0.1f64..4.0,
    ) {
        let mut net = TendencyCnn::with_width(nlev, 8, seed);
        let per = TENDENCY_IN_CH * nlev;
        let data = fill(seed, batch * per, scale as f32);
        let x = Tensor::from_vec(data.clone(), &[batch, TENDENCY_IN_CH, nlev]);
        let yb = net.forward_batch(&x);
        prop_assert_eq!(&yb.shape, &vec![batch, TENDENCY_OUT_CH, nlev]);

        let out = TENDENCY_OUT_CH * nlev;
        for bi in 0..batch {
            let xi = Tensor::from_vec(
                data[bi * per..(bi + 1) * per].to_vec(),
                &[1, TENDENCY_IN_CH, nlev],
            );
            let yi = net.forward(&xi);
            for (j, (&b, &s)) in yb.data[bi * out..(bi + 1) * out]
                .iter()
                .zip(&yi.data)
                .enumerate()
            {
                prop_assert!(
                    (b - s).abs() <= 1e-6,
                    "cnn sample {} elem {}: batched {} vs per-sample {}",
                    bi, j, b, s
                );
            }
        }
    }

    #[test]
    fn mlp_batched_matches_per_sample(
        batch in 1usize..=32,
        nlev in 4usize..=12,
        seed in 1u64..u64::MAX,
        scale in 0.1f64..4.0,
    ) {
        let mut net = RadiationMlp::with_width(nlev, 8, seed);
        let dim = RadiationMlp::input_dim(nlev);
        let data = fill(seed.wrapping_mul(2654435761), batch * dim, scale as f32);
        let x = Tensor::from_vec(data.clone(), &[batch, dim]);
        let yb = net.forward_batch(&x);
        prop_assert_eq!(yb.shape[0], batch);
        let out = yb.shape[1];

        for bi in 0..batch {
            let xi = Tensor::from_vec(data[bi * dim..(bi + 1) * dim].to_vec(), &[1, dim]);
            let yi = net.forward(&xi);
            for (j, (&b, &s)) in yb.data[bi * out..(bi + 1) * out]
                .iter()
                .zip(&yi.data)
                .enumerate()
            {
                prop_assert!(
                    (b - s).abs() <= 1e-6,
                    "mlp sample {} elem {}: batched {} vs per-sample {}",
                    bi, j, b, s
                );
            }
        }
    }
}
