//! Physics–dynamics coupling (Fig. 4).
//!
//! The dycore hands column state to a physics suite and receives tendencies
//! plus surface radiation back. [`PhysicsDriver`] is the switch the paper's
//! AI suite plugs into: `Conventional` runs `ap3esm-physics`,
//! `AiSuite` runs the trained CNN tendency module and MLP radiation module
//! (plus the conventional diagnostic module for precipitation — the paper's
//! suite keeps a "conventional physics diagnostic module" too).

use ap3esm_ai::modules::{ColumnState, RadiationModule, TendencyModule};
use ap3esm_physics::suite::{Column, ConventionalSuite, SurfaceProperties};

use crate::state::AtmState;
use crate::P_REF;
use ap3esm_physics::constants::{temperature_from_theta, KAPPA};

/// The surface forcing the physics needs per cell (supplied by the coupler
/// or by simple analytic boundary conditions in standalone runs).
#[derive(Debug, Clone)]
pub struct SurfaceForcing {
    /// Skin/SST temperature per cell (K).
    pub tskin: Vec<f64>,
    /// Cosine solar zenith angle per cell.
    pub coszr: Vec<f64>,
    /// Surface wetness per cell (1 = ocean).
    pub wetness: Vec<f64>,
}

impl SurfaceForcing {
    pub fn uniform(ncells: usize, tskin: f64, coszr: f64, wetness: f64) -> Self {
        SurfaceForcing {
            tskin: vec![tskin; ncells],
            coszr: vec![coszr; ncells],
            wetness: vec![wetness; ncells],
        }
    }
}

/// Which physics suite drives the model step.
// One instance per model; the AI variant's network weights dominate its
// size and boxing them would only add indirection on the hot path.
#[allow(clippy::large_enum_variant)]
pub enum PhysicsDriver {
    Conventional(ConventionalSuite),
    AiSuite {
        tendency: TendencyModule,
        radiation: RadiationModule,
        /// Conventional diagnostics retained alongside the AI modules.
        diagnostics: ConventionalSuite,
    },
}

/// Applies a physics suite to the whole atmosphere state.
pub struct PhysicsDynamicsCoupler {
    pub driver: PhysicsDriver,
}

impl PhysicsDynamicsCoupler {
    pub fn new(driver: PhysicsDriver) -> Self {
        PhysicsDynamicsCoupler { driver }
    }

    /// Extract one cell's physics column from the prognostic state.
    fn build_column(state: &AtmState, cell_vectors: &[(f64, f64)], i: usize) -> Column {
        let n = state.ncells();
        let nlev = state.nlev;
        let ps = state.ps[i];
        let mut t = Vec::with_capacity(nlev);
        let mut p = Vec::with_capacity(nlev);
        let mut dp = Vec::with_capacity(nlev);
        for k in 0..nlev {
            let pk = state.sigma[k] * ps;
            p.push(pk);
            dp.push(state.dsigma[k] * ps);
            t.push(temperature_from_theta(state.theta[k * n + i], pk));
        }
        let dz: Vec<f64> = (0..nlev)
            .map(|k| ap3esm_physics::constants::R_DRY * t[k] * dp[k]
                / (p[k] * ap3esm_physics::constants::GRAVITY))
            .collect();
        let (ue, un) = cell_vectors[i];
        Column {
            u: vec![ue; nlev],
            v: vec![un; nlev],
            t,
            q: (0..nlev).map(|k| state.q[k * n + i]).collect(),
            p,
            dp,
            dz,
        }
    }

    /// Apply one physics step of length `dt` to every column. Returns the
    /// global mean precipitation rate (kg/m²/s) for diagnostics.
    pub fn apply(&mut self, state: &mut AtmState, forcing: &SurfaceForcing, dt: f64) -> f64 {
        let _span = ap3esm_obs::span("physics");
        let n = state.ncells();
        let nlev = state.nlev;
        let e = state.nedges();
        let cell_vectors = state.grid.reconstruct_cell_vectors(&state.un[0..e]);
        let mut total_precip = 0.0;
        let mut total_area = 0.0;

        match &mut self.driver {
            PhysicsDriver::Conventional(suite) => {
                for i in 0..n {
                    let col = Self::build_column(state, &cell_vectors, i);
                    let sfc = SurfaceProperties {
                        tskin: forcing.tskin[i],
                        coszr: forcing.coszr[i],
                        wetness: forcing.wetness[i],
                    };
                    let out = suite.step_column(&col, &sfc);
                    for k in 0..nlev {
                        let idx = k * n + i;
                        // Tendencies on T converted back to θ.
                        let pk = state.sigma[k] * state.ps[i];
                        let factor = (P_REF / pk).powf(KAPPA);
                        state.theta[idx] += dt * out.dt[k] * factor;
                        state.q[idx] = (state.q[idx] + dt * out.dq[k]).max(0.0);
                    }
                    state.gsw[i] = out.gsw;
                    state.glw[i] = out.glw;
                    state.precip_accum[i] += out.precipitation * dt;
                    total_precip += out.precipitation * state.grid.cell_areas[i];
                    total_area += state.grid.cell_areas[i];
                    // Momentum tendency: distribute the lowest-level drag
                    // onto the cell's edges (dominant PBL effect).
                    let du = out.du[0] * dt;
                    let dv = out.dv[0] * dt;
                    let east = state.grid.cells[i].east();
                    let north = state.grid.cells[i].north();
                    for &(edge, _) in &state.grid.cell_edges[i] {
                        let nvec = state.grid.edge_normals[edge];
                        let proj = du * nvec.dot(east) + dv * nvec.dot(north);
                        // Each edge is shared by two cells; half weight.
                        state.un[edge] += 0.5 * proj;
                    }
                }
            }
            PhysicsDriver::AiSuite {
                tendency,
                radiation,
                diagnostics,
            } => {
                // Batch the whole grid through the networks (the "highly
                // efficient tensor kernels" path of §5.2.1).
                let columns: Vec<ColumnState> = (0..n)
                    .map(|i| {
                        let col = Self::build_column(state, &cell_vectors, i);
                        ColumnState {
                            u: col.u,
                            v: col.v,
                            t: col.t,
                            q: col.q,
                            p: col.p,
                        }
                    })
                    .collect();
                let mut tends = tendency.predict(&columns);
                // Tendency limiter: out-of-distribution columns can make a
                // network extrapolate wildly; GRIST-style physics limiting
                // caps tendencies at strong-but-physical magnitudes
                // (±100 K/day, ±0.05 kg/kg/day, ±50 m/s/day).
                const DT_MAX: f64 = 100.0 / 86_400.0;
                const DQ_MAX: f64 = 0.05 / 86_400.0;
                const DU_MAX: f64 = 50.0 / 86_400.0;
                for t in tends.iter_mut() {
                    for v in t.dt.iter_mut() {
                        *v = v.clamp(-DT_MAX, DT_MAX);
                    }
                    for v in t.dq.iter_mut() {
                        *v = v.clamp(-DQ_MAX, DQ_MAX);
                    }
                    for v in t.du.iter_mut().chain(t.dv.iter_mut()) {
                        *v = v.clamp(-DU_MAX, DU_MAX);
                    }
                }
                let rad_inputs: Vec<Vec<f32>> = columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        RadiationModule::build_input(c, forcing.tskin[i], forcing.coszr[i])
                    })
                    .collect();
                let rads = radiation.predict(&rad_inputs);
                for i in 0..n {
                    for k in 0..nlev {
                        let idx = k * n + i;
                        let pk = state.sigma[k] * state.ps[i];
                        let factor = (P_REF / pk).powf(KAPPA);
                        state.theta[idx] += dt * tends[i].dt[k] * factor;
                        state.q[idx] = (state.q[idx] + dt * tends[i].dq[k]).max(0.0);
                    }
                    state.gsw[i] = rads[i].gsw;
                    state.glw[i] = rads[i].glw;
                    // Conventional diagnostic module: precipitation.
                    let col = Self::build_column(state, &cell_vectors, i);
                    let conv = diagnostics.convection.column(
                        &col.t, &col.q, &col.p, &col.dp, &col.dz,
                    );
                    state.precip_accum[i] += conv.precipitation * dt;
                    total_precip += conv.precipitation * state.grid.cell_areas[i];
                    total_area += state.grid.cell_areas[i];
                }
            }
        }
        if total_area > 0.0 {
            total_precip / total_area
        } else {
            0.0
        }
    }

    /// Is this the AI-powered suite? (Used by experiment CSVs.)
    pub fn is_ai(&self) -> bool {
        matches!(self.driver, PhysicsDriver::AiSuite { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::GeodesicGrid;
    use std::sync::Arc;

    #[test]
    fn conventional_physics_step_is_stable() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let mut state = AtmState::isothermal(Arc::clone(&grid), 6, 290.0);
        let n = state.ncells();
        let forcing = SurfaceForcing::uniform(n, 300.0, 0.5, 1.0);
        let mut pdc =
            PhysicsDynamicsCoupler::new(PhysicsDriver::Conventional(ConventionalSuite::default()));
        let theta0 = state.mean_theta();
        let precip = pdc.apply(&mut state, &forcing, 600.0);
        assert!(precip >= 0.0);
        assert!(state.theta.iter().all(|t| t.is_finite() && *t > 100.0));
        assert!(state.q.iter().all(|q| *q >= 0.0));
        // Warm-ocean heating should not blow θ up in one step.
        assert!((state.mean_theta() - theta0).abs() < 5.0);
        assert!(state.gsw.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn ai_suite_plugs_into_the_same_interface() {
        use ap3esm_ai::modules::Normalizer;
        use ap3esm_ai::net::{RadiationMlp, TendencyCnn};
        let grid = Arc::new(GeodesicGrid::new(1));
        let nlev = 5;
        let mut state = AtmState::isothermal(Arc::clone(&grid), nlev, 288.0);
        let n = state.ncells();
        let tendency = TendencyModule::new(
            TendencyCnn::with_width(nlev, 4, 1),
            Normalizer {
                mean: vec![0.0, 0.0, 288.0, 0.005, 5.0e4],
                std: vec![10.0, 10.0, 30.0, 0.01, 4.0e4],
            },
            // Tiny output scale: an untrained net then yields tiny tendencies.
            Normalizer {
                mean: vec![0.0; 4],
                std: vec![1e-8; 4],
            },
        );
        let radiation = RadiationModule::new(
            RadiationMlp::with_width(nlev, 8, 2),
            Normalizer {
                mean: vec![0.0],
                std: vec![100.0],
            },
            Normalizer {
                mean: vec![200.0, 350.0],
                std: vec![50.0, 30.0],
            },
        );
        let mut pdc = PhysicsDynamicsCoupler::new(PhysicsDriver::AiSuite {
            tendency,
            radiation,
            diagnostics: ConventionalSuite::default(),
        });
        assert!(pdc.is_ai());
        let forcing = SurfaceForcing::uniform(n, 299.0, 0.7, 1.0);
        pdc.apply(&mut state, &forcing, 600.0);
        assert!(state.theta.iter().all(|t| t.is_finite()));
        assert!(state.gsw.iter().all(|g| g.is_finite()));
    }
}
