//! Idealized tropical-cyclone tools for the Typhoon Doksuri forecast
//! experiment (Figs. 6 and 7).
//!
//! The paper initialises from analysis data and compares against the CMA
//! best track and ERA5. We have neither dataset, so (per DESIGN.md) the
//! forecast experiment code path is exercised with a synthetic analogue: a
//! Rankine-style warm-core vortex seeded at Doksuri's genesis location and
//! a synthetic "best track" with the same northwestward recurving shape,
//! against which the model's tracked vortex is scored.

use ap3esm_grid::sphere::Vec3;
use ap3esm_grid::EARTH_RADIUS;

use crate::state::AtmState;

/// Specification of the initial vortex.
#[derive(Debug, Clone, Copy)]
pub struct VortexSpec {
    /// Center latitude (rad).
    pub lat: f64,
    /// Center longitude (rad).
    pub lon: f64,
    /// Maximum tangential wind (m/s).
    pub vmax: f64,
    /// Radius of maximum wind (m).
    pub rmw: f64,
    /// Central pressure deficit (Pa).
    pub dp: f64,
    /// Warm-core temperature anomaly (K).
    pub warm_core: f64,
}

impl VortexSpec {
    /// Doksuri-like genesis: 13°N, 131°E on 21 July 2023, strengthening
    /// toward super-typhoon intensity.
    pub fn doksuri() -> Self {
        VortexSpec {
            lat: 13.0_f64.to_radians(),
            lon: 131.0_f64.to_radians(),
            vmax: 35.0,
            rmw: 80_000.0,
            dp: 3500.0,
            warm_core: 3.0,
        }
    }

    /// Doksuri spec widened so a grid of spacing `dx_km` resolves the core
    /// (RMW at least ~2.5 cells). On a 1-km grid this *is* `doksuri()`;
    /// coarse configurations get the same storm the way a 25-km model sees
    /// it — exactly the resolution contrast of Fig. 6.
    pub fn doksuri_at_resolution(dx_km: f64) -> Self {
        let base = Self::doksuri();
        VortexSpec {
            rmw: base.rmw.max(2.5 * dx_km * 1000.0),
            ..base
        }
    }
}

/// Rankine tangential wind profile.
fn tangential_wind(spec: &VortexSpec, r: f64) -> f64 {
    if r <= spec.rmw {
        spec.vmax * r / spec.rmw
    } else {
        spec.vmax * (spec.rmw / r).powf(0.6)
    }
}

/// Seed the vortex into an atmosphere state: cyclonic (NH) winds on edges,
/// pressure depression and warm, moist core at cells.
pub fn seed_vortex(state: &mut AtmState, spec: &VortexSpec) {
    let grid = state.grid.clone();
    let center = Vec3::from_lat_lon(spec.lat, spec.lon);
    let n = grid.ncells();
    let ne = grid.nedges();
    let nlev = state.nlev;

    // Cells: pressure deficit, warm core, moisture.
    for i in 0..n {
        let r = center.arc_distance(grid.cells[i]) * EARTH_RADIUS;
        let shape = (-(r / (4.0 * spec.rmw)).powi(2)).exp();
        state.ps[i] -= spec.dp * shape;
        for k in 0..nlev {
            // Warm core strongest in the mid-levels.
            let z = k as f64 / nlev as f64;
            let vert = (1.0 - (z - 0.5).abs() * 2.0).max(0.0);
            state.theta[k * n + i] += spec.warm_core * shape * vert;
            state.q[k * n + i] += 0.006 * shape * (1.0 - z);
        }
    }

    // Edges: tangential (cyclonic) wind, decaying with height.
    for e in 0..ne {
        let m = grid.edge_midpoints[e];
        let r = center.arc_distance(m) * EARTH_RADIUS;
        if r < 1.0 {
            continue;
        }
        let vt = tangential_wind(spec, r);
        // Cyclonic unit vector: k̂ × r̂_from_center, with k̂ the local up.
        let radial = (m - center.scale(center.dot(m))).normalized();
        let tangential = m.cross(radial); // CCW around the center in the NH
        let sign = if spec.lat >= 0.0 { 1.0 } else { -1.0 };
        for k in 0..nlev {
            let z = k as f64 / nlev as f64;
            let vert = (1.0 - 0.7 * z).max(0.0);
            state.un[k * ne + e] +=
                sign * vt * vert * tangential.dot(grid.edge_normals[e]);
        }
    }
}

/// One tracked position of the model vortex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    pub lat_deg: f64,
    pub lon_deg: f64,
    /// Minimum surface pressure (Pa).
    pub min_ps: f64,
    /// Maximum lowest-level wind (m/s).
    pub max_wind: f64,
}

/// Locate the vortex: the minimum-ps cell within `search_radius_m` of the
/// previous position (or globally if `prev` is None), plus its intensity.
pub fn track_vortex(state: &AtmState, prev: Option<(f64, f64)>, search_radius_m: f64) -> TrackPoint {
    let grid = &state.grid;
    let n = grid.ncells();
    let prev_vec = prev.map(|(lat, lon)| Vec3::from_lat_lon(lat.to_radians(), lon.to_radians()));
    let mut best = None::<(usize, f64)>;
    for i in 0..n {
        if let Some(pv) = prev_vec {
            if pv.arc_distance(grid.cells[i]) * EARTH_RADIUS > search_radius_m {
                continue;
            }
        }
        if best.map(|(_, p)| state.ps[i] < p).unwrap_or(true) {
            best = Some((i, state.ps[i]));
        }
    }
    let (center, min_ps) = best.expect("nonempty grid");
    // Max lowest-level wind within 5 RMW-ish of the center.
    let center_vec = grid.cells[center];
    let winds = state.surface_wind();
    let mut max_wind = 0.0f64;
    for (i, &(u, v)) in winds.iter().enumerate() {
        if center_vec.arc_distance(grid.cells[i]) * EARTH_RADIUS < 600_000.0 {
            max_wind = max_wind.max((u * u + v * v).sqrt());
        }
    }
    TrackPoint {
        lat_deg: center_vec.lat().to_degrees(),
        lon_deg: center_vec.lon().to_degrees(),
        min_ps,
        max_wind,
    }
}

/// A point of the reference ("best") track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestTrackPoint {
    pub hours: f64,
    pub lat_deg: f64,
    pub lon_deg: f64,
    /// Max sustained wind (m/s).
    pub vmax: f64,
}

/// Synthetic Doksuri-shaped best track: genesis in the Philippine Sea,
/// northwestward motion, intensification to super-typhoon strength, then
/// landfall weakening — the qualitative shape of CMA's track in Fig. 7.
pub fn best_track(hours_total: f64, step_hours: f64) -> Vec<BestTrackPoint> {
    let mut out = Vec::new();
    let mut h = 0.0;
    while h <= hours_total + 1e-9 {
        let t = h / 24.0; // days since genesis
        // Northwestward with a slow recurve.
        let lat = 13.0 + 1.9 * t + 0.12 * t * t;
        let lon = 131.0 - 1.5 * t - 0.10 * t * t;
        // Intensify to ~55 m/s by day 3.5, then weaken near landfall (day 5+).
        let vmax = if t < 3.5 {
            25.0 + (55.0 - 25.0) * (t / 3.5)
        } else {
            55.0 - 10.0 * (t - 3.5)
        };
        out.push(BestTrackPoint {
            hours: h,
            lat_deg: lat,
            lon_deg: lon,
            vmax: vmax.max(15.0),
        });
        h += step_hours;
    }
    out
}

/// Great-circle distance (km) between two (lat, lon) degree pairs.
pub fn track_error_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let va = Vec3::from_lat_lon(a.0.to_radians(), a.1.to_radians());
    let vb = Vec3::from_lat_lon(b.0.to_radians(), b.1.to_radians());
    va.arc_distance(vb) * EARTH_RADIUS / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::GeodesicGrid;
    use std::sync::Arc;

    #[test]
    fn seeded_vortex_has_low_center_and_cyclonic_wind() {
        let grid = Arc::new(GeodesicGrid::new(4));
        let mut state = AtmState::isothermal(Arc::clone(&grid), 4, 288.0);
        let spec = VortexSpec::doksuri_at_resolution(grid.mean_spacing_km());
        seed_vortex(&mut state, &spec);
        let tracked = track_vortex(&state, None, f64::INFINITY);
        assert!(
            track_error_km(
                (tracked.lat_deg, tracked.lon_deg),
                (13.0, 131.0)
            ) < 600.0,
            "tracker found {tracked:?}"
        );
        assert!(tracked.min_ps < crate::P_REF - 2000.0);
        assert!(tracked.max_wind > 10.0, "winds {}", tracked.max_wind);
    }

    #[test]
    fn vortex_is_cyclonic_in_nh() {
        // Relative vorticity at the center must be positive (NH cyclone).
        let grid = Arc::new(GeodesicGrid::new(4));
        let mut state = AtmState::isothermal(Arc::clone(&grid), 1, 288.0);
        let spec = VortexSpec::doksuri_at_resolution(grid.mean_spacing_km());
        seed_vortex(&mut state, &spec);
        // Crude circulation check: reconstruct winds around the center and
        // verify counter-clockwise rotation (positive vorticity).
        let center = Vec3::from_lat_lon(13.0_f64.to_radians(), 131.0_f64.to_radians());
        let winds = state.surface_wind();
        let mut circ = 0.0;
        for i in 0..grid.ncells() {
            let r = center.arc_distance(grid.cells[i]) * EARTH_RADIUS;
            if r > 0.2 * spec.rmw && r < 4.0 * spec.rmw {
                let radial = (grid.cells[i] - center.scale(center.dot(grid.cells[i])))
                    .normalized();
                let tangential = grid.cells[i].cross(radial);
                let (ue, un) = winds[i];
                let east = grid.cells[i].east();
                let north = grid.cells[i].north();
                let v3 = Vec3::new(
                    ue * east.x + un * north.x,
                    ue * east.y + un * north.y,
                    ue * east.z + un * north.z,
                );
                circ += v3.dot(tangential);
            }
        }
        assert!(circ > 0.0, "circulation {circ} not cyclonic");
    }

    #[test]
    fn best_track_shape() {
        let track = best_track(120.0, 6.0);
        assert_eq!(track.len(), 21);
        // Moves northwest.
        assert!(track.last().unwrap().lat_deg > track[0].lat_deg);
        assert!(track.last().unwrap().lon_deg < track[0].lon_deg);
        // Intensifies then weakens.
        let peak = track
            .iter()
            .map(|p| p.vmax)
            .fold(0.0f64, f64::max);
        assert!(peak > 50.0);
        assert!(track.last().unwrap().vmax < peak);
    }

    #[test]
    fn track_error_zero_for_same_point() {
        assert!(track_error_km((10.0, 120.0), (10.0, 120.0)) < 1e-9);
        let e = track_error_km((10.0, 120.0), (11.0, 120.0));
        assert!((e - 111.0).abs() < 2.0, "1 degree ≈ 111 km, got {e}");
    }

    #[test]
    fn tracker_respects_search_radius() {
        let grid = Arc::new(GeodesicGrid::new(4));
        let mut state = AtmState::isothermal(Arc::clone(&grid), 1, 288.0);
        // Two depressions; the tracker must pick the one near `prev`.
        let base = VortexSpec::doksuri_at_resolution(grid.mean_spacing_km());
        let spec_a = VortexSpec {
            lat: 0.3,
            lon: 0.5,
            ..base
        };
        let spec_b = VortexSpec {
            lat: -0.7,
            lon: 3.0,
            dp: 6000.0, // deeper, but far away
            ..base
        };
        seed_vortex(&mut state, &spec_a);
        seed_vortex(&mut state, &spec_b);
        let near = track_vortex(
            &state,
            Some((0.3_f64.to_degrees(), 0.5_f64.to_degrees())),
            1_000_000.0,
        );
        let d = track_error_km(
            (near.lat_deg, near.lon_deg),
            (0.3_f64.to_degrees(), 0.5_f64.to_degrees()),
        );
        assert!(d < 700.0, "tracker jumped {d} km away");
    }
}
