//! Atmosphere prognostic state.

use std::sync::Arc;

use ap3esm_grid::vertical::{atm_sigma_layers, atm_sigma_thickness};
use ap3esm_grid::GeodesicGrid;

use crate::P_REF;

/// Full prognostic state on a geodesic grid. Fields are flat with layout
/// `[level * ncells + cell]` (cells fastest) and `[level * nedges + edge]`.
#[derive(Debug, Clone)]
pub struct AtmState {
    pub grid: Arc<GeodesicGrid>,
    pub nlev: usize,
    /// Sigma mid-layer values (surface-first, decreasing with index? —
    /// index 0 is the lowest layer, σ close to 1).
    pub sigma: Vec<f64>,
    /// Layer sigma thicknesses (sum = 1).
    pub dsigma: Vec<f64>,
    /// Surface pressure (Pa), per cell.
    pub ps: Vec<f64>,
    /// Potential temperature (K), cell × level.
    pub theta: Vec<f64>,
    /// Specific humidity (kg/kg), cell × level.
    pub q: Vec<f64>,
    /// Normal velocity (m/s), edge × level.
    pub un: Vec<f64>,
    /// Accumulated precipitation since last reset (kg/m², per cell).
    pub precip_accum: Vec<f64>,
    /// Last surface downward shortwave per cell (W/m²).
    pub gsw: Vec<f64>,
    /// Last surface downward longwave per cell (W/m²).
    pub glw: Vec<f64>,
}

impl AtmState {
    /// Isothermal resting atmosphere at temperature `t0` over a uniform
    /// `ps = P_REF`.
    pub fn isothermal(grid: Arc<GeodesicGrid>, nlev: usize, t0: f64) -> Self {
        let n = grid.ncells();
        let e = grid.nedges();
        let sigma = atm_sigma_layers(nlev);
        let dsigma = atm_sigma_thickness(nlev);
        let mut theta = vec![0.0; nlev * n];
        for (k, &s) in sigma.iter().enumerate() {
            let p = s * P_REF;
            let th = ap3esm_physics::constants::potential_temperature(t0, p);
            theta[k * n..(k + 1) * n].fill(th);
        }
        AtmState {
            grid,
            nlev,
            sigma,
            dsigma,
            ps: vec![P_REF; n],
            theta,
            q: vec![1.0e-3; nlev * n],
            un: vec![0.0; nlev * e],
            precip_accum: vec![0.0; n],
            gsw: vec![0.0; n],
            glw: vec![0.0; n],
        }
    }

    pub fn ncells(&self) -> usize {
        self.grid.ncells()
    }

    pub fn nedges(&self) -> usize {
        self.grid.nedges()
    }

    #[inline]
    pub fn cell_idx(&self, k: usize, i: usize) -> usize {
        k * self.ncells() + i
    }

    #[inline]
    pub fn edge_idx(&self, k: usize, e: usize) -> usize {
        k * self.nedges() + e
    }

    /// Total dry air mass (∝ ∫ ps dA; exact up to the constant 1/g).
    pub fn total_mass(&self) -> f64 {
        self.ps
            .iter()
            .zip(&self.grid.cell_areas)
            .map(|(p, a)| p * a)
            .sum()
    }

    /// Global mass-weighted mean potential temperature.
    pub fn mean_theta(&self) -> f64 {
        let n = self.ncells();
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..self.nlev {
            let w = self.dsigma[k];
            for i in 0..n {
                let m = w * self.ps[i] * self.grid.cell_areas[i];
                num += self.theta[k * n + i] * m;
                den += m;
            }
        }
        num / den
    }

    /// Global integral of θ·dp·dA (the conserved flux-form tracer mass).
    pub fn theta_mass(&self) -> f64 {
        let n = self.ncells();
        let mut total = 0.0;
        for k in 0..self.nlev {
            for i in 0..n {
                total += self.theta[k * n + i]
                    * self.dsigma[k]
                    * self.ps[i]
                    * self.grid.cell_areas[i];
            }
        }
        total
    }

    /// Global integral of q·dp·dA (moisture mass).
    pub fn moisture_mass(&self) -> f64 {
        let n = self.ncells();
        let mut total = 0.0;
        for k in 0..self.nlev {
            for i in 0..n {
                total +=
                    self.q[k * n + i] * self.dsigma[k] * self.ps[i] * self.grid.cell_areas[i];
            }
        }
        total
    }

    /// Maximum wind speed over all edges (CFL diagnostics).
    pub fn max_wind(&self) -> f64 {
        self.un.iter().fold(0.0f64, |m, u| m.max(u.abs()))
    }

    /// 10 m wind proxy: reconstructed lowest-layer cell vectors.
    pub fn surface_wind(&self) -> Vec<(f64, f64)> {
        let e = self.nedges();
        self.grid.reconstruct_cell_vectors(&self.un[0..e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isothermal_state_is_sane() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let s = AtmState::isothermal(grid, 5, 285.0);
        assert_eq!(s.ps.len(), s.ncells());
        assert_eq!(s.theta.len(), 5 * s.ncells());
        assert_eq!(s.un.len(), 5 * s.nedges());
        assert!(s.max_wind() == 0.0);
        // theta increases with height for an isothermal atmosphere.
        let n = s.ncells();
        assert!(s.theta[4 * n] > s.theta[0]);
    }

    #[test]
    fn mass_is_ps_area_integral() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let s = AtmState::isothermal(grid, 3, 280.0);
        let expected = P_REF * 4.0 * std::f64::consts::PI;
        assert!((s.total_mass() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn mean_theta_between_extremes() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let s = AtmState::isothermal(grid, 5, 280.0);
        let n = s.ncells();
        let lo = s.theta[0];
        let hi = s.theta[4 * n];
        let mean = s.mean_theta();
        assert!(mean > lo && mean < hi);
    }
}
