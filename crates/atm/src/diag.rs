//! Atmosphere diagnostics for the figure-regeneration binaries: cloud
//! fraction (Fig. 1b), kinetic-energy statistics, and field summaries.

use ap3esm_physics::constants::temperature_from_theta;
use ap3esm_physics::saturation_specific_humidity;

use crate::state::AtmState;

/// Per-cell total cloud fraction proxy: the maximum relative humidity over
/// the column mapped through a smooth ramp (RH 0.8 → 0, RH 1.0 → 1).
pub fn cloud_fraction(state: &AtmState) -> Vec<f64> {
    let n = state.ncells();
    let mut out = vec![0.0; n];
    for (i, frac) in out.iter_mut().enumerate() {
        let mut max_rh = 0.0f64;
        for k in 0..state.nlev {
            let p = state.sigma[k] * state.ps[i];
            let t = temperature_from_theta(state.theta[k * n + i], p);
            let qsat = saturation_specific_humidity(t, p);
            max_rh = max_rh.max(state.q[k * n + i] / qsat.max(1e-12));
        }
        *frac = ((max_rh - 0.8) / 0.2).clamp(0.0, 1.0);
    }
    out
}

/// Area-weighted global mean of a per-cell field.
pub fn area_mean(state: &AtmState, field: &[f64]) -> f64 {
    let num: f64 = field
        .iter()
        .zip(&state.grid.cell_areas)
        .map(|(f, a)| f * a)
        .sum();
    let den: f64 = state.grid.cell_areas.iter().sum();
    num / den
}

/// Surface kinetic energy per cell (m²/s²) from reconstructed winds.
pub fn surface_kinetic_energy(state: &AtmState) -> Vec<f64> {
    state
        .surface_wind()
        .iter()
        .map(|&(u, v)| 0.5 * (u * u + v * v))
        .collect()
}

/// Simple histogram over fixed bins; returns (bin_edges, counts).
pub fn histogram(values: &[f64], lo: f64, hi: f64, nbins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(nbins >= 1 && hi > lo);
    let mut counts = vec![0usize; nbins];
    let w = (hi - lo) / nbins as f64;
    for &v in values {
        if v.is_finite() {
            let b = (((v - lo) / w).floor() as i64).clamp(0, nbins as i64 - 1) as usize;
            counts[b] += 1;
        }
    }
    let edges = (0..=nbins).map(|b| lo + b as f64 * w).collect();
    (edges, counts)
}

/// Variance of a field — the "resolved fine-scale variance" statistic used
/// to compare 3v2 against 25v10 in the Fig. 6 reproduction.
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::GeodesicGrid;
    use std::sync::Arc;

    #[test]
    fn cloud_fraction_bounds() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let mut state = AtmState::isothermal(Arc::clone(&grid), 5, 290.0);
        let cf = cloud_fraction(&state);
        assert!(cf.iter().all(|&c| (0.0..=1.0).contains(&c)));
        // Saturate one column: its cloud fraction must reach 1.
        let n = state.ncells();
        for k in 0..state.nlev {
            state.q[k * n] = 0.05;
        }
        let cf = cloud_fraction(&state);
        assert_eq!(cf[0], 1.0);
    }

    #[test]
    fn area_mean_of_ones_is_one() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let state = AtmState::isothermal(grid, 3, 280.0);
        let f = vec![1.0; state.ncells()];
        assert!((area_mean(&state, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_everything() {
        let vals = vec![0.1, 0.5, 0.9, 1.5, -2.0];
        let (edges, counts) = histogram(&vals, 0.0, 1.0, 4);
        assert_eq!(edges.len(), 5);
        assert_eq!(counts.iter().sum::<usize>(), 5); // clamped into range
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
        assert!((variance(&[1.0, -1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn surface_ke_zero_at_rest() {
        let grid = Arc::new(GeodesicGrid::new(2));
        let state = AtmState::isothermal(grid, 3, 280.0);
        assert!(surface_kinetic_energy(&state).iter().all(|&k| k == 0.0));
    }
}
