//! # AP3ESM atmosphere component (`ap3esm-atm`)
//!
//! The GRIST analogue: a hydrostatic multi-layer dynamical core on the
//! icosahedral Voronoi C-grid (`ap3esm-grid`), with GRIST's split time
//! stepping — fast dycore substeps, slower tracer substeps, and a model
//! (physics) step — and a pluggable physics–dynamics coupling interface
//! that accepts either the conventional suite (`ap3esm-physics`) or the AI
//! suite (`ap3esm-ai`), exactly the swap of Fig. 4.
//!
//! The paper's 1-km GRIST carries 3.4×10⁸ columns; the dycore here is the
//! same *numerics* on the same mesh family at whatever glevel fits the
//! machine (tests use G3–G5). Timestep ratios follow Table 1's 8 s / 30 s /
//! 120 s configuration (15 dycore and 4 tracer substeps per model step).
//!
//! Prognostics: surface pressure `ps` (cells), potential temperature θ and
//! specific humidity q (cell × level, flux-form transport), and normal
//! velocity `u_n` (edge × level, vector-invariant form with reconstructed
//! kinetic energy and vorticity). Vertical advection is omitted — at the
//! barotropic-test scales exercised here its contribution is second-order,
//! and the substitution is documented in DESIGN.md.

pub mod diag;
pub mod dycore;
pub mod pdc;
pub mod state;
pub mod vortex;

pub use dycore::{Dycore, DycoreConfig};
pub use pdc::{PhysicsDriver, PhysicsDynamicsCoupler};
pub use state::AtmState;
pub use vortex::{best_track, seed_vortex, track_vortex, BestTrackPoint, VortexSpec};

/// Reference surface pressure (Pa).
pub const P_REF: f64 = 1.0e5;
