//! The hydrostatic dynamical core with GRIST's split time stepping.
//!
//! Horizontal discretisation: C-grid on the icosahedral Voronoi mesh —
//! mass/tracers at cells, normal velocity at edges, vorticity at corners
//! (triangle circulation). Momentum is stepped in vector-invariant form:
//!
//! ```text
//! ∂uₙ/∂t = +η·u_t − ∇ₙ(K + Φ) − R T ∇ₙ ln pₛ + ν∇²uₙ
//! ```
//!
//! Mass and tracers are flux-form (exactly conservative). Time stepping is
//! the paper's three-rate split: `dt_dyn` (8 s at 1 km) sub-steps inside
//! `dt_tracer` (30 s) inside the model/physics step `dt_model` (120 s);
//! tracer transport uses the dycore-accumulated mean mass flux.

use std::sync::Arc;

use ap3esm_grid::{GeodesicGrid, EARTH_RADIUS};
use ap3esm_physics::constants::{coriolis, KAPPA, R_DRY};
use ap3esm_pp::{ExecSpace, Serial, SharedSlice};

use crate::state::AtmState;
use crate::P_REF;

/// Time-stepping configuration. At 1 km the paper runs 8/30/120 s; coarser
/// configurations scale all three together.
#[derive(Debug, Clone, Copy)]
pub struct DycoreConfig {
    pub dt_dyn: f64,
    pub dt_tracer: f64,
    pub dt_model: f64,
    /// Horizontal hyper-viscosity coefficient (m²/s Laplacian).
    pub nu: f64,
}

impl DycoreConfig {
    /// Stepping scaled to a grid spacing with the paper's 1:4:16 rate
    /// structure (8 s / 32 s / 128 s at 1 km). GRIST's semi-implicit solver
    /// allows ~8 s·Δx(km); our forward-backward explicit core needs an
    /// external-gravity-wave CFL below ~0.3, i.e. dt ≈ 0.9 s·Δx(km) — the
    /// ratio structure is preserved, the absolute step is CFL-limited
    /// (substitution documented in DESIGN.md).
    pub fn for_spacing_km(dx_km: f64) -> Self {
        let dt_dyn = 0.9 * dx_km;
        DycoreConfig {
            dt_dyn,
            dt_tracer: dt_dyn * 4.0,
            dt_model: dt_dyn * 16.0,
            nu: 0.015 * (dx_km * 1000.0).powi(2) / dt_dyn, // grid-scale damping
        }
    }

    pub fn dyn_substeps(&self) -> usize {
        (self.dt_tracer / self.dt_dyn).round() as usize
    }

    pub fn tracer_substeps(&self) -> usize {
        (self.dt_model / self.dt_tracer).round() as usize
    }
}

/// Precomputed geometry + work buffers for the dycore.
pub struct Dycore {
    grid: Arc<GeodesicGrid>,
    /// Physical Voronoi-face lengths (m).
    le: Vec<f64>,
    /// Physical cell-center distances across each edge (m).
    de: Vec<f64>,
    /// Physical cell areas (m²).
    area: Vec<f64>,
    /// Physical corner (triangle) areas (m²).
    corner_area: Vec<f64>,
    /// Coriolis parameter at edge midpoints.
    f_edge: Vec<f64>,
    /// Per corner: the three (edge, circulation sign) pairs.
    corner_edges: Vec<[(usize, f64); 3]>,
    /// Per cell: east and north unit vectors (3-D) for reconstruction.
    cell_east: Vec<[f64; 3]>,
    cell_north: Vec<[f64; 3]>,
    /// Per cell: inverse of the 2×2 least-squares normal matrix.
    cell_ls_inv: Vec<[f64; 3]>, // (a11, a12, a22) of the inverse
    /// Per edge: tangent unit vector t̂ = r̂ × n̂ (3-D).
    edge_tangent: Vec<[f64; 3]>,
    /// Per edge: the two adjacent corners ordered along +t̂ (down-, up-
    /// tangent) so ∂ζ/∂t̂ has a consistent sign.
    edge_corners_oriented: Vec<(usize, usize)>,
    /// Per edge: normal (3-D), cached from the grid.
    edge_normal: Vec<[f64; 3]>,
    pub config: DycoreConfig,
}

impl Dycore {
    pub fn new(grid: Arc<GeodesicGrid>, config: DycoreConfig) -> Self {
        let r = EARTH_RADIUS;
        let le: Vec<f64> = grid.edge_lengths.iter().map(|l| l * r).collect();
        let de: Vec<f64> = grid.edge_cell_dist.iter().map(|d| d * r).collect();
        let area: Vec<f64> = grid.cell_areas.iter().map(|a| a * r * r).collect();
        let f_edge: Vec<f64> = grid.edge_midpoints.iter().map(|m| coriolis(m.lat())).collect();

        // Corner circulation: triangle [a, b, c] traversed a→b→c; each side
        // is a dual edge whose stored normal points min(id)→max(id).
        let mut corner_edges = Vec::with_capacity(grid.ncorners());
        let mut corner_area = Vec::with_capacity(grid.ncorners());
        let mut edge_lookup = std::collections::HashMap::new();
        for (e, &(a, b)) in grid.edges.iter().enumerate() {
            edge_lookup.insert((a, b), e);
        }
        for (t, &[a, b, c]) in grid.triangles.iter().enumerate() {
            let mut entry = [(0usize, 0.0f64); 3];
            for (slot, &(u, v)) in [(a, b), (b, c), (c, a)].iter().enumerate() {
                let key = (u.min(v), u.max(v));
                let e = edge_lookup[&key];
                // Stored direction is u<v; traversal u→v gives +1 when
                // u < v, else −1.
                entry[slot] = (e, if u < v { 1.0 } else { -1.0 });
            }
            corner_edges.push(entry);
            corner_area.push(
                ap3esm_grid::sphere::spherical_triangle_area(
                    grid.cells[grid.triangles[t][0]],
                    grid.cells[grid.triangles[t][1]],
                    grid.cells[grid.triangles[t][2]],
                ) * r
                    * r,
            );
        }

        let mut cell_east = Vec::with_capacity(grid.ncells());
        let mut cell_north = Vec::with_capacity(grid.ncells());
        let mut cell_ls_inv = Vec::with_capacity(grid.ncells());
        for i in 0..grid.ncells() {
            let east = grid.cells[i].east();
            let north = grid.cells[i].north();
            cell_east.push([east.x, east.y, east.z]);
            cell_north.push([north.x, north.y, north.z]);
            let (mut a11, mut a12, mut a22) = (0.0, 0.0, 0.0);
            for &(e, _) in &grid.cell_edges[i] {
                let n = grid.edge_normals[e];
                let ne = n.dot(east);
                let nn = n.dot(north);
                a11 += ne * ne;
                a12 += ne * nn;
                a22 += nn * nn;
            }
            let det = a11 * a22 - a12 * a12;
            assert!(det.abs() > 1e-12, "degenerate reconstruction at cell {i}");
            cell_ls_inv.push([a22 / det, -a12 / det, a11 / det]);
        }

        let mut edge_tangent = Vec::with_capacity(grid.nedges());
        let mut edge_normal = Vec::with_capacity(grid.nedges());
        let mut edge_corners_oriented = Vec::with_capacity(grid.nedges());
        for e in 0..grid.nedges() {
            let n = grid.edge_normals[e];
            let t = grid.edge_midpoints[e].cross(n);
            edge_tangent.push([t.x, t.y, t.z]);
            edge_normal.push([n.x, n.y, n.z]);
            let (c0, c1) = grid.edge_corners[e];
            let along = grid.corners[c1] - grid.corners[c0];
            if along.dot(t) >= 0.0 {
                edge_corners_oriented.push((c0, c1));
            } else {
                edge_corners_oriented.push((c1, c0));
            }
        }

        Dycore {
            grid,
            le,
            de,
            area,
            corner_area,
            f_edge,
            corner_edges,
            cell_east,
            cell_north,
            cell_ls_inv,
            edge_tangent,
            edge_normal,
            edge_corners_oriented,
            config,
        }
    }

    pub fn grid(&self) -> &GeodesicGrid {
        &self.grid
    }

    /// Physical divergence of an edge flux field into `out` (per cell).
    fn divergence(&self, flux: &[f64], out: &mut [f64]) {
        for (i, edges) in self.grid.cell_edges.iter().enumerate() {
            let mut acc = 0.0;
            for &(e, sign) in edges {
                acc += sign * flux[e] * self.le[e];
            }
            out[i] = acc / self.area[i];
        }
    }

    /// Reconstruct (east, north) cell velocity components for one level.
    fn reconstruct(&self, un: &[f64], out: &mut [(f64, f64)]) {
        let grid = &self.grid;
        let shared = SharedSlice::new(out);
        let space = Serial;
        space.for_each(grid.ncells(), &|i| {
            let east = self.cell_east[i];
            let north = self.cell_north[i];
            let (mut b1, mut b2) = (0.0, 0.0);
            for &(e, _) in &grid.cell_edges[i] {
                let n = self.edge_normal[e];
                let ne = n[0] * east[0] + n[1] * east[1] + n[2] * east[2];
                let nn = n[0] * north[0] + n[1] * north[1] + n[2] * north[2];
                b1 += ne * un[e];
                b2 += nn * un[e];
            }
            let inv = self.cell_ls_inv[i];
            unsafe { shared.set(i, (inv[0] * b1 + inv[1] * b2, inv[1] * b1 + inv[2] * b2)) };
        });
    }

    /// Relative vorticity at corners for one level.
    fn vorticity(&self, un: &[f64], out: &mut [f64]) {
        for (t, entry) in self.corner_edges.iter().enumerate() {
            let mut circ = 0.0;
            for &(e, sign) in entry {
                circ += sign * un[e] * self.de[e];
            }
            out[t] = circ / self.corner_area[t];
        }
    }

    /// One dynamics substep of length `dt`. Accumulates the layer mass flux
    /// (Pa·m/s, edge × level) into `mass_flux_accum` for tracer transport.
    pub fn step_dyn(&self, state: &mut AtmState, dt: f64, mass_flux_accum: &mut [f64]) {
        let grid = &self.grid;
        let n = grid.ncells();
        let ne = grid.nedges();
        let nlev = state.nlev;

        // --- Mass fluxes and continuity (from the old state). ---
        let mut dps_dt = vec![0.0; n];
        let mut div_layer = vec![0.0; n];
        let mut flux = vec![0.0; ne];
        let mut theta_flux_div = vec![0.0; nlev * n];
        let mut q_flux_div = vec![0.0; nlev * n];
        let mut tracer_div_buf = vec![0.0; n];
        for k in 0..nlev {
            let unk = &state.un[k * ne..(k + 1) * ne];
            for (e, &(a, b)) in grid.edges.iter().enumerate() {
                let ps_e = 0.5 * (state.ps[a] + state.ps[b]);
                flux[e] = unk[e] * ps_e * state.dsigma[k];
            }
            self.divergence(&flux, &mut div_layer);
            for i in 0..n {
                dps_dt[i] -= div_layer[i];
            }
            mass_flux_accum[k * ne..(k + 1) * ne]
                .iter_mut()
                .zip(&flux)
                .for_each(|(acc, f)| *acc += f * dt);

            // Upwind θ and q fluxes for the dycore-rate θ update.
            let thk = &state.theta[k * n..(k + 1) * n];
            let qk = &state.q[k * n..(k + 1) * n];
            let mut tflux = vec![0.0; ne];
            let mut qflux = vec![0.0; ne];
            for (e, &(a, b)) in grid.edges.iter().enumerate() {
                let up = if flux[e] >= 0.0 { a } else { b };
                tflux[e] = flux[e] * thk[up];
                qflux[e] = flux[e] * qk[up];
            }
            self.divergence(&tflux, &mut tracer_div_buf);
            theta_flux_div[k * n..(k + 1) * n].copy_from_slice(&tracer_div_buf);
            self.divergence(&qflux, &mut tracer_div_buf);
            q_flux_div[k * n..(k + 1) * n].copy_from_slice(&tracer_div_buf);
        }

        // --- Forward-backward staging: apply continuity and tracer-mass
        //     updates first, so the pressure-gradient force below sees the
        //     *new* mass field (stabilises external gravity waves). ---
        for (i, &dps) in dps_dt.iter().enumerate() {
            let ps_old = state.ps[i];
            let ps_new = ps_old + dt * dps;
            for k in 0..nlev {
                let dp_old = state.dsigma[k] * ps_old;
                let dp_new = state.dsigma[k] * ps_new;
                let idx = k * n + i;
                let th_mass = state.theta[idx] * dp_old - dt * theta_flux_div[idx];
                state.theta[idx] = th_mass / dp_new;
                let q_mass = state.q[idx] * dp_old - dt * q_flux_div[idx];
                state.q[idx] = q_mass / dp_new;
            }
            state.ps[i] = ps_new;
        }

        // --- Diagnose T, Φ from the updated mass field. ---
        let mut t_field = vec![0.0; nlev * n];
        let mut phi = vec![0.0; nlev * n];
        for i in 0..n {
            let ps = state.ps[i];
            let mut phi_below = 0.0;
            let mut p_below = ps;
            for k in 0..nlev {
                let p = state.sigma[k] * ps;
                let t = state.theta[k * n + i] * (p / P_REF).powf(KAPPA);
                t_field[k * n + i] = t;
                // Hypsometric increment from the previous reference level.
                phi[k * n + i] = phi_below + R_DRY * t * (p_below / p).ln();
                phi_below = phi[k * n + i];
                p_below = p;
            }
        }

        // --- Momentum tendencies per level (old winds, new mass field). ---
        let mut cell_vec = vec![(0.0, 0.0); n];
        let mut zeta = vec![0.0; grid.ncorners()];
        let mut div_u = vec![0.0; n];
        let mut new_un = vec![0.0; nlev * ne];
        for k in 0..nlev {
            let unk = &state.un[k * ne..(k + 1) * ne];
            self.reconstruct(unk, &mut cell_vec);
            self.vorticity(unk, &mut zeta);
            self.divergence(unk, &mut div_u);

            // Bernoulli function K + Φ at cells.
            let mut bern = vec![0.0; n];
            for i in 0..n {
                let (ue, uno) = cell_vec[i];
                bern[i] = 0.5 * (ue * ue + uno * uno) + phi[k * n + i];
            }

            let out = &mut new_un[k * ne..(k + 1) * ne];
            for (e, &(a, b)) in grid.edges.iter().enumerate() {
                // Tangential velocity from averaged cell vectors.
                let va = cell_vec[a];
                let vb = cell_vec[b];
                let v3 = [
                    0.5 * (va.0 * self.cell_east[a][0]
                        + va.1 * self.cell_north[a][0]
                        + vb.0 * self.cell_east[b][0]
                        + vb.1 * self.cell_north[b][0]),
                    0.5 * (va.0 * self.cell_east[a][1]
                        + va.1 * self.cell_north[a][1]
                        + vb.0 * self.cell_east[b][1]
                        + vb.1 * self.cell_north[b][1]),
                    0.5 * (va.0 * self.cell_east[a][2]
                        + va.1 * self.cell_north[a][2]
                        + vb.0 * self.cell_east[b][2]
                        + vb.1 * self.cell_north[b][2]),
                ];
                let t = self.edge_tangent[e];
                let ut = v3[0] * t[0] + v3[1] * t[1] + v3[2] * t[2];

                let (c0, c1) = grid.edge_corners[e];
                let eta = self.f_edge[e] + 0.5 * (zeta[c0] + zeta[c1]);

                let grad_bern = (bern[b] - bern[a]) / self.de[e];
                let t_e = 0.5 * (t_field[k * n + a] + t_field[k * n + b]);
                let grad_lnps = (state.ps[b].ln() - state.ps[a].ln()) / self.de[e];

                // Vector Laplacian: ∇ₙδ − ∇ₜζ (corners oriented along +t̂).
                let (cd, cu) = self.edge_corners_oriented[e];
                let lap = (div_u[b] - div_u[a]) / self.de[e]
                    - (zeta[cu] - zeta[cd]) / self.le[e];

                out[e] = unk[e]
                    + dt * (eta * ut - grad_bern - R_DRY * t_e * grad_lnps
                        + self.config.nu * lap);
            }
        }

        state.un.copy_from_slice(&new_un);
    }

    /// One tracer step: kept as a structural hook matching GRIST's slower
    /// tracer rate. Moisture here is already advected upwind at the dycore
    /// rate (needed for stability); the tracer step applies the *remainder*
    /// of the paper's pipeline — monotonic filtering at the 30 s cadence.
    pub fn step_tracer(&self, state: &mut AtmState, _mean_mass_flux: &[f64]) {
        // Clip-and-conserve filter: remove negative q (created by the
        // dycore-rate advection of sharp gradients) while conserving the
        // global moisture mass per level.
        let n = self.grid.ncells();
        for k in 0..state.nlev {
            let qk = &mut state.q[k * n..(k + 1) * n];
            let mut deficit = 0.0;
            let mut positive = 0.0;
            for (q, a) in qk.iter_mut().zip(&self.area) {
                if *q < 0.0 {
                    deficit += -*q * a;
                    *q = 0.0;
                } else {
                    positive += *q * a;
                }
            }
            if deficit > 0.0 && positive > 0.0 {
                let scale = 1.0 - deficit / positive;
                for q in qk.iter_mut() {
                    *q *= scale.max(0.0);
                }
            }
        }
    }

    /// One full model step: `tracer_substeps × dyn_substeps` dynamics
    /// substeps with tracer filtering at the tracer rate. Physics is applied
    /// by the caller (the physics–dynamics coupler) afterwards.
    pub fn step_model_dynamics(&self, state: &mut AtmState) {
        let _span = ap3esm_obs::span("dycore");
        let ne = self.grid.nedges();
        let mut mass_flux = vec![0.0; state.nlev * ne];
        for _ in 0..self.config.tracer_substeps() {
            mass_flux.fill(0.0);
            {
                let _dyn = ap3esm_obs::span("dyn_substeps");
                for _ in 0..self.config.dyn_substeps() {
                    self.step_dyn(state, self.config.dt_dyn, &mut mass_flux);
                }
            }
            for f in mass_flux.iter_mut() {
                *f /= self.config.dt_tracer;
            }
            let _tracer = ap3esm_obs::span("tracer_step");
            self.step_tracer(state, &mass_flux);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AtmState;

    fn setup(glevel: u32, nlev: usize) -> (Dycore, AtmState) {
        let grid = Arc::new(GeodesicGrid::new(glevel));
        let dx = grid.mean_spacing_km();
        let state = AtmState::isothermal(Arc::clone(&grid), nlev, 285.0);
        let config = DycoreConfig::for_spacing_km(dx);
        (Dycore::new(grid, config), state)
    }

    #[test]
    fn config_ratios_match_paper() {
        // The paper's 8/30(32)/120(128) structure is the 1:4:16 rate split.
        let c = DycoreConfig::for_spacing_km(1.0);
        assert_eq!(c.dyn_substeps(), 4); // tracer / dyn
        assert_eq!(c.tracer_substeps(), 4); // model / tracer
        assert_eq!(c.dyn_substeps() * c.tracer_substeps(), 16);
        // dt scales linearly with spacing.
        let c25 = DycoreConfig::for_spacing_km(25.0);
        assert!((c25.dt_dyn / c.dt_dyn - 25.0).abs() < 1e-9);
    }

    #[test]
    fn resting_isothermal_atmosphere_stays_at_rest() {
        let (dycore, mut state) = setup(3, 4);
        let ne = state.nedges();
        let mut acc = vec![0.0; 4 * ne];
        for _ in 0..10 {
            dycore.step_dyn(&mut state, dycore.config.dt_dyn, &mut acc);
        }
        assert!(
            state.max_wind() < 1e-8,
            "spurious wind {} m/s",
            state.max_wind()
        );
        assert!(state.ps.iter().all(|&p| (p - P_REF).abs() < 1e-6));
    }

    #[test]
    fn mass_conserved_under_flow() {
        let (dycore, mut state) = setup(3, 4);
        // Kick a local pressure anomaly.
        state.ps[10] += 500.0;
        state.ps[11] -= 300.0;
        let m0 = state.total_mass();
        let ne = state.nedges();
        let mut acc = vec![0.0; 4 * ne];
        for _ in 0..50 {
            dycore.step_dyn(&mut state, dycore.config.dt_dyn, &mut acc);
        }
        let m1 = state.total_mass();
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {}",
            (m1 - m0) / m0
        );
    }

    #[test]
    fn theta_mass_conserved_under_advection() {
        let (dycore, mut state) = setup(3, 3);
        let n = state.ncells();
        // Perturb θ and give a gentle flow.
        for i in 0..n {
            state.theta[i] += 2.0 * (i as f64 * 0.1).sin();
        }
        for (e, u) in state.un.iter_mut().enumerate() {
            *u = 3.0 * ((e % 17) as f64 / 17.0 - 0.5);
        }
        let t0 = state.theta_mass();
        let ne = state.nedges();
        let mut acc = vec![0.0; 3 * ne];
        for _ in 0..20 {
            dycore.step_dyn(&mut state, dycore.config.dt_dyn, &mut acc);
        }
        let t1 = state.theta_mass();
        assert!(
            ((t1 - t0) / t0).abs() < 1e-10,
            "theta mass drift {}",
            (t1 - t0) / t0
        );
    }

    #[test]
    fn gravity_wave_spreads_pressure_anomaly() {
        let (dycore, mut state) = setup(3, 3);
        state.ps[0] += 800.0;
        let ne = state.nedges();
        let mut acc = vec![0.0; 3 * ne];
        for _ in 0..100 {
            dycore.step_dyn(&mut state, dycore.config.dt_dyn, &mut acc);
        }
        // The anomaly must radiate: center value decreases, wind appears.
        assert!(state.ps[0] - P_REF < 700.0, "anomaly stuck: {}", state.ps[0]);
        assert!(state.max_wind() > 0.01);
        // And the run is stable.
        assert!(state.max_wind() < 50.0, "blow-up: {}", state.max_wind());
        assert!(state.ps.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn full_model_step_is_stable_and_conservative() {
        let (dycore, mut state) = setup(3, 4);
        let n = state.ncells();
        for i in 0..n {
            state.ps[i] += 300.0 * (i as f64 * 0.37).sin();
        }
        let m0 = state.total_mass();
        let q0 = state.moisture_mass();
        for _ in 0..3 {
            dycore.step_model_dynamics(&mut state);
        }
        assert!(((state.total_mass() - m0) / m0).abs() < 1e-12);
        // q is clipped but conservatively rescaled: change stays tiny.
        assert!(((state.moisture_mass() - q0) / q0).abs() < 1e-6);
        assert!(state.max_wind() < 60.0);
    }

    #[test]
    fn solid_rotation_vorticity_matches_analytic() {
        // u = Ω R cos(lat) ẑonal ⇒ ζ = 2Ω sin(lat).
        let (dycore, state) = setup(4, 1);
        let grid = dycore.grid();
        let omega = 1.0e-5;
        let un: Vec<f64> = (0..grid.nedges())
            .map(|e| {
                let m = grid.edge_midpoints[e];
                let vel = ap3esm_grid::sphere::Vec3::new(0.0, 0.0, omega)
                    .cross(m)
                    .scale(EARTH_RADIUS);
                vel.dot(grid.edge_normals[e])
            })
            .collect();
        let mut zeta = vec![0.0; grid.ncorners()];
        dycore.vorticity(&un, &mut zeta);
        for (t, &z) in zeta.iter().enumerate().step_by(97) {
            let lat = dycore.grid.corners[t].lat();
            let expect = 2.0 * omega * lat.sin();
            assert!(
                (z - expect).abs() < 0.15 * omega.max(expect.abs()),
                "corner {t}: zeta {z} vs {expect}"
            );
        }
        let _ = state;
    }
}
