//! Regenerates §5.2.4: the coupler optimisations —
//! 1. GSMap/Router offline precomputation (build time + memory vs load),
//! 2. unused-variable trimming of attribute vectors,
//! 3. all-to-all vs non-blocking point-to-point rearrangement.

use std::time::Instant;

use ap3esm_bench::{banner, write_csv};
use ap3esm_comm::World;
use ap3esm_cpl::avect::AttrVect;
use ap3esm_cpl::gsmap::GSMap;
use ap3esm_cpl::rearrange::{RearrangeStrategy, Rearranger};
use ap3esm_cpl::router::Router;

fn main() {
    banner("s524_coupler", "§5.2.4: coupler optimisation ablations");
    let mut rows = Vec::new();

    // --- 1. Online build vs offline precompute+load ---
    println!("\nRouter construction (1M points):");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>12}",
        "M ranks", "N ranks", "online (ms)", "load (ms)", "table MB"
    );
    for (m, n) in [(64, 48), (256, 192), (1024, 768)] {
        let src = GSMap::even(1_000_000, m);
        let dst = GSMap::even(1_000_000, n);
        let t0 = Instant::now();
        let router = Router::build(&src, &dst);
        let online_ms = t0.elapsed().as_secs_f64() * 1e3;
        let bytes = router.to_bytes();
        let t0 = Instant::now();
        let loaded = Router::from_bytes(&bytes).unwrap();
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(loaded.legs, router.legs);
        let mb = router.memory_bytes() as f64 / 1e6;
        println!("{m:>8} {n:>8} {online_ms:>14.2} {load_ms:>14.2} {mb:>12.2}");
        rows.push(format!("router,{m},{n},{online_ms},{load_ms},{mb}"));
    }

    // --- 2. Attribute-vector trimming ---
    // CESM registers many fields components never consume; AP3ESM trims
    // them (§5.2.4 "remove the unnecessary communication variables").
    let full_fields = [
        "taux", "tauy", "qnet", "precip", "dust1", "dust2", "dust3", "dust4", "co2prog",
        "co2diag", "bcphidry", "bcphodry", "ocphidry", "ocphodry", "isotope18o", "isotopehdo",
    ];
    let mut av = AttrVect::new(100_000, full_fields.as_ref());
    let before = av.payload_bytes();
    let trimmed = av.retain_used(&["taux", "tauy", "qnet", "precip"]);
    let after = av.payload_bytes();
    println!(
        "\nattribute-vector trimming: {trimmed} unused fields removed, payload {:.1} MB → {:.1} MB ({:.0}% less)",
        before as f64 / 1e6,
        after as f64 / 1e6,
        100.0 * (1.0 - after as f64 / before as f64)
    );
    rows.push(format!(
        "avect_trim,{},{},{},{},{}",
        full_fields.len(),
        4,
        before,
        after,
        trimmed
    ));

    // --- 3. All-to-all vs non-blocking P2P at several world sizes ---
    println!("\nRearrangement strategies (wall ms per exchange, mean of 5):");
    println!("{:>8} {:>14} {:>14} {:>10}", "ranks", "alltoall", "p2p", "speedup");
    for nranks in [4usize, 8, 16] {
        let nglobal = 400_000;
        let src = GSMap::even(nglobal, nranks);
        // Sparse destination: each rank's data goes to ~2 destinations —
        // exactly where all-to-all wastes world-size messages.
        let dst = GSMap::even(nglobal, nranks.max(2) / 2);
        let mut times = [0.0f64; 2];
        for (slot, strategy) in [
            (0, RearrangeStrategy::AllToAll),
            (1, RearrangeStrategy::NonBlockingP2p),
        ] {
            let reps = 5;
            let t0 = Instant::now();
            for _ in 0..reps {
                let world = World::new(nranks);
                world.run(|rank| {
                    let rearranger = Rearranger::new(Router::build(&src, &dst), 1);
                    let local = vec![1.0f64; src.local_size(rank.id())];
                    rearranger.rearrange(rank, strategy, &local, dst.local_size(rank.id()))
                });
            }
            times[slot] = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        }
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>9.2}×",
            nranks,
            times[0],
            times[1],
            times[0] / times[1]
        );
        rows.push(format!(
            "rearrange,{nranks},,{},{},{}",
            times[0],
            times[1],
            times[0] / times[1]
        ));
    }
    write_csv("s524_coupler", "experiment,a,b,c,d,e", &rows);
}
