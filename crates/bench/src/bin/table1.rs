//! Regenerates Table 1: the GRIST / LICOM / AP3ESM grid configurations.
//!
//! Grid counts come from the actual generators' formulas
//! (`GeodesicCounts`, `TABLE1_PRESETS`), not hard-coded numbers, so this
//! binary verifies that our meshes reproduce the paper's sizes.

use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::config::Resolution;
use ap3esm_grid::icosahedral::GeodesicCounts;

fn main() {
    banner("table1", "Table 1: configurations of GRIST, LICOM, AP3ESM");

    // Route the table through the observability sink too: each table is a
    // span, each configuration's size a counter, and the whole run lands in
    // target/obs/run-table1.json next to the CSVs.
    let obs = std::sync::Arc::new(ap3esm_obs::Obs::new());
    let _guard = ap3esm_obs::install(std::sync::Arc::clone(&obs));

    let grist_span = ap3esm_obs::span("table1_grist");
    println!("\nGRIST (atmosphere, 30 vertical layers):");
    println!(
        "{:>8} {:>6} {:>14} {:>14} {:>14}",
        "res(km)", "glevel", "cells", "edges", "vertices"
    );
    let mut rows = Vec::new();
    for res in Resolution::ALL {
        let g = res.atm_glevel();
        let c = GeodesicCounts::at_glevel(g);
        println!(
            "{:>8} {:>6} {:>14} {:>14} {:>14}",
            res.km().0,
            g,
            c.cells,
            c.edges,
            c.corners
        );
        rows.push(format!(
            "{},{},{},{},{}",
            res.km().0,
            g,
            c.cells,
            c.edges,
            c.corners
        ));
        ap3esm_obs::counter_add(&format!("grist.g{g}.cells"), c.cells as u64);
    }
    write_csv("table1_grist", "res_km,glevel,cells,edges,vertices", &rows);
    drop(grist_span);

    let licom_span = ap3esm_obs::span("table1_licom");
    println!("\nLICOM (ocean, 80 vertical levels):");
    println!(
        "{:>8} {:>10} {:>10} {:>16}",
        "res(km)", "longitudes", "latitudes", "3D grid points"
    );
    let mut rows = Vec::new();
    for &(res, nlon, nlat) in &ap3esm_grid::tripolar::TABLE1_PRESETS {
        let points = nlon as u64 * nlat as u64 * 80;
        println!("{res:>8} {nlon:>10} {nlat:>10} {points:>16}");
        rows.push(format!("{res},{nlon},{nlat},{points}"));
        ap3esm_obs::counter_add(&format!("licom.{res}km.points3d"), points);
    }
    write_csv("table1_licom", "res_km,nlon,nlat,points3d", &rows);
    drop(licom_span);

    let ap3esm_span = ap3esm_obs::span("table1_ap3esm");
    println!("\nAP3ESM coupled configurations:");
    println!("{:>6} {:>12} {:>12} {:>16}", "label", "atm(km)", "ocn(km)", "total grids");
    let mut rows = Vec::new();
    for res in Resolution::ALL {
        let (a, o) = res.km();
        println!(
            "{:>6} {:>12} {:>12} {:>16.3e}",
            res.label(),
            a,
            o,
            res.total_gridpoints() as f64
        );
        rows.push(format!(
            "{},{},{},{}",
            res.label(),
            a,
            o,
            res.total_gridpoints()
        ));
        ap3esm_obs::counter_add(
            &format!("ap3esm.{}.total_gridpoints", res.label()),
            res.total_gridpoints(),
        );
    }
    write_csv("table1_ap3esm", "label,atm_km,ocn_km,total_gridpoints", &rows);
    drop(ap3esm_span);

    let report = ap3esm_obs::ReportBuilder::new("table1")
        .meta("tables", 3usize)
        .meta("resolutions", Resolution::ALL.len())
        .spans(obs.profiler.snapshot())
        .metrics(obs.metrics.snapshot())
        .build();
    match report.write() {
        Ok(path) => println!("\nobs report: {}", path.display()),
        Err(e) => eprintln!("\nobs report not written: {e}"),
    }

    println!(
        "\nNote: the paper's 1-km GRIST row prints its cells/vertices columns"
    );
    println!(
        "permuted (our G12 edge count 5.03e8 and corner count 3.36e8 match its"
    );
    println!("5.0e8 / 3.4e8 exactly); see EXPERIMENTS.md.");
}
