//! Regenerates Table 2: strong-scaling SYPD of AP3ESM and its components
//! on ORISE and Sunway OceanLight, from the calibrated machine model
//! (DESIGN.md substitution: the machines are modeled, the model is fitted
//! to the paper's own measurements and reproduces their shape).

use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::scaling::reproduce_table2;

fn main() {
    banner("table2", "Table 2: strong-scaling SYPD, all configurations");

    let rows = reproduce_table2();
    let mut csv = Vec::new();
    for cfg in &rows {
        println!("\n--- {} (fit error {:.1}%) ---", cfg.label, cfg.fit_error * 100.0);
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>10}",
            "nodes", cfg.unit_name, "paper SYPD", "model SYPD", "model eff"
        );
        for ((nodes, units, paper_sypd), model) in cfg.paper.iter().zip(&cfg.model) {
            println!(
                "{:>10} {:>12} {:>12.4} {:>12.4} {:>9.1}%",
                nodes,
                units,
                paper_sypd,
                model.sypd,
                model.efficiency * 100.0
            );
            csv.push(format!(
                "{},{},{},{},{},{}",
                cfg.label, nodes, units, paper_sypd, model.sypd, model.efficiency
            ));
        }
    }
    write_csv(
        "table2",
        "config,nodes,units,paper_sypd,model_sypd,model_efficiency",
        &csv,
    );

    // The §7.2 speedup claims: CPE+OPT vs MPE.
    println!("\nMPE → CPE+OPT speedups (paper: ATM 112–184×, OCN 84–150×):");
    let pick = |label: &str| rows.iter().find(|r| r.label.contains(label)).unwrap();
    let atm_mpe = pick("ATM 3km MPE");
    let atm_cpe = pick("ATM 3km CPE");
    let ocn_mpe = pick("OCN 2km MPE");
    let ocn_cpe = pick("OCN 2km CPE");
    println!(
        "  ATM 3km: paper {:.0}× … {:.0}×, model {:.0}× … {:.0}×",
        atm_cpe.paper[0].2 / atm_mpe.paper[0].2,
        atm_cpe.paper.last().unwrap().2 / atm_mpe.paper.last().unwrap().2,
        atm_cpe.model[0].sypd / atm_mpe.model[0].sypd,
        atm_cpe.model.last().unwrap().sypd / atm_mpe.model.last().unwrap().sypd,
    );
    println!(
        "  OCN 2km: paper {:.0}× … {:.0}×, model {:.0}× … {:.0}×",
        ocn_cpe.paper[0].2 / ocn_mpe.paper[0].2,
        ocn_cpe.paper.last().unwrap().2 / ocn_mpe.paper.last().unwrap().2,
        ocn_cpe.model[0].sypd / ocn_mpe.model[0].sypd,
        ocn_cpe.model.last().unwrap().sypd / ocn_mpe.model.last().unwrap().sypd,
    );

    println!("\nHeadlines:");
    for (label, expect) in [
        ("ATM 1km", 0.85),
        ("OCN 1km OPT", 1.98),
        ("AP3ESM 1v1", 0.54),
    ] {
        let cfg = pick(label);
        let last = cfg.model.last().unwrap();
        println!(
            "  {label}: paper {:.2} SYPD, model {:.2} SYPD at {} {}",
            expect, last.sypd, last.units, cfg.unit_name
        );
    }
}
