//! The performance observatory's canonical quick suite.
//!
//! Runs per-kernel cost attribution (the same kernel through every
//! `pp` backend and tile size, registered and dispatched through the
//! hash-based `KernelRegistry`, timed with warm-up discard + trimmed
//! statistics), a laptop-scale coupled run (SYPD + per-section wall
//! breakdown + comm/IO byte traffic), and a batched-inference serving
//! burst (latency p50/p95, shed rate) — plus allocation counters from a
//! byte-counting global allocator — and emits one `ap3esm-bench/1` point
//! as `BENCH_<n>.json` at the repository root. Each PR commits its point;
//! the accumulated trajectory is what `--gate` judges new numbers
//! against (see `scripts/bench_gate.sh` and DESIGN.md §12).
//!
//! ```text
//! perf_trajectory [--out-dir D] [--gate] [--gate-only] [--dry-run]
//!                 [--validate FILE] [--days F] [--serve-requests N]
//!                 [--iters N] [--report-name S]
//! ```
//!
//! Exit codes: 0 ok / gate passed (or `--dry-run`), 1 usage or invalid
//! file, 2 gate regression.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ap3esm_comm::World;
use ap3esm_esm::config::CoupledConfig;
use ap3esm_esm::coupled::{run_coupled, CoupledOptions};
use ap3esm_obs::perf::{
    gate, load_trajectory, unix_now, workspace_root, BenchFile, BuildInfo, Direction, Stat,
};
use ap3esm_pp::{
    measure, ExecSpace, KernelArgs, KernelRegistry, MDRangePolicy, Serial, SharedSlice,
    SimulatedCpe, Threads, TileProfiler,
};

// --- allocation accounting ---------------------------------------------
// The suite's "allocation counter": every byte the process allocates is
// tallied, and each phase reports its delta. Informational — it attributes
// memory churn, it does not gate — but a 10× jump between PRs is exactly
// the kind of silent cost this file exists to surface.

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates to `System` unchanged; only relaxed counters added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes+count allocated while `f` runs.
fn alloc_delta<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let b0 = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let c0 = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (
        out,
        ALLOCATED_BYTES.load(Ordering::Relaxed) - b0,
        ALLOCATIONS.load(Ordering::Relaxed) - c0,
    )
}

// --- kernel cost attribution -------------------------------------------

/// Register the attribution kernels (the dycore/ocean hot-loop shapes:
/// an axpy stream, a 1-D advection stencil, a vertical reduction) in the
/// hash-based registry, exactly as CPE-side kernels are dispatched.
fn register_kernels(reg: &KernelRegistry) {
    reg.register("saxpy", |space, args| {
        let a = args.scalars[0];
        let n = args.n;
        let x = args.inputs[0];
        let out = SharedSlice::new(args.outputs[0]);
        space.for_each(n, &|i| unsafe {
            let v = *out.get(i) + a * x[i];
            out.set(i, v);
        });
    });
    reg.register("stencil3", |space, args| {
        let n = args.n;
        let x = args.inputs[0];
        let out = SharedSlice::new(args.outputs[0]);
        space.for_each(n, &|i| unsafe {
            let l = x[if i == 0 { n - 1 } else { i - 1 }];
            let r = x[if i + 1 == n { 0 } else { i + 1 }];
            out.set(i, 0.25 * l + 0.5 * x[i] + 0.25 * r);
        });
    });
    reg.register("vsum8", |space, args| {
        // 8-level vertical integral per column (n columns, stride 8).
        let n = args.n;
        let x = args.inputs[0];
        let out = SharedSlice::new(args.outputs[0]);
        space.for_each(n, &|i| unsafe {
            let mut acc = 0.0;
            for k in 0..8 {
                acc += x[i * 8 + k];
            }
            out.set(i, acc);
        });
    });
}

fn kernel_suite(iters: usize, file: &mut BenchFile) {
    let n = 1 << 17;
    let reg = KernelRegistry::new();
    register_kernels(&reg);
    let x: Vec<f64> = (0..n * 8).map(|i| (i as f64 * 1e-3).sin()).collect();
    let threads = Threads::auto();
    let cpe = SimulatedCpe::default();
    let backends: [(&str, &dyn ExecSpace); 3] = [
        ("serial", &Serial),
        ("threads", &threads),
        ("cpe", &cpe),
    ];

    for kernel in ["saxpy", "stencil3", "vsum8"] {
        for (backend, space) in backends {
            let mut y = vec![0.0f64; n];
            let summary = measure(3, iters, || {
                let mut args = KernelArgs {
                    n,
                    inputs: vec![&x[..]],
                    outputs: vec![&mut y],
                    scalars: vec![1.0001],
                };
                reg.launch_by_name(kernel, space, &mut args)
                    .expect("registered kernel");
            });
            let name = format!("perf.kernel.{kernel}.{backend}.ns_per_gp");
            println!(
                "  {name:<46} {:>9.3} ns/gp  (n={}, sd {:.3})",
                summary.per_item(n),
                summary.n,
                summary.stddev_per_item(n)
            );
            file.push(
                &name,
                Stat::sampled(
                    summary.per_item(n),
                    "ns/gp",
                    summary.n as u64,
                    summary.stddev_per_item(n),
                    Direction::LowerIsBetter,
                ),
            );
        }
    }

    // Tile-size attribution: the same 2-D stencil through MDRangePolicy's
    // profiled tiles, per backend and tile shape — the measurement the
    // upcoming autotuner (ROADMAP) will pick winners from.
    let (n0, n1) = (256, 256);
    let grid: Vec<f64> = (0..n0 * n1).map(|i| (i as f64 * 1e-3).cos()).collect();
    for (tile, t) in [("t8x8", 8), ("t32x32", 32)] {
        for (backend, space) in [
            ("serial", &Serial as &dyn ExecSpace),
            ("threads", &threads as &dyn ExecSpace),
        ] {
            let policy = MDRangePolicy::new_2d(n0, n1, t, t);
            let mut out = vec![0.0f64; n0 * n1];
            let profiler = TileProfiler::new("md2_stencil");
            let summary = measure(3, iters, || {
                let sink = SharedSlice::new(&mut out);
                policy.for_each_2d_profiled(space, &profiler, |i, j| unsafe {
                    let up = grid[((i + n0 - 1) % n0) * n1 + j];
                    let dn = grid[((i + 1) % n0) * n1 + j];
                    let lf = grid[i * n1 + (j + n1 - 1) % n1];
                    let rt = grid[i * n1 + (j + 1) % n1];
                    sink.set(i * n1 + j, 0.25 * (up + dn + lf + rt));
                });
            });
            let work = n0 * n1;
            let prof = profiler.finish();
            let name = format!("perf.kernel.md2_stencil.{tile}.{backend}.ns_per_gp");
            println!(
                "  {name:<46} {:>9.3} ns/gp  ({} tiles, imbalance {:.2}x)",
                summary.per_item(work),
                prof.tiles / (3 + iters),
                prof.imbalance()
            );
            file.push(
                &name,
                Stat::sampled(
                    summary.per_item(work),
                    "ns/gp",
                    summary.n as u64,
                    summary.stddev_per_item(work),
                    Direction::LowerIsBetter,
                ),
            );
        }
    }
}

// --- coupled-driver SYPD -----------------------------------------------

fn coupled_suite(days: f64, report_name: &str, file: &mut BenchFile) {
    let config = CoupledConfig::test_tiny();
    // Untraced, so the gated SYPD stays comparable across the trajectory
    // (tracing costs real wall time at test_tiny scale). The report is
    // still on: the per-section walls are cross-rank maxima, so sections
    // that never run on rank 0 (ocn_run) reach the point too.
    let opts = CoupledOptions {
        days,
        report_name: Some(format!("{report_name}-sim")),
        ..Default::default()
    };
    let (stats, bytes, allocs) = alloc_delta(|| {
        let world = World::new(config.world_size());
        world.run(|rank| run_coupled(rank, &config, &opts))
    });
    let root = &stats[0];
    println!(
        "  coupled test_tiny x {days} days: SYPD {:.2}, wall {:.2}s, {} sections",
        root.sypd,
        root.wall_seconds,
        root.per_section_seconds.len()
    );
    for (name, stat) in root.perf_metrics() {
        file.push(&name, stat);
    }
    file.push(
        "perf.sim.alloc_bytes",
        Stat::single(bytes as f64, "bytes", Direction::Informational),
    );
    file.push(
        "perf.sim.allocs",
        Stat::single(allocs as f64, "count", Direction::Informational),
    );

    // A second, traced run contributes the `perf.sim.critpath.*`
    // attribution (informational, never gated): where the critical path
    // spends its time and what halving the top section would buy. Kept
    // separate so the instrumentation cost cannot touch the gated SYPD.
    let traced_opts = CoupledOptions {
        days,
        report_name: Some(format!("{report_name}-critpath")),
        trace: true,
        ..Default::default()
    };
    let traced = {
        let world = World::new(config.world_size());
        world.run(|rank| run_coupled(rank, &config, &traced_opts))
    };
    let troot = &traced[0];
    if let Some(a) = &troot.critpath {
        println!(
            "  critpath (traced twin): compute {:.1}% comm {:.1}% wait {:.1}%, top {}",
            100.0 * a.compute_frac(),
            100.0 * a.comm_frac(),
            100.0 * a.wait_frac(),
            a.top_section,
        );
    }
    for (name, stat) in troot.perf_metrics() {
        if name.starts_with("perf.sim.critpath.") {
            file.push(&name, stat);
        }
    }
}

// --- serving latency ----------------------------------------------------

fn serve_suite(requests: usize, file: &mut BenchFile) {
    const NLEV: usize = 30;
    let cfg = ap3esm_serve::ServeConfig {
        workers: 2,
        max_batch: 16,
        max_wait: Duration::from_millis(2),
        queue_capacity: 256,
        ..Default::default()
    };
    let ((), bytes, allocs) = alloc_delta(|| {
        let svc = ap3esm_serve::Service::start_warm(cfg, NLEV, 32, 42);
        let submitters = 4;
        let per = requests / submitters;
        let workers: Vec<_> = (0..submitters)
            .map(|w| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    // Closed loop in waves: keep a bounded window in
                    // flight so batches form without flooding the queue.
                    for wave in 0..per.div_ceil(16) {
                        let tickets: Vec<_> = (0..16.min(per - wave * 16))
                            .filter_map(|i| {
                                let phase = (w * per + wave * 16 + i) as f64 * 0.1;
                                svc.submit("perf", column(NLEV, phase)).ok()
                            })
                            .collect();
                        for t in tickets {
                            let _ = t.wait();
                        }
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().expect("submitter");
        }
        svc.drain();
        for (name, stat) in ap3esm_serve::perf_snapshot(svc.obs()) {
            file.push(&name, stat);
        }
    });
    let p50 = file.get("perf.serve.latency_p50_us").map_or(0.0, |s| s.value);
    let p95 = file.get("perf.serve.latency_p95_us").map_or(0.0, |s| s.value);
    println!("  serve burst x {requests} reqs: p50 {p50:.0}us, p95 {p95:.0}us");
    file.push(
        "perf.serve.alloc_bytes",
        Stat::single(bytes as f64, "bytes", Direction::Informational),
    );
    file.push(
        "perf.serve.allocs",
        Stat::single(allocs as f64, "count", Direction::Informational),
    );
}

fn column(nlev: usize, phase: f64) -> ap3esm_ai::modules::ColumnState {
    ap3esm_ai::modules::ColumnState {
        u: (0..nlev).map(|k| 5.0 * (0.3 * k as f64 + phase).sin()).collect(),
        v: (0..nlev).map(|k| 2.0 * (0.2 * k as f64 + phase).cos()).collect(),
        t: (0..nlev).map(|k| 295.0 - 4.0 * k as f64).collect(),
        q: (0..nlev).map(|k| 0.01 * (-0.4 * k as f64).exp()).collect(),
        p: (0..nlev).map(|k| 1.0e5 * (1.0 - k as f64 / (nlev + 1) as f64)).collect(),
    }
}

// --- reporting / gating -------------------------------------------------

/// Mirror the BENCH point into the live-observability vocabulary: every
/// metric as a `perf.*` gauge in a run report (`ap3esm-obs/5`, carrying
/// the same build stamp) and as a one-point tsdb series snapshot.
fn mirror_to_obs(file: &BenchFile, report_name: &str, gate_json: Option<ap3esm_obs::json::Json>) {
    let obs = Arc::new(ap3esm_obs::Obs::new());
    let store = ap3esm_obs::SeriesStore::new(64);
    for (name, stat) in &file.metrics {
        obs.metrics.gauge(name).set(stat.value);
        store.record(name, stat.value);
    }
    let mut report = ap3esm_obs::ReportBuilder::new(report_name)
        .meta("suite", file.name.as_str())
        .meta("seq", file.seq)
        .meta("created_unix", file.created_unix)
        .meta("n_metrics", file.metrics.len());
    if let Some(g) = gate_json {
        report = report.meta("perf_gate", g);
    }
    let report = report.metrics(obs.metrics.snapshot()).build();
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("report write failed: {e}"),
    }
    match store.write_snapshot(report_name) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("series write failed: {e}"),
    }
}

struct Args {
    out_dir: std::path::PathBuf,
    gate: bool,
    gate_only: bool,
    dry_run: bool,
    validate: Option<String>,
    days: f64,
    serve_requests: usize,
    iters: usize,
    report_name: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out_dir: workspace_root(),
        gate: false,
        gate_only: false,
        dry_run: false,
        validate: None,
        days: 2.0,
        serve_requests: 768,
        iters: 12,
        report_name: "perf-trajectory".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--out-dir" => args.out_dir = value("--out-dir")?.into(),
            "--gate" => args.gate = true,
            "--gate-only" => args.gate_only = true,
            "--dry-run" => args.dry_run = true,
            "--validate" => args.validate = Some(value("--validate")?),
            "--days" => args.days = value("--days")?.parse().map_err(|e| format!("{e}"))?,
            "--serve-requests" => {
                args.serve_requests =
                    value("--serve-requests")?.parse().map_err(|e| format!("{e}"))?
            }
            "--iters" => args.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--report-name" => args.report_name = value("--report-name")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_trajectory: {e}");
            std::process::exit(1);
        }
    };

    // Validation mode: strict-parse one BENCH file, report, exit.
    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_trajectory: read {path}: {e}");
            std::process::exit(1);
        });
        match BenchFile::parse(&text) {
            Ok(f) => {
                println!(
                    "{path}: valid {} (seq {}, {} metrics, sha {})",
                    ap3esm_obs::perf::BENCH_SCHEMA,
                    f.seq,
                    f.metrics.len(),
                    f.build.git_sha
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }

    let trajectory = load_trajectory(&args.out_dir).unwrap_or_else(|e| {
        eprintln!("perf_trajectory: corrupt trajectory: {e}");
        std::process::exit(1);
    });

    // Gate-only mode: judge the newest committed point against the rest.
    if args.gate_only {
        match trajectory.split_last() {
            None => println!("no BENCH_*.json trajectory yet — nothing to gate"),
            Some((current, history)) => {
                let report = gate::evaluate(history, current, &gate::GateOptions::default());
                print!("{}", report.render());
                if !report.passed() && !args.dry_run {
                    std::process::exit(2);
                }
            }
        }
        return;
    }

    ap3esm_bench::banner(
        "perf_trajectory — canonical quick suite",
        "ap3esm-bench/1 trajectory point (DESIGN.md §12)",
    );
    let mut file = BenchFile::new("perf_trajectory", BuildInfo::current().clone());
    file.created_unix = unix_now();

    println!("[1/3] per-kernel cost attribution (backends × tile sizes)");
    kernel_suite(args.iters, &mut file);
    println!("[2/3] coupled driver (SYPD, section breakdown, traffic)");
    coupled_suite(args.days, &args.report_name, &mut file);
    println!("[3/3] batched-inference serving (latency, shed)");
    serve_suite(args.serve_requests, &mut file);

    let path = file.write_next(&args.out_dir).expect("write BENCH file");
    println!("wrote {} ({} metrics)", path.display(), file.metrics.len());

    // Gate the fresh point against everything that came before it.
    let gate_report = gate::evaluate(&trajectory, &file, &gate::GateOptions::default());
    print!("{}", gate_report.render());
    mirror_to_obs(&file, &args.report_name, Some(gate_report.to_json()));

    if args.gate && !gate_report.passed() && !args.dry_run {
        std::process::exit(2);
    }
}
