//! Regenerates Fig. 8b: weak-scaling efficiency of the atmosphere
//! (25→10→6→3 km on 683→43691 nodes; paper: 87.85 % final) and the ocean
//! (10→5→3→2 km on 2107→50035 nodes; paper: 96.57 % final).

use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::scaling::reproduce_fig8b;

fn main() {
    banner("fig8b_weak", "Fig. 8b: weak scaling efficiencies");
    let mut rows = Vec::new();
    for series in reproduce_fig8b() {
        println!(
            "\n--- {} (paper final efficiency {:.2}%) ---",
            series.label,
            series.paper_final_efficiency * 100.0
        );
        println!("{:>9} {:>10} {:>12}", "res (km)", "nodes", "model eff");
        for ((res, nodes), eff) in series
            .resolutions_km
            .iter()
            .zip(&series.nodes)
            .zip(&series.efficiency)
        {
            println!("{:>9} {:>10} {:>11.2}%", res, nodes, eff * 100.0);
            rows.push(format!("{},{},{},{}", series.label, res, nodes, eff));
        }
    }
    write_csv("fig8b_weak", "series,res_km,nodes,efficiency", &rows);
}
