//! Regenerates Fig. 2: the literature survey of high-resolution coupled
//! models (total grid points vs SYPD) with the log-linear state-of-the-art
//! line fitted between CNRM (2019) and CESM (2024), and AP3ESM's points
//! plotted against it.

use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::config::Resolution;

/// Literature entries of Fig. 2: (name, year, total grid points, SYPD).
/// Grid points are the order-of-magnitude totals of each work's highest-
/// resolution coupled case; SYPD as quoted in §4.
const LITERATURE: &[(&str, u32, f64, f64)] = &[
    ("CNRM-CM6-1-HR (2019)", 2019, 2.0e8, 2.2),
    ("HadGEM3-GC3.1-HH (2018)", 2018, 6.0e8, 0.49),
    ("EC-Earth3P-VHR (2024)", 2024, 8.0e8, 2.8),
    ("E3SM v1 HR (2019)", 2019, 9.0e8, 0.8),
    ("ICON MSA (2023)", 2023, 4.0e9, 0.47),
    ("nextGEMS prod (2025)", 2025, 3.0e9, 1.64), // 600 SDPD
    ("CESM Sunway 5v3 (2024)", 2024, 7.0e9, 0.61),
];

fn main() {
    banner("fig2_sota", "Fig. 2: high-resolution coupled model survey + SOTA line");

    // Log-linear fit through the two anchor cases the paper names:
    // CNRM (2019) and CESM (2024) — "identified as the most favorable
    // cases in the 1e8 and 1e9 order-of-magnitude ranges".
    let cnrm = LITERATURE[0];
    let cesm = LITERATURE[6];
    let slope = (cesm.3.ln() - cnrm.3.ln()) / (cesm.2.ln() - cnrm.2.ln());
    let intercept = cnrm.3.ln() - slope * cnrm.2.ln();
    let sota = |points: f64| (intercept + slope * points.ln()).exp();

    println!("\nSOTA line: log(SYPD) = {intercept:.3} + {slope:.3}·log(points)");
    println!(
        "\n{:<28} {:>6} {:>12} {:>8} {:>10} {:>8}",
        "model", "year", "gridpoints", "SYPD", "SOTA@pts", "above?"
    );
    let mut rows = Vec::new();
    for &(name, year, points, sypd) in LITERATURE {
        let line = sota(points);
        println!(
            "{:<28} {:>6} {:>12.2e} {:>8.2} {:>10.2} {:>8}",
            name,
            year,
            points,
            sypd,
            line,
            if sypd >= line { "yes" } else { "no" }
        );
        rows.push(format!("{name},{year},{points},{sypd},{line},literature"));
    }

    // AP3ESM's own coupled points (paper headline numbers, grid points
    // from our Table 1 generators).
    println!();
    for (res, sypd) in [(Resolution::R3v2, 1.01), (Resolution::R1v1, 0.54)] {
        let points = res.total_gridpoints() as f64;
        let line = sota(points);
        let above = sypd >= line;
        println!(
            "{:<28} {:>6} {:>12.2e} {:>8.2} {:>10.3} {:>8}",
            format!("AP3ESM {}", res.label()),
            2025,
            points,
            sypd,
            line,
            if above { "yes" } else { "no" }
        );
        rows.push(format!(
            "AP3ESM {},2025,{points},{sypd},{line},this-work",
            res.label()
        ));
        assert!(
            above,
            "AP3ESM {} must sit above the SOTA line (the paper's claim)",
            res.label()
        );
    }
    write_csv("fig2_sota", "model,year,gridpoints,sypd,sota_line,kind", &rows);
    println!("\nBoth AP3ESM configurations sit above the fitted SOTA line ✓");
}
