//! Regenerates Fig. 1's field snapshots as statistics: precipitation and
//! sea-surface kinetic energy from the coupled model (Fig. 1a), total
//! cloud fraction from the atmosphere (Fig. 1b), surface current speed
//! from the ocean (Fig. 1c). Full-disk images need km-scale grids; the
//! statistics (means, extremes, high-tail fractions, histograms) carry the
//! comparison at our scale.

use ap3esm_atm::diag::{area_mean, cloud_fraction, histogram, surface_kinetic_energy};
use ap3esm_bench::{banner, write_csv};
use ap3esm_comm::World;
use ap3esm_esm::config::CoupledConfig;
use ap3esm_esm::coupled::{run_coupled, CoupledOptions};

fn main() {
    banner(
        "fig1_fields",
        "Fig. 1: coupled precipitation/KE, cloud fraction, surface speed",
    );

    let config = CoupledConfig::demo_small();
    let opts = CoupledOptions {
        days: 1.0,
        ..Default::default()
    };
    println!(
        "\nrunning coupled model: atm G{} ({} levels) + ocn {}×{}×{} on {} ranks…",
        config.atm_glevel,
        config.atm_nlev,
        config.ocn_nlon,
        config.ocn_nlat,
        config.ocn_nlev,
        config.world_size()
    );
    let world = World::new(config.world_size());
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    println!("\ncoupled run summary (1 simulated day):");
    println!("  measured SYPD (this machine, this size): {:.3}", root.sypd);
    println!("  mean SST series (°C): {:?}", summary(&root.sst_series));
    println!("  atm mean θ series (K): {:?}", summary(&root.theta_series));
    println!("  ocean KE series:       {:?}", summary(&root.ke_series));
    println!("  ice cover series:      {:?}", summary(&root.ice_series));

    // Standalone atmosphere snapshot for the cloud-fraction panel.
    let grid = std::sync::Arc::new(ap3esm_grid::GeodesicGrid::new(4));
    let mut atm = ap3esm_atm::state::AtmState::isothermal(std::sync::Arc::clone(&grid), 8, 288.0);
    let n = grid.ncells();
    // Moisten the tropics so clouds form.
    for i in 0..n {
        let phi = grid.cells[i].lat();
        for k in 0..4 {
            atm.q[k * n + i] = 0.016 * phi.cos().powi(4) * (-0.5 * k as f64).exp();
        }
    }
    let cf = cloud_fraction(&atm);
    let mean_cf = area_mean(&atm, &cf);
    let (edges, counts) = histogram(&cf, 0.0, 1.0, 10);
    println!("\ncloud fraction (Fig. 1b analogue): mean = {mean_cf:.3}");
    let rows: Vec<String> = counts
        .iter()
        .enumerate()
        .map(|(b, c)| format!("{:.1},{c}", edges[b]))
        .collect();
    write_csv("fig1_cloud_fraction_hist", "bin_lo,count", &rows);

    let ke = surface_kinetic_energy(&atm);
    println!(
        "surface KE (atm): mean {:.3e}, max {:.3e}",
        area_mean(&atm, &ke),
        ke.iter().fold(0.0f64, |m, &v| m.max(v))
    );

    // Fig. 1c-class analysis: eddy/mean decomposition and zonal KE
    // spectrum of a wind-driven standalone ocean.
    use ap3esm_grid::decomp::BlockDecomp2d;
    use ap3esm_grid::mask::MaskGenerator;
    use ap3esm_grid::tripolar::TripolarGrid;
    use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};
    let ogrid = TripolarGrid::new(96, 60, 8, MaskGenerator::default());
    let oconfig = OcnConfig::for_grid(96, 60, 8, 1, 1);
    let (eddy, spectrum) = {
        let world = ap3esm_comm::World::new(1);
        let mut out = world.run(|rank| {
            let decomp = BlockDecomp2d::new(96, 60, 1, 1);
            let mut model = OcnModel::new(&ogrid, oconfig.clone(), 0);
            let forcing = OcnForcing::climatology(&ogrid, &decomp, 0);
            for _ in 0..20 {
                model.step(rank, &forcing);
            }
            let eddy = ap3esm_ocn::spectra::eddy_mean_decomposition(&model.state);
            let spec =
                ap3esm_ocn::spectra::surface_ke_spectrum(&model.state, 15, 45);
            (eddy, spec)
        });
        out.swap_remove(0)
    };
    println!(
        "
ocean surface KE (Fig. 1c analogue): mean-flow {:.3e}, eddy {:.3e} (eddy fraction {:.2})",
        eddy.mean_ke,
        eddy.eddy_ke,
        eddy.eddy_fraction()
    );
    let spec_rows: Vec<String> = spectrum
        .iter()
        .enumerate()
        .map(|(k, p)| format!("{k},{p}"))
        .collect();
    write_csv("fig1_ke_spectrum", "wavenumber,power", &spec_rows);

    let rows = vec![
        format!("sypd,{}", root.sypd),
        format!("mean_sst_last,{}", root.sst_series.last().unwrap_or(&0.0)),
        format!("ocean_ke_last,{}", root.ke_series.last().unwrap_or(&0.0)),
        format!("ice_cover_last,{}", root.ice_series.last().unwrap_or(&0.0)),
        format!("cloud_fraction_mean,{mean_cf}"),
        format!("ocean_eddy_ke_fraction,{}", eddy.eddy_fraction()),
    ];
    write_csv("fig1_fields", "quantity,value", &rows);
}

fn summary(v: &[f64]) -> (f64, f64) {
    if v.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    (v[0], *v.last().unwrap())
}
