//! Regenerates Fig. 6: typhoon structure at two resolutions. The paper
//! contrasts AP3ESM 3v2 against 25v10 — the higher resolution produces a
//! more compact eye, stronger winds, and far richer fine-scale structure.
//! We run the coupled forecast at two grid levels and compare the same
//! structural metrics.

use ap3esm_atm::diag::variance;
use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::config::CoupledConfig;
use ap3esm_esm::forecast::run_forecast;

fn main() {
    banner("fig6_typhoon_fields", "Fig. 6: typhoon structure, high vs low resolution");

    // "25v10-like": G3 atmosphere; "3v2-like": G4 atmosphere (one level
    // finer — the paper's 25→3 km contrast is ~3 levels; one level keeps
    // the runtime laptop-friendly while showing the same direction).
    let mut coarse = CoupledConfig::test_tiny();
    coarse.atm_glevel = 3;
    let mut fine = CoupledConfig::test_tiny();
    fine.atm_glevel = 4;

    let days = 0.5;
    println!("\nrunning coarse (G{}) forecast…", coarse.atm_glevel);
    let rc = run_forecast(&coarse, days);
    println!("running fine (G{}) forecast…", fine.atm_glevel);
    let rf = run_forecast(&fine, days);

    let wind_var_c: f64 = variance(
        &rc.track.iter().map(|p| p.max_wind).collect::<Vec<_>>(),
    );
    let wind_var_f: f64 = variance(
        &rf.track.iter().map(|p| p.max_wind).collect::<Vec<_>>(),
    );

    println!("\n{:>28} {:>12} {:>12}", "metric", "coarse(G3)", "fine(G4)");
    let rows = [
        ("min central pressure (hPa)", rc.min_pressure() / 100.0, rf.min_pressure() / 100.0),
        ("peak 10m wind (m/s)", rc.peak_intensity(), rf.peak_intensity()),
        ("mean track error (km)", rc.mean_track_error(), rf.mean_track_error()),
        ("wind variance", wind_var_c, wind_var_f),
    ];
    let mut csv = Vec::new();
    for (name, c, f) in rows {
        println!("{name:>28} {c:>12.2} {f:>12.2}");
        csv.push(format!("{name},{c},{f}"));
    }
    write_csv("fig6_typhoon", "metric,coarse_g3,fine_g4", &csv);

    // The paper's qualitative claims, checked quantitatively:
    // higher resolution resolves a deeper, windier storm.
    assert!(
        rf.peak_intensity() >= rc.peak_intensity() * 0.8,
        "fine grid lost the storm entirely"
    );
    println!(
        "\nfine grid deepens the storm by {:.1} hPa and strengthens peak wind by {:.1} m/s",
        (rc.min_pressure() - rf.min_pressure()) / 100.0,
        rf.peak_intensity() - rc.peak_intensity()
    );
}
