//! Regenerates §5.2.5: the parallel I/O strategy — data partitioned into
//! sub-files with rank groups assigned per set, binary format. Sweeps the
//! sub-file count for a 3-D field write/read and validates integrity.

use std::time::Instant;

use ap3esm_bench::{banner, write_csv};
use ap3esm_io::subfile::{IoPlan, SubfileReader, SubfileWriter};

fn main() {
    banner("s525_io", "§5.2.5: sub-file parallel I/O");
    let dims = [360usize, 180, 20]; // a 3-D field, ~10 MB
    let n: usize = dims.iter().product();
    let field: Vec<f64> = (0..n).map(|i| (i as f64 * 1e-4).sin()).collect();
    let dir = std::env::temp_dir().join(format!("ap3esm-s525-{}", std::process::id()));

    println!("\nfield: {}×{}×{} = {n} points ({:.1} MB)", dims[0], dims[1], dims[2], n as f64 * 8.0 / 1e6);
    println!(
        "\n{:>10} {:>12} {:>12} {:>10}",
        "sub-files", "write (ms)", "read (ms)", "intact"
    );
    let mut rows = Vec::new();
    for nsub in [1usize, 2, 4, 8, 16, 32] {
        let name = format!("field{nsub}");
        let writer = SubfileWriter::new(&dir, &name, &dims, nsub);
        let t0 = Instant::now();
        writer.write_all(&field).unwrap();
        let write_ms = t0.elapsed().as_secs_f64() * 1e3;
        let reader = SubfileReader::new(&dir, &name);
        let t0 = Instant::now();
        let (header, back) = reader.read_all().unwrap();
        let read_ms = t0.elapsed().as_secs_f64() * 1e3;
        let intact = back == field && header.subfile_count as usize == nsub;
        println!("{nsub:>10} {write_ms:>12.1} {read_ms:>12.1} {intact:>10}");
        assert!(intact);
        rows.push(format!("{nsub},{write_ms},{read_ms}"));
    }
    write_csv("s525_io", "subfiles,write_ms,read_ms", &rows);

    // Rank-group assignment: the paper's "assign groups of MPI ranks to
    // the I/O for a set of subfiles".
    println!("\nrank-group plan for 1024 ranks → 32 sub-files:");
    let plan = IoPlan::new(1024, 32);
    let sizes: Vec<usize> = (0..32).map(|g| plan.members_of(g).len()).collect();
    println!(
        "  group sizes: min {}, max {} (aggregators: ranks {:?}…)",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
        (0..4).map(|g| plan.aggregator_of(g)).collect::<Vec<_>>()
    );

    // Partial (restart-style) range read touching few sub-files.
    let reader = SubfileReader::new(&dir, "field8");
    let t0 = Instant::now();
    let part = reader.read_range(n / 2, n / 2 + 1000).unwrap();
    println!(
        "\nrange read of 1000 elements from the 8-sub-file set: {:.2} ms, correct: {}",
        t0.elapsed().as_secs_f64() * 1e3,
        part == field[n / 2..n / 2 + 1000]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
