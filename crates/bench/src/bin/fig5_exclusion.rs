//! Regenerates Fig. 5 / §5.2.2: excluding 3-D non-ocean grid points —
//! resource reduction, rank remapping balance, wall-clock effect, and the
//! "consistent results" bit-for-bit check.

use std::time::Instant;

use ap3esm_bench::{banner, write_csv};
use ap3esm_comm::World;
use ap3esm_grid::compress::{ActiveSet, CompressionReport};
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::mask::MaskGenerator;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};

fn run(grid: &TripolarGrid, exclude: bool, steps: usize) -> (Vec<f64>, f64, usize) {
    let mut config = OcnConfig::for_grid(grid.nlon, grid.nlat, grid.nlev, 1, 1);
    config.exclude_land = exclude;
    let world = World::new(1);
    let mut out = world.run(|rank| {
        let decomp = BlockDecomp2d::new(grid.nlon, grid.nlat, 1, 1);
        let mut model = OcnModel::new(grid, config.clone(), 0);
        let forcing = OcnForcing::climatology(grid, &decomp, 0);
        let t0 = Instant::now();
        for _ in 0..steps {
            model.step(rank, &forcing);
        }
        let wall = t0.elapsed().as_secs_f64();
        let st = &model.state;
        let mut sst = Vec::new();
        for j in 0..st.nj {
            for i in 0..st.ni {
                sst.push(st.t[0][st.at(i, j)]);
            }
        }
        (sst, wall, model.columns_visited)
    });
    out.swap_remove(0)
}

fn main() {
    banner("fig5_exclusion", "Fig. 5 / §5.2.2: 3-D non-ocean point exclusion");
    let grid = TripolarGrid::new(120, 76, 20, MaskGenerator::default());

    // --- Resource accounting (the "~30 % computational resource
    //     reduction" number). ---
    let report = CompressionReport::new(&grid, 10_000);
    println!("\n3-D points: total {}, ocean {}", report.total_points, report.active_points);
    println!(
        "point reduction from exclusion: {:.1}% (paper: ~30%)",
        report.reduction * 100.0
    );
    println!(
        "ranks needed at 10k points/rank: dense {}, packed {} ({:.1}% fewer)",
        report.ranks_dense,
        report.ranks_packed,
        100.0 * (1.0 - report.ranks_packed as f64 / report.ranks_dense as f64)
    );

    // --- Rank remapping balance. ---
    let set = ActiveSet::from_grid(&grid);
    let nranks = 16;
    let loads = set.points_per_rank(nranks);
    let mean = set.total_points as f64 / nranks as f64;
    let imb = loads.iter().map(|&l| l as f64 / mean).fold(0.0f64, f64::max);
    println!(
        "\nrank remapping over {nranks} ranks: max/mean load = {imb:.3} (1.0 = perfect)"
    );

    // --- Wall clock + consistency. ---
    let steps = 5;
    let (sst_dense, wall_dense, visited_dense) = run(&grid, false, steps);
    let (sst_packed, wall_packed, visited_packed) = run(&grid, true, steps);
    let identical = sst_dense
        .iter()
        .zip(&sst_packed)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "\nocean model, {steps} steps on {}×{}×{}:",
        grid.nlon, grid.nlat, grid.nlev
    );
    println!("  dense loop:    {wall_dense:.3}s, {visited_dense} columns/step visited");
    println!("  excluded loop: {wall_packed:.3}s, {visited_packed} columns/step visited");
    println!(
        "  speedup {:.2}×, results bit-for-bit identical: {identical}",
        wall_dense / wall_packed
    );
    assert!(identical, "exclusion changed results!");

    write_csv(
        "fig5_exclusion",
        "quantity,value",
        &[
            format!("total_points,{}", report.total_points),
            format!("active_points,{}", report.active_points),
            format!("reduction,{}", report.reduction),
            format!("ranks_dense,{}", report.ranks_dense),
            format!("ranks_packed,{}", report.ranks_packed),
            format!("load_imbalance_16ranks,{imb}"),
            format!("wall_dense_s,{wall_dense}"),
            format!("wall_packed_s,{wall_packed}"),
            format!("bitwise_identical,{identical}"),
        ],
    );
}
