//! Regenerates Fig. 4 / §5.2.1: the AI physics suite — train the tendency
//! CNN on conventional-physics supervision (our stand-in for the paper's
//! 5 km GRIST fields), evaluate its accuracy on held-out data, and compare
//! its per-column cost against the conventional suite.
//!
//! Protocol mirrors the paper: "training dataset … 80 days", "7:1
//! training:test partition", "three random time steps per day as a
//! validation subset".

use std::time::Instant;

use ap3esm_ai::modules::Normalizer;
use ap3esm_ai::net::TendencyCnn;
use ap3esm_ai::train::{train_test_split, validation_steps, TrainConfig, Trainer};
use ap3esm_bench::{banner, write_csv};
use ap3esm_physics::suite::{hydrostatic_thickness, Column, ConventionalSuite, SurfaceProperties};

/// Generate supervision pairs from the conventional suite over a sweep of
/// column states (the "80 days, 20 from each season" analogue: a seasonal
/// parameter sweep of surface temperature and insolation).
fn generate_dataset(
    nlev: usize,
    days: usize,
    steps_per_day: usize,
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let suite = ConventionalSuite::default();
    let sigma: Vec<f64> = (0..nlev)
        .map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64)
        .collect();
    let ds = vec![1.0 / nlev as f64; nlev];
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    let mut rng_state = 0xA3E5_u64;
    let mut rnd = || {
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / 16_777_216.0
    };
    for day in 0..days {
        // Four "seasons" of 20 days each (the paper's sampling).
        let season = (day / (days / 4).max(1)) as f64;
        for step in 0..steps_per_day {
            let coszr = ((step as f64 / steps_per_day as f64) * std::f64::consts::TAU)
                .sin()
                .max(0.0);
            let t_surf = 288.0 + 8.0 * (season * std::f64::consts::FRAC_PI_2).sin()
                + 6.0 * (rnd() - 0.5);
            let t: Vec<f64> = (0..nlev)
                .map(|k| t_surf - (55.0 / nlev as f64) * k as f64 + 2.0 * (rnd() - 0.5))
                .collect();
            let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
            let q: Vec<f64> = (0..nlev)
                .map(|k| 0.014 * (-2.0 * k as f64 / nlev as f64).exp() * (0.5 + rnd()))
                .collect();
            let u0 = 20.0 * (rnd() - 0.5);
            let v0 = 10.0 * (rnd() - 0.5);
            let col = Column {
                u: vec![u0; nlev],
                v: vec![v0; nlev],
                t: t.clone(),
                q: q.clone(),
                p: p.clone(),
                dp,
                dz,
            };
            let out = suite.step_column(
                &col,
                &SurfaceProperties {
                    tskin: t_surf + 2.0,
                    coszr,
                    wetness: 1.0,
                },
            );
            let mut x = Vec::with_capacity(5 * nlev);
            for src in [&col.u, &col.v, &col.t, &col.q, &col.p] {
                x.extend(src.iter().map(|&v| v as f32));
            }
            let mut y = Vec::with_capacity(4 * nlev);
            for src in [&out.du, &out.dv, &out.dt, &out.dq] {
                y.extend(src.iter().map(|&v| v as f32));
            }
            inputs.push(x);
            targets.push(y);
        }
    }
    (inputs, targets)
}

fn normalize_set(data: &mut [Vec<f32>], channels: usize) -> Normalizer {
    let norm = Normalizer::fit(data, channels);
    for sample in data.iter_mut() {
        *sample = norm.normalize(sample, channels);
    }
    norm
}

fn main() {
    banner("fig4_ai_physics", "Fig. 4 / §5.2.1: AI physics suite");
    let nlev = 16;
    let days = 80;
    let steps_per_day = 4;
    println!("\ngenerating supervision: {days} days × {steps_per_day} steps…");
    let (mut inputs, mut targets) = generate_dataset(nlev, days, steps_per_day);
    let _in_norm = normalize_set(&mut inputs, 5);
    let _out_norm = normalize_set(&mut targets, 4);

    let (train_idx, test_idx) = train_test_split(inputs.len());
    let val = validation_steps(days, steps_per_day, 3.min(steps_per_day), 42);
    println!(
        "dataset: {} samples → {} train / {} test / {} validation steps",
        inputs.len(),
        train_idx.len(),
        test_idx.len(),
        val.len()
    );

    let mut net = TendencyCnn::with_width(nlev, 24, 7);
    println!(
        "CNN: {} conv layers, {} ResUnits, {} parameters (paper-size net has {})",
        net.conv_layers(),
        net.res_units(),
        net.num_parameters(),
        TendencyCnn::paper(30).num_parameters()
    );
    let trainer = Trainer::new(TrainConfig {
        epochs: 12,
        batch_size: 16,
        lr: 2e-3,
    });
    let t0 = Instant::now();
    let stats = trainer.train_cnn(&mut net, &inputs, &targets);
    let train_time = t0.elapsed().as_secs_f64();

    println!("\n{:>6} {:>12} {:>12}", "epoch", "train MSE", "test MSE");
    let mut rows = Vec::new();
    for s in &stats {
        println!("{:>6} {:>12.5} {:>12.5}", s.epoch, s.train_mse, s.test_mse);
        rows.push(format!("{},{},{}", s.epoch, s.train_mse, s.test_mse));
    }
    write_csv("fig4_training", "epoch,train_mse,test_mse", &rows);

    let first = stats.first().unwrap();
    let last = stats.last().unwrap();
    println!(
        "\ntraining reduced MSE {:.4} → {:.4} ({:.0}% of initial) in {train_time:.1}s",
        first.train_mse,
        last.train_mse,
        100.0 * last.train_mse / first.train_mse
    );
    let val_mse = trainer.evaluate_cnn(&mut net, &inputs, &targets, &val);
    println!("validation-steps MSE: {val_mse:.5}");

    // Cost comparison: conventional suite vs trained CNN, per column.
    let suite = ConventionalSuite::default();
    let sigma: Vec<f64> = (0..nlev)
        .map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64)
        .collect();
    let ds = vec![1.0 / nlev as f64; nlev];
    let t: Vec<f64> = (0..nlev).map(|k| 290.0 - 3.0 * k as f64).collect();
    let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
    let col = Column {
        u: vec![5.0; nlev],
        v: vec![0.0; nlev],
        t,
        q: vec![0.008; nlev],
        p,
        dp,
        dz,
    };
    let reps = 2000;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = suite.step_column(
            &col,
            &SurfaceProperties {
                tskin: 295.0,
                coszr: 0.5,
                wetness: 1.0,
            },
        );
    }
    let conv_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    // CNN batched inference amortises the launch (the tensor-kernel gain).
    let batch = 256;
    let x = ap3esm_ai::tensor::Tensor::from_vec(
        inputs[0].iter().cycle().take(batch * 5 * nlev).copied().collect(),
        &[batch, 5, nlev],
    );
    let t0 = Instant::now();
    let inf_reps = 10;
    for _ in 0..inf_reps {
        let _ = net.forward(&x);
    }
    let ai_us = t0.elapsed().as_secs_f64() * 1e6 / (inf_reps * batch) as f64;
    println!("\nper-column cost: conventional {conv_us:.1} µs, AI (batched) {ai_us:.1} µs");
    write_csv(
        "fig4_cost",
        "suite,us_per_column",
        &[
            format!("conventional,{conv_us}"),
            format!("ai_cnn,{ai_us}"),
        ],
    );
}
