//! Regenerates Fig. 8a: strong-scaling SYPD-vs-nodes curves for every
//! configuration, as dense sweeps of the calibrated machine model (the
//! paper's markers are the Table 2 points; the curves here add the
//! intermediate node counts).

use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::scaling::reproduce_table2;
use ap3esm_machine::perf::ScalingModel;
use ap3esm_machine::topology::MachineSpec;

fn main() {
    banner("fig8a_strong", "Fig. 8a: strong scaling curves");
    let mut rows = Vec::new();
    for cfg in reproduce_table2() {
        // Re-fit to obtain the model object, then sweep densely between the
        // smallest and largest measured node counts.
        let cal = ap3esm_machine::calibration::paper_table2()
            .into_iter()
            .find(|c| c.label == cfg.label)
            .expect("calibration");
        let machine = if cal.sunway {
            MachineSpec::sunway_oceanlight()
        } else {
            MachineSpec::orise()
        };
        let model = ScalingModel::fit(machine, &cal);
        let n0 = cal.points.first().unwrap().nodes as f64;
        let n1 = cal.points.last().unwrap().nodes as f64;
        println!("\n--- {} ---", cfg.label);
        println!("{:>10} {:>12} {:>10}", "nodes", "model SYPD", "eff");
        let steps = 12;
        for s in 0..=steps {
            let nodes = (n0 * (n1 / n0).powf(s as f64 / steps as f64)).round() as usize;
            let sypd = model.sypd(nodes);
            let eff = model.efficiency(nodes);
            println!("{:>10} {:>12.4} {:>9.1}%", nodes, sypd, eff * 100.0);
            rows.push(format!("{},{},{},{}", cfg.label, nodes, sypd, eff));
        }
    }
    write_csv("fig8a_strong", "config,nodes,model_sypd,efficiency", &rows);
}
