//! §5.1.2 ablation: hybrid task–data parallelization — all components
//! sequential in a single domain vs the paper's two concurrent task
//! domains (ATM+ICE+LND+CPL | OCN). Same physics (verified bitwise in the
//! test suite); this binary measures the wall-clock effect of component
//! concurrency.

use std::time::Instant;

use ap3esm_bench::{banner, write_csv};
use ap3esm_comm::World;
use ap3esm_esm::config::CoupledConfig;
use ap3esm_esm::coupled::{run_coupled, CoupledOptions};

fn main() {
    banner("s512_task_layout", "§5.1.2: single-domain vs two-domain task layout");
    let opts = CoupledOptions {
        days: 1.0,
        ..Default::default()
    };

    let mut base = CoupledConfig::demo_small();
    base.ocn_px = 2;
    base.ocn_py = 2;

    // Sequential: everything on one rank (ocean decomp 1×1 to fit).
    let mut seq = base.clone();
    seq.single_domain = true;
    seq.ocn_px = 1;
    seq.ocn_py = 1;
    println!("\nrunning sequential single-domain layout (1 rank)…");
    let t0 = Instant::now();
    let world = World::new(seq.world_size());
    let s = world.run(|rank| run_coupled(rank, &seq, &opts));
    let wall_seq = t0.elapsed().as_secs_f64();

    println!("running concurrent two-domain layout ({} ranks)…", base.world_size());
    let t0 = Instant::now();
    let world = World::new(base.world_size());
    let c = world.run(|rank| run_coupled(rank, &base, &opts));
    let wall_con = t0.elapsed().as_secs_f64();

    println!("\n{:>28} {:>12} {:>12}", "layout", "wall (s)", "SYPD");
    println!("{:>28} {:>12.2} {:>12.1}", "sequential single-domain", wall_seq, s[0].sypd);
    println!("{:>28} {:>12.2} {:>12.1}", "concurrent two-domain", wall_con, c[0].sypd);
    println!(
        "\nconcurrency speedup: {:.2}× (the paper allocates the ocean its own",
        wall_seq / wall_con
    );
    println!("domain because it is the second-largest cost and can overlap the");
    println!("atmosphere+ice+land domain)");

    write_csv(
        "s512_task_layout",
        "layout,wall_s,sypd",
        &[
            format!("sequential,{wall_seq},{}", s[0].sypd),
            format!("two-domain,{wall_con},{}", c[0].sypd),
        ],
    );
}
