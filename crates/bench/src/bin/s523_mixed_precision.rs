//! Regenerates §5.2.3: group-wise-scaling mixed precision accuracy.
//!
//! LICOM criterion: area-weighted RMSD of daily-mean temperature, salinity
//! and SSH over a 30-day window between FP64 and mixed runs (paper: 0.018 °C,
//! 0.0098 psu, 0.0005 m). GRIST criterion: relative L2 of surface pressure
//! and relative vorticity below 5 %.
//!
//! The mixed run stores the prognostic fields through `GroupScaled` FP32
//! at every step (compute in FP64 registers, store scaled FP32 — the
//! paper's kernel shape).

use ap3esm_atm::dycore::{Dycore, DycoreConfig};
use ap3esm_atm::state::AtmState;
use ap3esm_bench::{banner, write_csv};
use ap3esm_comm::World;
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::mask::MaskGenerator;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_grid::GeodesicGrid;
use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};
use ap3esm_precision::metrics::DailyMeanAccumulator;
use ap3esm_precision::{area_weighted_rmsd, relative_l2, AccuracyBudget, GroupScaled};

const GROUP: usize = 64;

fn squeeze(field: &mut [f64]) {
    let gs = GroupScaled::from_f64(field, GROUP);
    field.copy_from_slice(&gs.to_f64());
}

fn run_ocean(mixed: bool, days: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let grid = TripolarGrid::new(72, 46, 10, MaskGenerator::default());
    let config = OcnConfig::for_grid(72, 46, 10, 1, 1);
    let world = World::new(1);
    let mut out = world.run(|rank| {
        let decomp = BlockDecomp2d::new(72, 46, 1, 1);
        let mut model = OcnModel::new(&grid, config.clone(), 0);
        let forcing = OcnForcing::climatology(&grid, &decomp, 0);
        let ncols = model.state.ni * model.state.nj;
        let mut acc_t = DailyMeanAccumulator::new(ncols);
        let mut acc_s = DailyMeanAccumulator::new(ncols);
        let mut acc_eta = DailyMeanAccumulator::new(ncols);
        let steps_per_day = (86_400.0 / config.dt_baroclinic).round() as usize;
        // "Day" shortened to a fixed step count so the experiment finishes
        // in seconds; the *protocol* (30 daily means) is the paper's.
        let steps_per_day = steps_per_day.min(4);
        for _ in 0..days {
            for _ in 0..steps_per_day {
                model.step(rank, &forcing);
                if mixed {
                    for k in 0..model.state.nlev {
                        squeeze(&mut model.state.t[k]);
                        squeeze(&mut model.state.s[k]);
                    }
                    squeeze(&mut model.state.eta);
                }
            }
            let st = &model.state;
            let mut t0 = Vec::with_capacity(ncols);
            let mut s0 = Vec::with_capacity(ncols);
            let mut e0 = Vec::with_capacity(ncols);
            for j in 0..st.nj {
                for i in 0..st.ni {
                    let idx = st.at(i, j);
                    t0.push(st.t[0][idx]);
                    s0.push(st.s[0][idx]);
                    e0.push(st.eta[idx]);
                }
            }
            acc_t.add_day(&t0);
            acc_s.add_day(&s0);
            acc_eta.add_day(&e0);
        }
        // Area weights per column.
        let st = &model.state;
        let mut w = Vec::with_capacity(ncols);
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                w.push(if st.kmt[idx] > 0 { st.dx[j] * st.dy } else { 0.0 });
            }
        }
        (acc_t.mean(), acc_s.mean(), acc_eta.mean(), w)
    });
    out.swap_remove(0)
}

fn run_atm(mixed: bool, steps: usize) -> (Vec<f64>, Vec<f64>) {
    let grid = std::sync::Arc::new(GeodesicGrid::new(4));
    let dx = grid.mean_spacing_km();
    let dycore = Dycore::new(std::sync::Arc::clone(&grid), DycoreConfig::for_spacing_km(dx));
    let mut state = AtmState::isothermal(std::sync::Arc::clone(&grid), 6, 288.0);
    let n = grid.ncells();
    for i in 0..n {
        state.ps[i] += 400.0 * (i as f64 * 0.17).sin();
    }
    let ne = grid.nedges();
    let mut acc = vec![0.0; 6 * ne];
    for _ in 0..steps {
        dycore.step_dyn(&mut state, dycore.config.dt_dyn, &mut acc);
        if mixed {
            squeeze(&mut state.ps);
            squeeze(&mut state.un);
        }
    }
    // Relative vorticity proxy: the reconstructed surface winds.
    let winds: Vec<f64> = state
        .surface_wind()
        .into_iter()
        .flat_map(|(u, v)| [u, v])
        .collect();
    (state.ps.clone(), winds)
}

fn main() {
    banner("s523_mixed_precision", "§5.2.3: FP64/FP32 group-wise scaling accuracy");

    // --- LICOM-style 30-daily-mean RMSD ---
    println!("\nocean: FP64 vs group-scaled mixed, 30 daily means…");
    let (t64, s64, e64, w) = run_ocean(false, 30);
    let (t32, s32, e32, _) = run_ocean(true, 30);
    let rmsd_t = area_weighted_rmsd(&t32, &t64, &w);
    let rmsd_s = area_weighted_rmsd(&s32, &s64, &w);
    let rmsd_e = area_weighted_rmsd(&e32, &e64, &w);
    let budget = AccuracyBudget::licom_paper();
    println!("  temperature RMSD: {rmsd_t:.6} °C   (paper: 0.018, budget ok: {})", rmsd_t <= budget.max_rmsd_temperature);
    println!("  salinity    RMSD: {rmsd_s:.6} psu  (paper: 0.0098, budget ok: {})", rmsd_s <= budget.max_rmsd_salinity);
    println!("  SSH         RMSD: {rmsd_e:.6} m    (paper: 0.0005, budget ok: {})", rmsd_e <= budget.max_rmsd_ssh);
    assert!(
        budget.accepts_ocean(rmsd_t, rmsd_s, rmsd_e),
        "mixed-precision ocean exceeded the paper's accuracy envelope"
    );

    // --- GRIST-style relative L2 ---
    println!("\natmosphere: FP64 vs mixed, relative L2 of ps and winds…");
    let (ps64, vort64) = run_atm(false, 40);
    let (ps32, vort32) = run_atm(true, 40);
    let l2_ps = relative_l2(&ps32, &ps64);
    let l2_vort = relative_l2(&vort32, &vort64);
    let gb = AccuracyBudget::grist_default();
    println!("  surface pressure rel-L2: {l2_ps:.2e} (threshold 5%: {})", gb.accepts_l2(l2_ps));
    println!("  wind field       rel-L2: {l2_vort:.2e} (threshold 5%: {})", gb.accepts_l2(l2_vort));
    assert!(gb.accepts_l2(l2_ps) && gb.accepts_l2(l2_vort));

    write_csv(
        "s523_mixed_precision",
        "metric,value,paper,within_budget",
        &[
            format!("rmsd_temperature_c,{rmsd_t},0.018,{}", rmsd_t <= 0.018),
            format!("rmsd_salinity_psu,{rmsd_s},0.0098,{}", rmsd_s <= 0.0098),
            format!("rmsd_ssh_m,{rmsd_e},0.0005,{}", rmsd_e <= 0.0005),
            format!("rel_l2_ps,{l2_ps},0.05,{}", l2_ps <= 0.05),
            format!("rel_l2_wind,{l2_vort},0.05,{}", l2_vort <= 0.05),
        ],
    );
    println!("\nall §5.2.3 accuracy criteria satisfied ✓");
}
