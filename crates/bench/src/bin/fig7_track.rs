//! Regenerates Fig. 7: the typhoon's trajectory and intensity against the
//! best track. Paper: CMA best track + ERA5 vs AP3ESM 3v2; here the
//! synthetic Doksuri-shaped best track vs the coupled forecast
//! (substitution documented in DESIGN.md).

use ap3esm_bench::{banner, write_csv};
use ap3esm_esm::config::CoupledConfig;
use ap3esm_esm::forecast::run_forecast;

fn main() {
    banner("fig7_track", "Fig. 7: typhoon track & intensity vs best track");
    let mut config = CoupledConfig::test_tiny();
    config.atm_glevel = 4;
    let days = 1.0;
    println!("\nrunning {days}-day coupled forecast (G{} atmosphere)…", config.atm_glevel);
    let result = run_forecast(&config, days);

    println!(
        "\n{:>7} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "hours", "ref lat", "ref lon", "mdl lat", "mdl lon", "err (km)", "wind (m/s)"
    );
    let mut rows = Vec::new();
    for ((r, t), e) in result
        .reference
        .iter()
        .zip(&result.track)
        .zip(&result.track_error_km)
    {
        println!(
            "{:>7.1} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.1} {:>10.1}",
            r.hours, r.lat_deg, r.lon_deg, t.lat_deg, t.lon_deg, e, t.max_wind
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            r.hours, r.lat_deg, r.lon_deg, t.lat_deg, t.lon_deg, e, t.max_wind, r.vmax
        ));
    }
    write_csv(
        "fig7_track",
        "hours,ref_lat,ref_lon,model_lat,model_lon,error_km,model_wind,ref_vmax",
        &rows,
    );
    println!(
        "\nmean track error: {:.0} km (grid spacing is ~{:.0} km — errors below",
        result.mean_track_error(),
        result.atm_dx_km
    );
    println!("a cell are unresolvable at this configuration)");
    println!(
        "minimum central pressure: {:.1} hPa, peak wind {:.1} m/s",
        result.min_pressure() / 100.0,
        result.peak_intensity()
    );
}
