//! # AP3ESM benchmark & experiment harness (`ap3esm-bench`)
//!
//! One binary per paper table/figure (see DESIGN.md's experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 grid configurations |
//! | `table2` | Table 2 strong-scaling SYPD (+ MPE→CPE speedups) |
//! | `fig1_fields` | Fig. 1 coupled field snapshot statistics |
//! | `fig2_sota` | Fig. 2 literature scatter + log-linear SOTA line |
//! | `fig4_ai_physics` | Fig. 4 AI-physics accuracy & cost vs conventional |
//! | `fig5_exclusion` | Fig. 5 3-D non-ocean point exclusion |
//! | `fig6_typhoon_fields` | Fig. 6 typhoon structure, 3v2-like vs 25v10-like |
//! | `fig7_track` | Fig. 7 track & intensity vs best track |
//! | `fig8a_strong` | Fig. 8a strong-scaling curves |
//! | `fig8b_weak` | Fig. 8b weak-scaling efficiencies |
//! | `s523_mixed_precision` | §5.2.3 mixed-precision accuracy |
//! | `s524_coupler` | §5.2.4 coupler optimisation ablations |
//! | `s525_io` | §5.2.5 sub-file parallel I/O |
//!
//! Each binary prints the paper-shaped rows to stdout and writes CSV under
//! `target/experiments/`. Criterion micro-benches live in `benches/`.

use std::io::Write;
use std::path::PathBuf;

/// Output directory for experiment CSVs. Anchored to the workspace root's
/// `target/` (not the CWD): cargo runs benches with CWD = the crate dir,
/// while `cargo run` binaries keep the invoker's CWD — both must land in
/// the same `target/experiments/`.
pub fn out_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    let dir = base.join("experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Write a CSV with a header row; returns the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    println!("wrote {}", path.display());
    path
}

/// Banner for experiment binaries.
pub fn banner(title: &str, artifact: &str) {
    println!("==================================================================");
    println!("AP3ESM-RS experiment: {title}");
    println!("reproduces: {artifact}");
    println!("==================================================================");
}

/// Emit a criterion bench's key points as an `ap3esm-bench/1` document at
/// `target/experiments/<name>.json` — the same schema the repo-root
/// `BENCH_<n>.json` trajectory uses, so per-bench artifacts and trajectory
/// points are diffable with one vocabulary. Returns the path written.
pub fn emit_bench_points(
    name: &str,
    metrics: Vec<(String, ap3esm_obs::perf::Stat)>,
) -> PathBuf {
    let mut file = ap3esm_obs::perf::BenchFile::new(
        name,
        ap3esm_obs::perf::BuildInfo::current().clone(),
    );
    file.created_unix = ap3esm_obs::perf::unix_now();
    for (metric, stat) in metrics {
        file.push(&metric, stat);
    }
    let path = out_dir().join(format!("{name}.json"));
    std::fs::write(&path, file.to_json().to_string() + "\n").expect("write bench points");
    println!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writer_roundtrip() {
        let path = write_csv(
            "selftest",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        );
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).unwrap();
    }
}
