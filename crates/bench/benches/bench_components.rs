//! Component step costs: atmosphere dycore step, ocean step with and
//! without 3-D point exclusion (the per-step side of Fig. 5 / Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ap3esm_atm::dycore::{Dycore, DycoreConfig};
use ap3esm_atm::state::AtmState;
use ap3esm_comm::World;
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::mask::MaskGenerator;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_grid::GeodesicGrid;
use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};

fn bench_atm(c: &mut Criterion) {
    let grid = std::sync::Arc::new(GeodesicGrid::new(4));
    let dx = grid.mean_spacing_km();
    let dycore = Dycore::new(std::sync::Arc::clone(&grid), DycoreConfig::for_spacing_km(dx));
    let mut state = AtmState::isothermal(grid, 8, 288.0);
    state.ps[0] += 300.0;
    let ne = state.nedges();
    let mut acc = vec![0.0; 8 * ne];
    c.bench_function("atm_dyn_substep_g4", |b| {
        b.iter(|| dycore.step_dyn(&mut state, dycore.config.dt_dyn, &mut acc));
    });
}

fn bench_ocn(c: &mut Criterion) {
    let grid = TripolarGrid::new(72, 46, 10, MaskGenerator::default());
    let mut group = c.benchmark_group("ocn_step_72x46x10");
    group.sample_size(10);
    for exclude in [true, false] {
        let label = if exclude { "excluded" } else { "dense" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &exclude, |b, &exclude| {
            let mut config = OcnConfig::for_grid(72, 46, 10, 1, 1);
            config.exclude_land = exclude;
            b.iter(|| {
                let world = World::new(1);
                world.run(|rank| {
                    let decomp = BlockDecomp2d::new(72, 46, 1, 1);
                    let mut model = OcnModel::new(&grid, config.clone(), 0);
                    let forcing = OcnForcing::climatology(&grid, &decomp, 0);
                    for _ in 0..2 {
                        model.step(rank, &forcing);
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_atm, bench_ocn);
criterion_main!(benches);
