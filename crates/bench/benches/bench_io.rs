//! Parallel-I/O ablation (§5.2.5): one monolithic file vs sub-file sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ap3esm_io::subfile::{SubfileReader, SubfileWriter};

fn bench_subfiles(c: &mut Criterion) {
    let n = 1_000_000;
    let field: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
    let dir = std::env::temp_dir().join(format!("ap3esm-bench-io-{}", std::process::id()));

    let mut group = c.benchmark_group("io_write");
    group.sample_size(10);
    for nsub in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(nsub), &nsub, |b, &nsub| {
            let w = SubfileWriter::new(&dir, "field", &[n], nsub);
            b.iter(|| w.write_all(&field).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("io_read");
    group.sample_size(10);
    for nsub in [1usize, 4, 16] {
        let name = format!("field{nsub}");
        SubfileWriter::new(&dir, &name, &[n], nsub)
            .write_all(&field)
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nsub), &nsub, |b, _| {
            let r = SubfileReader::new(&dir, &name);
            b.iter(|| r.read_all().unwrap());
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_subfiles);
criterion_main!(benches);
