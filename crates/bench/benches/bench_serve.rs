//! Micro-batching win: per-sample CNN forward (the training path, one
//! column at a time) vs the serving subsystem's batched inference forward
//! (`forward_batch`, one set of tensor ops per batch) at batch sizes
//! 1/8/32. Emits an `ap3esm-bench/1` point file at
//! `target/experiments/bench_serve.json`; the acceptance bar is batched
//! throughput ≥ 3× per-sample at batch 32.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ap3esm_ai::net::{TendencyCnn, TENDENCY_IN_CH};
use ap3esm_ai::Tensor;

const NLEV: usize = 30;

fn make_input(batch: usize) -> Tensor {
    let n = batch * TENDENCY_IN_CH * NLEV;
    let data: Vec<f32> = (0..n).map(|i| ((i % 97) as f32 / 97.0) - 0.5).collect();
    Tensor::from_vec(data, &[batch, TENDENCY_IN_CH, NLEV])
}

/// Samples/s of the per-sample path: `batch` independent `forward` calls.
fn per_sample_throughput(net: &mut TendencyCnn, batch: usize, iters: usize) -> f64 {
    let singles: Vec<Tensor> = (0..batch)
        .map(|b| {
            let x = make_input(batch);
            let per = TENDENCY_IN_CH * NLEV;
            Tensor::from_vec(
                x.data[b * per..(b + 1) * per].to_vec(),
                &[1, TENDENCY_IN_CH, NLEV],
            )
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        for x in &singles {
            criterion::black_box(net.forward(x));
        }
    }
    (iters * batch) as f64 / t0.elapsed().as_secs_f64()
}

/// Samples/s of the serving path: one `forward_batch` per batch.
fn batched_throughput(net: &TendencyCnn, batch: usize, iters: usize) -> f64 {
    let x = make_input(batch);
    let t0 = Instant::now();
    for _ in 0..iters {
        criterion::black_box(net.forward_batch(&x));
    }
    (iters * batch) as f64 / t0.elapsed().as_secs_f64()
}

fn bench_serve(c: &mut Criterion) {
    let mut net = TendencyCnn::paper(NLEV);

    let mut group = c.benchmark_group("serve_cnn_forward");
    group.sample_size(10);
    for &batch in &[1usize, 8, 32] {
        let x = make_input(batch);
        group.bench_with_input(BenchmarkId::new("per_sample", batch), &batch, |b, &bs| {
            let per = TENDENCY_IN_CH * NLEV;
            let singles: Vec<Tensor> = (0..bs)
                .map(|i| {
                    Tensor::from_vec(
                        x.data[i * per..(i + 1) * per].to_vec(),
                        &[1, TENDENCY_IN_CH, NLEV],
                    )
                })
                .collect();
            b.iter(|| {
                for s in &singles {
                    criterion::black_box(net.forward(s));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("micro_batched", batch), &batch, |b, _| {
            b.iter(|| criterion::black_box(net.forward_batch(&x)));
        });
    }
    group.finish();

    // `ap3esm-bench/1` point file (hand-measured so the numbers are ours,
    // not criterion internals) — same schema as the repo-root trajectory.
    use ap3esm_obs::perf::{Direction, Stat};
    let iters = 30;
    let mut metrics = Vec::new();
    for &batch in &[1usize, 8, 32] {
        // Warmup.
        per_sample_throughput(&mut net, batch, 2);
        batched_throughput(&net, batch, 2);
        let per = per_sample_throughput(&mut net, batch, iters);
        let bat = batched_throughput(&net, batch, iters);
        let speedup = bat / per;
        println!(
            "batch {batch:>2}: per-sample {per:>10.0} samples/s, \
             micro-batched {bat:>10.0} samples/s, speedup {speedup:.2}x"
        );
        metrics.push((
            format!("serve.cnn.b{batch}.per_sample_sps"),
            Stat::sampled(per, "samples/s", iters as u64, 0.0, Direction::HigherIsBetter),
        ));
        metrics.push((
            format!("serve.cnn.b{batch}.batched_sps"),
            Stat::sampled(bat, "samples/s", iters as u64, 0.0, Direction::HigherIsBetter),
        ));
        metrics.push((
            format!("serve.cnn.b{batch}.speedup"),
            Stat::single(speedup, "x", Direction::HigherIsBetter),
        ));
    }
    ap3esm_bench::emit_bench_points("bench_serve", metrics);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
