//! Coupler ablations (§5.2.4): all-to-all vs non-blocking point-to-point
//! rearrangement, and online Router construction vs offline load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ap3esm_comm::World;
use ap3esm_cpl::gsmap::GSMap;
use ap3esm_cpl::rearrange::{RearrangeStrategy, Rearranger};
use ap3esm_cpl::router::Router;

fn bench_rearrange(c: &mut Criterion) {
    let nranks = 8;
    let nglobal = 200_000;
    let src = GSMap::even(nglobal, nranks);
    // Destination: a shifted decomposition so every rank talks to ~2 peers.
    let shift = nglobal / (2 * nranks);
    let ranges: Vec<(usize, usize)> = (0..nranks)
        .map(|r| {
            let s = (r * nglobal / nranks + shift).min(nglobal);
            let e = (((r + 1) * nglobal) / nranks + shift).min(nglobal);
            (s, e)
        })
        .collect();
    // Fix coverage: prepend the wrapped head to rank 0.
    let mut ranges = ranges;
    ranges[0].0 = 0;
    ranges[nranks - 1].1 = nglobal;
    let dst = GSMap::from_ranges(nglobal, &ranges);

    let mut group = c.benchmark_group("coupler_rearrange");
    group.sample_size(20);
    for strategy in [RearrangeStrategy::AllToAll, RearrangeStrategy::NonBlockingP2p] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let world = World::new(nranks);
                    world.run(|rank| {
                        let rearranger = Rearranger::new(Router::build(&src, &dst), 1);
                        let local: Vec<f64> =
                            vec![1.0; src.local_size(rank.id())];
                        rearranger.rearrange(
                            rank,
                            strategy,
                            &local,
                            dst.local_size(rank.id()),
                        )
                    })
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("coupler_router");
    group.sample_size(20);
    let src = GSMap::even(500_000, 64);
    let dst = GSMap::even(500_000, 48);
    group.bench_function("online_build", |b| {
        b.iter(|| Router::build(&src, &dst));
    });
    let bytes = Router::build(&src, &dst).to_bytes();
    group.bench_function("offline_load", |b| {
        b.iter(|| Router::from_bytes(&bytes).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_rearrange);
criterion_main!(benches);
