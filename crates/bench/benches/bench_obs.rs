//! Observability overhead: the span instrumentation inside the dycore hot
//! loop must cost nothing measurable when no collector is installed, and
//! <2% when an `Obs` is installed with the profiler disabled. Compare the
//! `dycore_model_step` entries across the three modes.
//!
//! The `sampler_*` pair bounds the continuous-telemetry tentpole: the
//! background `Sampler` thread reads the registry on its own cadence, so
//! the hot loop must run within noise (<0.5%) of the no-sampler case —
//! the only shared state is the metric atomics it reads.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ap3esm_atm::dycore::{Dycore, DycoreConfig};
use ap3esm_atm::state::AtmState;
use ap3esm_obs::Obs;

fn bench_dycore_modes(c: &mut Criterion) {
    let grid = Arc::new(ap3esm_grid::GeodesicGrid::new(3));
    let dx = grid.mean_spacing_km();
    let dycore = Dycore::new(Arc::clone(&grid), DycoreConfig::for_spacing_km(dx));
    let mut group = c.benchmark_group("dycore_model_step");
    group.sample_size(20);
    for mode in ["uninstalled", "installed_disabled", "installed_enabled"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            let _guard = match mode {
                "uninstalled" => None,
                "installed_disabled" => {
                    let obs = Arc::new(Obs::new());
                    obs.profiler.set_enabled(false);
                    Some(ap3esm_obs::install(obs))
                }
                _ => Some(ap3esm_obs::install(Arc::new(Obs::new()))),
            };
            let mut state = AtmState::isothermal(Arc::clone(&grid), 5, 288.0);
            state.ps[0] += 300.0;
            b.iter(|| dycore.step_model_dynamics(&mut state));
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    // Raw cost of one span enter/exit and one metric update, both with a
    // live collector and on the disabled path.
    let obs = Arc::new(Obs::new());
    let _guard = ap3esm_obs::install(Arc::clone(&obs));
    c.bench_function("span_enter_exit_enabled", |b| {
        b.iter(|| ap3esm_obs::span("bench"));
    });
    c.bench_function("histogram_record", |b| {
        b.iter(|| ap3esm_obs::histogram_record("bench.ns", 1234));
    });
    obs.profiler.set_enabled(false);
    c.bench_function("span_enter_exit_disabled", |b| {
        b.iter(|| ap3esm_obs::span("bench"));
    });

    // `ap3esm-bench/1` point file at `target/experiments/bench_obs.json`:
    // ns per primitive op, 10k ops per timed sample.
    use ap3esm_obs::perf::{Direction, Stat};
    let ops = 10_000usize;
    let mut metrics = Vec::new();
    obs.profiler.set_enabled(true);
    for (name, f) in [
        ("obs.span_enabled.ns_per_op", true),
        ("obs.span_disabled.ns_per_op", false),
    ] {
        obs.profiler.set_enabled(f);
        let s = ap3esm_pp::measure(3, 12, || {
            for _ in 0..ops {
                criterion::black_box(ap3esm_obs::span("bench"));
            }
        });
        metrics.push((
            name.to_string(),
            Stat::sampled(
                s.per_item(ops),
                "ns/op",
                s.n as u64,
                s.stddev_per_item(ops),
                Direction::LowerIsBetter,
            ),
        ));
    }
    let s = ap3esm_pp::measure(3, 12, || {
        for _ in 0..ops {
            ap3esm_obs::histogram_record("bench.ns", 1234);
        }
    });
    metrics.push((
        "obs.histogram_record.ns_per_op".to_string(),
        Stat::sampled(
            s.per_item(ops),
            "ns/op",
            s.n as u64,
            s.stddev_per_item(ops),
            Direction::LowerIsBetter,
        ),
    ));
    ap3esm_bench::emit_bench_points("bench_obs", metrics);
}

fn bench_sampler_overhead(c: &mut Criterion) {
    // The continuous-telemetry sampler runs on its own thread; the hot
    // loop only touches the same metric atomics it reads. Compare
    // `sampler_off` vs `sampler_on`: the delta is the tentpole's <0.5%
    // steady-state overhead budget.
    let grid = Arc::new(ap3esm_grid::GeodesicGrid::new(3));
    let dx = grid.mean_spacing_km();
    let dycore = Dycore::new(Arc::clone(&grid), DycoreConfig::for_spacing_km(dx));
    let mut group = c.benchmark_group("dycore_with_telemetry");
    group.sample_size(20);
    for mode in ["sampler_off", "sampler_on"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            let obs = Arc::new(Obs::new());
            let _guard = ap3esm_obs::install(Arc::clone(&obs));
            let _sampler = (mode == "sampler_on").then(|| {
                ap3esm_obs::Sampler::start(
                    Arc::clone(&obs),
                    Arc::new(ap3esm_obs::SeriesStore::new(1024)),
                    None,
                    std::time::Duration::from_millis(10),
                    Vec::new(),
                )
            });
            let mut state = AtmState::isothermal(Arc::clone(&grid), 5, 288.0);
            state.ps[0] += 300.0;
            b.iter(|| dycore.step_model_dynamics(&mut state));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dycore_modes, bench_primitives, bench_sampler_overhead);
criterion_main!(benches);
