//! AI-physics vs conventional-physics cost per column (the Fig. 4 /
//! §5.2.1 claim: the AI suite turns parameterizations into tensor kernels).
//! Also emits an `ap3esm-bench/1` point file at
//! `target/experiments/bench_ai.json`.

use ap3esm_obs::perf::{Direction, Stat};
use criterion::{criterion_group, criterion_main, Criterion};

use ap3esm_ai::modules::{ColumnState, Normalizer, TendencyModule};
use ap3esm_ai::net::TendencyCnn;
use ap3esm_physics::suite::{hydrostatic_thickness, Column, ConventionalSuite, SurfaceProperties};

fn make_columns(n: usize, nlev: usize) -> (Vec<Column>, Vec<ColumnState>) {
    let sigma: Vec<f64> = (0..nlev)
        .map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64)
        .collect();
    let ds = vec![1.0 / nlev as f64; nlev];
    let mut phys = Vec::with_capacity(n);
    let mut ai = Vec::with_capacity(n);
    for c in 0..n {
        let t: Vec<f64> = (0..nlev)
            .map(|k| 295.0 - 5.0 * k as f64 + (c as f64 * 0.1).sin())
            .collect();
        let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
        let q: Vec<f64> = (0..nlev).map(|k| 0.01 * (-0.4 * k as f64).exp()).collect();
        phys.push(Column {
            u: vec![5.0; nlev],
            v: vec![1.0; nlev],
            t: t.clone(),
            q: q.clone(),
            p: p.clone(),
            dp,
            dz,
        });
        ai.push(ColumnState {
            u: vec![5.0; nlev],
            v: vec![1.0; nlev],
            t,
            q,
            p,
        });
    }
    (phys, ai)
}

fn bench_suites(c: &mut Criterion) {
    let nlev = 30;
    let batch = 64;
    let (phys_cols, ai_cols) = make_columns(batch, nlev);
    let suite = ConventionalSuite::default();
    let sfc = SurfaceProperties {
        tskin: 300.0,
        coszr: 0.6,
        wetness: 1.0,
    };

    let mut group = c.benchmark_group("physics_suite_per_batch");
    group.sample_size(20);
    group.bench_function("conventional", |b| {
        b.iter(|| {
            for col in &phys_cols {
                criterion::black_box(suite.step_column(col, &sfc));
            }
        });
    });

    // Paper-sized CNN (≈5e5 params) in batched inference.
    let mut module = TendencyModule::new(
        TendencyCnn::paper(nlev),
        Normalizer {
            mean: vec![0.0, 0.0, 280.0, 0.005, 5.0e4],
            std: vec![10.0, 10.0, 30.0, 0.01, 4.0e4],
        },
        Normalizer {
            mean: vec![0.0; 4],
            std: vec![1e-5; 4],
        },
    );
    group.bench_function("ai_cnn_paper_size", |b| {
        b.iter(|| criterion::black_box(module.predict(&ai_cols)));
    });
    group.finish();

    // `ap3esm-bench/1` point file: per-column cost of each physics path
    // plus the headline AI-vs-conventional speedup.
    let conv = ap3esm_pp::measure(2, 10, || {
        for col in &phys_cols {
            criterion::black_box(suite.step_column(col, &sfc));
        }
    });
    let ai = ap3esm_pp::measure(2, 10, || {
        criterion::black_box(module.predict(&ai_cols));
    });
    let metrics = vec![
        (
            "ai.conventional.ns_per_col".to_string(),
            Stat::sampled(
                conv.per_item(batch),
                "ns/col",
                conv.n as u64,
                conv.stddev_per_item(batch),
                Direction::LowerIsBetter,
            ),
        ),
        (
            "ai.cnn.ns_per_col".to_string(),
            Stat::sampled(
                ai.per_item(batch),
                "ns/col",
                ai.n as u64,
                ai.stddev_per_item(batch),
                Direction::LowerIsBetter,
            ),
        ),
        (
            "ai.speedup_vs_conventional".to_string(),
            Stat::single(
                conv.mean_ns / ai.mean_ns,
                "x",
                Direction::HigherIsBetter,
            ),
        ),
    ];
    ap3esm_bench::emit_bench_points("bench_ai", metrics);
}

criterion_group!(benches, bench_suites);
criterion_main!(benches);
