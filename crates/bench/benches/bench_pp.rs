//! Performance-portability backend micro-bench: the same kernel on the
//! Serial ("MPE"), Threads (host-parallel) and SimulatedCpe backends —
//! the per-kernel version of the paper's MPE vs CPE+OPT comparison.
//! Also emits an `ap3esm-bench/1` point file at
//! `target/experiments/bench_pp.json` (warm-up-discarded trimmed stats
//! from `pp::measure`, same schema as the repo-root trajectory).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ap3esm_obs::perf::{Direction, Stat};
use ap3esm_pp::{measure, ExecSpace, Serial, SharedSlice, SimulatedCpe, Threads};

fn saxpy_kernel(space: &dyn ExecSpace, x: &[f64], y: &mut [f64], a: f64) {
    let n = x.len();
    let out = SharedSlice::new(y);
    space.for_each(n, &|i| unsafe {
        let v = *out.get(i) + a * x[i];
        out.set(i, v);
    });
}

fn stencil_kernel(space: &dyn ExecSpace, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let out = SharedSlice::new(y);
    space.for_each(n, &|i| unsafe {
        let l = x[if i == 0 { n - 1 } else { i - 1 }];
        let r = x[if i + 1 == n { 0 } else { i + 1 }];
        out.set(i, 0.25 * l + 0.5 * x[i] + 0.25 * r);
    });
}

fn bench_backends(c: &mut Criterion) {
    let n = 1 << 18;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
    let threads = Threads::auto();
    let cpe = SimulatedCpe::default();

    let mut group = c.benchmark_group("pp_saxpy");
    for (name, space) in [
        ("serial-mpe", &Serial as &dyn ExecSpace),
        ("threads", &threads as &dyn ExecSpace),
        ("simulated-cpe", &cpe as &dyn ExecSpace),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &space, |b, space| {
            let mut y = vec![0.0; n];
            b.iter(|| saxpy_kernel(*space, &x, &mut y, 1.0001));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pp_stencil");
    for (name, space) in [
        ("serial-mpe", &Serial as &dyn ExecSpace),
        ("threads", &threads as &dyn ExecSpace),
        ("simulated-cpe", &cpe as &dyn ExecSpace),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &space, |b, space| {
            let mut y = vec![0.0; n];
            b.iter(|| stencil_kernel(*space, &x, &mut y));
        });
    }
    group.finish();

    // `ap3esm-bench/1` point file: the same kernels through `pp::measure`
    // (warm-up discard + trimmed mean), in ns/gridpoint.
    let mut metrics = Vec::new();
    for (backend, space) in [
        ("serial", &Serial as &dyn ExecSpace),
        ("threads", &threads as &dyn ExecSpace),
        ("cpe", &cpe as &dyn ExecSpace),
    ] {
        let mut y = vec![0.0; n];
        let s = measure(3, 12, || saxpy_kernel(space, &x, &mut y, 1.0001));
        metrics.push((
            format!("pp.saxpy.{backend}.ns_per_gp"),
            Stat::sampled(
                s.per_item(n),
                "ns/gp",
                s.n as u64,
                s.stddev_per_item(n),
                Direction::LowerIsBetter,
            ),
        ));
        let s = measure(3, 12, || stencil_kernel(space, &x, &mut y));
        metrics.push((
            format!("pp.stencil3.{backend}.ns_per_gp"),
            Stat::sampled(
                s.per_item(n),
                "ns/gp",
                s.n as u64,
                s.stddev_per_item(n),
                Direction::LowerIsBetter,
            ),
        ));
    }
    ap3esm_bench::emit_bench_points("bench_pp", metrics);
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
