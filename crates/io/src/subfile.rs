//! Sub-file partitioning, rank-group aggregation plan, and readers/writers.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::format::{crc32, decode_payload, encode_payload, FieldHeader, HEADER_LEN};
use crate::IoError;

/// Assignment of ranks to sub-files: `nranks` writers are grouped so that
/// each of the `nsubfiles` sub-files has one aggregator rank collecting its
/// group's data (paper: "assign groups of MPI ranks to the I/O for a set of
/// subfiles").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoPlan {
    pub nranks: usize,
    pub nsubfiles: usize,
}

impl IoPlan {
    pub fn new(nranks: usize, nsubfiles: usize) -> Self {
        assert!(nranks >= 1 && nsubfiles >= 1);
        assert!(
            nsubfiles <= nranks,
            "cannot have more sub-files than ranks"
        );
        IoPlan { nranks, nsubfiles }
    }

    /// Sub-file (group) that `rank` contributes to.
    pub fn group_of(&self, rank: usize) -> usize {
        // Contiguous rank blocks per group, remainder spread low.
        let base = self.nranks / self.nsubfiles;
        let rem = self.nranks % self.nsubfiles;
        let big = (base + 1) * rem; // ranks covered by the larger groups
        if rank < big {
            rank / (base + 1)
        } else {
            rem + (rank - big) / base
        }
    }

    /// The aggregator (writer) rank of group `g` — its first member.
    pub fn aggregator_of(&self, g: usize) -> usize {
        let base = self.nranks / self.nsubfiles;
        let rem = self.nranks % self.nsubfiles;
        if g < rem {
            g * (base + 1)
        } else {
            rem * (base + 1) + (g - rem) * base
        }
    }

    /// Members of group `g` in rank order.
    pub fn members_of(&self, g: usize) -> Vec<usize> {
        (0..self.nranks).filter(|&r| self.group_of(r) == g).collect()
    }
}

/// Splits `total` elements into `n` near-equal contiguous ranges.
pub fn partition_ranges(total: usize, n: usize) -> Vec<(usize, usize)> {
    let base = total / n;
    let rem = total % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for k in 0..n {
        let len = base + usize::from(k < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// On-disk path of sub-file `index` of field `name` under `dir`. Public so
/// fault-injection tooling can address an individual sub-file byte.
pub fn subfile_path(dir: &Path, name: &str, index: usize) -> PathBuf {
    dir.join(format!("{name}.{index:05}.a3f"))
}

/// Writes a global field as `nsubfiles` sub-files under `dir`.
pub struct SubfileWriter {
    dir: PathBuf,
    name: String,
    dims: [u64; 3],
    ndims: u32,
    nsubfiles: usize,
}

impl SubfileWriter {
    pub fn new(dir: impl Into<PathBuf>, name: &str, dims: &[usize], nsubfiles: usize) -> Self {
        assert!(!dims.is_empty() && dims.len() <= 3, "1-3 dims supported");
        assert!(nsubfiles >= 1);
        let mut d = [1u64; 3];
        for (i, &v) in dims.iter().enumerate() {
            d[i] = v as u64;
        }
        SubfileWriter {
            dir: dir.into(),
            name: name.to_owned(),
            dims: d,
            ndims: dims.len() as u32,
            nsubfiles,
        }
    }

    fn total(&self) -> usize {
        (self.dims[0] * self.dims[1] * self.dims[2]) as usize
    }

    /// Write the whole field at once (serial convenience used by tests and
    /// the single-writer baseline when `nsubfiles == 1`).
    pub fn write_all(&self, field: &[f64]) -> Result<(), IoError> {
        assert_eq!(field.len(), self.total(), "field size mismatch");
        std::fs::create_dir_all(&self.dir)?;
        for (idx, (s, e)) in partition_ranges(field.len(), self.nsubfiles)
            .into_iter()
            .enumerate()
        {
            self.write_partition(idx, s, &field[s..e])?;
        }
        Ok(())
    }

    /// Write one sub-file from an aggregator that already holds its slice.
    pub fn write_partition(&self, index: usize, start: usize, data: &[f64]) -> Result<(), IoError> {
        assert!(index < self.nsubfiles);
        let _span = ap3esm_obs::span("io_write_subfile");
        std::fs::create_dir_all(&self.dir)?;
        let payload = encode_payload(data);
        ap3esm_obs::counter_add("io.write.bytes", (HEADER_LEN + payload.len()) as u64);
        ap3esm_obs::counter_add("io.write.subfiles", 1);
        let header = FieldHeader {
            dims: self.dims,
            ndims: self.ndims,
            subfile_index: index as u32,
            subfile_count: self.nsubfiles as u32,
            start: start as u64,
            count: data.len() as u64,
            crc: crc32(&payload),
        };
        let mut f = File::create(subfile_path(&self.dir, &self.name, index))?;
        f.write_all(&header.encode())?;
        f.write_all(&payload)?;
        f.sync_all()?;
        Ok(())
    }
}

/// Reads a field previously written by [`SubfileWriter`].
pub struct SubfileReader {
    dir: PathBuf,
    name: String,
}

impl SubfileReader {
    pub fn new(dir: impl Into<PathBuf>, name: &str) -> Self {
        SubfileReader {
            dir: dir.into(),
            name: name.to_owned(),
        }
    }

    fn read_subfile(&self, index: usize) -> Result<(FieldHeader, Vec<f64>), IoError> {
        let _span = ap3esm_obs::span("io_read_subfile");
        let mut f = File::open(subfile_path(&self.dir, &self.name, index))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        ap3esm_obs::counter_add("io.read.bytes", bytes.len() as u64);
        let header = FieldHeader::decode(&bytes)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != header.count as usize * 8 {
            return Err(IoError::Inconsistent(format!(
                "subfile {index}: payload {} bytes, expected {}",
                payload.len(),
                header.count * 8
            )));
        }
        let actual = crc32(payload);
        if actual != header.crc {
            return Err(IoError::CrcMismatch {
                expected: header.crc,
                actual,
            });
        }
        Ok((header, decode_payload(payload)?))
    }

    /// Read and reassemble the full global field, validating the sub-file
    /// set for completeness, overlap, and CRC integrity.
    pub fn read_all(&self) -> Result<(FieldHeader, Vec<f64>), IoError> {
        let (first, data0) = self.read_subfile(0)?;
        let total = (first.dims[0] * first.dims[1] * first.dims[2]) as usize;
        let nsub = first.subfile_count as usize;
        let mut field = vec![f64::NAN; total];
        let mut covered = 0usize;
        let mut place = |h: &FieldHeader, d: Vec<f64>| -> Result<(), IoError> {
            let s = h.start as usize;
            if s + d.len() > total {
                return Err(IoError::Inconsistent(format!(
                    "subfile {} overruns field",
                    h.subfile_index
                )));
            }
            field[s..s + d.len()].copy_from_slice(&d);
            covered += d.len();
            Ok(())
        };
        place(&first, data0)?;
        for idx in 1..nsub {
            let (h, d) = self.read_subfile(idx)?;
            if h.subfile_count as usize != nsub || h.dims != first.dims {
                return Err(IoError::Inconsistent(format!(
                    "subfile {idx} disagrees with subfile 0 about the field"
                )));
            }
            place(&h, d)?;
        }
        if covered != total {
            return Err(IoError::Inconsistent(format!(
                "sub-files cover {covered} of {total} elements"
            )));
        }
        Ok((first, field))
    }

    /// Verify the whole sub-file set without reassembling the field:
    /// header checksum, payload length, payload CRC, completeness. This is
    /// how the recovery path decides whether a checkpoint field is loadable
    /// before rolling the model back onto it.
    pub fn verify(&self) -> Result<(), IoError> {
        self.read_all().map(|_| ())
    }

    /// Read only the elements in `[start, end)` touching as few sub-files as
    /// possible (restart readers use this).
    pub fn read_range(&self, start: usize, end: usize) -> Result<Vec<f64>, IoError> {
        let (first, _) = self.read_subfile(0)?;
        let nsub = first.subfile_count as usize;
        let mut out = vec![f64::NAN; end - start];
        for idx in 0..nsub {
            let (h, d) = self.read_subfile(idx)?;
            let s = h.start as usize;
            let e = s + d.len();
            let lo = start.max(s);
            let hi = end.min(e);
            if lo < hi {
                out[lo - start..hi - start].copy_from_slice(&d[lo - s..hi - s]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ap3esm-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_multiple_subfiles() {
        let dir = tmpdir("rt");
        let field: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let w = SubfileWriter::new(&dir, "sst", &[100, 10], 7);
        w.write_all(&field).unwrap();
        let r = SubfileReader::new(&dir, "sst");
        let (h, back) = r.read_all().unwrap();
        assert_eq!(h.dims, [100, 10, 1]);
        assert_eq!(h.subfile_count, 7);
        assert_eq!(back, field);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_subfile_baseline() {
        let dir = tmpdir("single");
        let field = vec![1.25; 64];
        SubfileWriter::new(&dir, "x", &[64], 1)
            .write_all(&field)
            .unwrap();
        let (_, back) = SubfileReader::new(&dir, "x").read_all().unwrap();
        assert_eq!(back, field);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_detected_by_crc() {
        let dir = tmpdir("crc");
        let field = vec![3.0; 100];
        SubfileWriter::new(&dir, "t", &[100], 2)
            .write_all(&field)
            .unwrap();
        // Flip a payload byte in subfile 1.
        let path = dir.join("t.00001.a3f");
        let mut bytes = std::fs::read(&path).unwrap();
        let k = bytes.len() - 3;
        bytes[k] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let err = SubfileReader::new(&dir, "t").read_all().unwrap_err();
        assert!(matches!(err, IoError::CrcMismatch { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_catches_header_corruption() {
        let dir = tmpdir("vh");
        let field = vec![2.5; 60];
        SubfileWriter::new(&dir, "eta", &[60], 3)
            .write_all(&field)
            .unwrap();
        let r = SubfileReader::new(&dir, "eta");
        assert!(r.verify().is_ok());
        // Flip one byte inside the `start` field of subfile 2's header —
        // without the header CRC this silently relocated the slab.
        let path = dir.join("eta.00002.a3f");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[48] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(r.verify(), Err(IoError::CrcMismatch { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_read_crosses_subfiles() {
        let dir = tmpdir("range");
        let field: Vec<f64> = (0..90).map(|i| i as f64).collect();
        SubfileWriter::new(&dir, "u", &[90], 4)
            .write_all(&field)
            .unwrap();
        let got = SubfileReader::new(&dir, "u").read_range(20, 70).unwrap();
        assert_eq!(got, (20..70).map(|i| i as f64).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_ranges_cover_exactly() {
        for (total, n) in [(100, 7), (5, 5), (3, 1), (0, 2)] {
            let ranges = partition_ranges(total, n);
            assert_eq!(ranges.len(), n);
            let mut expect = 0;
            for (s, e) in ranges {
                assert_eq!(s, expect);
                assert!(e >= s);
                expect = e;
            }
            assert_eq!(expect, total);
        }
    }

    #[test]
    fn io_plan_groups_and_aggregators() {
        let plan = IoPlan::new(10, 3);
        // Every rank belongs to exactly one group; groups are contiguous.
        let groups: Vec<usize> = (0..10).map(|r| plan.group_of(r)).collect();
        for w in groups.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*groups.last().unwrap(), 2);
        for g in 0..3 {
            let members = plan.members_of(g);
            assert!(!members.is_empty());
            assert_eq!(plan.aggregator_of(g), members[0]);
        }
        // 10 ranks over 3 groups: sizes 4, 3, 3.
        assert_eq!(plan.members_of(0).len(), 4);
        assert_eq!(plan.members_of(1).len(), 3);
        assert_eq!(plan.members_of(2).len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot have more sub-files than ranks")]
    fn too_many_subfiles_rejected() {
        let _ = IoPlan::new(2, 3);
    }
}
