//! # AP3ESM parallel I/O (`ap3esm-io`)
//!
//! The paper's §5.2.5: km-scale output overwhelms file systems, so AP3ESM
//! (a) partitions each field into **sub-files**, (b) assigns **groups of MPI
//! ranks** to each sub-file set, and (c) uses a **binary format** instead of
//! self-describing NetCDF. This crate implements all three:
//!
//! * [`format`] — the binary on-disk format: fixed header, partition index,
//!   little-endian f64 payload, CRC-32 integrity check,
//! * [`subfile`] — writing/reading a global field as N sub-files, the
//!   rank-group aggregation plan, and a single-file baseline for the
//!   ablation benchmark.

pub mod format;
pub mod subfile;

pub use format::{FieldHeader, MAGIC};
pub use subfile::{IoPlan, SubfileReader, SubfileWriter};

/// Errors from the I/O layer.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    BadMagic,
    BadVersion(u32),
    CrcMismatch { expected: u32, actual: u32 },
    Inconsistent(String),
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadMagic => write!(f, "not an AP3ESM field file (bad magic)"),
            IoError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            IoError::CrcMismatch { expected, actual } => {
                write!(f, "payload CRC mismatch: expected {expected:#x}, got {actual:#x}")
            }
            IoError::Inconsistent(msg) => write!(f, "inconsistent sub-file set: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}
