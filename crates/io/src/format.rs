//! The binary field format.
//!
//! Layout of one sub-file (all integers little-endian):
//!
//! ```text
//! 0    8   magic "AP3ESMIO"
//! 8    4   version (= 1)
//! 12   4   number of dimensions (1..=3)
//! 16   24  global dims (3 × u64; unused dims = 1)
//! 40   4   sub-file index (which partition this file holds)
//! 44   4   total number of sub-files
//! 48   8   start element (inclusive, into the flattened global field)
//! 56   8   element count in this sub-file
//! 64   4   CRC-32 of the payload bytes
//! 68   4   CRC-32 of header bytes 0..68 (0 = legacy, unchecked)
//! 72   …   payload: count × f64 little-endian
//! ```
//!
//! The header checksum makes every single-byte corruption of a sub-file
//! detectable: a flipped payload byte fails the payload CRC, a flipped
//! header byte fails the magic/version check or the header CRC. The
//! checkpoint-recovery path relies on this to tell a good checkpoint from
//! a damaged one.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::IoError;

/// Format magic bytes.
pub const MAGIC: &[u8; 8] = b"AP3ESMIO";
const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 72;

/// Parsed sub-file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldHeader {
    pub dims: [u64; 3],
    pub ndims: u32,
    pub subfile_index: u32,
    pub subfile_count: u32,
    pub start: u64,
    pub count: u64,
    pub crc: u32,
}

impl FieldHeader {
    /// Serialise to the fixed 72-byte header. The final word is the
    /// CRC-32 of the preceding 68 bytes, so header corruption is
    /// detectable independently of the payload checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_LEN);
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION);
        b.put_u32_le(self.ndims);
        for d in self.dims {
            b.put_u64_le(d);
        }
        b.put_u32_le(self.subfile_index);
        b.put_u32_le(self.subfile_count);
        b.put_u64_le(self.start);
        b.put_u64_le(self.count);
        b.put_u32_le(self.crc);
        let header_crc = crc32(&b);
        b.put_u32_le(header_crc);
        debug_assert_eq!(b.len(), HEADER_LEN);
        b.freeze()
    }

    /// Parse from the first [`HEADER_LEN`] bytes of a file. A non-zero
    /// trailing word must match the CRC-32 of the first 68 bytes; zero is
    /// accepted for sub-files written before the checksum existed.
    pub fn decode(buf: &[u8]) -> Result<Self, IoError> {
        if buf.len() < HEADER_LEN {
            return Err(IoError::Inconsistent("truncated header".into()));
        }
        let mut head = &buf[..HEADER_LEN - 4];
        let mut magic = [0u8; 8];
        head.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = head.get_u32_le();
        if version != VERSION {
            return Err(IoError::BadVersion(version));
        }
        let stored_header_crc =
            u32::from_le_bytes(buf[HEADER_LEN - 4..HEADER_LEN].try_into().expect("4 bytes"));
        if stored_header_crc != 0 {
            let actual = crc32(&buf[..HEADER_LEN - 4]);
            if actual != stored_header_crc {
                return Err(IoError::CrcMismatch {
                    expected: stored_header_crc,
                    actual,
                });
            }
        }
        let mut buf = head;
        let ndims = buf.get_u32_le();
        let dims = [buf.get_u64_le(), buf.get_u64_le(), buf.get_u64_le()];
        let subfile_index = buf.get_u32_le();
        let subfile_count = buf.get_u32_le();
        let start = buf.get_u64_le();
        let count = buf.get_u64_le();
        let crc = buf.get_u32_le();
        Ok(FieldHeader {
            dims,
            ndims,
            subfile_index,
            subfile_count,
            start,
            count,
            crc,
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected) — table-driven, no external dependency.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Encode an f64 slice as little-endian payload bytes.
pub fn encode_payload(data: &[f64]) -> Bytes {
    let mut b = BytesMut::with_capacity(data.len() * 8);
    for &v in data {
        b.put_f64_le(v);
    }
    b.freeze()
}

/// Decode a little-endian payload back to f64s.
pub fn decode_payload(mut buf: &[u8]) -> Result<Vec<f64>, IoError> {
    if !buf.len().is_multiple_of(8) {
        return Err(IoError::Inconsistent("payload not a multiple of 8".into()));
    }
    let mut out = Vec::with_capacity(buf.len() / 8);
    while buf.has_remaining() {
        out.push(buf.get_f64_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FieldHeader {
            dims: [100, 50, 3],
            ndims: 3,
            subfile_index: 2,
            subfile_count: 8,
            start: 1234,
            count: 5678,
            crc: 0xDEAD_BEEF,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        let h2 = FieldHeader::decode(&bytes).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = FieldHeader {
            dims: [1, 1, 1],
            ndims: 1,
            subfile_index: 0,
            subfile_count: 1,
            start: 0,
            count: 0,
            crc: 0,
        }
        .encode()
        .to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            FieldHeader::decode(&bytes),
            Err(IoError::BadMagic)
        ));
    }

    #[test]
    fn header_crc_detects_any_corrupted_byte() {
        let h = FieldHeader {
            dims: [100, 50, 3],
            ndims: 3,
            subfile_index: 2,
            subfile_count: 8,
            start: 1234,
            count: 5678,
            crc: 0xDEAD_BEEF,
        };
        let clean = h.encode().to_vec();
        assert!(FieldHeader::decode(&clean).is_ok());
        for pos in 0..HEADER_LEN {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x01;
            assert!(
                FieldHeader::decode(&bytes).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn legacy_zero_header_crc_is_accepted() {
        let h = FieldHeader {
            dims: [4, 1, 1],
            ndims: 1,
            subfile_index: 0,
            subfile_count: 1,
            start: 0,
            count: 4,
            crc: 7,
        };
        let mut bytes = h.encode().to_vec();
        bytes[HEADER_LEN - 4..].fill(0); // pre-checksum writer
        assert_eq!(FieldHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_roundtrip() {
        let data = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 3.25];
        let bytes = encode_payload(&data);
        let back = decode_payload(&bytes).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = encode_payload(&[1.0, 2.0]);
        assert!(matches!(
            decode_payload(&bytes[..9]),
            Err(IoError::Inconsistent(_))
        ));
    }
}
