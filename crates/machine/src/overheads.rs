//! Initialization and coupler-setup overheads at full machine scale.
//!
//! §5.2.4: "the memory in a CG of Sunway cannot satisfy the requirements
//! for MCT to construct the GSMap … and the Router table … the two data
//! structures are generated offline as a preprocessing step." §3 likewise
//! flags initialization as "the bottleneck during a porting process".
//! This module models those budgets so the claim is checkable: online
//! construction needs global position workspace proportional to the grid,
//! which overflows a core group's memory share at km-scale; the offline
//! load path only needs the rank's own table slice.

use crate::topology::MachineSpec;

/// Memory available to one MPI process (one core group) on a machine with
/// `node_memory_bytes` per node.
pub fn memory_per_process(machine: &MachineSpec, node_memory_bytes: u64) -> u64 {
    node_memory_bytes / machine.units_per_node as u64
}

/// Workspace for *online* Router construction on one process: the global
/// position arrays for both decompositions (4 bytes per grid point each)
/// plus both segment lists. This is what MCT's build touches regardless of
/// how little of the table the rank ends up owning.
pub fn online_router_workspace_bytes(nglobal_points: u64, segments: u64) -> u64 {
    2 * 4 * nglobal_points + segments * 24
}

/// Memory for the *offline-loaded* router on one process: only its own
/// legs — on average `nglobal / ranks` entries of 8 bytes.
pub fn offline_router_bytes_per_rank(nglobal_points: u64, ranks: u64) -> u64 {
    (nglobal_points / ranks.max(1)) * 8
}

/// Sunway OceanLight node memory (bytes): 96 GB per SW26010P node.
pub const OCEANLIGHT_NODE_MEMORY: u64 = 96 * (1 << 30);

/// Initialization-time model: reading the km-scale initial state through
/// one file vs `nsubfiles` parallel sub-file groups at aggregate filesystem
/// bandwidth `fs_bw` (bytes/s, per concurrent stream up to `max_streams`).
pub fn init_read_seconds(
    state_bytes: u64,
    nsubfiles: u64,
    fs_stream_bw: f64,
    max_streams: u64,
) -> f64 {
    let streams = nsubfiles.clamp(1, max_streams) as f64;
    state_bytes as f64 / (fs_stream_bw * streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §5.2.4 motivation, quantified: at the 1-km ocean
    /// (36000×22018 columns), online Router construction needs more
    /// workspace than a Sunway core group's memory share, while the
    /// offline-loaded table fits easily.
    #[test]
    fn online_router_overflows_a_sunway_cg_at_1km() {
        let machine = MachineSpec::sunway_oceanlight();
        let per_cg = memory_per_process(&machine, OCEANLIGHT_NODE_MEMORY);
        let ocn_points_1km: u64 = 36_000 * 22_018; // per coupling field level
        // The coupler routes the full 3-D state for some fields; use the
        // 3-D point count (×80 levels) for the worst-case field.
        let nglobal_3d = ocn_points_1km * 80;
        let online = online_router_workspace_bytes(nglobal_3d, 2 * 95_316);
        assert!(
            online > per_cg,
            "online workspace {online} should exceed per-CG memory {per_cg}"
        );
        let offline = offline_router_bytes_per_rank(nglobal_3d, 95_316);
        assert!(
            offline * 20 < per_cg,
            "offline table {offline} must fit a CG with ample margin"
        );
    }

    #[test]
    fn coarse_configs_fit_online() {
        // At 25v10 the same construction is harmless — which is why the
        // problem only surfaced at km scale.
        let machine = MachineSpec::sunway_oceanlight();
        let per_cg = memory_per_process(&machine, OCEANLIGHT_NODE_MEMORY);
        let nglobal = 3600u64 * 2302 * 80;
        let online = online_router_workspace_bytes(nglobal, 2 * 4096);
        assert!(online < per_cg);
    }

    #[test]
    fn subfile_reads_scale_until_stream_limit() {
        let state = 10u64 * (1 << 40); // 10 TB km-scale initial state
        let one = init_read_seconds(state, 1, 5e9, 256);
        let many = init_read_seconds(state, 64, 5e9, 256);
        let capped = init_read_seconds(state, 100_000, 5e9, 256);
        assert!((one / many - 64.0).abs() < 1e-9);
        assert!(capped >= init_read_seconds(state, 256, 5e9, 256) * 0.999);
    }
}
