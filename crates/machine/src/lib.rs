//! # AP3ESM machine model (`ap3esm-machine`)
//!
//! The paper's performance results are measured on two machines we cannot
//! access: the Sunway OceanLight supercomputer (107 520 nodes × SW26010P
//! 390-core CPUs = 41 932 800 cores, 256-node supernodes on a 16:3
//! oversubscribed fat tree) and ORISE (CPU + 4 HIP GPUs per node, 16 GB/s
//! PCIe, 25 GB/s network). Per the reproduction plan (DESIGN.md), this crate
//! models them analytically:
//!
//! * [`topology`] — the hardware description: node/CG/CPE hierarchy, fat
//!   tree with supernodes and oversubscription, per-hop latency model,
//! * [`perf`] — an α–β + roofline scaling model, calibrated against the
//!   paper's own measured SYPD points, used by the bench harness to
//!   regenerate Table 2 and Fig. 8a/8b at full machine scale,
//! * [`calibration`] — the embedded paper measurements and the fitting
//!   routine.
//!
//! The model's *structure* (compute ∝ 1/N, halo bandwidth ∝ N^(−2/3),
//! latency + log-tree synchronisation, cross-supernode contention) is
//! first-principles; only two scalar knobs per configuration are fitted, so
//! the reproduced scaling *shapes* are earned rather than copied.

pub mod calibration;
pub mod overheads;
pub mod perf;
pub mod topology;

pub use calibration::{CalibrationPoint, ConfigCalibration};
pub use perf::{section_bound, BoundVerdict, ScalingModel, SypdPoint, WorkloadSpec};
pub use topology::{MachineSpec, OriseNode, SunwayNode};

/// Seconds of wall time per simulated day at a given SYPD.
pub fn seconds_per_simday(sypd: f64) -> f64 {
    assert!(sypd > 0.0);
    86_400.0 / (365.0 * sypd)
}

/// SYPD from wall seconds per simulated day.
pub fn sypd_from_seconds(sec_per_simday: f64) -> f64 {
    assert!(sec_per_simday > 0.0);
    86_400.0 / (365.0 * sec_per_simday)
}

/// Simulated days per day (SDPD), the alternative metric quoted by several
/// related works (e.g. 340 SDPD ≈ 0.93 SYPD for the CESM port).
pub fn sdpd(sypd: f64) -> f64 {
    sypd * 365.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sypd_seconds_roundtrip() {
        let s = seconds_per_simday(0.54);
        assert!((sypd_from_seconds(s) - 0.54).abs() < 1e-12);
    }

    #[test]
    fn sdpd_matches_related_work_quotes() {
        // Duan et al. 2024: 340 SDPD quoted as 0.93 SYPD.
        assert!((sdpd(0.93) - 340.0).abs() < 1.0);
        // Bishnoi et al. 2023: 170 SDPD "about 0.47 SYPD".
        assert!((sdpd(0.47) - 170.0).abs() < 2.0);
    }
}
