//! Embedded paper measurements (Table 2 / §7.2 text) used to calibrate the
//! scaling model and as the "paper" column of EXPERIMENTS.md.
//!
//! The scanned table in the source text garbles some row labels; the values
//! below follow the *running text* of §7.2, which is internally consistent
//! (its quoted parallel efficiencies match its quoted SYPD ratios exactly).

use serde::{Deserialize, Serialize};

/// One measured point: node count, paper's core/GPU accounting, SYPD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    pub nodes: usize,
    pub units: usize,
    pub sypd: f64,
}

/// A full measured configuration from the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigCalibration {
    /// e.g. "ATM 3km CPE+OPT (Sunway)".
    pub label: String,
    /// "cores" or "GPUs" — what `units` counts.
    pub unit_name: String,
    /// true for Sunway OceanLight, false for ORISE.
    pub sunway: bool,
    /// Whether this is an accelerated (CPE+OPT / GPU-optimised) run.
    pub accelerated: bool,
    pub points: Vec<CalibrationPoint>,
}

fn cfg(
    label: &str,
    unit_name: &str,
    sunway: bool,
    accelerated: bool,
    pts: &[(usize, usize, f64)],
) -> ConfigCalibration {
    ConfigCalibration {
        label: label.to_owned(),
        unit_name: unit_name.to_owned(),
        sunway,
        accelerated,
        points: pts
            .iter()
            .map(|&(nodes, units, sypd)| CalibrationPoint { nodes, units, sypd })
            .collect(),
    }
}

/// All strong-scaling configurations of Table 2 / Fig. 8a.
pub fn paper_table2() -> Vec<ConfigCalibration> {
    vec![
        // --- ORISE, 1 km ocean ---
        // "Original": the 2024 Gordon Bell finalist record used as baseline
        // (LICOMK++ 1.70 SYPD); OPT: this paper's systematic redesign with
        // 3-D non-ocean point removal, 1.2× faster at the largest scale.
        cfg(
            "OCN 1km Original (ORISE)",
            "GPUs",
            false,
            true,
            &[
                (1000, 4000, 0.77),
                (2000, 8000, 1.25),
                (3000, 12000, 1.49),
                (4021, 16085, 1.65),
            ],
        ),
        cfg(
            "OCN 1km OPT (ORISE)",
            "GPUs",
            false,
            true,
            &[
                (1015, 4060, 0.92),
                (2015, 8060, 1.45),
                (2982, 11927, 1.76),
                (4021, 16085, 1.98),
            ],
        ),
        // --- Sunway, ocean 2 km ---
        // MPE text: 0.0014 → 0.019 SYPD, ~20k → >300k cores, 88.6 % eff.
        cfg(
            "OCN 2km MPE (Sunway)",
            "cores",
            true,
            false,
            &[
                (3265, 19_608, 0.0014),
                (6425, 38_550, 0.0033),
                (12_671, 76_026, 0.0060),
                (50_035, 300_210, 0.019),
            ],
        ),
        // CPE+OPT text: 0.21 → 1.59 SYPD, 1 273 415 → 19 513 780 cores,
        // 49.4 % eff; speedup vs MPE 84–150×.
        cfg(
            "OCN 2km CPE+OPT (Sunway)",
            "cores",
            true,
            true,
            &[
                (3265, 1_273_415, 0.21),
                (6425, 2_505_880, 0.42),
                (12_671, 4_941_755, 0.72),
                (50_035, 19_513_780, 1.59),
            ],
        ),
        // --- Sunway, atmosphere ---
        // MPE 3 km: 0.0032 → 0.0063 SYPD on 32 768 → 262 144 cores, 24.6 %.
        cfg(
            "ATM 3km MPE (Sunway)",
            "cores",
            true,
            false,
            &[(5462, 32_768, 0.0032), (43_691, 262_144, 0.0063)],
        ),
        // CPE+OPT 3 km: 0.36 → 1.16 SYPD on 2 129 920 → 17 039 360 cores,
        // 40.3 %; speedup vs MPE 112–184×.
        cfg(
            "ATM 3km CPE+OPT (Sunway)",
            "cores",
            true,
            true,
            &[
                (5462, 2_129_920, 0.36),
                (10_923, 4_259_840, 0.70),
                (21_846, 8_519_680, 0.92),
                (43_691, 17_039_360, 1.16),
            ],
        ),
        // CPE+OPT 1 km: 0.20 → 0.85 SYPD on 4 259 840 → 34 078 270 cores,
        // 51.5 % eff (headline standalone-atmosphere result).
        cfg(
            "ATM 1km CPE+OPT (Sunway)",
            "cores",
            true,
            true,
            &[
                (10_923, 4_259_840, 0.20),
                (43_691, 17_039_360, 0.55),
                (87_380, 34_078_270, 0.85),
            ],
        ),
        // --- Coupled AP3ESM on Sunway ---
        // 3v2 text: 0.18 → 1.01 SYPD from 3 403 335 → 36 553 140 cores,
        // 52.2 % eff; table interior points 0.40 / 0.71.
        cfg(
            "AP3ESM 3v2 CPE+OPT (Sunway)",
            "cores",
            true,
            true,
            &[
                (8726, 3_403_335, 0.18),
                (21_846, 8_519_680, 0.40),
                (43_691, 17_039_360, 0.71),
                (93_726, 36_553_140, 1.01),
            ],
        ),
        // 1v1 text: 0.14 → 0.54 SYPD from 8 745 360 → 37 172 980 cores,
        // 90.7 % eff (headline coupled result).
        cfg(
            "AP3ESM 1v1 CPE+OPT (Sunway)",
            "cores",
            true,
            true,
            &[
                (22_424, 8_745_360, 0.14),
                (44_511, 17_359_160, 0.23),
                (95_316, 37_172_980, 0.54),
            ],
        ),
    ]
}

/// Fig. 8b weak-scaling configurations: `(label, resolutions_km, nodes,
/// final parallel efficiency)`.
pub struct WeakScalingConfig {
    pub label: String,
    pub resolutions_km: Vec<f64>,
    pub nodes: Vec<usize>,
    pub final_efficiency: f64,
}

pub fn paper_fig8b() -> Vec<WeakScalingConfig> {
    vec![
        WeakScalingConfig {
            label: "ATM weak scaling (Sunway)".into(),
            resolutions_km: vec![25.0, 10.0, 6.0, 3.0],
            nodes: vec![683, 2731, 10_922, 43_691],
            final_efficiency: 0.8785,
        },
        WeakScalingConfig {
            label: "OCN weak scaling (Sunway)".into(),
            resolutions_km: vec![10.0, 5.0, 3.0, 2.0],
            nodes: vec![2107, 8212, 18_225, 50_035],
            final_efficiency: 0.9657,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quoted efficiencies of §7.2 must match the quoted SYPD ratios —
    /// this is the internal-consistency check that justified preferring the
    /// running text over the garbled table.
    #[test]
    fn text_efficiencies_are_self_consistent() {
        let check = |label: &str, expected_eff: f64| {
            let cfgs = paper_table2();
            let c = cfgs.iter().find(|c| c.label == label).unwrap();
            let first = c.points.first().unwrap();
            let last = c.points.last().unwrap();
            let ideal = first.sypd * last.nodes as f64 / first.nodes as f64;
            let eff = last.sypd / ideal;
            assert!(
                (eff - expected_eff).abs() < 0.02,
                "{label}: eff {eff} vs paper {expected_eff}"
            );
        };
        check("ATM 3km CPE+OPT (Sunway)", 0.403);
        check("OCN 2km CPE+OPT (Sunway)", 0.494);
        check("OCN 2km MPE (Sunway)", 0.886);
        check("AP3ESM 1v1 CPE+OPT (Sunway)", 0.907);
        check("AP3ESM 3v2 CPE+OPT (Sunway)", 0.522);
    }

    #[test]
    fn cpe_speedup_in_paper_band() {
        // ATM: 112–184× (paper); compare at the shared 5462/43691 nodes.
        let cfgs = paper_table2();
        let mpe = cfgs
            .iter()
            .find(|c| c.label.contains("ATM 3km MPE"))
            .unwrap();
        let cpe = cfgs
            .iter()
            .find(|c| c.label.contains("ATM 3km CPE"))
            .unwrap();
        let s_small = cpe.points[0].sypd / mpe.points[0].sypd;
        let s_large = cpe.points.last().unwrap().sypd / mpe.points.last().unwrap().sypd;
        assert!(
            (110.0..=190.0).contains(&s_small) && (110.0..=190.0).contains(&s_large),
            "speedups {s_small} {s_large}"
        );
    }

    #[test]
    fn headline_numbers_present() {
        let cfgs = paper_table2();
        let atm1 = cfgs
            .iter()
            .find(|c| c.label.contains("ATM 1km"))
            .unwrap();
        assert_eq!(atm1.points.last().unwrap().sypd, 0.85);
        assert_eq!(atm1.points.last().unwrap().units, 34_078_270);
        let cpl = cfgs
            .iter()
            .find(|c| c.label.contains("1v1"))
            .unwrap();
        assert_eq!(cpl.points.last().unwrap().sypd, 0.54);
        assert_eq!(cpl.points.last().unwrap().units, 37_172_980);
    }

    #[test]
    fn orise_opt_beats_original_by_1_2x() {
        let cfgs = paper_table2();
        let orig = cfgs
            .iter()
            .find(|c| c.label.contains("Original"))
            .unwrap();
        let opt = cfgs.iter().find(|c| c.label.contains("1km OPT")).unwrap();
        let ratio = opt.points.last().unwrap().sypd / orig.points.last().unwrap().sypd;
        assert!((ratio - 1.2).abs() < 0.05, "ratio {ratio}");
    }
}
