//! The α–β/roofline scaling model.
//!
//! Wall time per simulated day decomposes as
//!
//! ```text
//! t(N) = t₀ · [ f_comp · (N₀/N)            — compute, perfectly parallel
//!             + f_bw   · (N₀/N)^(2/3) · κ(N)/κ(N₀)
//!                                           — halo bandwidth (surface/volume)
//!             + f_lat  · (1 + λ·log₂(N/N₀)) — latency + tree reductions ]
//! ```
//!
//! with κ(N) the cross-supernode contention factor of the fat tree. The
//! anchor `(N₀, SYPD₀)` and the split `(f_bw, f_lat, λ, escape)` are fitted
//! to the paper's measured points ([`crate::calibration`]); `f_comp` is the
//! remainder. Strong scaling, weak scaling, and efficiency all derive from
//! the same expression.

use serde::{Deserialize, Serialize};

use crate::calibration::ConfigCalibration;
use crate::topology::MachineSpec;

/// A model-produced point of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SypdPoint {
    pub nodes: usize,
    pub units: usize,
    pub sypd: f64,
    pub efficiency: f64,
}

/// Describes a component workload for reporting purposes (grid points,
/// stepping); the scaling behaviour itself is carried by the fitted model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    pub name: String,
    /// Total 3-D grid points.
    pub gridpoints: u64,
    /// Model steps per simulated day (coupler-visible steps).
    pub steps_per_day: u64,
}

impl WorkloadSpec {
    pub fn new(name: &str, gridpoints: u64, steps_per_day: u64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            gridpoints,
            steps_per_day,
        }
    }

    /// Point-steps per simulated day — the work unit the compute term
    /// scales with.
    pub fn work_per_day(&self) -> u64 {
        self.gridpoints * self.steps_per_day
    }
}

/// Roofline-style verdict for one code section: what the α–β network model
/// says the section is limited by, given its measured compute time and
/// message traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundVerdict {
    /// Compute dominates modeled comm by ≥ 2× — worth a kernel speedup.
    ComputeBound,
    /// Byte volume dominates: the β (bandwidth) term is the larger comm
    /// share and comm ≥ 2× compute — wants aggregation or less data.
    BandwidthBound,
    /// Message count dominates: the α (latency) term is the larger comm
    /// share and comm ≥ 2× compute — wants fewer, fatter messages.
    LatencyBound,
    /// Neither side dominates by 2× — speedups need both halves.
    Balanced,
}

impl BoundVerdict {
    /// Stable lower-case label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            BoundVerdict::ComputeBound => "compute-bound",
            BoundVerdict::BandwidthBound => "bandwidth-bound",
            BoundVerdict::LatencyBound => "latency-bound",
            BoundVerdict::Balanced => "balanced",
        }
    }
}

/// Cost a section's traffic against `machine`'s α–β terms and compare with
/// its measured compute time: returns the verdict plus the modeled
/// communication seconds (`msgs·α + bytes/β`). This is the per-section
/// roofline the critical-path analyzer annotates its optimization-targets
/// table with — a section the model calls latency-bound will not respond
/// to a faster kernel.
pub fn section_bound(machine: &MachineSpec, compute_s: f64, msgs: u64, bytes: u64) -> (BoundVerdict, f64) {
    let lat_s = msgs as f64 * machine.net_alpha;
    let bw_s = bytes as f64 / machine.net_beta;
    let comm_s = lat_s + bw_s;
    let verdict = if compute_s >= 2.0 * comm_s {
        BoundVerdict::ComputeBound
    } else if comm_s >= 2.0 * compute_s {
        if lat_s >= bw_s {
            BoundVerdict::LatencyBound
        } else {
            BoundVerdict::BandwidthBound
        }
    } else {
        BoundVerdict::Balanced
    };
    (verdict, comm_s)
}

/// Fitted strong/weak scaling model for one configuration on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    pub machine: MachineSpec,
    pub anchor_nodes: usize,
    pub anchor_sypd: f64,
    /// Halo-bandwidth share of anchor time.
    pub f_bw: f64,
    /// Latency/synchronisation share of anchor time.
    pub f_lat: f64,
    /// Log-growth rate of the latency share.
    pub lambda: f64,
    /// Fraction of halo traffic escaping the supernode (pays
    /// oversubscription at scale).
    pub escape: f64,
}

impl ScalingModel {
    /// Relative time factor t(N)/t(N₀).
    pub fn time_factor(&self, nodes: usize) -> f64 {
        assert!(nodes >= 1);
        let n0 = self.anchor_nodes as f64;
        let n = nodes as f64;
        let f_comp = (1.0 - self.f_bw - self.f_lat).max(0.0);
        let kappa = |nn: usize| {
            let cross = self.machine.cross_supernode_fraction(nn) * self.escape;
            1.0 - cross + cross * self.machine.oversubscription
        };
        let comp = f_comp * (n0 / n);
        let bw = self.f_bw * (n0 / n).powf(2.0 / 3.0) * kappa(nodes) / kappa(self.anchor_nodes);
        let lat = self.f_lat * (1.0 + self.lambda * (n / n0).log2().max(0.0));
        comp + bw + lat
    }

    /// Modeled SYPD at `nodes`.
    pub fn sypd(&self, nodes: usize) -> f64 {
        self.anchor_sypd / self.time_factor(nodes)
    }

    /// Strong-scaling parallel efficiency vs the anchor.
    pub fn efficiency(&self, nodes: usize) -> f64 {
        let ideal = self.anchor_sypd * nodes as f64 / self.anchor_nodes as f64;
        self.sypd(nodes) / ideal
    }

    /// Weak-scaling time factor: work per node constant, so the compute
    /// term is flat and only communication grows.
    pub fn weak_time_factor(&self, nodes: usize) -> f64 {
        let n0 = self.anchor_nodes as f64;
        let n = nodes as f64;
        let f_comp = (1.0 - self.f_bw - self.f_lat).max(0.0);
        let kappa = |nn: usize| {
            let cross = self.machine.cross_supernode_fraction(nn) * self.escape;
            1.0 - cross + cross * self.machine.oversubscription
        };
        let bw = self.f_bw * kappa(nodes) / kappa(self.anchor_nodes);
        let lat = self.f_lat * (1.0 + self.lambda * (n / n0).log2().max(0.0));
        f_comp + bw + lat
    }

    /// Weak-scaling efficiency vs the anchor.
    pub fn weak_efficiency(&self, nodes: usize) -> f64 {
        1.0 / self.weak_time_factor(nodes)
    }

    /// Sweep the model over node counts.
    pub fn sweep(&self, nodes: &[usize]) -> Vec<SypdPoint> {
        nodes
            .iter()
            .map(|&n| SypdPoint {
                nodes: n,
                units: self.machine.units(n),
                sypd: self.sypd(n),
                efficiency: self.efficiency(n),
            })
            .collect()
    }

    /// Fit the four knobs to a measured configuration by grid search over
    /// physically-plausible ranges, minimising squared log-SYPD error. The
    /// first measured point is the anchor.
    pub fn fit(machine: MachineSpec, cal: &ConfigCalibration) -> Self {
        assert!(!cal.points.is_empty());
        let anchor = cal.points[0];
        let mut best = ScalingModel {
            machine: machine.clone(),
            anchor_nodes: anchor.nodes,
            anchor_sypd: anchor.sypd,
            f_bw: 0.0,
            f_lat: 0.0,
            lambda: 0.3,
            escape: 0.1,
        };
        let mut best_err = f64::INFINITY;
        for f_bw_i in 0..=20 {
            let f_bw = f_bw_i as f64 * 0.025;
            for f_lat_i in 0..=20 {
                let f_lat = f_lat_i as f64 * 0.025;
                if f_bw + f_lat > 0.9 {
                    continue;
                }
                for &lambda in &[0.0, 0.15, 0.3, 0.5, 0.8, 1.2] {
                    for &escape in &[0.0, 0.05, 0.15, 0.3] {
                        let m = ScalingModel {
                            machine: machine.clone(),
                            anchor_nodes: anchor.nodes,
                            anchor_sypd: anchor.sypd,
                            f_bw,
                            f_lat,
                            lambda,
                            escape,
                        };
                        let err: f64 = cal
                            .points
                            .iter()
                            .map(|p| (m.sypd(p.nodes) / p.sypd).ln().powi(2))
                            .sum();
                        if err < best_err {
                            best_err = err;
                            best = m;
                        }
                    }
                }
            }
        }
        best
    }

    /// Geometric-mean relative error of the fit over the measured points.
    pub fn fit_error(&self, cal: &ConfigCalibration) -> f64 {
        let s: f64 = cal
            .points
            .iter()
            .map(|p| (self.sypd(p.nodes) / p.sypd).ln().abs())
            .sum();
        (s / cal.points.len() as f64).exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper_table2;

    #[test]
    fn time_factor_is_one_at_anchor() {
        let m = ScalingModel {
            machine: MachineSpec::sunway_oceanlight(),
            anchor_nodes: 1000,
            anchor_sypd: 0.5,
            f_bw: 0.2,
            f_lat: 0.1,
            lambda: 0.3,
            escape: 0.1,
        };
        assert!((m.time_factor(1000) - 1.0).abs() < 1e-12);
        assert!((m.sypd(1000) - 0.5).abs() < 1e-12);
        assert!((m.efficiency(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sypd_increases_sublinearly() {
        let m = ScalingModel {
            machine: MachineSpec::sunway_oceanlight(),
            anchor_nodes: 1000,
            anchor_sypd: 0.5,
            f_bw: 0.2,
            f_lat: 0.1,
            lambda: 0.3,
            escape: 0.1,
        };
        let s2 = m.sypd(2000);
        let s8 = m.sypd(8000);
        assert!(s2 > 0.5 && s2 < 1.0, "s2 = {s2}");
        assert!(s8 > s2 && s8 < 4.0, "s8 = {s8}");
        assert!(m.efficiency(8000) < m.efficiency(2000));
    }

    #[test]
    fn fits_reproduce_paper_within_tolerance() {
        // Every Table 2 configuration must be reproduced within 20 %
        // geometric-mean error (most are far tighter); this is the
        // quantitative guarantee behind the Table 2 / Fig 8a benches.
        for cal in paper_table2() {
            let machine = if cal.sunway {
                MachineSpec::sunway_oceanlight()
            } else {
                MachineSpec::orise()
            };
            let model = ScalingModel::fit(machine, &cal);
            let err = model.fit_error(&cal);
            assert!(
                err < 0.20,
                "{}: fit error {:.1}% with {:?}",
                cal.label,
                err * 100.0,
                (model.f_bw, model.f_lat, model.lambda, model.escape)
            );
        }
    }

    #[test]
    fn fitted_atm3_matches_largest_scale_efficiency() {
        let cal = paper_table2()
            .into_iter()
            .find(|c| c.label.contains("ATM 3km CPE"))
            .unwrap();
        let model = ScalingModel::fit(MachineSpec::sunway_oceanlight(), &cal);
        let last = *cal.points.last().unwrap();
        let eff = model.efficiency(last.nodes);
        // Paper: 40.3 % at 43 691 nodes.
        assert!((eff - 0.403).abs() < 0.12, "eff {eff}");
    }

    #[test]
    fn weak_efficiency_decreases_with_scale() {
        let m = ScalingModel {
            machine: MachineSpec::sunway_oceanlight(),
            anchor_nodes: 683,
            anchor_sypd: 1.0,
            f_bw: 0.05,
            f_lat: 0.02,
            lambda: 0.3,
            escape: 0.1,
        };
        let e1 = m.weak_efficiency(683);
        let e2 = m.weak_efficiency(43_691);
        assert!((e1 - 1.0).abs() < 1e-12);
        assert!(e2 < 1.0 && e2 > 0.5, "weak eff {e2}");
    }

    #[test]
    fn section_bound_separates_the_three_regimes() {
        let m = MachineSpec::sunway_oceanlight();
        // Heavy compute, light traffic.
        let (v, _) = section_bound(&m, 1.0, 10, 1024);
        assert_eq!(v, BoundVerdict::ComputeBound);
        // Many tiny messages: α term dominates.
        let (v, comm_s) = section_bound(&m, 1e-6, 100_000, 8 * 100_000);
        assert_eq!(v, BoundVerdict::LatencyBound);
        assert!(comm_s > 0.2, "comm_s = {comm_s}");
        // Few huge messages: β term dominates.
        let (v, _) = section_bound(&m, 1e-3, 4, 10_000_000_000);
        assert_eq!(v, BoundVerdict::BandwidthBound);
        // Comparable halves.
        let (_, comm_s) = section_bound(&m, 1.0, 0, 0);
        assert_eq!(comm_s, 0.0);
        let (v, _) = section_bound(&m, 1.5 * 2.5e-1, 100_000, 0);
        assert_eq!(v, BoundVerdict::Balanced);
    }

    #[test]
    fn workload_spec_work_accounting() {
        let w = WorkloadSpec::new("atm-1km", 8_600_000_000, 720);
        assert_eq!(w.work_per_day(), 8_600_000_000 * 720);
    }
}
