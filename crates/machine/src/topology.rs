//! Hardware descriptions of the two evaluation platforms (paper §6.3).

use serde::{Deserialize, Serialize};

/// A Sunway OceanLight node: one SW26010P processor with one management
/// processing element (MPE) core group arrangement — 6 core groups (CGs),
/// each with 1 MPE and 64 compute processing elements (CPEs), 390 cores
/// total per node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SunwayNode {
    pub core_groups: usize,
    pub cpes_per_cg: usize,
    pub mpes_per_cg: usize,
    /// Local device memory per CPE (bytes).
    pub ldm_bytes: usize,
}

impl Default for SunwayNode {
    fn default() -> Self {
        SunwayNode {
            core_groups: 6,
            cpes_per_cg: 64,
            mpes_per_cg: 1,
            ldm_bytes: 256 * 1024,
        }
    }
}

impl SunwayNode {
    /// Cores per node: 6 × (64 + 1) = 390 on SW26010P.
    pub fn cores(&self) -> usize {
        self.core_groups * (self.cpes_per_cg + self.mpes_per_cg)
    }
}

/// An ORISE node: host CPU (4-way, 8-core, x86, 2 GHz) plus 4 HIP GPUs
/// (performance akin to AMD MI60) over 16 GB/s PCIe DMA; 25 GB/s network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OriseNode {
    pub gpus: usize,
    pub cpu_cores: usize,
    /// PCIe DMA bandwidth per node (bytes/s).
    pub pcie_bw: f64,
}

impl Default for OriseNode {
    fn default() -> Self {
        OriseNode {
            gpus: 4,
            cpu_cores: 32,
            pcie_bw: 16e9,
        }
    }
}

/// Machine-level description used by the scaling model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    pub name: String,
    /// Maximum node count.
    pub max_nodes: usize,
    /// Parallel "units" per node the model scales over (core groups on
    /// Sunway — one MPI process per CG — or GPUs on ORISE).
    pub units_per_node: usize,
    /// Cores accounted per node (for the paper's "core" columns).
    pub cores_per_node: usize,
    /// Nodes per supernode (leaf-switch group); 256 on OceanLight.
    pub supernode_size: usize,
    /// Fat-tree uplink oversubscription ratio (16:3 ≈ 5.33 on OceanLight).
    pub oversubscription: f64,
    /// Per-message network latency (s).
    pub net_alpha: f64,
    /// Per-node injection bandwidth (bytes/s).
    pub net_beta: f64,
}

impl MachineSpec {
    /// Sunway OceanLight (paper §6.3): >107 520 nodes, 390-core SW26010P,
    /// 256-node supernodes, 16:3 oversubscribed multi-layer fat tree.
    pub fn sunway_oceanlight() -> Self {
        MachineSpec {
            name: "Sunway OceanLight".into(),
            max_nodes: 107_520,
            units_per_node: 6, // one MPI process per core group
            cores_per_node: SunwayNode::default().cores(),
            supernode_size: 256,
            oversubscription: 16.0 / 3.0,
            net_alpha: 2.5e-6,
            net_beta: 25e9,
        }
    }

    /// ORISE (paper §6.3): CPU + 4 GPUs per node, 25 GB/s interconnect.
    pub fn orise() -> Self {
        MachineSpec {
            name: "ORISE".into(),
            max_nodes: 5000,
            units_per_node: 4, // one process per GPU
            cores_per_node: 32,
            supernode_size: 64,
            oversubscription: 2.0,
            net_alpha: 2.0e-6,
            net_beta: 25e9,
        }
    }

    /// Total parallel units at `nodes`.
    pub fn units(&self, nodes: usize) -> usize {
        self.units_per_node * nodes
    }

    /// "Cores" at `nodes` in the paper's accounting.
    pub fn cores(&self, nodes: usize) -> usize {
        self.cores_per_node * nodes
    }

    /// Supernode id of a node.
    pub fn supernode_of(&self, node: usize) -> usize {
        node / self.supernode_size
    }

    /// Network hops between two nodes: 2 within a supernode (up to the leaf
    /// switch and down), 4 across supernodes (through the spine).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            0
        } else if self.supernode_of(a) == self.supernode_of(b) {
            2
        } else {
            4
        }
    }

    /// Point-to-point message time (s) between two nodes for `bytes`.
    /// Cross-supernode traffic pays the oversubscription factor on
    /// bandwidth, matching the 16:3 uplink taper.
    pub fn p2p_time(&self, a: usize, b: usize, bytes: f64) -> f64 {
        if a == b {
            // Intra-node: memory-bandwidth-ish copy, no NIC latency.
            return bytes / (self.net_beta * 4.0);
        }
        let hops = self.hops(a, b) as f64;
        let bw = if self.supernode_of(a) == self.supernode_of(b) {
            self.net_beta
        } else {
            self.net_beta / self.oversubscription
        };
        self.net_alpha * hops / 2.0 + bytes / bw
    }

    /// Fraction of uniformly-random rank-pair traffic that crosses
    /// supernode boundaries when `nodes` are in use.
    pub fn cross_supernode_fraction(&self, nodes: usize) -> f64 {
        if nodes <= self.supernode_size {
            0.0
        } else {
            let s = self.supernode_size as f64 / nodes as f64;
            1.0 - s
        }
    }

    /// Effective bandwidth taper for halo-like (mostly-local) traffic: only
    /// `locality_escape` of the traffic leaves the supernode; that share
    /// pays the oversubscription.
    pub fn halo_bandwidth_factor(&self, nodes: usize, locality_escape: f64) -> f64 {
        let cross = self.cross_supernode_fraction(nodes) * locality_escape;
        1.0 / (1.0 - cross + cross * self.oversubscription)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sunway_node_has_390_cores() {
        assert_eq!(SunwayNode::default().cores(), 390);
    }

    #[test]
    fn oceanlight_full_machine_core_count() {
        let m = MachineSpec::sunway_oceanlight();
        // Paper: 107 520 nodes → 41 932 800 cores.
        assert_eq!(m.cores(107_520), 41_932_800);
    }

    #[test]
    fn orise_units_are_gpus() {
        let m = MachineSpec::orise();
        // Paper Table 2: 1000 nodes ↔ 4000 GPUs.
        assert_eq!(m.units(1000), 4000);
        assert_eq!(m.units(4021), 16_084); // ~16085 GPUs at max scale
    }

    #[test]
    fn hops_and_supernodes() {
        let m = MachineSpec::sunway_oceanlight();
        assert_eq!(m.hops(5, 5), 0);
        assert_eq!(m.hops(0, 255), 2); // same 256-node supernode
        assert_eq!(m.hops(0, 256), 4); // cross-supernode
    }

    #[test]
    fn cross_supernode_traffic_penalised() {
        let m = MachineSpec::sunway_oceanlight();
        let near = m.p2p_time(0, 1, 1e6);
        let far = m.p2p_time(0, 100_000, 1e6);
        assert!(far > near * 2.0, "near {near} far {far}");
    }

    #[test]
    fn cross_fraction_grows_with_scale() {
        let m = MachineSpec::sunway_oceanlight();
        assert_eq!(m.cross_supernode_fraction(128), 0.0);
        let f1 = m.cross_supernode_fraction(1024);
        let f2 = m.cross_supernode_fraction(100_000);
        assert!(f1 > 0.0 && f2 > f1 && f2 < 1.0);
    }

    #[test]
    fn halo_bandwidth_factor_bounds() {
        let m = MachineSpec::sunway_oceanlight();
        let f_small = m.halo_bandwidth_factor(100, 0.1);
        let f_large = m.halo_bandwidth_factor(100_000, 0.1);
        assert!((f_small - 1.0).abs() < 1e-12);
        assert!(f_large < 1.0 && f_large > 1.0 / m.oversubscription);
    }
}
