//! # AP3ESM sea-ice component (`ap3esm-ice`)
//!
//! The CICE4 analogue (the paper couples CICE4, CESM 2.2's default sea-ice
//! model, optimised for the Sunway multi-core system and given the same
//! 3-D point-exclusion treatment as the ocean). This implementation keeps
//! the pieces the coupled system exercises:
//!
//! * zero-layer thermodynamics: ice grows when the mixed layer is at the
//!   freezing point and loses heat, melts under warm air/ocean,
//! * free-drift-lite dynamics: ice velocity follows wind and ocean
//!   currents with a turning-ratio closure; upwind advection of ice mass,
//! * runs on the ocean's tripolar grid blocks with the ocean's exclusion
//!   machinery (only ocean columns can carry ice),
//! * import/export state in the coupler's conventions (fraction, thickness,
//!   surface temperature; freshwater + heat fluxes back to the ocean).

use ap3esm_grid::decomp::{Block, BlockDecomp2d};
use ap3esm_grid::tripolar::TripolarGrid;

/// Latent heat of fusion of ice (J/kg) and ice density (kg/m³).
pub const L_FUSION: f64 = 3.34e5;
pub const RHO_ICE: f64 = 917.0;
/// Freezing point of sea water (°C).
pub const T_FREEZE: f64 = -1.8;

/// Per-rank sea-ice state on an ocean block (interior-only layout, row-major
/// `nj × ni`; ice needs no halo at the coupling cadence we run).
#[derive(Debug, Clone)]
pub struct IceState {
    pub block: Block,
    pub ni: usize,
    pub nj: usize,
    /// Ice concentration (0..1).
    pub fraction: Vec<f64>,
    /// Mean ice thickness over the ice-covered part (m).
    pub thickness: Vec<f64>,
    /// Ice surface temperature (°C).
    pub tsfc: Vec<f64>,
    /// Ocean mask (kmt > 0).
    pub ocean: Vec<bool>,
}

/// Atmosphere/ocean inputs for one ice step (interior layout).
#[derive(Debug, Clone)]
pub struct IceForcing {
    /// Air temperature at the surface (°C).
    pub tair: Vec<f64>,
    /// Sea-surface temperature (°C).
    pub sst: Vec<f64>,
    /// Net downward heat flux over ice (W/m²).
    pub flux_down: Vec<f64>,
    /// 10 m winds (m/s).
    pub uwind: Vec<f64>,
    pub vwind: Vec<f64>,
    /// Surface ocean currents (m/s).
    pub uocn: Vec<f64>,
    pub vocn: Vec<f64>,
}

impl IceForcing {
    pub fn uniform(n: usize, tair: f64, sst: f64) -> Self {
        IceForcing {
            tair: vec![tair; n],
            sst: vec![sst; n],
            flux_down: vec![0.0; n],
            uwind: vec![0.0; n],
            vwind: vec![0.0; n],
            uocn: vec![0.0; n],
            vocn: vec![0.0; n],
        }
    }
}

/// Fluxes the ice hands back to the ocean/coupler.
#[derive(Debug, Clone)]
pub struct IceExport {
    /// Freshwater flux to the ocean from melt (kg/m²/s).
    pub fresh: Vec<f64>,
    /// Heat flux to the ocean (W/m², positive warms the ocean).
    pub heat: Vec<f64>,
    /// Ice fraction (for albedo/flux blending in the coupler).
    pub fraction: Vec<f64>,
}

/// The sea-ice model.
pub struct IceModel {
    pub state: IceState,
    /// Bulk heat-transfer coefficient air↔ice (W/m²/K).
    pub k_air: f64,
    /// Ocean↔ice heat coupling (W/m²/K).
    pub k_ocn: f64,
    /// Wind factor for free drift (ice speed ≈ 2 % of wind).
    pub wind_factor: f64,
    /// Grid spacings for advection.
    dx: Vec<f64>,
    dy: f64,
}

impl IceModel {
    /// Initialise on the same decomposition as the ocean; polar ocean
    /// starts with climatological ice cover where SST-like initial
    /// temperature is below freezing.
    pub fn new(grid: &TripolarGrid, decomp: &BlockDecomp2d, rank_id: usize) -> Self {
        let block = decomp.block(rank_id);
        let (ni, nj) = (block.ni(), block.nj());
        let n = ni * nj;
        let mut ocean = vec![false; n];
        let mut fraction = vec![0.0; n];
        let mut thickness = vec![0.0; n];
        let mut tsfc = vec![T_FREEZE; n];
        for j in 0..nj {
            let phi = grid.lat[block.j0 + j];
            let t_surf = 2.0 + 26.0 * phi.cos().powi(2); // matches ocn init
            for i in 0..ni {
                let idx = j * ni + i;
                ocean[idx] = grid.kmt[grid.idx(block.i0 + i, block.j0 + j)] > 0;
                if ocean[idx] && t_surf < 4.0 {
                    // Cold high-latitude ocean: seed ice.
                    fraction[idx] = ((4.0 - t_surf) / 4.0).clamp(0.0, 0.95);
                    thickness[idx] = 1.5 * fraction[idx];
                    tsfc[idx] = -5.0;
                }
            }
        }
        let dx: Vec<f64> = (0..nj)
            .map(|j| {
                let phi = grid.lat[block.j0 + j];
                ap3esm_grid::EARTH_RADIUS * phi.cos().max(0.02) * 2.0 * std::f64::consts::PI
                    / grid.nlon as f64
            })
            .collect();
        let dy = ap3esm_grid::EARTH_RADIUS * (grid.lat[grid.nlat - 1] - grid.lat[0])
            / (grid.nlat - 1).max(1) as f64;
        IceModel {
            state: IceState {
                block,
                ni,
                nj,
                fraction,
                thickness,
                tsfc,
                ocean,
            },
            k_air: 20.0,
            k_ocn: 50.0,
            wind_factor: 0.02,
            dx,
            dy,
        }
    }

    /// One thermodynamic + dynamic step of length `dt` seconds.
    pub fn step(&mut self, forcing: &IceForcing, dt: f64) -> IceExport {
        let st = &mut self.state;
        let n = st.ni * st.nj;
        assert_eq!(forcing.tair.len(), n, "forcing size");
        let mut fresh = vec![0.0; n];
        let mut heat = vec![0.0; n];

        // --- Thermodynamics ---
        for idx in 0..n {
            if !st.ocean[idx] {
                continue;
            }
            let vol = st.fraction[idx] * st.thickness[idx]; // m of ice
            let mut dvol = 0.0;
            // Ocean-side: warm water melts ice bottom; freezing water grows.
            let dt_ocn = forcing.sst[idx] - T_FREEZE;
            let q_ocn = self.k_ocn * dt_ocn; // W/m² ocean → ice
            if vol > 0.0 || dt_ocn < 0.0 {
                dvol -= q_ocn * dt / (RHO_ICE * L_FUSION);
                heat[idx] -= q_ocn * st.fraction[idx].max(0.05);
            }
            // Air-side: heat into the ice melts it, heat loss grows it.
            if vol > 0.0 {
                let q_air = self.k_air * (forcing.tair[idx] - st.tsfc[idx])
                    + forcing.flux_down[idx];
                dvol -= q_air.clamp(-500.0, 500.0) * dt / (RHO_ICE * L_FUSION);
                // Surface temperature relaxes toward air temperature, capped
                // at the melting point.
                st.tsfc[idx] += (forcing.tair[idx] - st.tsfc[idx]) * (dt / 86_400.0).min(1.0);
                st.tsfc[idx] = st.tsfc[idx].min(0.0);
            }
            let new_vol = (vol + dvol).max(0.0);
            let melted = (vol - new_vol).max(0.0);
            fresh[idx] += melted * RHO_ICE / dt.max(1.0);
            // Repartition volume into fraction/thickness (CICE-like: keep
            // thickness ≥ 0.5 m for thin ice, cap fraction at 1).
            if new_vol > 1e-6 {
                let thick = (new_vol / st.fraction[idx].max(0.1)).max(0.5);
                st.fraction[idx] = (new_vol / thick).clamp(0.0, 1.0);
                st.thickness[idx] = thick;
            } else {
                st.fraction[idx] = 0.0;
                st.thickness[idx] = 0.0;
            }
        }

        // --- Free-drift advection of ice volume (upwind, interior only) ---
        let vol: Vec<f64> = (0..n)
            .map(|i| st.fraction[i] * st.thickness[i])
            .collect();
        let mut new_vol = vol.clone();
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = j * st.ni + i;
                if !st.ocean[idx] || vol[idx] == 0.0 {
                    continue;
                }
                let ui = self.wind_factor * forcing.uwind[idx] + forcing.uocn[idx];
                let vi = self.wind_factor * forcing.vwind[idx] + forcing.vocn[idx];
                let cfl_x = (ui * dt / self.dx[j]).clamp(-0.45, 0.45);
                let cfl_y = (vi * dt / self.dy).clamp(-0.45, 0.45);
                // Donor-cell: move a CFL fraction of the volume to the
                // downstream neighbor if it is ocean.
                let give = |target: Option<usize>, amount: f64, new_vol: &mut Vec<f64>| {
                    if amount <= 0.0 {
                        return;
                    }
                    if let Some(tgt) = target {
                        if st.ocean[tgt] {
                            new_vol[idx] -= amount;
                            new_vol[tgt] += amount;
                        }
                    }
                };
                let east = (i + 1 < st.ni).then(|| j * st.ni + i + 1);
                let west = (i > 0).then(|| j * st.ni + i - 1);
                let north = (j + 1 < st.nj).then(|| (j + 1) * st.ni + i);
                let south = (j > 0).then(|| (j - 1) * st.ni + i);
                if cfl_x > 0.0 {
                    give(east, cfl_x * vol[idx], &mut new_vol);
                } else {
                    give(west, -cfl_x * vol[idx], &mut new_vol);
                }
                if cfl_y > 0.0 {
                    give(north, cfl_y * vol[idx], &mut new_vol);
                } else {
                    give(south, -cfl_y * vol[idx], &mut new_vol);
                }
            }
        }
        for (idx, &nv) in new_vol.iter().enumerate() {
            if st.ocean[idx] && nv > 1e-6 {
                let thick = st.thickness[idx].max(0.5);
                st.fraction[idx] = (nv / thick).clamp(0.0, 1.0);
                st.thickness[idx] = if st.fraction[idx] > 0.0 {
                    nv / st.fraction[idx]
                } else {
                    0.0
                };
            } else if st.ocean[idx] {
                st.fraction[idx] = 0.0;
                st.thickness[idx] = 0.0;
            }
        }

        IceExport {
            fresh,
            heat,
            fraction: st.fraction.clone(),
        }
    }

    /// Total ice volume (m³) on this rank.
    pub fn total_volume(&self) -> f64 {
        let st = &self.state;
        let mut v = 0.0;
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = j * st.ni + i;
                v += st.fraction[idx] * st.thickness[idx] * self.dx[j] * self.dy;
            }
        }
        v
    }

    /// Ice-covered area fraction of the rank's ocean.
    pub fn ice_cover(&self) -> f64 {
        let st = &self.state;
        let ocean: f64 = st.ocean.iter().filter(|&&o| o).count() as f64;
        if ocean == 0.0 {
            return 0.0;
        }
        let covered: f64 = (0..st.fraction.len())
            .filter(|&i| st.ocean[i])
            .map(|i| st.fraction[i])
            .sum();
        covered / ocean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::mask::MaskGenerator;

    fn setup() -> IceModel {
        let grid = TripolarGrid::new(36, 24, 6, MaskGenerator::default());
        let decomp = BlockDecomp2d::new(36, 24, 1, 1);
        IceModel::new(&grid, &decomp, 0)
    }

    #[test]
    fn initial_ice_only_on_cold_ocean() {
        let m = setup();
        let st = &m.state;
        for idx in 0..st.fraction.len() {
            if st.fraction[idx] > 0.0 {
                assert!(st.ocean[idx], "ice over land at {idx}");
            }
            assert!((0.0..=1.0).contains(&st.fraction[idx]));
        }
        assert!(m.total_volume() > 0.0, "no initial polar ice");
        assert!(m.ice_cover() > 0.0 && m.ice_cover() < 0.6);
    }

    #[test]
    fn warm_forcing_melts_ice() {
        let mut m = setup();
        let n = m.state.ni * m.state.nj;
        let v0 = m.total_volume();
        let forcing = IceForcing::uniform(n, 10.0, 5.0); // warm air, warm ocean
        for _ in 0..30 {
            m.step(&forcing, 86_400.0);
        }
        let v1 = m.total_volume();
        assert!(v1 < v0 * 0.5, "ice did not melt: {v0} -> {v1}");
    }

    #[test]
    fn cold_ocean_grows_ice() {
        let mut m = setup();
        let n = m.state.ni * m.state.nj;
        let v0 = m.total_volume();
        let forcing = IceForcing::uniform(n, -20.0, T_FREEZE - 0.2);
        for _ in 0..30 {
            m.step(&forcing, 86_400.0);
        }
        assert!(m.total_volume() > v0, "ice did not grow");
        // Fractions stay physical.
        assert!(m.state.fraction.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn melt_produces_freshwater_and_ocean_cooling_heat_sign() {
        let mut m = setup();
        let n = m.state.ni * m.state.nj;
        let forcing = IceForcing::uniform(n, 15.0, 8.0);
        let export = m.step(&forcing, 86_400.0);
        let total_fresh: f64 = export.fresh.iter().sum();
        assert!(total_fresh > 0.0, "melting must export fresh water");
        // Warm ocean loses heat to the melting ice where ice exists.
        let heat_sum: f64 = export.heat.iter().sum();
        assert!(heat_sum < 0.0);
        assert_eq!(export.fraction.len(), n);
    }

    #[test]
    fn drift_conserves_volume() {
        let mut m = setup();
        let n = m.state.ni * m.state.nj;
        let mut forcing = IceForcing::uniform(n, -5.0, T_FREEZE);
        // Strong uniform wind, neutral thermodynamics (air at tsfc, ocean
        // at freezing) — volume should only move, not change much.
        for t in forcing.tair.iter_mut() {
            *t = -5.0;
        }
        for u in forcing.uwind.iter_mut() {
            *u = 10.0;
        }
        let v0 = m.total_volume();
        m.step(&forcing, 3600.0);
        let v1 = m.total_volume();
        assert!(
            (v1 - v0).abs() / v0 < 0.05,
            "drift changed volume too much: {v0} -> {v1}"
        );
    }
}
