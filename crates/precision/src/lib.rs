//! # AP3ESM mixed precision (`ap3esm-precision`)
//!
//! The paper's §5.2.3: a *group-wise scaling* FP64/FP32 scheme for the
//! dynamical cores of GRIST and LICOM, with tailored accuracy evaluations —
//! relative L2 norms for GRIST surface pressure/vorticity (5 % threshold for
//! long-term stability) and grid-area-weighted RMSD for LICOM temperature /
//! salinity / SSH.
//!
//! [`GroupScaled`] stores a field as FP32 mantissas normalised by a per-group
//! FP64 scale (max-abs within the group), halving memory and bandwidth while
//! keeping the dynamic range of FP64 across groups — exactly the trade the
//! paper exploits on Sunway CPEs. [`metrics`] implements the paper's
//! acceptance criteria.

pub mod group;
pub mod metrics;

pub use group::GroupScaled;
pub use metrics::{area_weighted_rmsd, relative_l2, AccuracyBudget};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_budget_example() {
        // A miniature version of the §5.2.3 acceptance test: perturb a field
        // the way FP32 storage does and check the L2 criterion passes.
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.01).sin() * 1e5).collect();
        let gs = GroupScaled::from_f64(&x, 64);
        let y = gs.to_f64();
        let err = relative_l2(&y, &x);
        let budget = AccuracyBudget::grist_default();
        assert!(budget.accepts_l2(err), "rel L2 {err} over budget");
    }
}
