//! Accuracy metrics of §5.2.3.
//!
//! GRIST: surface-pressure / relative-vorticity deviation measured as a
//! relative L2 norm against the FP64 baseline, accepted below 5 %.
//! LICOM: grid-area-weighted RMSD over 30 days of daily means, accepted at
//! the paper's reported levels (0.018 °C, 0.0098 psu, 0.0005 m).

/// Relative L2 norm of the deviation of `x` from baseline `y`:
/// `‖x − y‖₂ / ‖y‖₂`. Returns 0 for an identically-zero baseline with zero
/// deviation, +∞ for a zero baseline with nonzero deviation.
pub fn relative_l2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "relative_l2 length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in x.iter().zip(y) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Grid-area-weighted root-mean-square deviation:
/// `sqrt( Σ wᵢ (xᵢ−yᵢ)² / Σ wᵢ )`. The paper "incorporated grid area into
/// RMSD calculations" because tripolar cells shrink toward the fold.
pub fn area_weighted_rmsd(x: &[f64], y: &[f64], area: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rmsd length mismatch");
    assert_eq!(x.len(), area.len(), "rmsd area length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for ((a, b), w) in x.iter().zip(y).zip(area) {
        assert!(*w >= 0.0, "negative area weight");
        num += w * (a - b) * (a - b);
        den += w;
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

/// The paper's acceptance thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyBudget {
    /// Relative L2 ceiling for GRIST dycore diagnostics (0.05 in the paper).
    pub max_relative_l2: f64,
    /// RMSD ceilings for LICOM tracers/SSH (°C, psu, m).
    pub max_rmsd_temperature: f64,
    pub max_rmsd_salinity: f64,
    pub max_rmsd_ssh: f64,
}

impl AccuracyBudget {
    /// The §5.2.3 GRIST criterion: 5 % relative L2 for long-term stability.
    pub fn grist_default() -> Self {
        AccuracyBudget {
            max_relative_l2: 0.05,
            max_rmsd_temperature: f64::INFINITY,
            max_rmsd_salinity: f64::INFINITY,
            max_rmsd_ssh: f64::INFINITY,
        }
    }

    /// The §5.2.3 LICOM results as a budget (our mixed run must not exceed
    /// the paper's reported deviations by more than ~2× to count as
    /// reproducing the experiment's character).
    pub fn licom_paper() -> Self {
        AccuracyBudget {
            max_relative_l2: 0.05,
            max_rmsd_temperature: 0.018,
            max_rmsd_salinity: 0.0098,
            max_rmsd_ssh: 0.0005,
        }
    }

    pub fn accepts_l2(&self, rel_l2: f64) -> bool {
        rel_l2 <= self.max_relative_l2
    }

    pub fn accepts_ocean(&self, rmsd_t: f64, rmsd_s: f64, rmsd_ssh: f64) -> bool {
        rmsd_t <= self.max_rmsd_temperature
            && rmsd_s <= self.max_rmsd_salinity
            && rmsd_ssh <= self.max_rmsd_ssh
    }
}

/// Accumulates daily means for the 30-day averaging protocol of §5.2.3.
#[derive(Debug, Clone, Default)]
pub struct DailyMeanAccumulator {
    sum: Vec<f64>,
    days: usize,
}

impl DailyMeanAccumulator {
    pub fn new(n: usize) -> Self {
        DailyMeanAccumulator {
            sum: vec![0.0; n],
            days: 0,
        }
    }

    pub fn add_day(&mut self, field: &[f64]) {
        assert_eq!(field.len(), self.sum.len());
        for (s, v) in self.sum.iter_mut().zip(field) {
            *s += v;
        }
        self.days += 1;
    }

    pub fn days(&self) -> usize {
        self.days
    }

    pub fn mean(&self) -> Vec<f64> {
        assert!(self.days > 0, "no days accumulated");
        self.sum.iter().map(|s| s / self.days as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_l2_basics() {
        let y = vec![3.0, 4.0]; // ‖y‖ = 5
        let x = vec![3.0, 4.5]; // dev = 0.5
        assert!((relative_l2(&x, &y) - 0.1).abs() < 1e-12);
        assert_eq!(relative_l2(&y, &y), 0.0);
    }

    #[test]
    fn relative_l2_zero_baseline() {
        assert_eq!(relative_l2(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_l2(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn rmsd_weighting_matters() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 0.0];
        // Error only in the first element; weight it 3:1.
        let w_hi = area_weighted_rmsd(&x, &y, &[3.0, 1.0]);
        let w_lo = area_weighted_rmsd(&x, &y, &[1.0, 3.0]);
        assert!(w_hi > w_lo);
        assert!((w_hi - (3.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmsd_uniform_weights_is_plain_rmsd() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 1.0, 1.0];
        let w = vec![2.0, 2.0, 2.0];
        let expected = ((0.0 + 1.0 + 4.0) / 3.0f64).sqrt();
        assert!((area_weighted_rmsd(&x, &y, &w) - expected).abs() < 1e-12);
    }

    #[test]
    fn budgets_accept_paper_numbers() {
        let b = AccuracyBudget::licom_paper();
        assert!(b.accepts_ocean(0.018, 0.0098, 0.0005));
        assert!(!b.accepts_ocean(0.05, 0.0098, 0.0005));
        assert!(AccuracyBudget::grist_default().accepts_l2(0.049));
        assert!(!AccuracyBudget::grist_default().accepts_l2(0.051));
    }

    #[test]
    fn daily_mean_accumulator() {
        let mut acc = DailyMeanAccumulator::new(2);
        acc.add_day(&[1.0, 10.0]);
        acc.add_day(&[3.0, 30.0]);
        assert_eq!(acc.days(), 2);
        assert_eq!(acc.mean(), vec![2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = relative_l2(&[1.0], &[1.0, 2.0]);
    }
}
