//! Group-wise scaled FP32 storage.

/// A field stored as FP32 values normalised by per-group FP64 scales.
///
/// Group `g` covers elements `[g·group, (g+1)·group)`. Each group's scale is
/// its max-abs value, so the stored mantissas live in [-1, 1] where FP32 has
/// its best relative accuracy. Zero-only groups use scale 1 to avoid
/// divisions by zero.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupScaled {
    mantissas: Vec<f32>,
    scales: Vec<f64>,
    group: usize,
}

impl GroupScaled {
    /// Compress `data` with the given group size (≥ 1).
    pub fn from_f64(data: &[f64], group: usize) -> Self {
        assert!(group >= 1, "group size must be positive");
        let ngroups = data.len().div_ceil(group);
        let mut scales = Vec::with_capacity(ngroups);
        let mut mantissas = Vec::with_capacity(data.len());
        for g in 0..ngroups {
            let lo = g * group;
            let hi = ((g + 1) * group).min(data.len());
            let max = data[lo..hi].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            let scale = if max == 0.0 || !max.is_finite() {
                1.0
            } else {
                max
            };
            scales.push(scale);
            for &v in &data[lo..hi] {
                mantissas.push((v / scale) as f32);
            }
        }
        GroupScaled {
            mantissas,
            scales,
            group,
        }
    }

    /// Decompress back to FP64.
    pub fn to_f64(&self) -> Vec<f64> {
        self.mantissas
            .iter()
            .enumerate()
            .map(|(i, &m)| m as f64 * self.scales[i / self.group])
            .collect()
    }

    /// Element access without materialising the whole field.
    pub fn get(&self, i: usize) -> f64 {
        self.mantissas[i] as f64 * self.scales[i / self.group]
    }

    /// Update one element (rescales the group if the value exceeds its
    /// current scale — the "dynamic rescaling" the group-wise scheme needs
    /// during time stepping).
    pub fn set(&mut self, i: usize, v: f64) {
        let g = i / self.group;
        let scale = self.scales[g];
        if v.abs() > scale {
            // Grow the scale; renormalise existing mantissas of this group.
            let new_scale = v.abs();
            let lo = g * self.group;
            let hi = ((g + 1) * self.group).min(self.mantissas.len());
            let ratio = (scale / new_scale) as f32;
            for m in &mut self.mantissas[lo..hi] {
                *m *= ratio;
            }
            self.scales[g] = new_scale;
            self.mantissas[i] = (v / new_scale) as f32;
        } else {
            self.mantissas[i] = (v / scale) as f32;
        }
    }

    pub fn len(&self) -> usize {
        self.mantissas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mantissas.is_empty()
    }

    pub fn group_size(&self) -> usize {
        self.group
    }

    pub fn num_groups(&self) -> usize {
        self.scales.len()
    }

    /// Bytes used by this representation.
    pub fn storage_bytes(&self) -> usize {
        self.mantissas.len() * 4 + self.scales.len() * 8
    }

    /// Bytes an FP64 copy would use.
    pub fn dense_f64_bytes(&self) -> usize {
        self.mantissas.len() * 8
    }

    /// axpy in mixed precision: `self ← self + a·other`, computed in FP64
    /// per element, restored through the group-scaled store. This is the
    /// canonical "compute in FP64 registers, store in scaled FP32" kernel
    /// shape of the paper's mixed dycore.
    pub fn axpy(&mut self, a: f64, other: &GroupScaled) {
        assert_eq!(self.len(), other.len());
        for i in 0..self.len() {
            let v = self.get(i) + a * other.get(i);
            self.set(i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_relative_error_within_fp32() {
        let data: Vec<f64> = (0..1000)
            .map(|i| ((i as f64) * 0.37).sin() * 10f64.powi((i % 7) - 3))
            .collect();
        let gs = GroupScaled::from_f64(&data, 32);
        let back = gs.to_f64();
        for (a, b) in data.iter().zip(&back) {
            let rel = if a.abs() > 0.0 {
                (a - b).abs() / a.abs().max(1e-300)
            } else {
                b.abs()
            };
            // FP32 mantissa ≈ 1.2e-7 relative; group scaling can cost a few
            // extra bits for small-magnitude members of a large-scale group.
            assert!(rel < 1e-4, "rel err {rel} at value {a}");
        }
    }

    #[test]
    fn wide_dynamic_range_across_groups_is_preserved() {
        // Values spanning 1e-30 .. 1e+30 — impossible for plain FP32, fine
        // for group-scaled storage when groups align with magnitude bands.
        let mut data = Vec::new();
        for e in (-30..=30).step_by(10) {
            for _ in 0..16 {
                data.push(10f64.powi(e));
            }
        }
        let gs = GroupScaled::from_f64(&data, 16);
        let back = gs.to_f64();
        for (a, b) in data.iter().zip(&back) {
            assert!(((a - b) / a).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_group_handled() {
        let data = vec![0.0; 40];
        let gs = GroupScaled::from_f64(&data, 8);
        assert!(gs.to_f64().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tail_group_smaller_than_group_size() {
        let data = vec![1.0, -2.0, 3.0, -4.0, 5.0];
        let gs = GroupScaled::from_f64(&data, 4);
        assert_eq!(gs.num_groups(), 2);
        let back = gs.to_f64();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn set_within_scale() {
        let mut gs = GroupScaled::from_f64(&[1.0, 2.0, 4.0, 8.0], 4);
        gs.set(0, 3.0);
        assert!((gs.get(0) - 3.0).abs() < 1e-6);
        assert!((gs.get(3) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn set_beyond_scale_rescales_group() {
        let mut gs = GroupScaled::from_f64(&[1.0, 2.0], 2);
        gs.set(1, 100.0);
        assert!((gs.get(1) - 100.0).abs() < 1e-4);
        assert!((gs.get(0) - 1.0).abs() < 1e-4, "old member {}", gs.get(0));
    }

    #[test]
    fn storage_is_roughly_half() {
        let data = vec![1.0; 4096];
        let gs = GroupScaled::from_f64(&data, 64);
        let ratio = gs.storage_bytes() as f64 / gs.dense_f64_bytes() as f64;
        assert!(ratio < 0.52, "storage ratio {ratio}");
    }

    #[test]
    fn axpy_matches_f64_reference() {
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).cos()).collect();
        let y: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut gs = GroupScaled::from_f64(&y, 32);
        let gx = GroupScaled::from_f64(&x, 32);
        gs.axpy(0.5, &gx);
        let back = gs.to_f64();
        for i in 0..256 {
            let reference = y[i] + 0.5 * x[i];
            assert!((back[i] - reference).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_size_rejected() {
        let _ = GroupScaled::from_f64(&[1.0], 0);
    }
}
