//! # AP3ESM land-surface component (`ap3esm-lnd`)
//!
//! In AP3ESM "GRIST and the land surface model directly exchange data,
//! bypassing the coupler" (§5.1.1) — so this crate's model lives on the
//! *atmosphere's* icosahedral cells and is stepped from inside the
//! atmosphere's model step, not through CPL.
//!
//! A classic bucket model: surface energy balance (absorbed shortwave +
//! longwave − outgoing longwave − sensible − latent) drives the skin
//! temperature; a soil-moisture bucket gains precipitation and loses
//! evaporation; wetness modulates the latent flux the atmosphere's surface
//! scheme sees.

use ap3esm_physics::constants::STEFAN_BOLTZMANN;

/// Bucket capacity (kg/m² ≈ mm of water).
pub const BUCKET_CAPACITY: f64 = 150.0;

/// Land state on a subset of atmosphere cells.
#[derive(Debug, Clone)]
pub struct LndState {
    /// Skin temperature (K).
    pub tskin: Vec<f64>,
    /// Soil moisture (kg/m²).
    pub moisture: Vec<f64>,
    /// Which atmosphere cells are land.
    pub land: Vec<bool>,
}

/// Atmosphere inputs for one land step (all per atmosphere cell).
#[derive(Debug, Clone)]
pub struct LndForcing {
    /// Surface downward shortwave (W/m²) — `gsw` from the radiation module.
    pub gsw: Vec<f64>,
    /// Surface downward longwave (W/m²) — `glw`.
    pub glw: Vec<f64>,
    /// Lowest-level air temperature (K).
    pub tair: Vec<f64>,
    /// Precipitation rate (kg/m²/s).
    pub precip: Vec<f64>,
    /// 10 m wind speed (m/s).
    pub wind: Vec<f64>,
}

/// The bucket land model.
pub struct LndModel {
    pub state: LndState,
    /// Surface albedo.
    pub albedo: f64,
    /// Surface emissivity.
    pub emissivity: f64,
    /// Effective surface heat capacity (J/m²/K).
    pub heat_capacity: f64,
    /// Bulk transfer coefficient × ρ·cp (W/m²/K per m/s of wind).
    pub exchange: f64,
}

impl LndModel {
    pub fn new(land: Vec<bool>, t0: f64) -> Self {
        let n = land.len();
        LndModel {
            state: LndState {
                tskin: vec![t0; n],
                moisture: vec![0.5 * BUCKET_CAPACITY; n],
                land,
            },
            albedo: 0.22,
            emissivity: 0.95,
            heat_capacity: 3.0e5,
            exchange: 5.0,
        }
    }

    /// Wetness factor (0..1) the atmosphere's surface-flux scheme uses.
    pub fn wetness(&self) -> Vec<f64> {
        self.state
            .moisture
            .iter()
            .map(|m| (m / BUCKET_CAPACITY).clamp(0.0, 1.0))
            .collect()
    }

    /// One step of length `dt` seconds. Returns the evaporation rate per
    /// cell (kg/m²/s) for the atmosphere's moisture budget.
    pub fn step(&mut self, forcing: &LndForcing, dt: f64) -> Vec<f64> {
        let st = &mut self.state;
        let n = st.land.len();
        assert_eq!(forcing.gsw.len(), n);
        let mut evap = vec![0.0; n];
        for (i, e) in evap.iter_mut().enumerate() {
            if !st.land[i] {
                continue;
            }
            let wet = (st.moisture[i] / BUCKET_CAPACITY).clamp(0.0, 1.0);
            let absorbed = (1.0 - self.albedo) * forcing.gsw[i]
                + self.emissivity * forcing.glw[i];
            let outgoing = self.emissivity * STEFAN_BOLTZMANN * st.tskin[i].powi(4);
            let sensible = self.exchange * forcing.wind[i].max(0.5)
                * (st.tskin[i] - forcing.tair[i]);
            // Evaporation: bounded by available energy and moisture.
            let latent_max = 0.3 * absorbed.max(0.0) * wet;
            let latent = latent_max.min(st.moisture[i] / dt * ap3esm_physics::constants::L_VAP);
            let net = absorbed - outgoing - sensible - latent;
            st.tskin[i] += dt * net / self.heat_capacity;
            st.tskin[i] = st.tskin[i].clamp(180.0, 340.0);
            *e = latent / ap3esm_physics::constants::L_VAP;
            st.moisture[i] =
                (st.moisture[i] + dt * (forcing.precip[i] - *e)).clamp(0.0, BUCKET_CAPACITY);
        }
        evap
    }

    /// Mean land skin temperature (K); 0 if no land.
    pub fn mean_tskin(&self) -> f64 {
        let st = &self.state;
        let (mut sum, mut cnt) = (0.0, 0usize);
        for i in 0..st.land.len() {
            if st.land[i] {
                sum += st.tskin[i];
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forcing(n: usize, gsw: f64, tair: f64, precip: f64) -> LndForcing {
        LndForcing {
            gsw: vec![gsw; n],
            glw: vec![330.0; n],
            tair: vec![tair; n],
            precip: vec![precip; n],
            wind: vec![3.0; n],
        }
    }

    #[test]
    fn sunny_day_warms_the_surface() {
        let mut m = LndModel::new(vec![true; 10], 285.0);
        let f = forcing(10, 600.0, 285.0, 0.0);
        for _ in 0..24 {
            m.step(&f, 3600.0);
        }
        assert!(m.mean_tskin() > 288.0, "tskin {}", m.mean_tskin());
        assert!(m.mean_tskin() < 340.0);
    }

    #[test]
    fn night_cools_the_surface() {
        let mut m = LndModel::new(vec![true; 10], 295.0);
        let f = forcing(10, 0.0, 280.0, 0.0);
        for _ in 0..24 {
            m.step(&f, 3600.0);
        }
        assert!(m.mean_tskin() < 293.0, "tskin {}", m.mean_tskin());
    }

    #[test]
    fn rain_fills_the_bucket_evaporation_empties_it() {
        let mut m = LndModel::new(vec![true; 4], 290.0);
        let m0 = m.state.moisture[0];
        // Rain, no sun (no evaporation energy).
        let f = forcing(4, 0.0, 290.0, 1e-4);
        m.step(&f, 86_400.0);
        assert!(m.state.moisture[0] > m0);
        assert!(m.state.moisture[0] <= BUCKET_CAPACITY);
        // Strong sun, no rain: moisture declines, evaporation positive.
        let f = forcing(4, 800.0, 295.0, 0.0);
        let before = m.state.moisture[0];
        let evap = m.step(&f, 86_400.0);
        assert!(evap[0] > 0.0);
        assert!(m.state.moisture[0] < before);
    }

    #[test]
    fn dry_bucket_suppresses_evaporation() {
        let mut m = LndModel::new(vec![true; 1], 300.0);
        m.state.moisture[0] = 0.0;
        let f = forcing(1, 800.0, 295.0, 0.0);
        let evap = m.step(&f, 3600.0);
        assert_eq!(evap[0], 0.0);
        assert_eq!(m.wetness()[0], 0.0);
    }

    #[test]
    fn ocean_cells_untouched() {
        let mut m = LndModel::new(vec![false, true], 290.0);
        let f = forcing(2, 500.0, 285.0, 1e-5);
        let evap = m.step(&f, 3600.0);
        assert_eq!(evap[0], 0.0);
        assert_eq!(m.state.tskin[0], 290.0);
        assert_ne!(m.state.tskin[1], 290.0);
    }

    #[test]
    fn equilibrium_is_reasonable() {
        // With steady forcing the surface should settle near a physically
        // sensible temperature (radiative-convective balance).
        let mut m = LndModel::new(vec![true; 1], 280.0);
        let f = forcing(1, 350.0, 288.0, 1e-5);
        for _ in 0..500 {
            m.step(&f, 3600.0);
        }
        let t = m.mean_tskin();
        assert!((260.0..320.0).contains(&t), "equilibrium tskin {t}");
    }
}
