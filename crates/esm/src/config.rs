//! AP3ESM configurations — the Table 1 presets and scaled-down test sizes.

use std::fmt;

use serde::{Deserialize, Serialize};

use ap3esm_cpl::rearrange::RearrangeStrategy;
use ap3esm_grid::icosahedral::GeodesicCounts;

/// A structured configuration error: which field is wrong and why. The
/// whole point of [`CoupledConfig::validate`] is that a bad setup names
/// its field upfront instead of tripping an assert three layers down in
/// the clock, the decomposition, or the world-size check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending `CoupledConfig` field (or field pair).
    pub field: &'static str,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoupledConfig.{}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(field: &'static str, message: String) -> Result<(), ConfigError> {
    Err(ConfigError { field, message })
}

/// The five paper configurations (atmosphere km vs ocean km).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resolution {
    /// 1 km atm + 1 km ocn.
    R1v1,
    /// 3 km atm + 2 km ocn (the production configuration).
    R3v2,
    /// 6 km atm + 3 km ocn.
    R6v3,
    /// 10 km atm + 5 km ocn.
    R10v5,
    /// 25 km atm + 10 km ocn.
    R25v10,
}

impl Resolution {
    pub const ALL: [Resolution; 5] = [
        Resolution::R1v1,
        Resolution::R3v2,
        Resolution::R6v3,
        Resolution::R10v5,
        Resolution::R25v10,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Resolution::R1v1 => "1v1",
            Resolution::R3v2 => "3v2",
            Resolution::R6v3 => "6v3",
            Resolution::R10v5 => "10v5",
            Resolution::R25v10 => "25v10",
        }
    }

    /// (atm km, ocn km).
    pub fn km(&self) -> (f64, f64) {
        match self {
            Resolution::R1v1 => (1.0, 1.0),
            Resolution::R3v2 => (3.0, 2.0),
            Resolution::R6v3 => (6.0, 3.0),
            Resolution::R10v5 => (10.0, 5.0),
            Resolution::R25v10 => (25.0, 10.0),
        }
    }

    /// GRIST glevel of the atmosphere component.
    pub fn atm_glevel(&self) -> u32 {
        ap3esm_grid::glevel_for_resolution_km(self.km().0)
    }

    /// Ocean `(nlon, nlat)` from the Table 1 presets.
    pub fn ocn_dims(&self) -> (usize, usize) {
        let target = self.km().1;
        let &(_, nlon, nlat) = ap3esm_grid::tripolar::TABLE1_PRESETS
            .iter()
            .min_by(|a, b| {
                (a.0 - target)
                    .abs()
                    .partial_cmp(&(b.0 - target).abs())
                    .expect("finite")
            })
            .expect("presets");
        (nlon, nlat)
    }

    /// Total grid points of the pair (the Table 1 "Total Grids" column):
    /// atmosphere cells × 30 levels + ocean columns × 80 levels.
    pub fn total_gridpoints(&self) -> u64 {
        let atm = GeodesicCounts::at_glevel(self.atm_glevel());
        let (nlon, nlat) = self.ocn_dims();
        atm.cells as u64 * 30 + (nlon * nlat) as u64 * 80
    }
}

/// Full coupled-model configuration (sizes are free so tests can shrink the
/// same code path the presets use).
#[derive(Debug, Clone)]
pub struct CoupledConfig {
    /// Atmosphere icosahedral refinement level.
    pub atm_glevel: u32,
    pub atm_nlev: usize,
    /// Ocean grid dims.
    pub ocn_nlon: usize,
    pub ocn_nlat: usize,
    pub ocn_nlev: usize,
    /// Ocean process mesh (domain O size = px·py; world = 1 + px·py).
    pub ocn_px: usize,
    pub ocn_py: usize,
    /// Couplings per day (atm, ocn, ice) — paper: (180, 36, 180).
    pub couplings_per_day: (i64, i64, i64),
    /// Rearrangement strategy for coupler traffic.
    pub strategy: RearrangeStrategy,
    /// Use the AI physics suite in the atmosphere (needs trained modules).
    pub ai_physics: bool,
    /// Mask seed (synthetic continents).
    pub mask_seed: u64,
    /// §5.1.2 task-level parallelism strategy: `false` = two concurrent
    /// task domains (ATM+ICE+LND+CPL | OCN, the paper's production layout);
    /// `true` = all components sequential within a single domain (the
    /// paper's alternative layout, used here as the ablation baseline).
    pub single_domain: bool,
}

impl CoupledConfig {
    /// A laptop-scale configuration exercising every coupled code path:
    /// G3 atmosphere (642 cells, ~880 km) + 36×24 ocean, 4 ocean ranks.
    pub fn test_tiny() -> Self {
        CoupledConfig {
            atm_glevel: 3,
            atm_nlev: 5,
            ocn_nlon: 36,
            ocn_nlat: 24,
            ocn_nlev: 6,
            ocn_px: 2,
            ocn_py: 2,
            couplings_per_day: (8, 4, 8),
            strategy: RearrangeStrategy::NonBlockingP2p,
            ai_physics: false,
            mask_seed: 20250704,
            single_domain: false,
        }
    }

    /// A slightly larger demo configuration (examples/figures).
    pub fn demo_small() -> Self {
        CoupledConfig {
            atm_glevel: 4,
            atm_nlev: 8,
            ocn_nlon: 72,
            ocn_nlat: 46,
            ocn_nlev: 10,
            ocn_px: 2,
            ocn_py: 2,
            couplings_per_day: (24, 12, 24),
            strategy: RearrangeStrategy::NonBlockingP2p,
            ai_physics: false,
            mask_seed: 20250704,
            single_domain: false,
        }
    }

    /// World size: 1 domain-A rank + the ocean ranks in the two-domain
    /// layout; a single rank in the sequential layout.
    pub fn world_size(&self) -> usize {
        if self.single_domain {
            1
        } else {
            1 + self.ocn_px * self.ocn_py
        }
    }

    /// Upfront consistency check, called by both [`run_coupled`]
    /// (crate::coupled::run_coupled) and the scenario loader. Every rule
    /// here corresponds to a failure that would otherwise surface deep in
    /// the driver — an `Alarm` divisibility assert, a `BlockDecomp2d`
    /// bounds assert, or the silent 1×1 override of the ocean mesh in the
    /// sequential layout — and names the offending field instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.atm_glevel == 0 || self.atm_glevel > 12 {
            return err(
                "atm_glevel",
                format!("must be 1..=12 (G12 ≈ 1 km), got {}", self.atm_glevel),
            );
        }
        if self.atm_nlev < 2 {
            return err(
                "atm_nlev",
                format!("needs at least 2 levels, got {}", self.atm_nlev),
            );
        }
        if self.ocn_nlon < 4 || self.ocn_nlat < 4 {
            return err(
                "ocn_nlon/ocn_nlat",
                format!(
                    "ocean grid must be at least 4x4, got {}x{}",
                    self.ocn_nlon, self.ocn_nlat
                ),
            );
        }
        if self.ocn_nlev < 2 {
            return err(
                "ocn_nlev",
                format!("needs at least 2 levels, got {}", self.ocn_nlev),
            );
        }
        if self.ocn_px < 1 || self.ocn_py < 1 {
            return err(
                "ocn_px/ocn_py",
                format!(
                    "process mesh must be at least 1x1, got {}x{}",
                    self.ocn_px, self.ocn_py
                ),
            );
        }
        if self.ocn_px > self.ocn_nlon || self.ocn_py > self.ocn_nlat {
            return err(
                "ocn_px/ocn_py",
                format!(
                    "process mesh {}x{} exceeds the {}x{} ocean grid \
                     (every rank needs at least one column)",
                    self.ocn_px, self.ocn_py, self.ocn_nlon, self.ocn_nlat
                ),
            );
        }
        if self.single_domain && self.ocn_px * self.ocn_py != 1 {
            return err(
                "single_domain",
                format!(
                    "the sequential layout runs the ocean inline on rank 0; \
                     set ocn_px=ocn_py=1 (got {}x{})",
                    self.ocn_px, self.ocn_py
                ),
            );
        }
        const DAY: i64 = 86_400;
        for (name, per_day) in [
            ("couplings_per_day.0 (atm)", self.couplings_per_day.0),
            ("couplings_per_day.1 (ocn)", self.couplings_per_day.1),
            ("couplings_per_day.2 (ice)", self.couplings_per_day.2),
        ] {
            if per_day <= 0 {
                return Err(ConfigError {
                    field: "couplings_per_day",
                    message: format!("{name} must be positive, got {per_day}"),
                });
            }
            if DAY % per_day != 0 {
                return Err(ConfigError {
                    field: "couplings_per_day",
                    message: format!(
                        "{name} = {per_day} does not divide the {DAY} s day \
                         evenly (the coupling clock needs whole-second periods)"
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_pairs() {
        assert_eq!(Resolution::R3v2.label(), "3v2");
        assert_eq!(Resolution::R3v2.km(), (3.0, 2.0));
        assert_eq!(Resolution::R1v1.atm_glevel(), 12);
        assert_eq!(Resolution::R25v10.atm_glevel(), 8);
    }

    #[test]
    fn ocn_dims_follow_table1() {
        assert_eq!(Resolution::R1v1.ocn_dims(), (36000, 22018));
        assert_eq!(Resolution::R3v2.ocn_dims(), (18000, 11511));
        assert_eq!(Resolution::R25v10.ocn_dims(), (3600, 2302));
    }

    #[test]
    fn total_gridpoints_ordering_matches_paper() {
        // Totals must decrease monotonically from 1v1 to 25v10 and match
        // the paper's order of magnitude (7.2e10 at 1v1, 5.5e8 at 25v10).
        let totals: Vec<u64> = Resolution::ALL
            .iter()
            .map(|r| r.total_gridpoints())
            .collect();
        for w in totals.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(totals[0] > 6e10 as u64 && totals[0] < 9e10 as u64);
        assert!(totals[4] > 2e8 as u64 && totals[4] < 9e8 as u64);
    }

    #[test]
    fn test_config_world_size() {
        let c = CoupledConfig::test_tiny();
        assert_eq!(c.world_size(), 5);
    }

    #[test]
    fn validate_accepts_the_shipped_presets() {
        CoupledConfig::test_tiny().validate().unwrap();
        CoupledConfig::demo_small().validate().unwrap();
        // The chaos campaign's 3x1 mesh and the shrunken 2x1 reference.
        let mut c = CoupledConfig::test_tiny();
        (c.ocn_px, c.ocn_py) = (3, 1);
        c.validate().unwrap();
        (c.ocn_px, c.ocn_py) = (2, 1);
        c.validate().unwrap();
        // The sequential-layout ablation.
        let mut s = CoupledConfig::test_tiny();
        s.single_domain = true;
        (s.ocn_px, s.ocn_py) = (1, 1);
        s.validate().unwrap();
    }

    #[test]
    fn validate_names_the_offending_field() {
        let cases: Vec<(&str, Box<dyn Fn(&mut CoupledConfig)>)> = vec![
            ("atm_glevel", Box::new(|c| c.atm_glevel = 0)),
            ("atm_glevel", Box::new(|c| c.atm_glevel = 13)),
            ("atm_nlev", Box::new(|c| c.atm_nlev = 1)),
            ("ocn_nlon/ocn_nlat", Box::new(|c| c.ocn_nlat = 2)),
            ("ocn_nlev", Box::new(|c| c.ocn_nlev = 0)),
            ("ocn_px/ocn_py", Box::new(|c| c.ocn_px = 0)),
            // Mesh wider than the grid: the BlockDecomp2d assert, upfront.
            ("ocn_px/ocn_py", Box::new(|c| c.ocn_px = 37)),
            ("ocn_px/ocn_py", Box::new(|c| c.ocn_py = 25)),
            // Sequential layout with a >1 mesh was silently overridden.
            ("single_domain", Box::new(|c| c.single_domain = true)),
            // Non-divisor coupling cadence: the Alarm assert, upfront.
            ("couplings_per_day", Box::new(|c| c.couplings_per_day.0 = 7)),
            ("couplings_per_day", Box::new(|c| c.couplings_per_day.1 = 0)),
            ("couplings_per_day", Box::new(|c| c.couplings_per_day.2 = -4)),
        ];
        for (field, mutate) in cases {
            let mut c = CoupledConfig::test_tiny();
            mutate(&mut c);
            let e = c.validate().expect_err(field);
            assert_eq!(e.field, field, "{e}");
            // The Display form names the field for log grepping.
            assert!(e.to_string().contains(field), "{e}");
        }
    }
}
