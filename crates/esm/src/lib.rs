//! # AP3ESM — the coupled Earth system model (`ap3esm-esm`)
//!
//! Assembles the four components (GRIST-analogue atmosphere, LICOM-analogue
//! ocean, CICE4-analogue sea ice, bucket land) under the CPL7-analogue
//! coupler into the paper's coupled system:
//!
//! * the **hybrid task–data parallelization strategy** of §5.1.2 / §7.2:
//!   two task domains — domain A holds the coupler, atmosphere, sea ice and
//!   land; domain O holds only the ocean — each with exclusive ranks,
//! * MCT-style `init`/`run`/`finalize` + `import`/`export` component
//!   interfaces ([`component`]),
//! * coupling clocks at the paper's 180/36/180 couplings-per-day
//!   (configurable for tests),
//! * GPTL-style timers and the `get_timing` SYPD computation ([`timing`]),
//! * the Table 1 configuration presets ([`config`]),
//! * the Typhoon-Doksuri forecast experiment ([`forecast`], Figs. 6–7),
//! * bit-exact restart through the parallel I/O layer ([`restart`]),
//! * the scaling-experiment driver bridging to the machine model
//!   ([`scaling`], Table 2 / Fig. 8).

pub mod component;
pub mod config;
pub mod coupled;
pub mod forecast;
pub mod resilience;
pub mod restart;
pub mod scaling;
pub mod solar;
pub mod timing;

pub use component::{Component, ComponentPhase};
pub use config::{ConfigError, CoupledConfig, Resolution};
pub use coupled::{run_coupled, CoupledOptions, CoupledStats, Perturbation, SstPattern};
pub use forecast::{run_forecast, run_forecast_with, ForecastResult};
pub use resilience::{
    retry_delay, AtmGuard, CheckpointStore, GuardConfig, HealthVerdict, OcnGuard,
    RecoveryConfig, RecoveryFailure,
};
pub use timing::{get_timing, Timers};
