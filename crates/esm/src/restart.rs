//! Restart files through the sub-file parallel I/O layer (`ap3esm-io`).
//!
//! Km-scale state is exactly where the paper's I/O strategy matters;
//! restart write/read is the model-level exercise of it. Restarts are
//! **bit-exact**: a run that stops, writes, reloads, and continues
//! reproduces the uninterrupted run bitwise (tested).

use std::path::Path;

use ap3esm_atm::state::AtmState;
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_io::subfile::{SubfileReader, SubfileWriter};
use ap3esm_io::IoError;
use ap3esm_ocn::state::OcnState;

/// Number of sub-files per restart field (the §5.2.5 partitioning knob).
const RESTART_SUBFILES: usize = 4;

/// Read one named field and require its header dims to match `want`
/// exactly (trailing dims of 1 allowed) — a truncated or wrong-resolution
/// field is rejected as [`IoError::Inconsistent`] instead of silently
/// loaded.
fn read_checked(dir: &Path, name: &str, want: &[usize]) -> Result<Vec<f64>, IoError> {
    let (h, data) = SubfileReader::new(dir, name).read_all()?;
    let mut want3 = [1u64; 3];
    for (slot, &w) in want3.iter_mut().zip(want) {
        *slot = w as u64;
    }
    if h.dims != want3 {
        return Err(IoError::Inconsistent(format!(
            "{name}: restart dims {:?} do not match model dims {want3:?}",
            h.dims
        )));
    }
    let total: u64 = want3.iter().product();
    if data.len() as u64 != total {
        return Err(IoError::Inconsistent(format!(
            "{name}: {} elements, expected {total}",
            data.len()
        )));
    }
    Ok(data)
}

/// Write an atmosphere restart: the prognostic fields ps, θ, q (cell
/// fields) and uₙ (edge field), plus the auxiliary surface fields
/// (precip_accum, gsw, glw) that feed land forcing and ocean fluxes — a
/// checkpoint that omits them is not trajectory-bit-exact.
pub fn write_atm_restart(dir: &Path, state: &AtmState) -> Result<(), IoError> {
    let n = state.ncells();
    let e = state.nedges();
    let nlev = state.nlev;
    SubfileWriter::new(dir, "atm_ps", &[n], RESTART_SUBFILES).write_all(&state.ps)?;
    SubfileWriter::new(dir, "atm_theta", &[nlev, n], RESTART_SUBFILES).write_all(&state.theta)?;
    SubfileWriter::new(dir, "atm_q", &[nlev, n], RESTART_SUBFILES).write_all(&state.q)?;
    SubfileWriter::new(dir, "atm_un", &[nlev, e], RESTART_SUBFILES).write_all(&state.un)?;
    SubfileWriter::new(dir, "atm_precip", &[n], RESTART_SUBFILES)
        .write_all(&state.precip_accum)?;
    SubfileWriter::new(dir, "atm_gsw", &[n], RESTART_SUBFILES).write_all(&state.gsw)?;
    SubfileWriter::new(dir, "atm_glw", &[n], RESTART_SUBFILES).write_all(&state.glw)?;
    Ok(())
}

/// Read an atmosphere restart back into `state`. Every field's dims are
/// validated against the model's grid (cells, edges, levels); a mismatch
/// on any field returns [`IoError::Inconsistent`].
pub fn read_atm_restart(dir: &Path, state: &mut AtmState) -> Result<(), IoError> {
    let n = state.ncells();
    let e = state.nedges();
    let nlev = state.nlev;
    state.ps = read_checked(dir, "atm_ps", &[n])?;
    state.theta = read_checked(dir, "atm_theta", &[nlev, n])?;
    state.q = read_checked(dir, "atm_q", &[nlev, n])?;
    state.un = read_checked(dir, "atm_un", &[nlev, e])?;
    state.precip_accum = read_checked(dir, "atm_precip", &[n])?;
    state.gsw = read_checked(dir, "atm_gsw", &[n])?;
    state.glw = read_checked(dir, "atm_glw", &[n])?;
    Ok(())
}

/// Write one rank's ocean restart (interior + halos as stored — halos are
/// re-exchanged on the first post-restart step anyway, but keeping them
/// makes the restart bit-exact without a warm-up exchange).
pub fn write_ocn_restart(dir: &Path, state: &OcnState, rank: usize) -> Result<(), IoError> {
    let slab = state.eta.len();
    let tag = |name: &str| format!("ocn_r{rank}_{name}");
    SubfileWriter::new(dir, &tag("eta"), &[slab], RESTART_SUBFILES).write_all(&state.eta)?;
    SubfileWriter::new(dir, &tag("ubar"), &[slab], RESTART_SUBFILES).write_all(&state.ubar)?;
    SubfileWriter::new(dir, &tag("vbar"), &[slab], RESTART_SUBFILES).write_all(&state.vbar)?;
    for k in 0..state.nlev {
        SubfileWriter::new(dir, &tag(&format!("t{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.t[k])?;
        SubfileWriter::new(dir, &tag(&format!("s{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.s[k])?;
        SubfileWriter::new(dir, &tag(&format!("u{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.u[k])?;
        SubfileWriter::new(dir, &tag(&format!("v{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.v[k])?;
    }
    Ok(())
}

/// Read one rank's ocean restart. Every slab's dims are validated against
/// the state's halo-extended shape before any field is accepted.
pub fn read_ocn_restart(dir: &Path, state: &mut OcnState, rank: usize) -> Result<(), IoError> {
    let tag = |name: &str| format!("ocn_r{rank}_{name}");
    let slab = state.eta.len();
    state.eta = read_checked(dir, &tag("eta"), &[slab])?;
    state.ubar = read_checked(dir, &tag("ubar"), &[slab])?;
    state.vbar = read_checked(dir, &tag("vbar"), &[slab])?;
    for k in 0..state.nlev {
        state.t[k] = read_checked(dir, &tag(&format!("t{k}")), &[slab])?;
        state.s[k] = read_checked(dir, &tag(&format!("s{k}")), &[slab])?;
        state.u[k] = read_checked(dir, &tag(&format!("u{k}")), &[slab])?;
        state.v[k] = read_checked(dir, &tag(&format!("v{k}")), &[slab])?;
    }
    Ok(())
}

/// Reassemble a global `nlat × nlon` field (j-major) from the old
/// decomposition's per-rank slabs of a checkpoint directory.
fn assemble_global(
    src: &Path,
    grid: &TripolarGrid,
    old_decomp: &BlockDecomp2d,
    name: &str,
) -> Result<Vec<f64>, IoError> {
    let mut global = vec![0.0f64; grid.nlon * grid.nlat];
    for r in 0..old_decomp.nranks() {
        let b = old_decomp.block(r);
        let stride = b.ni() + 2;
        let slab = (b.nj() + 2) * stride;
        let data = read_checked(src, &format!("ocn_r{r}_{name}"), &[slab])?;
        for j in 0..b.nj() {
            for i in 0..b.ni() {
                global[(b.j0 + j) * grid.nlon + (b.i0 + i)] = data[(j + 1) * stride + (i + 1)];
            }
        }
    }
    Ok(global)
}

/// Redistribute an ocean restart written under `old_decomp` (N ocean
/// ranks) into `dst` under `new_decomp` (M < N ocean ranks) — the
/// shrink-to-fit step after permanent rank loss. Interior cells are
/// reassembled globally from the old per-rank slabs and re-sliced along
/// the new block boundaries; ghost cells are refilled with the same
/// periodic/clamped mapping a halo exchange would produce, so the new
/// slabs are self-consistent without a warm-up exchange.
///
/// Every non-ocean file of the checkpoint (atmosphere fields, coupler
/// metadata) is copied verbatim, so `dst` is a complete, self-contained
/// checkpoint: the degraded continuation and a fresh M-rank reference run
/// both restart from these exact bytes — which is what makes their
/// trajectories comparable bitwise.
pub fn redistribute_ocn_restart(
    src: &Path,
    dst: &Path,
    grid: &TripolarGrid,
    old_decomp: &BlockDecomp2d,
    new_decomp: &BlockDecomp2d,
) -> Result<(), IoError> {
    std::fs::create_dir_all(dst)?;

    // Copy everything that is not a per-rank ocean slab verbatim.
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let fname = entry.file_name();
        let fname = fname.to_string_lossy();
        if entry.file_type()?.is_file() && !fname.starts_with("ocn_r") {
            std::fs::copy(entry.path(), dst.join(fname.as_ref()))?;
        }
    }

    // Field names: barotropic slabs plus per-level baroclinic slabs.
    let mut names = vec!["eta".to_string(), "ubar".to_string(), "vbar".to_string()];
    for k in 0..grid.nlev {
        for f in ["t", "s", "u", "v"] {
            names.push(format!("{f}{k}"));
        }
    }

    // Assemble each field once, then write every new rank's re-sliced
    // slab. The base state supplies ghost rows outside the global domain
    // (solid walls a halo exchange never writes).
    let bases: Vec<OcnState> = (0..new_decomp.nranks())
        .map(|r| OcnState::new(grid, new_decomp, r))
        .collect();
    for name in &names {
        let global = assemble_global(src, grid, old_decomp, name)?;
        for (r, base) in bases.iter().enumerate() {
            let b = base.block;
            let stride = base.stride;
            let mut slab = match name.as_str() {
                "eta" => base.eta.clone(),
                "ubar" => base.ubar.clone(),
                "vbar" => base.vbar.clone(),
                _ => {
                    let (f, k) = name.split_at(1);
                    let k: usize = k.parse().expect("level suffix");
                    match f {
                        "t" => base.t[k].clone(),
                        "s" => base.s[k].clone(),
                        "u" => base.u[k].clone(),
                        _ => base.v[k].clone(),
                    }
                }
            };
            for jj in 0..base.nj + 2 {
                let outside = (jj == 0 && b.j0 == 0) || (jj == base.nj + 1 && b.j1 == grid.nlat);
                if outside {
                    continue;
                }
                let gj = (b.j0 + jj).saturating_sub(1).min(grid.nlat - 1);
                for ii in 0..base.ni + 2 {
                    let gi = (b.i0 + grid.nlon + ii - 1) % grid.nlon;
                    slab[jj * stride + ii] = global[gj * grid.nlon + gi];
                }
            }
            SubfileWriter::new(dst, &format!("ocn_r{r}_{name}"), &[slab.len()], RESTART_SUBFILES)
                .write_all(&slab)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_atm::dycore::{Dycore, DycoreConfig};
    use ap3esm_comm::World;
    use ap3esm_grid::decomp::BlockDecomp2d;
    use ap3esm_grid::mask::MaskGenerator;
    use ap3esm_grid::tripolar::TripolarGrid;
    use ap3esm_grid::GeodesicGrid;
    use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ap3esm-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atmosphere_restart_is_bit_exact() {
        let grid = std::sync::Arc::new(GeodesicGrid::new(3));
        let dycore = Dycore::new(
            std::sync::Arc::clone(&grid),
            DycoreConfig::for_spacing_km(grid.mean_spacing_km()),
        );
        let mut a = AtmState::isothermal(std::sync::Arc::clone(&grid), 4, 287.0);
        a.ps[3] += 300.0;
        // Uninterrupted: 6 model steps.
        let mut uninterrupted = a.clone();
        for _ in 0..6 {
            dycore.step_model_dynamics(&mut uninterrupted);
        }
        // Interrupted: 3 steps, write, reload into a fresh state, 3 more.
        let mut first = a.clone();
        for _ in 0..3 {
            dycore.step_model_dynamics(&mut first);
        }
        let dir = tmpdir("atm");
        write_atm_restart(&dir, &first).unwrap();
        let mut resumed = AtmState::isothermal(std::sync::Arc::clone(&grid), 4, 999.0);
        read_atm_restart(&dir, &mut resumed).unwrap();
        for _ in 0..3 {
            dycore.step_model_dynamics(&mut resumed);
        }
        assert_eq!(uninterrupted.ps.len(), resumed.ps.len());
        for (x, y) in uninterrupted
            .ps
            .iter()
            .chain(&uninterrupted.theta)
            .chain(&uninterrupted.un)
            .zip(resumed.ps.iter().chain(&resumed.theta).chain(&resumed.un))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "restart broke bit-exactness");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ocean_restart_is_bit_exact() {
        let grid = TripolarGrid::new(36, 24, 4, MaskGenerator::default());
        let config = OcnConfig::for_grid(36, 24, 4, 1, 1);
        let dir = tmpdir("ocn");
        let world = World::new(1);
        world.run(|rank| {
            let decomp = BlockDecomp2d::new(36, 24, 1, 1);
            let forcing = OcnForcing::climatology(&grid, &decomp, 0);
            // Uninterrupted 6 steps.
            let mut reference = OcnModel::new(&grid, config.clone(), 0);
            for _ in 0..6 {
                reference.step(rank, &forcing);
            }
            // Interrupted at 3.
            let mut first = OcnModel::new(&grid, config.clone(), 0);
            for _ in 0..3 {
                first.step(rank, &forcing);
            }
            write_ocn_restart(&dir, &first.state, 0).unwrap();
            let mut resumed = OcnModel::new(&grid, config.clone(), 0);
            read_ocn_restart(&dir, &mut resumed.state, 0).unwrap();
            for _ in 0..3 {
                resumed.step(rank, &forcing);
            }
            for (x, y) in reference.state.eta.iter().zip(&resumed.state.eta) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for k in 0..4 {
                for (x, y) in reference.state.t[k].iter().zip(&resumed.state.t[k]) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aux_surface_fields_round_trip() {
        let grid = std::sync::Arc::new(GeodesicGrid::new(2));
        let mut a = AtmState::isothermal(std::sync::Arc::clone(&grid), 3, 285.0);
        for i in 0..a.ncells() {
            a.precip_accum[i] = i as f64 * 0.25;
            a.gsw[i] = 300.0 + i as f64;
            a.glw[i] = 150.0 - i as f64 * 0.5;
        }
        let dir = tmpdir("aux");
        write_atm_restart(&dir, &a).unwrap();
        let mut b = AtmState::isothermal(std::sync::Arc::clone(&grid), 3, 999.0);
        read_atm_restart(&dir, &mut b).unwrap();
        for (x, y) in a
            .precip_accum
            .iter()
            .chain(&a.gsw)
            .chain(&a.glw)
            .zip(b.precip_accum.iter().chain(&b.gsw).chain(&b.glw))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "aux field lost in restart");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn level_count_mismatch_is_rejected_per_field() {
        // Same horizontal grid, different level count: ps matches but
        // theta's dims do not — the per-field check must catch it.
        let grid = std::sync::Arc::new(GeodesicGrid::new(2));
        let state = AtmState::isothermal(std::sync::Arc::clone(&grid), 3, 280.0);
        let dir = tmpdir("levmismatch");
        write_atm_restart(&dir, &state).unwrap();
        let mut other = AtmState::isothermal(std::sync::Arc::clone(&grid), 5, 280.0);
        match read_atm_restart(&dir, &mut other) {
            Err(IoError::Inconsistent(msg)) => {
                assert!(msg.contains("atm_theta"), "wrong field blamed: {msg}")
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ocean_slab_mismatch_is_rejected() {
        let grid = TripolarGrid::new(24, 16, 3, MaskGenerator::default());
        let config = OcnConfig::for_grid(24, 16, 3, 1, 1);
        let dir = tmpdir("ocnmismatch");
        let model = OcnModel::new(&grid, config, 0);
        write_ocn_restart(&dir, &model.state, 0).unwrap();
        let grid2 = TripolarGrid::new(30, 16, 3, MaskGenerator::default());
        let config2 = OcnConfig::for_grid(30, 16, 3, 1, 1);
        let mut other = OcnModel::new(&grid2, config2, 0);
        assert!(matches!(
            read_ocn_restart(&dir, &mut other.state, 0),
            Err(IoError::Inconsistent(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn redistribution_preserves_global_fields_bitwise() {
        // 4 ocean ranks (2×2) shrink to 3 (3×1): every interior cell must
        // land bit-exact, ghosts must follow the periodic halo mapping,
        // and non-ocean checkpoint files must ride along verbatim.
        let grid = TripolarGrid::new(36, 24, 3, MaskGenerator::default());
        let old = BlockDecomp2d::new(36, 24, 2, 2);
        let new = BlockDecomp2d::new(36, 24, 3, 1);
        let src = tmpdir("redist-src");
        let dst = tmpdir("redist-dst");
        let gfun = |gi: usize, gj: usize, f: usize| (gi * 1000 + gj * 16 + f) as f64 * 0.125 + 0.5;
        for r in 0..old.nranks() {
            let mut st = OcnState::new(&grid, &old, r);
            for j in 0..st.nj {
                for i in 0..st.ni {
                    let (gi, gj) = (st.block.i0 + i, st.block.j0 + j);
                    let idx = st.at(i, j);
                    st.eta[idx] = gfun(gi, gj, 0);
                    st.ubar[idx] = gfun(gi, gj, 1);
                    st.vbar[idx] = gfun(gi, gj, 2);
                    for k in 0..grid.nlev {
                        st.t[k][idx] = gfun(gi, gj, 3 + 4 * k);
                        st.s[k][idx] = gfun(gi, gj, 4 + 4 * k);
                        st.u[k][idx] = gfun(gi, gj, 5 + 4 * k);
                        st.v[k][idx] = gfun(gi, gj, 6 + 4 * k);
                    }
                }
            }
            write_ocn_restart(&src, &st, r).unwrap();
        }
        std::fs::write(src.join("cpl_meta.00000.a3f"), b"meta-bytes").unwrap();
        redistribute_ocn_restart(&src, &dst, &grid, &old, &new).unwrap();
        assert_eq!(
            std::fs::read(dst.join("cpl_meta.00000.a3f")).unwrap(),
            b"meta-bytes",
            "non-ocean checkpoint files must be copied verbatim"
        );
        for r in 0..new.nranks() {
            let mut st = OcnState::new(&grid, &new, r);
            read_ocn_restart(&dst, &mut st, r).unwrap();
            for j in 0..st.nj {
                for i in 0..st.ni {
                    let (gi, gj) = (st.block.i0 + i, st.block.j0 + j);
                    let idx = st.at(i, j);
                    assert_eq!(st.eta[idx].to_bits(), gfun(gi, gj, 0).to_bits());
                    assert_eq!(st.vbar[idx].to_bits(), gfun(gi, gj, 2).to_bits());
                    for k in 0..grid.nlev {
                        assert_eq!(st.t[k][idx].to_bits(), gfun(gi, gj, 3 + 4 * k).to_bits());
                        assert_eq!(st.v[k][idx].to_bits(), gfun(gi, gj, 6 + 4 * k).to_bits());
                    }
                }
            }
            // West ghost column carries the zonally periodic neighbour.
            let gi_w = (st.block.i0 + grid.nlon - 1) % grid.nlon;
            for jj in 1..=st.nj {
                let gj = st.block.j0 + jj - 1;
                assert_eq!(
                    st.eta[jj * st.stride].to_bits(),
                    gfun(gi_w, gj, 0).to_bits(),
                    "ghost fill must match the halo-exchange mapping"
                );
            }
        }
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let grid = std::sync::Arc::new(GeodesicGrid::new(2));
        let state = AtmState::isothermal(std::sync::Arc::clone(&grid), 3, 280.0);
        let dir = tmpdir("mismatch");
        write_atm_restart(&dir, &state).unwrap();
        let other_grid = std::sync::Arc::new(GeodesicGrid::new(3));
        let mut other = AtmState::isothermal(other_grid, 3, 280.0);
        assert!(read_atm_restart(&dir, &mut other).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
