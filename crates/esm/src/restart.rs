//! Restart files through the sub-file parallel I/O layer (`ap3esm-io`).
//!
//! Km-scale state is exactly where the paper's I/O strategy matters;
//! restart write/read is the model-level exercise of it. Restarts are
//! **bit-exact**: a run that stops, writes, reloads, and continues
//! reproduces the uninterrupted run bitwise (tested).

use std::path::Path;

use ap3esm_atm::state::AtmState;
use ap3esm_io::subfile::{SubfileReader, SubfileWriter};
use ap3esm_io::IoError;
use ap3esm_ocn::state::OcnState;

/// Number of sub-files per restart field (the §5.2.5 partitioning knob).
const RESTART_SUBFILES: usize = 4;

/// Write an atmosphere restart: ps, θ, q (cell fields) and uₙ (edge field).
pub fn write_atm_restart(dir: &Path, state: &AtmState) -> Result<(), IoError> {
    let n = state.ncells();
    let e = state.nedges();
    let nlev = state.nlev;
    SubfileWriter::new(dir, "atm_ps", &[n], RESTART_SUBFILES).write_all(&state.ps)?;
    SubfileWriter::new(dir, "atm_theta", &[nlev, n], RESTART_SUBFILES).write_all(&state.theta)?;
    SubfileWriter::new(dir, "atm_q", &[nlev, n], RESTART_SUBFILES).write_all(&state.q)?;
    SubfileWriter::new(dir, "atm_un", &[nlev, e], RESTART_SUBFILES).write_all(&state.un)?;
    Ok(())
}

/// Read an atmosphere restart back into `state` (grid shapes must match).
pub fn read_atm_restart(dir: &Path, state: &mut AtmState) -> Result<(), IoError> {
    let (h, ps) = SubfileReader::new(dir, "atm_ps").read_all()?;
    if h.dims[0] as usize != state.ncells() {
        return Err(IoError::Inconsistent(format!(
            "restart has {} cells, model has {}",
            h.dims[0],
            state.ncells()
        )));
    }
    state.ps = ps;
    state.theta = SubfileReader::new(dir, "atm_theta").read_all()?.1;
    state.q = SubfileReader::new(dir, "atm_q").read_all()?.1;
    state.un = SubfileReader::new(dir, "atm_un").read_all()?.1;
    Ok(())
}

/// Write one rank's ocean restart (interior + halos as stored — halos are
/// re-exchanged on the first post-restart step anyway, but keeping them
/// makes the restart bit-exact without a warm-up exchange).
pub fn write_ocn_restart(dir: &Path, state: &OcnState, rank: usize) -> Result<(), IoError> {
    let slab = state.eta.len();
    let tag = |name: &str| format!("ocn_r{rank}_{name}");
    SubfileWriter::new(dir, &tag("eta"), &[slab], RESTART_SUBFILES).write_all(&state.eta)?;
    SubfileWriter::new(dir, &tag("ubar"), &[slab], RESTART_SUBFILES).write_all(&state.ubar)?;
    SubfileWriter::new(dir, &tag("vbar"), &[slab], RESTART_SUBFILES).write_all(&state.vbar)?;
    for k in 0..state.nlev {
        SubfileWriter::new(dir, &tag(&format!("t{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.t[k])?;
        SubfileWriter::new(dir, &tag(&format!("s{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.s[k])?;
        SubfileWriter::new(dir, &tag(&format!("u{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.u[k])?;
        SubfileWriter::new(dir, &tag(&format!("v{k}")), &[slab], RESTART_SUBFILES)
            .write_all(&state.v[k])?;
    }
    Ok(())
}

/// Read one rank's ocean restart.
pub fn read_ocn_restart(dir: &Path, state: &mut OcnState, rank: usize) -> Result<(), IoError> {
    let tag = |name: &str| format!("ocn_r{rank}_{name}");
    let (h, eta) = SubfileReader::new(dir, &tag("eta")).read_all()?;
    if h.dims[0] as usize != state.eta.len() {
        return Err(IoError::Inconsistent("ocean restart shape mismatch".into()));
    }
    state.eta = eta;
    state.ubar = SubfileReader::new(dir, &tag("ubar")).read_all()?.1;
    state.vbar = SubfileReader::new(dir, &tag("vbar")).read_all()?.1;
    for k in 0..state.nlev {
        state.t[k] = SubfileReader::new(dir, &tag(&format!("t{k}"))).read_all()?.1;
        state.s[k] = SubfileReader::new(dir, &tag(&format!("s{k}"))).read_all()?.1;
        state.u[k] = SubfileReader::new(dir, &tag(&format!("u{k}"))).read_all()?.1;
        state.v[k] = SubfileReader::new(dir, &tag(&format!("v{k}"))).read_all()?.1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_atm::dycore::{Dycore, DycoreConfig};
    use ap3esm_comm::World;
    use ap3esm_grid::decomp::BlockDecomp2d;
    use ap3esm_grid::mask::MaskGenerator;
    use ap3esm_grid::tripolar::TripolarGrid;
    use ap3esm_grid::GeodesicGrid;
    use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ap3esm-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atmosphere_restart_is_bit_exact() {
        let grid = std::sync::Arc::new(GeodesicGrid::new(3));
        let dycore = Dycore::new(
            std::sync::Arc::clone(&grid),
            DycoreConfig::for_spacing_km(grid.mean_spacing_km()),
        );
        let mut a = AtmState::isothermal(std::sync::Arc::clone(&grid), 4, 287.0);
        a.ps[3] += 300.0;
        // Uninterrupted: 6 model steps.
        let mut uninterrupted = a.clone();
        for _ in 0..6 {
            dycore.step_model_dynamics(&mut uninterrupted);
        }
        // Interrupted: 3 steps, write, reload into a fresh state, 3 more.
        let mut first = a.clone();
        for _ in 0..3 {
            dycore.step_model_dynamics(&mut first);
        }
        let dir = tmpdir("atm");
        write_atm_restart(&dir, &first).unwrap();
        let mut resumed = AtmState::isothermal(std::sync::Arc::clone(&grid), 4, 999.0);
        read_atm_restart(&dir, &mut resumed).unwrap();
        for _ in 0..3 {
            dycore.step_model_dynamics(&mut resumed);
        }
        assert_eq!(uninterrupted.ps.len(), resumed.ps.len());
        for (x, y) in uninterrupted
            .ps
            .iter()
            .chain(&uninterrupted.theta)
            .chain(&uninterrupted.un)
            .zip(resumed.ps.iter().chain(&resumed.theta).chain(&resumed.un))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "restart broke bit-exactness");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ocean_restart_is_bit_exact() {
        let grid = TripolarGrid::new(36, 24, 4, MaskGenerator::default());
        let config = OcnConfig::for_grid(36, 24, 4, 1, 1);
        let dir = tmpdir("ocn");
        let world = World::new(1);
        world.run(|rank| {
            let decomp = BlockDecomp2d::new(36, 24, 1, 1);
            let forcing = OcnForcing::climatology(&grid, &decomp, 0);
            // Uninterrupted 6 steps.
            let mut reference = OcnModel::new(&grid, config.clone(), 0);
            for _ in 0..6 {
                reference.step(rank, &forcing);
            }
            // Interrupted at 3.
            let mut first = OcnModel::new(&grid, config.clone(), 0);
            for _ in 0..3 {
                first.step(rank, &forcing);
            }
            write_ocn_restart(&dir, &first.state, 0).unwrap();
            let mut resumed = OcnModel::new(&grid, config.clone(), 0);
            read_ocn_restart(&dir, &mut resumed.state, 0).unwrap();
            for _ in 0..3 {
                resumed.step(rank, &forcing);
            }
            for (x, y) in reference.state.eta.iter().zip(&resumed.state.eta) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for k in 0..4 {
                for (x, y) in reference.state.t[k].iter().zip(&resumed.state.t[k]) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let grid = std::sync::Arc::new(GeodesicGrid::new(2));
        let state = AtmState::isothermal(std::sync::Arc::clone(&grid), 3, 280.0);
        let dir = tmpdir("mismatch");
        write_atm_restart(&dir, &state).unwrap();
        let other_grid = std::sync::Arc::new(GeodesicGrid::new(3));
        let mut other = AtmState::isothermal(other_grid, 3, 280.0);
        assert!(read_atm_restart(&dir, &mut other).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
