//! Scaling-experiment driver: bridges the coupled model's workload
//! descriptions to the `ap3esm-machine` performance model, producing the
//! Table 2 rows and Fig. 8a/8b series at full machine scale.

use ap3esm_machine::calibration::{paper_fig8b, paper_table2, ConfigCalibration};
use ap3esm_machine::perf::{ScalingModel, SypdPoint};
use ap3esm_machine::topology::MachineSpec;

/// One reproduced configuration: the paper's measured points and our
/// model's sweep over the same node counts.
#[derive(Debug, Clone)]
pub struct ReproducedConfig {
    pub label: String,
    pub unit_name: String,
    pub paper: Vec<(usize, usize, f64)>,
    pub model: Vec<SypdPoint>,
    pub fit_error: f64,
}

/// Fit every Table 2 configuration and sweep the model over the paper's
/// node counts (the Table 2 / Fig. 8a reproduction).
pub fn reproduce_table2() -> Vec<ReproducedConfig> {
    paper_table2()
        .into_iter()
        .map(|cal| reproduce_config(&cal))
        .collect()
}

fn reproduce_config(cal: &ConfigCalibration) -> ReproducedConfig {
    let machine = if cal.sunway {
        MachineSpec::sunway_oceanlight()
    } else {
        MachineSpec::orise()
    };
    let model = ScalingModel::fit(machine, cal);
    let nodes: Vec<usize> = cal.points.iter().map(|p| p.nodes).collect();
    ReproducedConfig {
        label: cal.label.clone(),
        unit_name: cal.unit_name.clone(),
        paper: cal.points.iter().map(|p| (p.nodes, p.units, p.sypd)).collect(),
        model: model.sweep(&nodes),
        fit_error: model.fit_error(cal),
    }
}

/// A weak-scaling series (Fig. 8b): per-resolution nodes and the model's
/// efficiency at each, anchored at the smallest configuration.
#[derive(Debug, Clone)]
pub struct WeakScalingSeries {
    pub label: String,
    pub resolutions_km: Vec<f64>,
    pub nodes: Vec<usize>,
    pub efficiency: Vec<f64>,
    pub paper_final_efficiency: f64,
}

/// Reproduce Fig. 8b. The latency share is fitted so the final efficiency
/// matches the paper's quoted value; intermediate points come out of the
/// same model.
pub fn reproduce_fig8b() -> Vec<WeakScalingSeries> {
    paper_fig8b()
        .into_iter()
        .map(|cfg| {
            let machine = MachineSpec::sunway_oceanlight();
            // 1-D search on the latency fraction to hit the paper's final
            // weak-scaling efficiency.
            let target = cfg.final_efficiency;
            let n0 = cfg.nodes[0];
            let n_last = *cfg.nodes.last().expect("nodes");
            let mut best = (0.01, f64::INFINITY);
            for i in 1..200 {
                let f_lat = i as f64 * 0.0005;
                let m = ScalingModel {
                    machine: machine.clone(),
                    anchor_nodes: n0,
                    anchor_sypd: 1.0,
                    f_bw: 0.02,
                    f_lat,
                    lambda: 0.5,
                    escape: 0.1,
                };
                let err = (m.weak_efficiency(n_last) - target).abs();
                if err < best.1 {
                    best = (f_lat, err);
                }
            }
            let model = ScalingModel {
                machine,
                anchor_nodes: n0,
                anchor_sypd: 1.0,
                f_bw: 0.02,
                f_lat: best.0,
                lambda: 0.5,
                escape: 0.1,
            };
            WeakScalingSeries {
                label: cfg.label,
                resolutions_km: cfg.resolutions_km,
                efficiency: cfg.nodes.iter().map(|&n| model.weak_efficiency(n)).collect(),
                nodes: cfg.nodes,
                paper_final_efficiency: target,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduction_is_tight() {
        let rows = reproduce_table2();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.fit_error < 0.20,
                "{}: fit error {:.1}%",
                row.label,
                row.fit_error * 100.0
            );
            assert_eq!(row.paper.len(), row.model.len());
        }
    }

    #[test]
    fn headline_sypd_reproduced() {
        let rows = reproduce_table2();
        let cpl = rows.iter().find(|r| r.label.contains("1v1")).unwrap();
        let last = cpl.model.last().unwrap();
        // Paper: 0.54 SYPD at 37.2M cores; the model must land nearby.
        assert!((last.sypd - 0.54).abs() < 0.15, "model 1v1 sypd {}", last.sypd);
    }

    #[test]
    fn fig8b_final_efficiencies_match() {
        let series = reproduce_fig8b();
        assert_eq!(series.len(), 2);
        for s in &series {
            let last = *s.efficiency.last().unwrap();
            assert!(
                (last - s.paper_final_efficiency).abs() < 0.02,
                "{}: weak eff {last} vs paper {}",
                s.label,
                s.paper_final_efficiency
            );
            // Efficiency decreases monotonically with scale.
            for w in s.efficiency.windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
            assert_eq!(s.efficiency.len(), s.nodes.len());
        }
    }

    #[test]
    fn mpe_to_cpe_speedups_in_paper_band() {
        let rows = reproduce_table2();
        let mpe = rows.iter().find(|r| r.label.contains("ATM 3km MPE")).unwrap();
        let cpe = rows
            .iter()
            .find(|r| r.label.contains("ATM 3km CPE"))
            .unwrap();
        // Compare modeled SYPD at the shared smallest node count.
        let s = cpe.model[0].sypd / mpe.model[0].sypd;
        assert!((80.0..250.0).contains(&s), "modeled speedup {s}");
    }
}
