//! State-health guards, checkpoint management, and recovery policy for the
//! coupled driver.
//!
//! A kilometer-scale coupled run on a heterogeneous machine has three
//! failure classes this module addresses:
//!
//! 1. **Silent state corruption** — a NaN escaping a kernel, a CFL blow-up,
//!    or a drifting mass budget. [`AtmGuard`] / [`OcnGuard`] scan the
//!    prognostic state each coupling step and classify it as
//!    [`HealthVerdict::Healthy`], `Degraded` (suspicious but integrable) or
//!    `Fatal` (rollback required).
//! 2. **Lost work on rank failure** — [`CheckpointStore`] manages periodic
//!    on-disk checkpoints written through the bit-exact restart path, with
//!    a commit marker protocol (a checkpoint without its `COMMIT` file is
//!    never restored) and bounded retention.
//! 3. **Damaged checkpoints** — every sub-file carries payload and header
//!    CRC-32s (see `ap3esm-io`), so a corrupted checkpoint is detected at
//!    restore time; the store then falls back to the previous committed
//!    checkpoint ([`CheckpointStore::invalidate`]).
//!
//! [`RecoveryConfig`] bounds the whole loop: how often to checkpoint, how
//! many rollbacks to attempt before declaring a [`RecoveryFailure`], and
//! how transient comm errors are retried ([`with_retry`]).

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use ap3esm_atm::state::AtmState;
use ap3esm_io::subfile::subfile_path;
use ap3esm_io::IoError;
use ap3esm_ocn::state::OcnState;

/// Classification of one component's state at a coupling boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthVerdict {
    /// All checks passed.
    Healthy,
    /// Suspicious (soft bound exceeded) but still integrable; logged, no
    /// rollback.
    Degraded(String),
    /// Non-finite values or hard bound violation; the trajectory is lost
    /// and must be rolled back.
    Fatal(String),
}

impl HealthVerdict {
    /// Severity as an ordinal for cross-rank max-reduction: every rank
    /// contributes its verdict and the reduced maximum decides the global
    /// action (any Fatal anywhere → global rollback).
    pub fn severity(&self) -> f64 {
        match self {
            HealthVerdict::Healthy => 0.0,
            HealthVerdict::Degraded(_) => 1.0,
            HealthVerdict::Fatal(_) => 2.0,
        }
    }

    /// Is this verdict fatal (rollback required)?
    pub fn is_fatal(&self) -> bool {
        matches!(self, HealthVerdict::Fatal(_))
    }

    /// The worse of two verdicts (keeps the message of the worse one).
    pub fn worst(self, other: HealthVerdict) -> HealthVerdict {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthVerdict::Healthy => write!(f, "healthy"),
            HealthVerdict::Degraded(m) => write!(f, "degraded: {m}"),
            HealthVerdict::Fatal(m) => write!(f, "fatal: {m}"),
        }
    }
}

/// Bounds used by the state-health guards. Defaults are generous physical
/// envelopes — anything outside them is unphysical at any resolution, not
/// a tuning choice.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Hard potential-temperature bounds (K).
    pub theta_bounds: (f64, f64),
    /// Hard surface-pressure bounds (Pa).
    pub ps_bounds: (f64, f64),
    /// Advective CFL number above which the atmosphere is fatal.
    pub atm_cfl_fatal: f64,
    /// CFL number above which the atmosphere is degraded.
    pub atm_cfl_soft: f64,
    /// Relative dry-mass drift (vs. the guard's reference) beyond which
    /// the budget is degraded — mass is conserved analytically, so drift
    /// is an integration-error alarm.
    pub mass_drift_soft: f64,
    /// Relative dry-mass drift beyond which the budget is fatal.
    pub mass_drift_fatal: f64,
    /// Hard sea-surface-height bound (m).
    pub eta_limit: f64,
    /// Hard ocean temperature bounds (°C).
    pub sst_bounds: (f64, f64),
    /// Barotropic CFL number above which the ocean is fatal.
    pub ocn_cfl_fatal: f64,
    /// CFL number above which the ocean is degraded.
    pub ocn_cfl_soft: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            theta_bounds: (150.0, 600.0),
            ps_bounds: (30_000.0, 120_000.0),
            atm_cfl_fatal: 2.0,
            atm_cfl_soft: 1.0,
            mass_drift_soft: 1e-9,
            mass_drift_fatal: 1e-3,
            eta_limit: 20.0,
            sst_bounds: (-5.0, 60.0),
            ocn_cfl_fatal: 2.0,
            ocn_cfl_soft: 1.0,
        }
    }
}

/// Returns the index and value of the first non-finite entry, if any.
fn first_nonfinite(data: &[f64]) -> Option<(usize, f64)> {
    data.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, v)| (i, *v))
}

/// Atmosphere state-health guard. Captures the dry-mass reference at
/// construction so the energy/mass-budget check measures drift, not an
/// absolute threshold.
#[derive(Debug, Clone)]
pub struct AtmGuard {
    cfg: GuardConfig,
    /// Reference dry mass (∝ Σ ps·area) at guard creation.
    mass0: f64,
    /// Dynamics substep (s) for the CFL number.
    dt_dyn: f64,
    /// Representative grid spacing (m) for the CFL number.
    dx_m: f64,
}

impl AtmGuard {
    pub fn new(state: &AtmState, cfg: GuardConfig, dt_dyn: f64) -> Self {
        let dx_m = state.grid.mean_spacing_km() * 1000.0;
        AtmGuard {
            cfg,
            mass0: state.total_mass(),
            dt_dyn,
            dx_m,
        }
    }

    /// Re-capture the mass reference (after an accepted rollback the
    /// restored state becomes the new budget baseline).
    pub fn rebase(&mut self, state: &AtmState) {
        self.mass0 = state.total_mass();
    }

    /// Scan the full prognostic state: non-finite values, hard physical
    /// bounds, advective CFL, and dry-mass budget drift.
    pub fn check(&self, state: &AtmState) -> HealthVerdict {
        for (name, field) in [
            ("ps", &state.ps),
            ("theta", &state.theta),
            ("q", &state.q),
            ("un", &state.un),
            ("precip_accum", &state.precip_accum),
        ] {
            if let Some((i, v)) = first_nonfinite(field) {
                return HealthVerdict::Fatal(format!("atm {name}[{i}] = {v}"));
            }
        }
        for (i, &ps) in state.ps.iter().enumerate() {
            if ps < self.cfg.ps_bounds.0 || ps > self.cfg.ps_bounds.1 {
                return HealthVerdict::Fatal(format!("atm ps[{i}] = {ps} Pa out of bounds"));
            }
        }
        for (i, &th) in state.theta.iter().enumerate() {
            if th < self.cfg.theta_bounds.0 || th > self.cfg.theta_bounds.1 {
                return HealthVerdict::Fatal(format!("atm theta[{i}] = {th} K out of bounds"));
            }
        }
        let cfl = state.max_wind() * self.dt_dyn / self.dx_m;
        if cfl > self.cfg.atm_cfl_fatal {
            return HealthVerdict::Fatal(format!("atm CFL {cfl:.3} > {}", self.cfg.atm_cfl_fatal));
        }
        let drift = ((state.total_mass() - self.mass0) / self.mass0).abs();
        if drift > self.cfg.mass_drift_fatal {
            return HealthVerdict::Fatal(format!("atm dry-mass drift {drift:.3e}"));
        }
        let mut verdict = HealthVerdict::Healthy;
        if cfl > self.cfg.atm_cfl_soft {
            verdict = verdict.worst(HealthVerdict::Degraded(format!("atm CFL {cfl:.3}")));
        }
        if drift > self.cfg.mass_drift_soft {
            verdict = verdict.worst(HealthVerdict::Degraded(format!(
                "atm dry-mass drift {drift:.3e}"
            )));
        }
        verdict
    }
}

/// Ocean state-health guard for one rank's slab.
#[derive(Debug, Clone)]
pub struct OcnGuard {
    cfg: GuardConfig,
    /// Barotropic substep (s) for the CFL number.
    dt_barotropic: f64,
    /// Smallest zonal spacing (m) on this slab.
    dx_min: f64,
}

impl OcnGuard {
    pub fn new(state: &OcnState, cfg: GuardConfig, dt_barotropic: f64) -> Self {
        let dx_min = state
            .dx
            .iter()
            .copied()
            .filter(|d| *d > 0.0)
            .fold(f64::INFINITY, f64::min)
            .min(state.dy);
        OcnGuard {
            cfg,
            dt_barotropic,
            dx_min,
        }
    }

    /// Scan this rank's slab: non-finite values anywhere, sea-surface
    /// height and temperature envelopes, barotropic CFL.
    pub fn check(&self, state: &OcnState) -> HealthVerdict {
        for (name, field) in [
            ("eta", &state.eta),
            ("ubar", &state.ubar),
            ("vbar", &state.vbar),
        ] {
            if let Some((i, v)) = first_nonfinite(field) {
                return HealthVerdict::Fatal(format!("ocn {name}[{i}] = {v}"));
            }
        }
        for k in 0..state.nlev {
            for (name, levels) in [
                ("u", &state.u),
                ("v", &state.v),
                ("t", &state.t),
                ("s", &state.s),
            ] {
                if let Some((i, v)) = first_nonfinite(&levels[k]) {
                    return HealthVerdict::Fatal(format!("ocn {name}[{k}][{i}] = {v}"));
                }
            }
        }
        for (i, &eta) in state.eta.iter().enumerate() {
            if eta.abs() > self.cfg.eta_limit {
                return HealthVerdict::Fatal(format!("ocn eta[{i}] = {eta} m out of bounds"));
            }
        }
        for &(i, j) in &state.active_columns() {
            let t = state.t[0][state.at(i, j)];
            if t < self.cfg.sst_bounds.0 || t > self.cfg.sst_bounds.1 {
                return HealthVerdict::Fatal(format!("ocn sst({i},{j}) = {t} °C out of bounds"));
            }
        }
        let vmax = state
            .surface_speed()
            .into_iter()
            .fold(0.0f64, f64::max);
        let cfl = vmax * self.dt_barotropic / self.dx_min;
        if cfl > self.cfg.ocn_cfl_fatal {
            return HealthVerdict::Fatal(format!("ocn CFL {cfl:.3} > {}", self.cfg.ocn_cfl_fatal));
        }
        if cfl > self.cfg.ocn_cfl_soft {
            return HealthVerdict::Degraded(format!("ocn CFL {cfl:.3}"));
        }
        HealthVerdict::Healthy
    }
}

/// Policy knobs for checkpointing and automatic recovery.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Write a checkpoint every this many ocean coupling events.
    pub checkpoint_interval: usize,
    /// How many checkpoints to retain (older ones are pruned; > 1 gives a
    /// fallback when the latest checkpoint is itself damaged).
    pub keep_checkpoints: usize,
    /// Rollbacks allowed before the run fails with [`RecoveryFailure`].
    pub max_recoveries: usize,
    /// Shrink-to-fit world reconstructions allowed after permanent rank
    /// loss before the run fails with [`RecoveryFailure`] (each shrink
    /// loses resolution of the process mesh; at some point continuing
    /// degrades the science more than stopping does).
    pub max_shrinks: usize,
    /// Retries for transient checkpoint-I/O / comm operations.
    pub retries: u32,
    /// Base backoff between retries (grows exponentially with the
    /// attempt, capped, with deterministic seeded jitter — see
    /// [`retry_delay`]).
    pub backoff: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: 2,
            keep_checkpoints: 2,
            max_recoveries: 3,
            max_shrinks: 1,
            retries: 3,
            backoff: Duration::from_millis(20),
        }
    }
}

/// The run exhausted `max_recoveries` (or had no checkpoint to roll back
/// to) — the structured "clean failure" the driver returns instead of a
/// panic or a hang.
#[derive(Debug, Clone)]
pub struct RecoveryFailure {
    /// Rollbacks attempted before giving up.
    pub recoveries_attempted: usize,
    /// The condition that exhausted the budget.
    pub reason: String,
}

impl fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery budget exhausted after {} rollback(s): {}",
            self.recoveries_attempted, self.reason
        )
    }
}

impl std::error::Error for RecoveryFailure {}

/// Exponential growth cap: backoff never exceeds `base × 2^RETRY_CAP_DOUBLINGS`.
const RETRY_CAP_DOUBLINGS: u32 = 4;

/// splitmix64: a tiny, statistically solid mixer — the standard trick for
/// turning a seed into decorrelated per-draw values without carrying RNG
/// state around.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a of the retry label: a stable (cross-version, cross-run) seed so
/// jitter is reproducible for a given label without changing the
/// [`with_retry`] signature.
fn label_seed(label: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Backoff before retry `attempt` (1-based): capped exponential
/// `base × 2^(attempt−1)` (cap at `2^RETRY_CAP_DOUBLINGS` doublings) plus
/// deterministic jitter of up to half that span, drawn from
/// `splitmix64(seed, attempt)`. Distinct seeds (labels, ranks) spread
/// retry storms apart — thundering-herd safe — while the same seed
/// reproduces the exact schedule in tests.
pub fn retry_delay(base: Duration, attempt: u32, seed: u64) -> Duration {
    let doublings = attempt.saturating_sub(1).min(RETRY_CAP_DOUBLINGS);
    let exp = base * (1u32 << doublings);
    let frac = (splitmix64(seed.wrapping_add(attempt as u64)) >> 11) as f64
        / (1u64 << 53) as f64;
    exp + Duration::from_secs_f64(exp.as_secs_f64() * 0.5 * frac)
}

/// Retry `f` up to `retries` extra times with capped exponential backoff
/// and deterministic label-seeded jitter ([`retry_delay`]). Each retry is
/// recorded on the `resilience.retries` counter. Callers retrying the
/// same operation on many ranks should put the rank in the label so their
/// jitter decorrelates.
pub fn with_retry<T, E: fmt::Display>(
    label: &str,
    retries: u32,
    backoff: Duration,
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let seed = label_seed(label);
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < retries => {
                attempt += 1;
                ap3esm_obs::counter_add("resilience.retries", 1);
                eprintln!("[resilience] retry {attempt}/{retries} of {label}: {e}");
                std::thread::sleep(retry_delay(backoff, attempt, seed));
            }
            Err(e) => return Err(e),
        }
    }
}

/// On-disk checkpoint directory manager with a commit-marker protocol.
///
/// Layout: `root/ckpt_<id>/` holds the restart sub-files of checkpoint
/// `id`; `root/ckpt_<id>/COMMIT` exists only once every rank's fields are
/// fully written. Restore only ever reads committed checkpoints, so a
/// crash mid-checkpoint can at worst waste one interval of work, never
/// restore a half-written state.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
    keep: usize,
}

const COMMIT_MARKER: &str = "COMMIT";

impl CheckpointStore {
    pub fn new(root: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointStore {
            root: root.into(),
            keep: keep.max(1),
        }
    }

    /// Directory of checkpoint `id` (not necessarily existing/committed).
    pub fn dir(&self, id: u64) -> PathBuf {
        self.root.join(format!("ckpt_{id:08}"))
    }

    /// Remove every checkpoint — committed or partial — under the root.
    /// The driver calls this once on rank 0 at startup: checkpoint ids are
    /// ocean-coupling indices of *this* run, so state left behind by a
    /// previous run sharing the directory must never be restored (it would
    /// silently shadow this run's checkpoints and break the id ↔ time
    /// correspondence).
    pub fn reset(&self) -> Result<(), IoError> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Ok(()); // nothing there yet
        };
        for entry in entries.flatten() {
            let stale = entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("ckpt_"));
            if stale {
                std::fs::remove_dir_all(entry.path())?;
            }
        }
        Ok(())
    }

    /// Start (or restart) checkpoint `id`: clears any partial previous
    /// attempt and returns the directory to write restart fields into.
    pub fn begin(&self, id: u64) -> Result<PathBuf, IoError> {
        let dir = self.dir(id);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    /// Mark checkpoint `id` complete and prune old checkpoints beyond the
    /// retention window.
    pub fn commit(&self, id: u64) -> Result<(), IoError> {
        std::fs::write(self.dir(id).join(COMMIT_MARKER), format!("{id}\n"))?;
        self.prune()?;
        Ok(())
    }

    /// Ascending ids of all committed checkpoints.
    pub fn committed(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return ids;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("ckpt_"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            if entry.path().join(COMMIT_MARKER).exists() {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Newest committed checkpoint, if any.
    pub fn latest(&self) -> Option<u64> {
        self.committed().into_iter().next_back()
    }

    /// Withdraw a checkpoint found damaged at restore time, so the next
    /// [`CheckpointStore::latest`] falls back to the previous one.
    pub fn invalidate(&self, id: u64) -> Result<(), IoError> {
        let marker = self.dir(id).join(COMMIT_MARKER);
        if marker.exists() {
            std::fs::remove_file(marker)?;
        }
        Ok(())
    }

    /// Delete all but the newest `keep` committed checkpoints.
    pub fn prune(&self) -> Result<(), IoError> {
        let ids = self.committed();
        if ids.len() > self.keep {
            for &id in &ids[..ids.len() - self.keep] {
                std::fs::remove_dir_all(self.dir(id))?;
            }
        }
        Ok(())
    }

    /// XOR `0xFF` into one byte of one sub-file of checkpoint `id` — the
    /// on-disk application of a `corrupt` fault-plan event. Returns
    /// `Ok(false)` if the target file or offset does not exist.
    pub fn corrupt_subfile_byte(
        &self,
        id: u64,
        field: &str,
        subfile: u32,
        byte: u64,
    ) -> Result<bool, IoError> {
        let path = subfile_path(&self.dir(id), field, subfile as usize);
        if !path.exists() {
            return Ok(false);
        }
        let mut bytes = std::fs::read(&path)?;
        let Some(slot) = bytes.get_mut(byte as usize) else {
            return Ok(false);
        };
        *slot ^= 0xFF;
        std::fs::write(&path, bytes)?;
        Ok(true)
    }

    /// Checkpoint root (for reporting).
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_grid::GeodesicGrid;
    use ap3esm_io::subfile::{SubfileReader, SubfileWriter};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ap3esm-resil-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn atm_state() -> AtmState {
        let grid = Arc::new(GeodesicGrid::new(2));
        AtmState::isothermal(grid, 3, 287.0)
    }

    #[test]
    fn healthy_state_passes_all_guards() {
        let state = atm_state();
        let guard = AtmGuard::new(&state, GuardConfig::default(), 30.0);
        assert_eq!(guard.check(&state), HealthVerdict::Healthy);
    }

    #[test]
    fn nan_poison_is_fatal() {
        let state = atm_state();
        let guard = AtmGuard::new(&state, GuardConfig::default(), 30.0);
        let mut poisoned = state.clone();
        poisoned.theta[7] = f64::NAN;
        assert!(guard.check(&poisoned).is_fatal());
        let mut inf = state.clone();
        inf.un[0] = f64::INFINITY;
        assert!(guard.check(&inf).is_fatal());
    }

    #[test]
    fn mass_drift_degrades_then_kills() {
        let state = atm_state();
        let guard = AtmGuard::new(&state, GuardConfig::default(), 30.0);
        let mut drifted = state.clone();
        for ps in &mut drifted.ps {
            *ps *= 1.0 + 1e-6; // above soft (1e-9), below fatal (1e-3)
        }
        assert!(matches!(
            guard.check(&drifted),
            HealthVerdict::Degraded(_)
        ));
        let mut gone = state.clone();
        for ps in &mut gone.ps {
            *ps *= 1.01;
        }
        assert!(guard.check(&gone).is_fatal());
    }

    #[test]
    fn severity_orders_and_reduces() {
        let h = HealthVerdict::Healthy;
        let d = HealthVerdict::Degraded("x".into());
        let f = HealthVerdict::Fatal("y".into());
        assert!(h.severity() < d.severity() && d.severity() < f.severity());
        assert_eq!(h.clone().worst(f.clone()), f);
        assert_eq!(d.clone().worst(h), d);
    }

    #[test]
    fn checkpoint_commit_protocol_and_retention() {
        let root = tmpdir("store");
        let store = CheckpointStore::new(&root, 2);
        for id in [1u64, 2, 3] {
            let dir = store.begin(id).unwrap();
            std::fs::write(dir.join("payload"), b"x").unwrap();
            store.commit(id).unwrap();
        }
        // An uncommitted checkpoint is invisible.
        store.begin(4).unwrap();
        assert_eq!(store.committed(), vec![2, 3]); // 1 pruned (keep = 2)
        assert_eq!(store.latest(), Some(3));
        // Invalidation falls back to the previous committed checkpoint.
        store.invalidate(3).unwrap();
        assert_eq!(store.latest(), Some(2));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reset_clears_stale_checkpoints_from_previous_runs() {
        let root = tmpdir("reset");
        let store = CheckpointStore::new(&root, 2);
        store.begin(7).unwrap();
        store.commit(7).unwrap();
        store.begin(8).unwrap(); // partial, uncommitted
        std::fs::write(root.join("unrelated"), b"keep me").unwrap();
        store.reset().unwrap();
        assert_eq!(store.committed(), Vec::<u64>::new());
        assert!(!store.dir(7).exists());
        assert!(!store.dir(8).exists());
        assert!(root.join("unrelated").exists());
        // Resetting a not-yet-created root is fine.
        CheckpointStore::new(root.join("missing"), 2).reset().unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corruption_is_caught_by_subfile_crc() {
        let root = tmpdir("corrupt");
        let store = CheckpointStore::new(&root, 2);
        let dir = store.begin(5).unwrap();
        let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        SubfileWriter::new(&dir, "atm_theta", &[64], 4)
            .write_all(&data)
            .unwrap();
        store.commit(5).unwrap();
        assert!(SubfileReader::new(&dir, "atm_theta").verify().is_ok());
        // Flip one payload byte in sub-file 2.
        assert!(store
            .corrupt_subfile_byte(5, "atm_theta", 2, 80)
            .unwrap());
        assert!(SubfileReader::new(&dir, "atm_theta").verify().is_err());
        // Targeting a missing field is a no-op, not an error.
        assert!(!store.corrupt_subfile_byte(5, "nope", 0, 0).unwrap());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut calls = 0;
        let out = with_retry("test-op", 3, Duration::from_millis(1), || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        let out: Result<(), _> =
            with_retry("always-fails", 2, Duration::from_millis(1), || Err("nope"));
        assert_eq!(out, Err("nope"));
    }

    #[test]
    fn retry_delay_is_capped_exponential_with_deterministic_jitter() {
        let base = Duration::from_millis(20);
        // Reproducible: the same (base, attempt, seed) gives the same delay.
        assert_eq!(retry_delay(base, 1, 7), retry_delay(base, 1, 7));
        // Exponential envelope with ≤ 50% jitter on top.
        for attempt in 1..=8u32 {
            let d = retry_delay(base, attempt, 7);
            let doublings = (attempt - 1).min(RETRY_CAP_DOUBLINGS);
            let exp = base * (1 << doublings);
            assert!(d >= exp, "attempt {attempt}: {d:?} < envelope {exp:?}");
            assert!(
                d <= exp + exp / 2 + Duration::from_nanos(1),
                "attempt {attempt}: {d:?} beyond jitter span"
            );
        }
        // The cap holds: far attempts stop doubling.
        assert!(retry_delay(base, 30, 7) <= base * (1 << RETRY_CAP_DOUBLINGS) * 3 / 2);
        // Thundering-herd safety: different seeds give different jitter.
        assert_ne!(retry_delay(base, 2, 1), retry_delay(base, 2, 2));
        // And attempts draw fresh jitter, not a repeated offset.
        let j1 = retry_delay(base, 1, 9) - base;
        let j2 = retry_delay(base, 2, 9) - base * 2;
        assert_ne!(j1 * 2, j2);
    }
}
